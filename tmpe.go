//go:build ignore

package main

import (
	"os"

	"kjoin/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 5000
	cfg.BaselineScale = 1500
	for _, e := range os.Args[1:] {
		if err := experiments.Run(e, cfg); err != nil {
			panic(err)
		}
	}
}
