package main

// Hot-path benchmark mode: a stdlib-only runner (testing.Benchmark) for
// the allocation-sensitive steady-state paths — SelfJoin, R-S Join and
// single-pair Similarity at the paper's default configuration — emitting
// machine-readable JSON so CI and the README perf table track ns/op,
// B/op and allocs/op without parsing `go test -bench` text output.
//
// The output file keeps two runs side by side: a pinned "baseline"
// (written with -hotpath-baseline, normally from the pre-optimization
// tree) and the "current" run. Re-running refreshes only the section
// being measured, so the before/after comparison survives regeneration.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"kjoin"
	"kjoin/datasets"
	"kjoin/internal/core"
)

type hotpathResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type hotpathRun struct {
	Scale      int             `json:"scale"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []hotpathResult `json:"benchmarks"`
	Mixed      *mixedRun       `json:"mixed,omitempty"`
}

// mixedEngine is one engine's side of the mixed add/query benchmark.
type mixedEngine struct {
	AddOps         int     `json:"add_ops"`
	AddOpsPerSec   float64 `json:"add_ops_per_sec"`
	QueryOps       int     `json:"query_ops"`
	QueryOpsPerSec float64 `json:"query_ops_per_sec"`
	QueryP50Ms     float64 `json:"query_p50_ms"`
	QueryP99Ms     float64 `json:"query_p99_ms"`
}

// mixedRun compares the segmented engine's lock-free read path against
// an RWMutex emulation of the pre-segmentation engine (queries under a
// read lock, adds under the write lock) on the same workload: writers
// streaming adds while queriers hammer similarity searches.
type mixedRun struct {
	Writers     int         `json:"writers"`
	Queriers    int         `json:"queriers"`
	DurationSec float64     `json:"duration_sec"`
	Segmented   mixedEngine `json:"segmented"`
	RWMutex     mixedEngine `json:"rwmutex_baseline"`
}

type hotpathFile struct {
	Baseline *hotpathRun `json:"baseline,omitempty"`
	Current  *hotpathRun `json:"current,omitempty"`
}

// hotpathBenchmarks defines the measured paths. Dataset generation and
// option construction happen before the timer starts; each iteration is
// one full join (or one similarity call, which includes its per-call
// resolver construction — the documented cost of the one-shot API).
func hotpathBenchmarks(scale int) []struct {
	name string
	fn   func(b *testing.B)
} {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(scale))
	cut := len(c.Records) / 2

	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"SelfJoinPOI", func(b *testing.B) {
			opt := kjoin.Defaults(0.8, 0.85)
			opt.ComputeSims = false
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kjoin.SelfJoin(hr.H, c.Records, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"JoinPOI", func(b *testing.B) {
			opt := kjoin.Defaults(0.8, 0.85)
			opt.ComputeSims = false
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kjoin.Join(hr.H, c.Records[:cut], c.Records[cut:], opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Similarity", func(b *testing.B) {
			opt := kjoin.Defaults(0.8, 0.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kjoin.Similarity(hr.H, c.Records[0], c.Records[1], opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// percentileMs returns the p-th percentile of the sorted latency set,
// in milliseconds.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// mixedCommitLatency models the WAL group-commit fsync the server pays
// inside its write critical section (Durability{Policy: SyncAlways} in
// handleAdd): a few milliseconds on production disks. It is simulated
// with a fixed sleep so the benchmark measures the locking architecture
// rather than this machine's storage stack.
const mixedCommitLatency = 2 * time.Millisecond

// runMixedEngine drives one engine variant: writers stream durable adds
// (engine insert + simulated WAL commit) while queriers run the
// server's full query path, for dur. With lockfree, queries go straight
// to the engine's epoch-pinned read path and only writers serialize on
// the server mutex; otherwise queries share one RWMutex with the
// writers the way the pre-segmentation server did.
func runMixedEngine(hr *datasets.Hier, preload, stream [][]string, writers, queriers int, dur time.Duration, lockfree bool) (mixedEngine, error) {
	opt := core.Defaults(0.8, 0.85)
	opt.ComputeSims = false
	ix, err := core.NewIndexer(hr.H, opt)
	if err != nil {
		return mixedEngine{}, err
	}
	for _, r := range preload {
		if _, err := ix.Add(r); err != nil {
			return mixedEngine{}, err
		}
	}
	// Queries are lookup-shaped: short selective probes (a record's
	// leading tokens) against the full collection — the similarity-search
	// side of the service. Their service time is small and constant,
	// which is exactly what exposes the coupling the old locking had:
	// under the RWMutex discipline a cheap query still waits out the
	// in-flight add, while the epoch-pinned path answers immediately.
	var queries [][]string
	for i := 0; i < len(preload); i += 1 + len(preload)/64 {
		q := preload[i]
		if len(q) > 3 {
			q = q[:3]
		}
		queries = append(queries, q)
	}

	var mu sync.RWMutex // pre-segmentation server lock: adds and queries
	var wmu sync.Mutex  // segmented server lock: writers only
	ctx := context.Background()
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	addCounts := make([]int, writers)
	lats := make([][]time.Duration, queriers)
	errc := make(chan error, writers+queriers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i += writers {
				// Writers must stay busy for the whole window — the
				// benchmark measures query latency under sustained write
				// pressure. Past the end of the stream, re-issue records
				// with a distinguishing token so objects stay unique.
				rec := stream[i%len(stream)]
				if i >= len(stream) {
					rec = append(append([]string(nil), rec...), fmt.Sprintf("pass%d", i/len(stream)))
				}
				// The server holds its write lock across the engine add
				// AND the WAL commit (the add is only acknowledged
				// durable). Both variants pay the same commit latency;
				// they differ in who else waits on the lock.
				if lockfree {
					wmu.Lock()
				} else {
					mu.Lock()
				}
				_, err := ix.Add(rec)
				if err == nil {
					time.Sleep(mixedCommitLatency)
				}
				if lockfree {
					wmu.Unlock()
				} else {
					mu.Unlock()
				}
				if err != nil {
					errc <- err
					return
				}
				addCounts[w]++
			}
		}(w)
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One query is the server's full /query path: prepare, then
			// run. The baseline reproduces the pre-segmentation locking
			// verbatim — PrepareQuery mutated shared caches and needed
			// the write lock, RunQuery ran under the read lock.
			for i := 0; time.Now().Before(deadline); i++ {
				tokens := queries[(g+i)%len(queries)]
				t0 := time.Now()
				var err error
				if lockfree {
					var q *core.PreparedQuery
					if q, err = ix.PrepareQuery(tokens); err == nil {
						_, err = ix.RunQuery(ctx, q)
					}
				} else {
					mu.Lock()
					q, perr := ix.PrepareQuery(tokens)
					mu.Unlock()
					err = perr
					if err == nil {
						mu.RLock()
						_, err = ix.RunQuery(ctx, q)
						mu.RUnlock()
					}
				}
				if err != nil {
					errc <- err
					return
				}
				lats[g] = append(lats[g], time.Since(t0))
				// Think time: queriers model clients issuing requests,
				// not a closed busy-loop that would starve the writers
				// of CPU and measure scheduler pressure instead of lock
				// architecture.
				time.Sleep(time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	ix.WaitMerges()
	close(errc)
	for err := range errc {
		return mixedEngine{}, err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if os.Getenv("KJOIN_MIXED_DEBUG") != "" {
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
			fmt.Fprintf(os.Stderr, "  lockfree=%v p%02.0f %.3fms\n", lockfree, p*100, percentileMs(all, p))
		}
	}
	adds := 0
	for _, n := range addCounts {
		adds += n
	}
	sec := dur.Seconds()
	return mixedEngine{
		AddOps:         adds,
		AddOpsPerSec:   float64(adds) / sec,
		QueryOps:       len(all),
		QueryOpsPerSec: float64(len(all)) / sec,
		QueryP50Ms:     percentileMs(all, 0.50),
		QueryP99Ms:     percentileMs(all, 0.99),
	}, nil
}

// runMixed measures both engine variants on an identical workload.
func runMixed(scale int) (*mixedRun, error) {
	const (
		writers  = 4
		queriers = 4
		dur      = 1500 * time.Millisecond
	)
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(2*scale))
	preload, stream := c.Records[:scale], c.Records[scale:]

	seg, err := runMixedEngine(hr, preload, stream, writers, queriers, dur, true)
	if err != nil {
		return nil, err
	}
	rw, err := runMixedEngine(hr, preload, stream, writers, queriers, dur, false)
	if err != nil {
		return nil, err
	}
	return &mixedRun{
		Writers:     writers,
		Queriers:    queriers,
		DurationSec: dur.Seconds(),
		Segmented:   seg,
		RWMutex:     rw,
	}, nil
}

// runHotpath measures the hot paths and writes (or updates) the JSON
// report at path. With asBaseline the run is stored under "baseline",
// otherwise under "current"; the other section is preserved if the file
// already exists.
func runHotpath(path string, scale int, asBaseline bool) error {
	run := &hotpathRun{Scale: scale, GoVersion: runtime.Version()}
	for _, bm := range hotpathBenchmarks(scale) {
		r := testing.Benchmark(bm.fn)
		run.Benchmarks = append(run.Benchmarks, hotpathResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-12s %d iters  %.0f ns/op  %d B/op  %d allocs/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	mixed, err := runMixed(scale)
	if err != nil {
		return err
	}
	run.Mixed = mixed
	fmt.Fprintf(os.Stderr, "MixedAddQuery (%dw+%dq) segmented: %.0f adds/s %.0f queries/s p50 %.3fms p99 %.3fms | rwmutex: %.0f adds/s %.0f queries/s p50 %.3fms p99 %.3fms\n",
		mixed.Writers, mixed.Queriers,
		mixed.Segmented.AddOpsPerSec, mixed.Segmented.QueryOpsPerSec, mixed.Segmented.QueryP50Ms, mixed.Segmented.QueryP99Ms,
		mixed.RWMutex.AddOpsPerSec, mixed.RWMutex.QueryOpsPerSec, mixed.RWMutex.QueryP50Ms, mixed.RWMutex.QueryP99Ms)

	var out hotpathFile
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &out) // a malformed file is overwritten
	}
	if asBaseline {
		out.Baseline = run
	} else {
		out.Current = run
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
