package main

// Hot-path benchmark mode: a stdlib-only runner (testing.Benchmark) for
// the allocation-sensitive steady-state paths — SelfJoin, R-S Join and
// single-pair Similarity at the paper's default configuration — emitting
// machine-readable JSON so CI and the README perf table track ns/op,
// B/op and allocs/op without parsing `go test -bench` text output.
//
// The output file keeps two runs side by side: a pinned "baseline"
// (written with -hotpath-baseline, normally from the pre-optimization
// tree) and the "current" run. Re-running refreshes only the section
// being measured, so the before/after comparison survives regeneration.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"kjoin"
	"kjoin/datasets"
)

type hotpathResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type hotpathRun struct {
	Scale      int             `json:"scale"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []hotpathResult `json:"benchmarks"`
}

type hotpathFile struct {
	Baseline *hotpathRun `json:"baseline,omitempty"`
	Current  *hotpathRun `json:"current,omitempty"`
}

// hotpathBenchmarks defines the measured paths. Dataset generation and
// option construction happen before the timer starts; each iteration is
// one full join (or one similarity call, which includes its per-call
// resolver construction — the documented cost of the one-shot API).
func hotpathBenchmarks(scale int) []struct {
	name string
	fn   func(b *testing.B)
} {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(scale))
	cut := len(c.Records) / 2

	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"SelfJoinPOI", func(b *testing.B) {
			opt := kjoin.Defaults(0.8, 0.85)
			opt.ComputeSims = false
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kjoin.SelfJoin(hr.H, c.Records, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"JoinPOI", func(b *testing.B) {
			opt := kjoin.Defaults(0.8, 0.85)
			opt.ComputeSims = false
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kjoin.Join(hr.H, c.Records[:cut], c.Records[cut:], opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Similarity", func(b *testing.B) {
			opt := kjoin.Defaults(0.8, 0.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kjoin.Similarity(hr.H, c.Records[0], c.Records[1], opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// runHotpath measures the hot paths and writes (or updates) the JSON
// report at path. With asBaseline the run is stored under "baseline",
// otherwise under "current"; the other section is preserved if the file
// already exists.
func runHotpath(path string, scale int, asBaseline bool) error {
	run := &hotpathRun{Scale: scale, GoVersion: runtime.Version()}
	for _, bm := range hotpathBenchmarks(scale) {
		r := testing.Benchmark(bm.fn)
		run.Benchmarks = append(run.Benchmarks, hotpathResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-12s %d iters  %.0f ns/op  %d B/op  %d allocs/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	var out hotpathFile
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &out) // a malformed file is overwritten
	}
	if asBaseline {
		out.Baseline = run
	} else {
		out.Current = run
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
