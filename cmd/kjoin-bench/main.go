// Command kjoin-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md §4 for the experiment index). Each experiment
// prints the rows/series of the corresponding table or figure.
//
// Usage:
//
//	kjoin-bench -exp table4
//	kjoin-bench -exp fig9 -scale 50000
//	kjoin-bench -exp all
//
// Environment: KJOIN_SCALE, KJOIN_BASELINE_SCALE and KJOIN_QUALITY_N
// override the default dataset sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kjoin/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	var (
		exp         = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|")+"|all")
		hotpath     = flag.String("hotpath", "", "write hot-path benchmark JSON (ns/op, B/op, allocs/op) to FILE and exit")
		hotScale    = flag.Int("hotpath-scale", 3000, "POI collection size for -hotpath")
		hotBaseline = flag.Bool("hotpath-baseline", false, "store the -hotpath run as the pinned baseline instead of the current run")
	)
	flag.IntVar(&cfg.Scale, "scale", cfg.Scale, "POI/Tweet size for efficiency experiments")
	flag.IntVar(&cfg.BaselineScale, "baseline-scale", cfg.BaselineScale, "collection size for baseline comparisons")
	flag.IntVar(&cfg.QualityN, "quality-n", cfg.QualityN, "override Pub/Res sizes (0 = paper sizes)")
	flag.IntVar(&cfg.Workers, "workers", 0, "join workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *hotpath != "" {
		if err := runHotpath(*hotpath, *hotScale, *hotBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "kjoin-bench:", err)
			os.Exit(1)
		}
		return
	}

	if err := experiments.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kjoin-bench:", err)
		os.Exit(1)
	}
}
