// Command kjoin runs a knowledge-aware similarity join from the command
// line: it reads a hierarchy file (the format written by
// Hierarchy.WriteTo: "<id>\t<parent>\t<name>" per line) and one or two
// object files (one object per line, whitespace-separated tokens) and
// prints the similar pairs as TSV: "<x>\t<y>\t<sim>".
//
// Usage:
//
//	kjoin -hierarchy kb.txt -input pois.txt -delta 0.8 -tau 0.85
//	kjoin -hierarchy kb.txt -input r.txt -input2 s.txt -set dice
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"kjoin"
)

func main() {
	var (
		hierPath = flag.String("hierarchy", "", "knowledge hierarchy file (required)")
		hierFmt  = flag.String("hierarchy-format", "kjoin", "hierarchy format: kjoin|paths|edges")
		inPath   = flag.String("input", "", "objects file, one per line (required)")
		in2Path  = flag.String("input2", "", "second collection for an R-S join (optional)")
		synPath  = flag.String("synonyms", "", "synonym rules file: one comma-separated group per line")
		delta    = flag.Float64("delta", 0.8, "element similarity threshold δ")
		tau      = flag.Float64("tau", 0.8, "object similarity threshold τ")
		scheme   = flag.String("scheme", "deep", "signature scheme: node|shallow|deep")
		verifier = flag.String("verifier", "adaptive", "verifier: basic|subgraph|adaptive")
		metric   = flag.String("metric", "standard", "element metric: standard|wupalmer")
		set      = flag.String("set", "jaccard", "set metric: jaccard|dice|cosine")
		plus     = flag.Bool("plus", false, "K-Join+ resolution (synonyms, typos, multi-node)")
		weighted = flag.Bool("weighted", true, "use the weighted path prefix")
		workers  = flag.Int("workers", 0, "probe workers (0 = GOMAXPROCS)")
		topk     = flag.Int("topk", 0, "return only the k most similar pairs (tau becomes the floor)")
		raw      = flag.Bool("raw", false, "tokenize input lines as raw text instead of splitting on whitespace")
		quiet    = flag.Bool("quiet", false, "suppress the stats summary on stderr")
	)
	flag.Parse()
	if *hierPath == "" || *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	h, err := readHierarchy(*hierPath, *hierFmt)
	fail(err)
	objs, err := readObjects(*inPath, *raw)
	fail(err)

	opt := kjoin.Defaults(*delta, *tau)
	opt.Weighted = *weighted
	opt.Plus = *plus
	opt.Workers = *workers
	switch *scheme {
	case "node":
		opt.Scheme = kjoin.NodeScheme
	case "shallow":
		opt.Scheme = kjoin.ShallowScheme
	case "deep":
		opt.Scheme = kjoin.DeepScheme
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}
	switch *verifier {
	case "basic":
		opt.Verifier = kjoin.BasicVerify
	case "subgraph":
		opt.Verifier = kjoin.SubGraphVerify
	case "adaptive":
		opt.Verifier = kjoin.AdaptiveVerify
	default:
		fail(fmt.Errorf("unknown verifier %q", *verifier))
	}
	switch *metric {
	case "standard":
		opt.Metric = kjoin.Standard
	case "wupalmer":
		opt.Metric = kjoin.WuPalmer
	default:
		fail(fmt.Errorf("unknown metric %q", *metric))
	}
	switch *set {
	case "jaccard":
		opt.Set = kjoin.Jaccard
	case "dice":
		opt.Set = kjoin.Dice
	case "cosine":
		opt.Set = kjoin.Cosine
	default:
		fail(fmt.Errorf("unknown set metric %q", *set))
	}
	if *synPath != "" {
		d, err := readSynonyms(*synPath)
		fail(err)
		opt.Synonyms = d
	}

	var pairs []kjoin.Pair
	var stats *kjoin.Stats
	switch {
	case *topk > 0 && *in2Path != "":
		fail(fmt.Errorf("-topk is only supported for self joins"))
	case *topk > 0:
		pairs, stats, err = kjoin.TopKSelfJoin(h, objs, *topk, opt)
		fail(err)
	case *in2Path != "":
		objs2, err2 := readObjects(*in2Path, *raw)
		fail(err2)
		pairs, stats, err = kjoin.Join(h, objs, objs2, opt)
		fail(err)
	default:
		pairs, stats, err = kjoin.SelfJoin(h, objs, opt)
		fail(err)
	}

	w := bufio.NewWriter(os.Stdout)
	for _, p := range pairs {
		fmt.Fprintf(w, "%d\t%d\t%.6f\n", p.X, p.Y, p.Sim)
	}
	fail(w.Flush())
	if !*quiet {
		fmt.Fprintf(os.Stderr, "objects=%d candidates=%d results=%d preprocess=%v probe=%v verify=%v\n",
			stats.Objects, stats.Candidates, len(pairs), stats.Preprocess, stats.Probe, stats.VerifyTime)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kjoin:", err)
		os.Exit(1)
	}
}

func readHierarchy(path, format string) (*kjoin.Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//kjoinlint:ignore syncerr read-only open; a close failure cannot lose data
	defer f.Close()
	switch format {
	case "kjoin":
		return kjoin.ReadHierarchy(f)
	case "paths":
		return kjoin.HierarchyFromPaths(f, '/', "Root")
	case "edges":
		return kjoin.HierarchyFromEdges(f, "Root")
	default:
		return nil, fmt.Errorf("unknown hierarchy format %q", format)
	}
}

func readObjects(path string, raw bool) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//kjoinlint:ignore syncerr read-only open; a close failure cannot lose data
	defer f.Close()
	var out [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if raw {
			out = append(out, kjoin.Tokenize(sc.Text()))
		} else {
			out = append(out, strings.Fields(sc.Text()))
		}
	}
	return out, sc.Err()
}

func readSynonyms(path string) (*kjoin.Synonyms, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//kjoinlint:ignore syncerr read-only open; a close failure cannot lose data
	defer f.Close()
	d := kjoin.NewSynonyms()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var group []string
		for _, t := range strings.Split(sc.Text(), ",") {
			if t = strings.TrimSpace(t); t != "" {
				group = append(group, t)
			}
		}
		if len(group) > 1 {
			d.Add(group...)
		}
	}
	return d, sc.Err()
}
