// Command kjoin-gen generates the synthetic evaluation datasets: the
// knowledge hierarchy (paper Table 2), POI/Tweet record collections
// (Table 3) and the Pub/Res labeled corpora (Table 4). Files written:
//
//	<out>-hierarchy.txt  hierarchy in the kjoin text format
//	<out>-records.txt    one object per line, whitespace tokens
//	<out>-truth.txt      ground-truth pairs "<x>\t<y>" (if any)
//	<out>-synonyms.txt   synonym rule groups, comma separated (pub/res)
//
// Usage:
//
//	kjoin-gen -kind poi -n 100000 -out poi
//	kjoin-gen -kind pub -out pub
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"kjoin/datasets"
	"kjoin/internal/synonym"
)

func main() {
	var (
		kind = flag.String("kind", "poi", "dataset kind: hier|poi|tweet|pub|res")
		n    = flag.Int("n", 100000, "record count (poi/tweet)")
		out  = flag.String("out", "data", "output file prefix")
	)
	flag.Parse()

	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	switch *kind {
	case "hier":
		writeHierarchy(*out, hr)
	case "poi":
		c := datasets.GenRecords(hr, datasets.POIConfig(*n))
		writeHierarchy(*out, hr)
		writeRecords(*out, c.Records)
		writeTruth(*out, c.Truth)
	case "tweet":
		c := datasets.GenRecords(hr, datasets.TweetConfig(*n))
		writeHierarchy(*out, hr)
		writeRecords(*out, c.Records)
		writeTruth(*out, c.Truth)
	case "pub":
		l := datasets.GenPub(datasets.DefaultPub())
		writeLabeledHierarchy(*out, l)
		writeRecords(*out, l.Records)
		writeTruth(*out, l.Truth)
		writeSynonyms(*out, l.Aliases)
	case "res":
		l := datasets.GenRes(hr, datasets.DefaultRes())
		writeLabeledHierarchy(*out, l)
		writeRecords(*out, l.Records)
		writeTruth(*out, l.Truth)
		writeSynonyms(*out, l.Aliases)
	default:
		fmt.Fprintf(os.Stderr, "kjoin-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func create(path string) (*os.File, *bufio.Writer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kjoin-gen:", err)
		os.Exit(1)
	}
	return f, bufio.NewWriter(f)
}

func closeAll(f *os.File, w *bufio.Writer) {
	if err := w.Flush(); err == nil {
		err = f.Close()
		if err == nil {
			return
		}
	}
	fmt.Fprintln(os.Stderr, "kjoin-gen: write failed")
	os.Exit(1)
}

func writeHierarchy(prefix string, hr *datasets.Hier) {
	f, w := create(prefix + "-hierarchy.txt")
	if _, err := hr.H.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, "kjoin-gen:", err)
		os.Exit(1)
	}
	closeAll(f, w)
	fmt.Println("wrote", prefix+"-hierarchy.txt")
}

func writeLabeledHierarchy(prefix string, l *datasets.Labeled) {
	f, w := create(prefix + "-hierarchy.txt")
	if _, err := l.H.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, "kjoin-gen:", err)
		os.Exit(1)
	}
	closeAll(f, w)
	fmt.Println("wrote", prefix+"-hierarchy.txt")
}

func writeRecords(prefix string, records [][]string) {
	f, w := create(prefix + "-records.txt")
	for _, rec := range records {
		fmt.Fprintln(w, strings.Join(rec, " "))
	}
	closeAll(f, w)
	fmt.Printf("wrote %s-records.txt (%d records)\n", prefix, len(records))
}

func writeTruth(prefix string, truth map[[2]int]bool) {
	if len(truth) == 0 {
		return
	}
	pairs := make([][2]int, 0, len(truth))
	for p := range truth {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	f, w := create(prefix + "-truth.txt")
	for _, p := range pairs {
		fmt.Fprintf(w, "%d\t%d\n", p[0], p[1])
	}
	closeAll(f, w)
	fmt.Printf("wrote %s-truth.txt (%d pairs)\n", prefix, len(pairs))
}

func writeSynonyms(prefix string, d *synonym.Dict) {
	if d == nil || d.Len() == 0 {
		return
	}
	f, w := create(prefix + "-synonyms.txt")
	for _, g := range d.Groups() {
		fmt.Fprintln(w, strings.Join(g, ","))
	}
	closeAll(f, w)
	fmt.Println("wrote", prefix+"-synonyms.txt")
}
