// Command kjoin-exp runs one or more named experiments at reduced,
// laptop-friendly scales — a quick smoke-check companion to kjoin-bench
// (which defaults to the paper's full configuration). Useful while
// iterating on the join engine: it answers "did I break table4?" in
// seconds rather than minutes.
//
// Usage:
//
//	kjoin-exp table4 fig9
//	kjoin-exp -scale 10000 fig11
//
// With no experiment arguments it lists the available names.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kjoin/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 5000
	cfg.BaselineScale = 1500
	flag.IntVar(&cfg.Scale, "scale", cfg.Scale, "POI/Tweet size for efficiency experiments")
	flag.IntVar(&cfg.BaselineScale, "baseline-scale", cfg.BaselineScale, "collection size for baseline comparisons")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintf(os.Stderr, "usage: kjoin-exp [-scale n] experiment...\navailable: %s\n",
			strings.Join(experiments.Names(), " "))
		os.Exit(2)
	}
	for _, e := range flag.Args() {
		if err := experiments.Run(e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "kjoin-exp:", err)
			os.Exit(1)
		}
	}
}
