// Command kjoin-lint is the project's multichecker: it runs the nine
// kjoin-specific analyzers — the per-package checkers (lockcheck,
// ctxpoll, floateq, maporder, errform) and the module-aware
// concurrency/durability provers (lockorder, ackorder, syncerr,
// goleak) — over the module's packages and exits non-zero if any
// diagnostic is reported. It is wired into `make lint` and the CI lint
// job; see DESIGN.md "Static analysis & invariants" for what each
// analyzer enforces and why.
//
// Usage:
//
//	kjoin-lint [-only a,b] [-json] [pattern ...]
//
// Patterns are module-relative directories, optionally ending in /...
// (default ./...). The dependency closure of the selected packages is
// always analyzed so cross-package facts are available, but diagnostics
// are reported only for the packages the patterns selected. Findings
// can be suppressed line-by-line with //kjoinlint:ignore <analyzer>
// <reason>; suppressed findings still appear in -json output with
// "suppressed": true and do not affect the exit code.
//
// Exit codes:
//
//	0 — no findings (suppressed findings do not count)
//	1 — at least one unsuppressed finding
//	2 — driver error (bad flags, unloadable packages, analyzer panic)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"kjoin/internal/analysis"
	"kjoin/internal/analysis/ackorder"
	"kjoin/internal/analysis/ctxpoll"
	"kjoin/internal/analysis/errform"
	"kjoin/internal/analysis/floateq"
	"kjoin/internal/analysis/goleak"
	"kjoin/internal/analysis/load"
	"kjoin/internal/analysis/lockcheck"
	"kjoin/internal/analysis/lockorder"
	"kjoin/internal/analysis/maporder"
	"kjoin/internal/analysis/syncerr"
)

var all = []*analysis.Analyzer{
	lockcheck.Analyzer,
	ctxpoll.Analyzer,
	floateq.Analyzer,
	maporder.Analyzer,
	errform.Analyzer,
	lockorder.Analyzer,
	ackorder.Analyzer,
	syncerr.Analyzer,
	goleak.Analyzer,
}

// finding is one diagnostic in reporting form; the JSON field names are
// the documented machine interface.
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic object per line (includes suppressed findings)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kjoin-lint [-only a,b] [-json] [pattern ...]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "kjoin-lint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "kjoin-lint: %v\n", err)
		return 2
	}
	selected, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kjoin-lint: %v\n", err)
		return 2
	}
	report := make(map[*analysis.Package]bool, len(selected))
	for _, p := range selected {
		report[p] = true
	}

	// The module spans the full dependency closure the loader pulled in:
	// facts must exist for every package a selected one imports, even
	// when the patterns did not name it.
	mod := analysis.NewModule(loader.All())

	findings, err := analyzeModule(mod, analyzers, report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kjoin-lint: %v\n", err)
		return 2
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	bad := false
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if f.Suppressed && !*jsonOut {
			continue
		}
		if *jsonOut {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(os.Stderr, "kjoin-lint: %v\n", err)
				return 2
			}
		} else {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
		if !f.Suppressed {
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}

// analyzeModule runs the analyzers over every module package, in
// parallel across packages with the dependency order preserved: a
// package starts only after all of its module-internal imports finished
// (their facts are then complete). Only packages in report contribute
// diagnostics.
func analyzeModule(mod *analysis.Module, analyzers []*analysis.Analyzer, report map[*analysis.Package]bool) ([]finding, error) {
	inModule := make(map[*analysis.Package]bool, len(mod.Pkgs))
	done := make(map[*analysis.Package]chan struct{}, len(mod.Pkgs))
	for _, p := range mod.Pkgs {
		inModule[p] = true
		done[p] = make(chan struct{})
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))

	var (
		mu       sync.Mutex
		findings []finding
		firstErr error
	)
	var wg sync.WaitGroup
	for _, p := range mod.Pkgs {
		wg.Add(1)
		go func(p *analysis.Package) {
			defer wg.Done()
			defer close(done[p])
			for _, dep := range p.Imports {
				if inModule[dep] {
					<-done[dep]
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			diags, err := mod.Run(p, analyzers)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %v", p.Path, err)
				}
				return
			}
			if !report[p] {
				return
			}
			for _, d := range diags {
				pos := p.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File:       pos.Filename,
					Line:       pos.Line,
					Col:        pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				})
			}
		}(p)
	}
	wg.Wait()
	return findings, firstErr
}
