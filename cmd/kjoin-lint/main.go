// Command kjoin-lint is the project's multichecker: it runs the five
// kjoin-specific analyzers (lockcheck, ctxpoll, floateq, maporder,
// errform) over the module's packages and exits non-zero if any
// diagnostic is reported. It is wired into `make lint` and the CI lint
// job; see DESIGN.md "Static analysis & invariants" for what each
// analyzer enforces and why.
//
// Usage:
//
//	kjoin-lint [-only a,b] [pattern ...]
//
// Patterns are module-relative directories, optionally ending in /...
// (default ./...). Findings can be suppressed line-by-line with
// //kjoinlint:ignore <analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kjoin/internal/analysis"
	"kjoin/internal/analysis/ctxpoll"
	"kjoin/internal/analysis/errform"
	"kjoin/internal/analysis/floateq"
	"kjoin/internal/analysis/load"
	"kjoin/internal/analysis/lockcheck"
	"kjoin/internal/analysis/maporder"
)

var all = []*analysis.Analyzer{
	lockcheck.Analyzer,
	ctxpoll.Analyzer,
	floateq.Analyzer,
	maporder.Analyzer,
	errform.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kjoin-lint [-only a,b] [pattern ...]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "kjoin-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "kjoin-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kjoin-lint: %v\n", err)
		os.Exit(2)
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kjoin-lint: %s: %v\n", pkg.Path, err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
