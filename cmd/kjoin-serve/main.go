// Command kjoin-serve runs a knowledge-aware similarity service over
// HTTP: objects are streamed in and deduplicated against everything seen
// before, and ad-hoc queries search the accumulated collection.
//
//	kjoin-serve -hierarchy kb.txt -addr :8080 -delta 0.8 -tau 0.8 \
//	    -snapshot state.snap -snapshot-interval 30s
//
// Endpoints (JSON):
//
//	POST /objects    {"tokens": ["burgerking", "mountainview"]}
//	                 → {"id": 17, "pairs": [{"x": 3, "y": 17, "sim": 0.91}]}
//	POST /query      {"tokens": [...]} → {"matches": [{"index": 3, "sim": 0.91}]}
//	POST /similarity {"x": [...], "y": [...]} → {"sim": 0.75}
//	GET  /stats      accumulated join statistics
//	GET  /snapshot   downloadable snapshot of the index
//	GET  /healthz    liveness probe
//	GET  /readyz     readiness probe (503 while draining)
//
// The server sheds load with 429 + Retry-After past -max-inflight
// concurrent expensive requests, caps bodies at -max-body-bytes, bounds
// every request by -request-timeout, and shuts down gracefully on
// SIGINT/SIGTERM: readiness flips to draining, in-flight requests get
// -drain-timeout to finish, and a final snapshot is written atomically
// when -snapshot is set. With -snapshot-interval a background
// snapshotter also persists the index periodically, retrying failures
// with capped, jittered exponential backoff.
//
// With -wal-dir and -snapshot-dir the service runs crash-safe: every
// add is appended to a checksummed write-ahead log and fsync'd before
// the HTTP acknowledgment, snapshots are kept as -snapshot-keep
// numbered generations, and startup recovers by loading the newest
// readable generation (falling back past corrupt ones) and replaying
// the log, answering 503 on /readyz until recovery completes. See
// DESIGN.md §9.
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kjoin"
	"kjoin/internal/core"
	"kjoin/internal/server"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// jitterSeed draws a per-process seed for the snapshotter's retry
// jitter, falling back to clock-and-pid entropy if the system source is
// unavailable. Never returns 0 (the Snapshotter treats 0 as unset).
func jitterSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if s := binary.LittleEndian.Uint64(b[:]); s != 0 {
			return s
		}
	}
	return uint64(time.Now().UnixNano())<<16 ^ uint64(os.Getpid()) | 1
}

func main() {
	var (
		hierPath   = flag.String("hierarchy", "", "knowledge hierarchy file (required)")
		addr       = flag.String("addr", ":8080", "listen address")
		delta      = flag.Float64("delta", 0.8, "element similarity threshold δ")
		tau        = flag.Float64("tau", 0.8, "object similarity threshold τ")
		plus       = flag.Bool("plus", false, "K-Join+ resolution")
		snapshot   = flag.String("snapshot", "", "single snapshot file: preloaded at startup if it exists, written atomically on shutdown and every -snapshot-interval (no WAL; mutually exclusive with -snapshot-dir)")
		snapEvery  = flag.Duration("snapshot-interval", 0, "periodic snapshot interval (0 disables; requires -snapshot or -snapshot-dir)")
		walDir     = flag.String("wal-dir", "", "write-ahead-log directory; with -snapshot-dir enables crash-safe durability (adds are fsync'd before the ack)")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always (acked adds survive any crash) or none (fast, a crash loses recent adds)")
		walBatch   = flag.Duration("wal-batch", 0, "WAL group-commit window: trade this much ack latency for fewer fsyncs under concurrency")
		snapDir    = flag.String("snapshot-dir", "", "snapshot generation directory (requires -wal-dir)")
		snapKeep   = flag.Int("snapshot-keep", 3, "snapshot generations kept in -snapshot-dir")
		maxBody    = flag.Int64("max-body-bytes", 1<<20, "request body size cap in bytes")
		maxInflt   = flag.Int("max-inflight", 64, "max concurrent expensive requests before shedding with 429")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		drainT     = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	if *hierPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	durable := *walDir != "" || *snapDir != ""
	if durable && (*walDir == "" || *snapDir == "") {
		log.Fatal("kjoin-serve: -wal-dir and -snapshot-dir must be set together")
	}
	if durable && *snapshot != "" {
		log.Fatal("kjoin-serve: -snapshot and -snapshot-dir are mutually exclusive")
	}
	if *snapEvery > 0 && *snapshot == "" && !durable {
		log.Fatal("kjoin-serve: -snapshot-interval requires -snapshot or -snapshot-dir")
	}
	var walPolicy wal.Policy
	switch *walSync {
	case "always":
		walPolicy = wal.SyncAlways
	case "none":
		walPolicy = wal.SyncNone
	default:
		log.Fatalf("kjoin-serve: -wal-sync must be always or none, got %q", *walSync)
	}
	f, err := os.Open(*hierPath)
	if err != nil {
		log.Fatal(err)
	}
	h, err := kjoin.ReadHierarchy(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Defaults(*delta, *tau)
	opt.Plus = *plus
	cfg := server.Config{
		MaxBodyBytes:   *maxBody,
		MaxInflight:    *maxInflt,
		RequestTimeout: *reqTimeout,
		Logf:           log.Printf,
	}
	var srv *server.Server
	if durable {
		// The server comes up not-ready: the listener starts first so
		// /readyz honestly reports "recovering" while the index is
		// rebuilt from the snapshot generations and the WAL.
		srv, err = server.NewRecovering(h, opt, cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else if *snapshot != "" {
		sf, err := os.Open(*snapshot)
		switch {
		case err == nil:
			srv, err = server.NewFromSnapshotWithConfig(h, opt, cfg, sf)
			sf.Close()
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("kjoin-serve: restored snapshot %s", *snapshot)
		case errors.Is(err, os.ErrNotExist):
			// First run: start empty, the file appears on first write.
			srv, err = server.NewWithConfig(h, opt, cfg)
			if err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal(err)
		}
	} else {
		srv, err = server.NewWithConfig(h, opt, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Full timeout battery: slow-loris headers, stuck reads, stuck
		// writes and idle keep-alives all get bounded. Read/write budgets
		// leave headroom over the per-request deadline. Request contexts
		// are deliberately NOT tied to the signal context — in-flight
		// requests must be allowed to finish during the drain window.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *reqTimeout + 30*time.Second,
		WriteTimeout:      *reqTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("kjoin-serve: hierarchy %d nodes, listening on %s", h.Len(), *addr)

	if durable {
		if err := srv.Recover(server.Durability{
			WALDir:      *walDir,
			SnapshotDir: *snapDir,
			Keep:        *snapKeep,
			Policy:      walPolicy,
			BatchWindow: *walBatch,
			Logf:        log.Printf,
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("kjoin-serve: recovery complete, serving")
	}

	if *snapEvery > 0 {
		write := func() error { return srv.SnapshotTo(*snapshot) }
		if durable {
			write = srv.SnapshotGeneration
		}
		snap := &serverutil.Snapshotter{
			Interval: *snapEvery,
			Write:    write,
			// Per-process entropy: the jitter exists so a fleet of
			// replicas does not retry in lockstep, which a fixed seed
			// would reintroduce. Tests that need reproducible schedules
			// set Seed explicitly.
			Seed: jitterSeed(),
			Logf: log.Printf,
		}
		go snap.Run(ctx)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising readiness, drain in-flight
	// requests within the budget, then persist a final snapshot.
	log.Printf("kjoin-serve: shutting down (draining up to %v)", *drainT)
	srv.SetDraining(true)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		log.Printf("kjoin-serve: drain incomplete: %v", err)
	}
	switch {
	case durable:
		// A failed final snapshot is not fatal here: every acknowledged
		// add is already durable in the WAL and replays on next start.
		if err := srv.SnapshotGeneration(); err != nil {
			log.Printf("kjoin-serve: final snapshot failed (wal replay will cover it): %v", err)
		} else {
			log.Printf("kjoin-serve: final snapshot written to %s", *snapDir)
		}
		if err := srv.Close(); err != nil {
			log.Printf("kjoin-serve: wal close: %v", err)
		}
	case *snapshot != "":
		if err := srv.SnapshotTo(*snapshot); err != nil {
			log.Printf("kjoin-serve: final snapshot failed: %v", err)
			os.Exit(1)
		}
		log.Printf("kjoin-serve: final snapshot written to %s", *snapshot)
	}
}
