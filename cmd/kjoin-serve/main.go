// Command kjoin-serve runs a knowledge-aware similarity service over
// HTTP: objects are streamed in and deduplicated against everything seen
// before, and ad-hoc queries search the accumulated collection.
//
//	kjoin-serve -hierarchy kb.txt -addr :8080 -delta 0.8 -tau 0.8 \
//	    -snapshot state.snap -snapshot-interval 30s
//
// Endpoints (JSON):
//
//	POST /objects    {"tokens": ["burgerking", "mountainview"]}
//	                 → {"id": 17, "pairs": [{"x": 3, "y": 17, "sim": 0.91}]}
//	POST /query      {"tokens": [...]} → {"matches": [{"index": 3, "sim": 0.91}]}
//	POST /similarity {"x": [...], "y": [...]} → {"sim": 0.75}
//	GET  /stats      accumulated join statistics
//	GET  /snapshot   downloadable snapshot of the index
//	GET  /healthz    liveness probe
//	GET  /readyz     readiness probe (503 while draining)
//
// The server sheds load with 429 + jittered Retry-After past
// -max-inflight concurrent expensive requests, caps bodies at
// -max-body-bytes, bounds every request by -request-timeout, and shuts
// down gracefully on SIGINT/SIGTERM: readiness flips to draining,
// in-flight requests get -drain-timeout to finish, and a final snapshot
// is written atomically when -snapshot is set. With -snapshot-interval a
// background snapshotter also persists the index periodically, retrying
// failures with capped, jittered exponential backoff.
//
// With -wal-dir and -snapshot-dir the service runs crash-safe: every
// add is appended to a checksummed write-ahead log and fsync'd before
// the HTTP acknowledgment, snapshots are kept as -snapshot-keep
// numbered generations, and startup recovers by loading the newest
// readable generation (falling back past corrupt ones) and replaying
// the log, answering 503 on /readyz until recovery completes. See
// DESIGN.md §9.
//
// With -follow the service runs as a read replica instead: it
// bootstraps from its -replica-dir (or, when empty, from a primary
// snapshot), tails the primary's WAL stream, rejects writes with 403,
// and serves reads under the -staleness-bound/-staleness-mode gate.
// See DESIGN.md §10 and the README's "Operating a replica".
//
// With -cluster the service runs as a scatter-gather coordinator over
// the -shards fleet instead of serving an index itself: objects route
// to a home shard by token signature, reads scatter to every shard
// under a per-request deadline budget with bounded retries, hedged
// requests (-hedge-delay) and a per-shard circuit breaker
// (-breaker-threshold/-breaker-cooldown), and partial coverage either
// degrades with X-Kjoin-Coverage headers or fails per -partial. See
// DESIGN.md §12 and the README's "Operating a cluster".
//
// With -coord-wal-dir and -coord-snapshot-dir the coordinator's control
// plane is itself crash-safe: every global-id assignment and route
// change is fsync'd to a coordinator WAL before the ack, snapshots are
// kept as -coord-snapshot-keep generations, a restart recovers the
// exact id map, and live resharding (POST /cluster/reshard, paced by
// -move-throttle) becomes available. See DESIGN.md §13 and the README's
// "Resharding a cluster".
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kjoin"
	"kjoin/internal/cluster"
	"kjoin/internal/core"
	"kjoin/internal/hierarchy"
	"kjoin/internal/replica"
	"kjoin/internal/server"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// jitterSeed draws a per-process seed for retry and Retry-After jitter,
// falling back to clock-and-pid entropy if the system source is
// unavailable. Never returns 0 (consumers treat 0 as unset).
func jitterSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if s := binary.LittleEndian.Uint64(b[:]); s != 0 {
			return s
		}
	}
	return uint64(time.Now().UnixNano())<<16 ^ uint64(os.Getpid()) | 1
}

func main() {
	cfg, err := parseArgs(flag.CommandLine, os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		log.Fatalf("kjoin-serve: invalid configuration:\n%v", err)
	}

	if cfg.cluster {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		runCluster(ctx, cfg)
		return
	}

	f, err := os.Open(cfg.hierPath)
	if err != nil {
		log.Fatal(err)
	}
	h, err := kjoin.ReadHierarchy(f)
	_ = f.Close() // read-only; nothing written that a close could lose
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Defaults(cfg.delta, cfg.tau)
	opt.Plus = cfg.plus
	scfg := server.Config{
		MaxBodyBytes:   cfg.maxBody,
		MaxInflight:    cfg.maxInflt,
		RequestTimeout: cfg.reqTimeout,
		Seed:           jitterSeed(),
		Logf:           log.Printf,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.follower() {
		runFollower(ctx, cfg, h, opt, scfg)
		return
	}

	var srv *server.Server
	switch {
	case cfg.durable():
		// The server comes up not-ready: the listener starts first so
		// /readyz honestly reports "recovering" while the index is
		// rebuilt from the snapshot generations and the WAL.
		srv, err = server.NewRecovering(h, opt, scfg)
		if err != nil {
			log.Fatal(err)
		}
	case cfg.snapshot != "":
		sf, err := os.Open(cfg.snapshot)
		switch {
		case err == nil:
			srv, err = server.NewFromSnapshotWithConfig(h, opt, scfg, sf)
			_ = sf.Close() // read-only; nothing written that a close could lose
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("kjoin-serve: restored snapshot %s", cfg.snapshot)
		case errors.Is(err, os.ErrNotExist):
			// First run: start empty, the file appears on first write.
			srv, err = server.NewWithConfig(h, opt, scfg)
			if err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal(err)
		}
	default:
		srv, err = server.NewWithConfig(h, opt, scfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	hs := newHTTPServer(cfg, srv)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("kjoin-serve: hierarchy %d nodes, listening on %s", h.Len(), cfg.addr)

	if cfg.durable() {
		if err := srv.Recover(server.Durability{
			WALDir:      cfg.walDir,
			SnapshotDir: cfg.snapDir,
			Keep:        cfg.snapKeep,
			Policy:      cfg.walPolicy(),
			BatchWindow: cfg.walBatch,
			Logf:        log.Printf,
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("kjoin-serve: recovery complete, serving")
	}

	if cfg.snapEvery > 0 {
		write := func() error { return srv.SnapshotTo(cfg.snapshot) }
		if cfg.durable() {
			write = srv.SnapshotGeneration
		}
		snap := &serverutil.Snapshotter{
			Interval: cfg.snapEvery,
			Write:    write,
			// Per-process entropy: the jitter exists so a fleet of
			// replicas does not retry in lockstep, which a fixed seed
			// would reintroduce. Tests that need reproducible schedules
			// set Seed explicitly.
			Seed: jitterSeed(),
			Logf: log.Printf,
		}
		go snap.Run(ctx)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	drain(cfg, srv, hs)
	switch {
	case cfg.durable():
		// A failed final snapshot is not fatal here: every acknowledged
		// add is already durable in the WAL and replays on next start.
		if err := srv.SnapshotGeneration(); err != nil {
			log.Printf("kjoin-serve: final snapshot failed (wal replay will cover it): %v", err)
		} else {
			log.Printf("kjoin-serve: final snapshot written to %s", cfg.snapDir)
		}
		if err := srv.Close(); err != nil {
			log.Printf("kjoin-serve: wal close: %v", err)
		}
	case cfg.snapshot != "":
		if err := srv.SnapshotTo(cfg.snapshot); err != nil {
			log.Printf("kjoin-serve: final snapshot failed: %v", err)
			os.Exit(1)
		}
		log.Printf("kjoin-serve: final snapshot written to %s", cfg.snapshot)
	}
}

// newHTTPServer wraps the handler with the full timeout battery:
// slow-loris headers, stuck reads, stuck writes and idle keep-alives
// all get bounded. Read/write budgets leave headroom over the
// per-request deadline. Request contexts are deliberately NOT tied to
// the signal context — in-flight requests must be allowed to finish
// during the drain window.
func newHTTPServer(cfg *serveConfig, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.reqTimeout + 30*time.Second,
		WriteTimeout:      cfg.reqTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// drainable is what drain needs from a server: flip /readyz to 503 so
// load balancers route away while in-flight requests finish. Both
// server.Server and cluster.Coordinator satisfy it.
type drainable interface{ SetDraining(bool) }

// drain performs the graceful part of shutdown: stop advertising
// readiness, then let in-flight requests finish within the budget.
func drain(cfg *serveConfig, srv drainable, hs *http.Server) {
	log.Printf("kjoin-serve: shutting down (draining up to %v)", cfg.drainT)
	srv.SetDraining(true)
	shCtx, cancel := context.WithTimeout(context.Background(), cfg.drainT)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		log.Printf("kjoin-serve: drain incomplete: %v", err)
	}
}

// runCluster serves the coordinator mode: no local index, no
// hierarchy — every request scatters to the -shards fleet under the
// deadline budget and gathers with the configured partial-result
// policy.
// With -coord-wal-dir/-coord-snapshot-dir the coordinator's own control
// plane (the global id map, route table and reshard progress) is
// recovered from disk before the listener starts, and live resharding
// is available; without them the control plane is in-memory only and
// POST /cluster/reshard is refused.
func runCluster(ctx context.Context, cfg *serveConfig) {
	shards := cfg.shardSpecs()
	ccfg := cluster.Config{
		Shards:           shards,
		RequestTimeout:   cfg.reqTimeout,
		ShardTimeout:     cfg.shardTimeout,
		HedgeDelay:       cfg.hedgeDelay,
		MaxRetries:       cfg.maxRetries,
		RetryBudget:      cfg.retryBudget,
		BreakerThreshold: cfg.breakerThreshold,
		BreakerCooldown:  cfg.breakerCooldown,
		Partial:          cfg.partial,
		MaxBodyBytes:     cfg.maxBody,
		MaxInflight:      cfg.maxInflt,
		MoveThrottle:     cfg.moveThrottle,
		Seed:             jitterSeed(),
		Logf:             log.Printf,
	}
	var coord *cluster.Coordinator
	var err error
	if cfg.coordDurable() {
		// Recovery is strict: a truncated or over-compacted coordinator
		// WAL refuses to serve rather than resurrecting a shorter global
		// id space than was acknowledged.
		coord, err = cluster.Recover(ccfg, cluster.Durability{
			WALDir:      cfg.coordWalDir,
			SnapshotDir: cfg.coordSnapDir,
			Keep:        cfg.coordSnapKeep,
			Policy:      wal.SyncAlways,
			Logf:        log.Printf,
		})
	} else {
		coord, err = cluster.New(ccfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	hs := newHTTPServer(cfg, coord)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("kjoin-serve: coordinating %d shards on %s (partial=%s, hedge=%v, breaker %d/%v, durable=%v)",
		coord.NumShards(), cfg.addr, cfg.partial, cfg.hedgeDelay, cfg.breakerThreshold, cfg.breakerCooldown, cfg.coordDurable())

	if cfg.coordSnapEvery > 0 {
		snap := &serverutil.Snapshotter{
			Interval: cfg.coordSnapEvery,
			Write:    coord.SnapshotGeneration,
			Seed:     jitterSeed(),
			Logf:     log.Printf,
		}
		go snap.Run(ctx)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	drain(cfg, coord, hs)
	if cfg.coordDurable() {
		// Not fatal on failure: every acknowledged assignment is already
		// durable in the coordinator WAL and replays on next start.
		if err := coord.SnapshotGeneration(); err != nil {
			log.Printf("kjoin-serve: final coordinator snapshot failed (wal replay will cover it): %v", err)
		} else {
			log.Printf("kjoin-serve: final coordinator snapshot written to %s", cfg.coordSnapDir)
		}
		if err := coord.Close(); err != nil {
			log.Printf("kjoin-serve: coordinator close: %v", err)
		}
	}
}

// runFollower serves the read-replica mode: a replica server answering
// queries behind the staleness gate, fed by a Follower tailing the
// primary's WAL stream. The follower persists its progress as local
// snapshot generations in cfg.replicaDir and writes a final one on
// shutdown, so a restart resumes from its own state.
func runFollower(ctx context.Context, cfg *serveConfig, h *hierarchy.Hierarchy, opt core.Options, scfg server.Config) {
	srv, err := server.NewReplica(h, opt, scfg, server.ReplicaConfig{
		Bound: cfg.stalenessBound,
		Mode:  cfg.staleness(),
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := newHTTPServer(cfg, srv)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("kjoin-serve: replica of %s, listening on %s (staleness %v/%s)",
		cfg.follow, cfg.addr, cfg.stalenessBound, cfg.stalenessMode)

	fol := &replica.Follower{
		Primary:  strings.TrimRight(cfg.follow, "/"),
		Srv:      srv,
		H:        h,
		Opt:      opt,
		Dir:      cfg.replicaDir,
		PollWait: cfg.replicaPoll,
		Seed:     jitterSeed(),
		Logf:     log.Printf,
	}
	folDone := make(chan error, 1)
	go func() { folDone <- fol.Run(ctx) }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	drain(cfg, srv, hs)
	// Run persists a final local generation on cancellation; wait for it
	// so the restart state is as fresh as possible.
	if err := <-folDone; err != nil {
		log.Printf("kjoin-serve: follower stopped: %v", err)
	}
	log.Printf("kjoin-serve: replica stopped at applied seq %d", srv.ReplicaAppliedSeq())
}
