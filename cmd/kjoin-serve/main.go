// Command kjoin-serve runs a knowledge-aware similarity service over
// HTTP: objects are streamed in and deduplicated against everything seen
// before, and ad-hoc queries search the accumulated collection.
//
//	kjoin-serve -hierarchy kb.txt -addr :8080 -delta 0.8 -tau 0.8
//
// Endpoints (JSON):
//
//	POST /objects    {"tokens": ["burgerking", "mountainview"]}
//	                 → {"id": 17, "pairs": [{"x": 3, "y": 17, "sim": 0.91}]}
//	POST /query      {"tokens": [...]} → {"matches": [{"index": 3, "sim": 0.91}]}
//	POST /similarity {"x": [...], "y": [...]} → {"sim": 0.75}
//	GET  /stats      accumulated join statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"kjoin"
	"kjoin/internal/core"
	"kjoin/internal/server"
)

func main() {
	var (
		hierPath = flag.String("hierarchy", "", "knowledge hierarchy file (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		delta    = flag.Float64("delta", 0.8, "element similarity threshold δ")
		tau      = flag.Float64("tau", 0.8, "object similarity threshold τ")
		plus     = flag.Bool("plus", false, "K-Join+ resolution")
		snapshot = flag.String("snapshot", "", "optional snapshot file to preload (see GET /snapshot)")
	)
	flag.Parse()
	if *hierPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*hierPath)
	if err != nil {
		log.Fatal(err)
	}
	h, err := kjoin.ReadHierarchy(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	opt := core.Defaults(*delta, *tau)
	opt.Plus = *plus
	var srv *server.Server
	if *snapshot != "" {
		sf, err := os.Open(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		srv, err = server.NewFromSnapshot(h, opt, sf)
		sf.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		srv, err = server.New(h, opt)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "kjoin-serve: hierarchy %d nodes, listening on %s\n", h.Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
