package main

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"kjoin/internal/server"
	"kjoin/internal/wal"
)

// parse runs parseArgs on a quiet FlagSet, with -hierarchy prepended
// unless the caller supplies its own or is configuring a coordinator
// (which owns no hierarchy).
func parse(t *testing.T, args ...string) (*serveConfig, error) {
	t.Helper()
	has := false
	for _, a := range args {
		if strings.HasPrefix(a, "-hierarchy") || a == "-cluster" {
			has = true
		}
	}
	if !has {
		args = append([]string{"-hierarchy", "kb.txt"}, args...)
	}
	fs := flag.NewFlagSet("kjoin-serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return parseArgs(fs, args)
}

func TestFlagsDefaultsAreValid(t *testing.T) {
	cfg, err := parse(t)
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if cfg.follower() || cfg.durable() {
		t.Fatal("defaults must be a plain in-memory primary")
	}
	if cfg.walPolicy() != wal.SyncAlways {
		t.Fatal("default wal policy must be SyncAlways")
	}
}

// TestFlagsRejectLoudly drives every validation rule through a bad
// invocation and requires a message naming the offending flag.
func TestFlagsRejectLoudly(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing hierarchy", []string{"-hierarchy", ""}, "-hierarchy is required"},
		{"negative snapshot-keep", []string{"-snapshot-keep", "-2"}, "-snapshot-keep must be at least 1"},
		{"zero snapshot-keep", []string{"-snapshot-keep", "0"}, "-snapshot-keep must be at least 1"},
		{"zero wal-batch", []string{"-wal-batch", "0s"}, "-wal-batch must be a positive duration"},
		{"negative wal-batch", []string{"-wal-batch", "-5ms"}, "-wal-batch must be a positive duration"},
		{"malformed wal-sync", []string{"-wal-sync", "sometimes"}, "-wal-sync must be always or none"},
		{"wal-dir alone", []string{"-wal-dir", "w"}, "set together"},
		{"snapshot-dir alone", []string{"-snapshot-dir", "s"}, "set together"},
		{"snapshot with generations", []string{"-wal-dir", "w", "-snapshot-dir", "s", "-snapshot", "x.snap"}, "mutually exclusive"},
		{"interval without target", []string{"-snapshot-interval", "30s"}, "-snapshot-interval requires"},
		{"negative interval", []string{"-snapshot-interval", "-1s"}, "-snapshot-interval must not be negative"},
		{"bad delta", []string{"-delta", "1.5"}, "-delta must be in (0, 1]"},
		{"bad tau", []string{"-tau", "0"}, "-tau must be in (0, 1]"},
		{"bad max-body", []string{"-max-body-bytes", "0"}, "-max-body-bytes must be positive"},
		{"bad max-inflight", []string{"-max-inflight", "-1"}, "-max-inflight must be positive"},
		{"bad request-timeout", []string{"-request-timeout", "0s"}, "-request-timeout must be positive"},
		{"follow without replica-dir", []string{"-follow", "http://primary:8080"}, "-follow requires -replica-dir"},
		{"replica-dir without follow", []string{"-replica-dir", "r"}, "-replica-dir requires -follow"},
		{"follow not a URL", []string{"-follow", "http://%zz", "-replica-dir", "r"}, "not a valid URL"},
		{"follow without scheme", []string{"-follow", "primary:8080", "-replica-dir", "r"}, "http(s) base URL"},
		{"follow without host", []string{"-follow", "http://", "-replica-dir", "r"}, "http(s) base URL"},
		{"follow with wal-dir", []string{"-follow", "http://p", "-replica-dir", "r", "-wal-dir", "w", "-snapshot-dir", "s"}, "mutually exclusive with -wal-dir"},
		{"follow with snapshot", []string{"-follow", "http://p", "-replica-dir", "r", "-snapshot", "x.snap"}, "mutually exclusive with -snapshot"},
		{"zero staleness-bound", []string{"-follow", "http://p", "-replica-dir", "r", "-staleness-bound", "0s"}, "-staleness-bound must be positive"},
		{"bad staleness-mode", []string{"-follow", "http://p", "-replica-dir", "r", "-staleness-mode", "maybe"}, "-staleness-mode must be reject or mark"},
		{"zero replica-poll", []string{"-follow", "http://p", "-replica-dir", "r", "-replica-poll", "0s"}, "-replica-poll must be positive"},
		{"staleness flag on primary", []string{"-staleness-mode", "mark"}, "only applies to a replica"},
		{"cluster without shards", []string{"-cluster"}, "-cluster requires -shards"},
		{"cluster with empty shards", []string{"-cluster", "-shards", " , "}, "http(s) base URL"},
		{"cluster shard not a URL", []string{"-cluster", "-shards", "http://%zz"}, "not a valid URL"},
		{"cluster shard without scheme", []string{"-cluster", "-shards", "shard-a:8080"}, "http(s) base URL"},
		{"cluster bad replica URL", []string{"-cluster", "-shards", "http://a:8080|b:8080"}, "http(s) base URL"},
		{"negative retry budget", []string{"-cluster", "-shards", "http://a:8080", "-retry-budget", "-1"}, "-retry-budget must not be negative"},
		{"negative max-retries", []string{"-cluster", "-shards", "http://a:8080", "-max-retries", "-1"}, "-max-retries must not be negative"},
		{"zero shard-timeout", []string{"-cluster", "-shards", "http://a:8080", "-shard-timeout", "0s"}, "-shard-timeout must be positive"},
		{"zero hedge-delay", []string{"-cluster", "-shards", "http://a:8080", "-hedge-delay", "0s"}, "-hedge-delay must be positive"},
		{"hedge at shard deadline", []string{"-cluster", "-shards", "http://a:8080", "-shard-timeout", "1s", "-hedge-delay", "1s"}, "must be below -shard-timeout"},
		{"hedge past shard deadline", []string{"-cluster", "-shards", "http://a:8080", "-hedge-delay", "5s"}, "must be below -shard-timeout"},
		{"zero breaker-threshold", []string{"-cluster", "-shards", "http://a:8080", "-breaker-threshold", "0"}, "-breaker-threshold must be at least 1"},
		{"negative breaker-threshold", []string{"-cluster", "-shards", "http://a:8080", "-breaker-threshold", "-3"}, "-breaker-threshold must be at least 1"},
		{"zero breaker-cooldown", []string{"-cluster", "-shards", "http://a:8080", "-breaker-cooldown", "0s"}, "-breaker-cooldown must be positive"},
		{"bad partial policy", []string{"-cluster", "-shards", "http://a:8080", "-partial", "maybe"}, "-partial must be degrade or fail"},
		{"cluster with follow", []string{"-cluster", "-shards", "http://a:8080", "-follow", "http://p", "-replica-dir", "r"}, "mutually exclusive with -follow"},
		{"cluster with wal", []string{"-cluster", "-shards", "http://a:8080", "-wal-dir", "w", "-snapshot-dir", "s"}, "shards own persistence"},
		{"cluster with snapshot", []string{"-cluster", "-shards", "http://a:8080", "-snapshot", "x.snap"}, "shards own persistence"},
		{"cluster with hierarchy", []string{"-cluster", "-shards", "http://a:8080", "-hierarchy", "kb.txt"}, "does not apply to a coordinator"},
		{"shards flag without cluster", []string{"-shards", "http://a:8080"}, "only applies to a coordinator"},
		{"hedge flag without cluster", []string{"-hedge-delay", "50ms"}, "only applies to a coordinator"},
		{"breaker flag without cluster", []string{"-breaker-threshold", "5"}, "only applies to a coordinator"},
		{"coord-wal-dir alone", []string{"-cluster", "-shards", "http://a:8080", "-coord-wal-dir", "cw"}, "-coord-wal-dir and -coord-snapshot-dir must be set together"},
		{"coord-snapshot-dir alone", []string{"-cluster", "-shards", "http://a:8080", "-coord-snapshot-dir", "cs"}, "-coord-wal-dir and -coord-snapshot-dir must be set together"},
		{"zero coord-snapshot-keep", []string{"-cluster", "-shards", "http://a:8080", "-coord-wal-dir", "cw", "-coord-snapshot-dir", "cs", "-coord-snapshot-keep", "0"}, "-coord-snapshot-keep must be at least 1"},
		{"coord interval without dirs", []string{"-cluster", "-shards", "http://a:8080", "-coord-snapshot-interval", "30s"}, "-coord-snapshot-interval requires"},
		{"negative coord interval", []string{"-cluster", "-shards", "http://a:8080", "-coord-wal-dir", "cw", "-coord-snapshot-dir", "cs", "-coord-snapshot-interval", "-1s"}, "-coord-snapshot-interval must not be negative"},
		{"negative move-throttle", []string{"-cluster", "-shards", "http://a:8080", "-move-throttle", "-1ms"}, "-move-throttle must not be negative"},
		{"coord-wal-dir without cluster", []string{"-coord-wal-dir", "cw"}, "only applies to a coordinator"},
		{"move-throttle without cluster", []string{"-move-throttle", "10ms"}, "only applies to a coordinator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestFlagsCollectEveryError: one run reports all mistakes, not just
// the first.
func TestFlagsCollectEveryError(t *testing.T) {
	_, err := parse(t,
		"-snapshot-keep", "-1",
		"-wal-sync", "fsync-oops",
		"-wal-batch", "-1ms",
		"-replica-dir", "r")
	if err == nil {
		t.Fatal("invalid args accepted")
	}
	for _, want := range []string{"-snapshot-keep", "-wal-sync", "-wal-batch", "-replica-dir requires -follow"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q is missing %q", err, want)
		}
	}
}

func TestFlagsFollowerConfig(t *testing.T) {
	cfg, err := parse(t,
		"-follow", "https://primary.example:8080",
		"-replica-dir", "/var/lib/kjoin-replica",
		"-staleness-bound", "750ms",
		"-staleness-mode", "mark",
		"-replica-poll", "1s")
	if err != nil {
		t.Fatalf("follower config rejected: %v", err)
	}
	if !cfg.follower() {
		t.Fatal("follower() = false")
	}
	if cfg.staleness() != server.StaleMark {
		t.Fatal("staleness() != StaleMark")
	}
	if cfg.stalenessBound != 750*time.Millisecond {
		t.Fatalf("stalenessBound = %v", cfg.stalenessBound)
	}
}

// TestFlagsClusterConfig: a full coordinator invocation parses into
// the shard specs and budgets runCluster hands to cluster.New.
func TestFlagsClusterConfig(t *testing.T) {
	cfg, err := parse(t,
		"-cluster",
		"-shards", "http://a:8080|http://a2:8080/|http://a3:8080, http://b:8080 ,http://c:8080",
		"-shard-timeout", "1s",
		"-hedge-delay", "75ms",
		"-retry-budget", "4",
		"-max-retries", "2",
		"-breaker-threshold", "5",
		"-breaker-cooldown", "10s",
		"-partial", "fail")
	if err != nil {
		t.Fatalf("cluster config rejected: %v", err)
	}
	specs := cfg.shardSpecs()
	if len(specs) != 3 {
		t.Fatalf("parsed %d shards, want 3: %+v", len(specs), specs)
	}
	if specs[0].Primary != "http://a:8080" || len(specs[0].Replicas) != 2 ||
		specs[0].Replicas[0] != "http://a2:8080" || specs[0].Replicas[1] != "http://a3:8080" {
		t.Fatalf("shard 0 misparsed: %+v", specs[0])
	}
	if specs[1].Primary != "http://b:8080" || len(specs[1].Replicas) != 0 {
		t.Fatalf("shard 1 misparsed: %+v", specs[1])
	}
	if cfg.hedgeDelay != 75*time.Millisecond || cfg.retryBudget != 4 ||
		cfg.breakerThreshold != 5 || cfg.partial == "degrade" {
		t.Fatalf("cluster budgets misparsed: %+v", cfg)
	}
}

// TestFlagsDurableCoordinatorConfig: the crash-safe control plane
// invocation parses into what runCluster hands to cluster.Recover.
func TestFlagsDurableCoordinatorConfig(t *testing.T) {
	cfg, err := parse(t,
		"-cluster",
		"-shards", "http://a:8080,http://b:8080",
		"-coord-wal-dir", "/var/lib/kjoin-coord/wal",
		"-coord-snapshot-dir", "/var/lib/kjoin-coord/snap",
		"-coord-snapshot-keep", "5",
		"-coord-snapshot-interval", "1m",
		"-move-throttle", "25ms")
	if err != nil {
		t.Fatalf("durable coordinator config rejected: %v", err)
	}
	if !cfg.coordDurable() || cfg.coordSnapKeep != 5 ||
		cfg.coordSnapEvery != time.Minute || cfg.moveThrottle != 25*time.Millisecond {
		t.Fatalf("durable coordinator config misparsed: %+v", cfg)
	}
	// And the plain coordinator stays non-durable.
	cfg, err = parse(t, "-cluster", "-shards", "http://a:8080")
	if err != nil {
		t.Fatalf("plain coordinator rejected: %v", err)
	}
	if cfg.coordDurable() {
		t.Fatal("coordDurable() = true with no coord dirs")
	}
}

func TestFlagsDurableConfig(t *testing.T) {
	cfg, err := parse(t,
		"-wal-dir", "w", "-snapshot-dir", "s",
		"-wal-sync", "none", "-wal-batch", "2ms", "-snapshot-keep", "5")
	if err != nil {
		t.Fatalf("durable config rejected: %v", err)
	}
	if !cfg.durable() || cfg.walPolicy() != wal.SyncNone || cfg.snapKeep != 5 {
		t.Fatalf("durable config misparsed: %+v", cfg)
	}
}
