package main

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"kjoin/internal/server"
	"kjoin/internal/wal"
)

// parse runs parseArgs on a quiet FlagSet, with -hierarchy prepended
// unless the caller supplies its own.
func parse(t *testing.T, args ...string) (*serveConfig, error) {
	t.Helper()
	has := false
	for _, a := range args {
		if strings.HasPrefix(a, "-hierarchy") {
			has = true
		}
	}
	if !has {
		args = append([]string{"-hierarchy", "kb.txt"}, args...)
	}
	fs := flag.NewFlagSet("kjoin-serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return parseArgs(fs, args)
}

func TestFlagsDefaultsAreValid(t *testing.T) {
	cfg, err := parse(t)
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if cfg.follower() || cfg.durable() {
		t.Fatal("defaults must be a plain in-memory primary")
	}
	if cfg.walPolicy() != wal.SyncAlways {
		t.Fatal("default wal policy must be SyncAlways")
	}
}

// TestFlagsRejectLoudly drives every validation rule through a bad
// invocation and requires a message naming the offending flag.
func TestFlagsRejectLoudly(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing hierarchy", []string{"-hierarchy", ""}, "-hierarchy is required"},
		{"negative snapshot-keep", []string{"-snapshot-keep", "-2"}, "-snapshot-keep must be at least 1"},
		{"zero snapshot-keep", []string{"-snapshot-keep", "0"}, "-snapshot-keep must be at least 1"},
		{"zero wal-batch", []string{"-wal-batch", "0s"}, "-wal-batch must be a positive duration"},
		{"negative wal-batch", []string{"-wal-batch", "-5ms"}, "-wal-batch must be a positive duration"},
		{"malformed wal-sync", []string{"-wal-sync", "sometimes"}, "-wal-sync must be always or none"},
		{"wal-dir alone", []string{"-wal-dir", "w"}, "set together"},
		{"snapshot-dir alone", []string{"-snapshot-dir", "s"}, "set together"},
		{"snapshot with generations", []string{"-wal-dir", "w", "-snapshot-dir", "s", "-snapshot", "x.snap"}, "mutually exclusive"},
		{"interval without target", []string{"-snapshot-interval", "30s"}, "-snapshot-interval requires"},
		{"negative interval", []string{"-snapshot-interval", "-1s"}, "-snapshot-interval must not be negative"},
		{"bad delta", []string{"-delta", "1.5"}, "-delta must be in (0, 1]"},
		{"bad tau", []string{"-tau", "0"}, "-tau must be in (0, 1]"},
		{"bad max-body", []string{"-max-body-bytes", "0"}, "-max-body-bytes must be positive"},
		{"bad max-inflight", []string{"-max-inflight", "-1"}, "-max-inflight must be positive"},
		{"bad request-timeout", []string{"-request-timeout", "0s"}, "-request-timeout must be positive"},
		{"follow without replica-dir", []string{"-follow", "http://primary:8080"}, "-follow requires -replica-dir"},
		{"replica-dir without follow", []string{"-replica-dir", "r"}, "-replica-dir requires -follow"},
		{"follow not a URL", []string{"-follow", "http://%zz", "-replica-dir", "r"}, "not a valid URL"},
		{"follow without scheme", []string{"-follow", "primary:8080", "-replica-dir", "r"}, "http(s) base URL"},
		{"follow without host", []string{"-follow", "http://", "-replica-dir", "r"}, "http(s) base URL"},
		{"follow with wal-dir", []string{"-follow", "http://p", "-replica-dir", "r", "-wal-dir", "w", "-snapshot-dir", "s"}, "mutually exclusive with -wal-dir"},
		{"follow with snapshot", []string{"-follow", "http://p", "-replica-dir", "r", "-snapshot", "x.snap"}, "mutually exclusive with -snapshot"},
		{"zero staleness-bound", []string{"-follow", "http://p", "-replica-dir", "r", "-staleness-bound", "0s"}, "-staleness-bound must be positive"},
		{"bad staleness-mode", []string{"-follow", "http://p", "-replica-dir", "r", "-staleness-mode", "maybe"}, "-staleness-mode must be reject or mark"},
		{"zero replica-poll", []string{"-follow", "http://p", "-replica-dir", "r", "-replica-poll", "0s"}, "-replica-poll must be positive"},
		{"staleness flag on primary", []string{"-staleness-mode", "mark"}, "only applies to a replica"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestFlagsCollectEveryError: one run reports all mistakes, not just
// the first.
func TestFlagsCollectEveryError(t *testing.T) {
	_, err := parse(t,
		"-snapshot-keep", "-1",
		"-wal-sync", "fsync-oops",
		"-wal-batch", "-1ms",
		"-replica-dir", "r")
	if err == nil {
		t.Fatal("invalid args accepted")
	}
	for _, want := range []string{"-snapshot-keep", "-wal-sync", "-wal-batch", "-replica-dir requires -follow"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q is missing %q", err, want)
		}
	}
}

func TestFlagsFollowerConfig(t *testing.T) {
	cfg, err := parse(t,
		"-follow", "https://primary.example:8080",
		"-replica-dir", "/var/lib/kjoin-replica",
		"-staleness-bound", "750ms",
		"-staleness-mode", "mark",
		"-replica-poll", "1s")
	if err != nil {
		t.Fatalf("follower config rejected: %v", err)
	}
	if !cfg.follower() {
		t.Fatal("follower() = false")
	}
	if cfg.staleness() != server.StaleMark {
		t.Fatal("staleness() != StaleMark")
	}
	if cfg.stalenessBound != 750*time.Millisecond {
		t.Fatalf("stalenessBound = %v", cfg.stalenessBound)
	}
}

func TestFlagsDurableConfig(t *testing.T) {
	cfg, err := parse(t,
		"-wal-dir", "w", "-snapshot-dir", "s",
		"-wal-sync", "none", "-wal-batch", "2ms", "-snapshot-keep", "5")
	if err != nil {
		t.Fatalf("durable config rejected: %v", err)
	}
	if !cfg.durable() || cfg.walPolicy() != wal.SyncNone || cfg.snapKeep != 5 {
		t.Fatalf("durable config misparsed: %+v", cfg)
	}
}
