package main

import (
	"errors"
	"flag"
	"fmt"
	"net/url"
	"strings"
	"time"

	"kjoin/internal/cluster"
	"kjoin/internal/server"
	"kjoin/internal/wal"
)

// serveConfig is every kjoin-serve flag, parsed but not yet trusted:
// validate rejects bad combinations loudly at startup instead of letting
// them misbehave hours later.
type serveConfig struct {
	hierPath   string
	addr       string
	delta      float64
	tau        float64
	plus       bool
	snapshot   string
	snapEvery  time.Duration
	walDir     string
	walSync    string
	walBatch   time.Duration
	snapDir    string
	snapKeep   int
	maxBody    int64
	maxInflt   int
	reqTimeout time.Duration
	drainT     time.Duration

	follow         string
	replicaDir     string
	stalenessBound time.Duration
	stalenessMode  string
	replicaPoll    time.Duration

	cluster          bool
	shards           string
	shardTimeout     time.Duration
	hedgeDelay       time.Duration
	retryBudget      float64
	maxRetries       int
	breakerThreshold int
	breakerCooldown  time.Duration
	partial          string

	coordWalDir    string
	coordSnapDir   string
	coordSnapKeep  int
	coordSnapEvery time.Duration
	moveThrottle   time.Duration
}

// register binds every flag to fs with its default.
func (c *serveConfig) register(fs *flag.FlagSet) {
	fs.StringVar(&c.hierPath, "hierarchy", "", "knowledge hierarchy file (required)")
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.Float64Var(&c.delta, "delta", 0.8, "element similarity threshold δ")
	fs.Float64Var(&c.tau, "tau", 0.8, "object similarity threshold τ")
	fs.BoolVar(&c.plus, "plus", false, "K-Join+ resolution")
	fs.StringVar(&c.snapshot, "snapshot", "", "single snapshot file: preloaded at startup if it exists, written atomically on shutdown and every -snapshot-interval (no WAL; mutually exclusive with -snapshot-dir)")
	fs.DurationVar(&c.snapEvery, "snapshot-interval", 0, "periodic snapshot interval (0 disables; requires -snapshot or -snapshot-dir)")
	fs.StringVar(&c.walDir, "wal-dir", "", "write-ahead-log directory; with -snapshot-dir enables crash-safe durability (adds are fsync'd before the ack)")
	fs.StringVar(&c.walSync, "wal-sync", "always", "WAL fsync policy: always (acked adds survive any crash) or none (fast, a crash loses recent adds)")
	fs.DurationVar(&c.walBatch, "wal-batch", 0, "WAL group-commit window: trade this much ack latency for fewer fsyncs under concurrency")
	fs.StringVar(&c.snapDir, "snapshot-dir", "", "snapshot generation directory (requires -wal-dir)")
	fs.IntVar(&c.snapKeep, "snapshot-keep", 3, "snapshot generations kept in -snapshot-dir")
	fs.Int64Var(&c.maxBody, "max-body-bytes", 1<<20, "request body size cap in bytes")
	fs.IntVar(&c.maxInflt, "max-inflight", 64, "max concurrent expensive requests before shedding with 429")
	fs.DurationVar(&c.reqTimeout, "request-timeout", 30*time.Second, "per-request deadline")
	fs.DurationVar(&c.drainT, "drain-timeout", 15*time.Second, "graceful shutdown drain budget")

	fs.StringVar(&c.follow, "follow", "", "run as a read replica of this primary base URL (requires -replica-dir; excludes the durability and snapshot flags)")
	fs.StringVar(&c.replicaDir, "replica-dir", "", "local snapshot-generation directory a replica persists its progress into (requires -follow)")
	fs.DurationVar(&c.stalenessBound, "staleness-bound", 5*time.Second, "replica only: maximum tolerated staleness before -staleness-mode kicks in")
	fs.StringVar(&c.stalenessMode, "staleness-mode", "reject", "replica only: reject (503 past the bound) or mark (serve anyway, report lag in a header)")
	fs.DurationVar(&c.replicaPoll, "replica-poll", 2*time.Second, "replica only: long-poll wait per WAL stream request")

	fs.BoolVar(&c.cluster, "cluster", false, "run as a scatter-gather coordinator over -shards instead of serving an index locally")
	fs.StringVar(&c.shards, "shards", "", "cluster only: comma-separated shard list, each a primary base URL optionally followed by |replica URLs (e.g. http://a:8080|http://a2:8080,http://b:8080)")
	fs.DurationVar(&c.shardTimeout, "shard-timeout", 2*time.Second, "cluster only: per-shard attempt deadline (also capped by the remaining request budget)")
	fs.DurationVar(&c.hedgeDelay, "hedge-delay", 100*time.Millisecond, "cluster only: how long a shard replica may dawdle before a hedge request goes to its primary; must stay below -shard-timeout")
	fs.Float64Var(&c.retryBudget, "retry-budget", 10, "cluster only: retry token bucket capacity shared across shards (0 disables retries)")
	fs.IntVar(&c.maxRetries, "max-retries", 1, "cluster only: retries per shard per request, budget permitting")
	fs.IntVar(&c.breakerThreshold, "breaker-threshold", 3, "cluster only: consecutive shard failures that open its circuit breaker")
	fs.DurationVar(&c.breakerCooldown, "breaker-cooldown", 3*time.Second, "cluster only: how long an open breaker waits before admitting a half-open probe")
	fs.StringVar(&c.partial, "partial", "degrade", "cluster only: default partial-result policy, degrade (200 + coverage headers) or fail (503 naming the failed shards); requests override per call with X-Kjoin-Partial")

	fs.StringVar(&c.coordWalDir, "coord-wal-dir", "", "cluster only: coordinator write-ahead-log directory; with -coord-snapshot-dir makes the control plane (global id map, route table, reshard progress) crash-safe and enables POST /cluster/reshard")
	fs.StringVar(&c.coordSnapDir, "coord-snapshot-dir", "", "cluster only: coordinator snapshot generation directory (requires -coord-wal-dir)")
	fs.IntVar(&c.coordSnapKeep, "coord-snapshot-keep", 3, "cluster only: coordinator snapshot generations kept in -coord-snapshot-dir")
	fs.DurationVar(&c.coordSnapEvery, "coord-snapshot-interval", 0, "cluster only: periodic coordinator snapshot interval, compacting the coordinator WAL (0 disables; requires -coord-wal-dir)")
	fs.DurationVar(&c.moveThrottle, "move-throttle", 0, "cluster only: pause between objects streamed by a live reshard, throttling migration load on the shards")
}

// parseArgs parses args into a serveConfig and validates it, reporting
// every configuration error at once.
func parseArgs(fs *flag.FlagSet, args []string) (*serveConfig, error) {
	c := &serveConfig{}
	c.register(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := c.validate(set); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *serveConfig) durable() bool  { return c.walDir != "" || c.snapDir != "" }
func (c *serveConfig) follower() bool { return c.follow != "" || c.replicaDir != "" }

// coordDurable reports whether the coordinator control plane persists
// to its own WAL and snapshot generations.
func (c *serveConfig) coordDurable() bool { return c.coordWalDir != "" || c.coordSnapDir != "" }

// walPolicy maps -wal-sync to a policy; only meaningful after validate.
func (c *serveConfig) walPolicy() wal.Policy {
	if c.walSync == "none" {
		return wal.SyncNone
	}
	return wal.SyncAlways
}

// staleness maps -staleness-mode; only meaningful after validate.
func (c *serveConfig) staleness() server.StalenessMode {
	if c.stalenessMode == "mark" {
		return server.StaleMark
	}
	return server.StaleReject
}

// shardSpecs parses -shards: shards separated by commas, endpoints
// within a shard by | with the primary first. Only meaningful after
// validate.
func (c *serveConfig) shardSpecs() []cluster.ShardConfig {
	var out []cluster.ShardConfig
	for _, spec := range strings.Split(c.shards, ",") {
		eps := strings.Split(strings.TrimSpace(spec), "|")
		sc := cluster.ShardConfig{Primary: strings.TrimRight(strings.TrimSpace(eps[0]), "/")}
		for _, r := range eps[1:] {
			if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
				sc.Replicas = append(sc.Replicas, r)
			}
		}
		out = append(out, sc)
	}
	return out
}

// validate cross-checks the whole configuration and returns every
// problem joined together, so one bad invocation surfaces all of its
// mistakes in a single run. set records which flags were given
// explicitly (flag.FlagSet.Visit), distinguishing "left at default"
// from "explicitly asked for a nonsense value".
func (c *serveConfig) validate(set map[string]bool) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if c.hierPath == "" && !c.cluster {
		fail("-hierarchy is required")
	}
	if c.delta <= 0 || c.delta > 1 {
		fail("-delta must be in (0, 1], got %v", c.delta)
	}
	if c.tau <= 0 || c.tau > 1 {
		fail("-tau must be in (0, 1], got %v", c.tau)
	}
	if c.maxBody < 1 {
		fail("-max-body-bytes must be positive, got %d", c.maxBody)
	}
	if c.maxInflt < 1 {
		fail("-max-inflight must be positive, got %d", c.maxInflt)
	}
	if c.reqTimeout <= 0 {
		fail("-request-timeout must be positive, got %v", c.reqTimeout)
	}
	if c.drainT < 0 {
		fail("-drain-timeout must not be negative, got %v", c.drainT)
	}
	if c.snapKeep < 1 {
		fail("-snapshot-keep must be at least 1, got %d", c.snapKeep)
	}
	if set["wal-batch"] && c.walBatch <= 0 {
		fail("-wal-batch must be a positive duration when set, got %v", c.walBatch)
	}
	if c.walSync != "always" && c.walSync != "none" {
		fail("-wal-sync must be always or none, got %q", c.walSync)
	}
	if c.snapEvery < 0 {
		fail("-snapshot-interval must not be negative, got %v", c.snapEvery)
	}
	if c.durable() && (c.walDir == "" || c.snapDir == "") {
		fail("-wal-dir and -snapshot-dir must be set together")
	}
	if c.durable() && c.snapshot != "" {
		fail("-snapshot and -snapshot-dir are mutually exclusive")
	}
	if c.snapEvery > 0 && c.snapshot == "" && !c.durable() {
		fail("-snapshot-interval requires -snapshot or -snapshot-dir")
	}

	// Replication: a follower owns no WAL and no primary-style snapshot
	// schedule — its only persistence is -replica-dir generations.
	if c.follow != "" && c.replicaDir == "" {
		fail("-follow requires -replica-dir (the replica's local snapshot directory)")
	}
	if c.replicaDir != "" && c.follow == "" {
		fail("-replica-dir requires -follow")
	}
	if c.follow != "" {
		if u, err := url.Parse(c.follow); err != nil {
			fail("-follow %q is not a valid URL: %v", c.follow, err)
		} else if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			fail("-follow %q must be an http(s) base URL with a host", c.follow)
		}
	}
	if c.follower() {
		if c.durable() {
			fail("-follow is mutually exclusive with -wal-dir/-snapshot-dir (a replica persists only into -replica-dir)")
		}
		if c.snapshot != "" || c.snapEvery > 0 {
			fail("-follow is mutually exclusive with -snapshot/-snapshot-interval (a replica snapshots into -replica-dir on its own cadence)")
		}
	}
	if c.stalenessBound <= 0 {
		fail("-staleness-bound must be positive, got %v", c.stalenessBound)
	}
	if c.stalenessMode != "reject" && c.stalenessMode != "mark" {
		fail("-staleness-mode must be reject or mark, got %q", c.stalenessMode)
	}
	if c.replicaPoll <= 0 {
		fail("-replica-poll must be positive, got %v", c.replicaPoll)
	}
	if !c.follower() {
		for _, name := range []string{"staleness-bound", "staleness-mode", "replica-poll"} {
			if set[name] {
				fail("-%s only applies to a replica (-follow)", name)
			}
		}
	}

	// Cluster: a coordinator owns no index, no WAL and no snapshots — it
	// scatters to shards that own those — so every single-node persistence
	// or replication flag is a configuration contradiction.
	if c.cluster {
		specs := c.shardSpecs()
		if strings.TrimSpace(c.shards) == "" {
			fail("-cluster requires -shards with at least one shard")
			specs = nil
		}
		for i, sc := range specs {
			for _, ep := range append([]string{sc.Primary}, sc.Replicas...) {
				if u, err := url.Parse(ep); err != nil {
					fail("-shards: shard %d endpoint %q is not a valid URL: %v", i, ep, err)
				} else if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
					fail("-shards: shard %d endpoint %q must be an http(s) base URL with a host", i, ep)
				}
			}
		}
		if c.shardTimeout <= 0 {
			fail("-shard-timeout must be positive, got %v", c.shardTimeout)
		}
		if c.hedgeDelay <= 0 {
			fail("-hedge-delay must be positive, got %v", c.hedgeDelay)
		}
		if c.shardTimeout > 0 && c.hedgeDelay >= c.shardTimeout {
			fail("-hedge-delay (%v) must be below -shard-timeout (%v): a hedge that fires after the attempt deadline never helps", c.hedgeDelay, c.shardTimeout)
		}
		if c.retryBudget < 0 {
			fail("-retry-budget must not be negative, got %v", c.retryBudget)
		}
		if c.maxRetries < 0 {
			fail("-max-retries must not be negative, got %d", c.maxRetries)
		}
		if c.breakerThreshold < 1 {
			fail("-breaker-threshold must be at least 1, got %d", c.breakerThreshold)
		}
		if c.breakerCooldown <= 0 {
			fail("-breaker-cooldown must be positive, got %v", c.breakerCooldown)
		}
		if c.partial != cluster.PartialDegrade && c.partial != cluster.PartialFail {
			fail("-partial must be degrade or fail, got %q", c.partial)
		}
		if c.follower() {
			fail("-cluster is mutually exclusive with -follow/-replica-dir")
		}
		if c.durable() || c.snapshot != "" || c.snapEvery > 0 {
			fail("-cluster is mutually exclusive with the durability and snapshot flags (shards own persistence; the control plane persists via -coord-wal-dir)")
		}
		if set["hierarchy"] {
			fail("-hierarchy does not apply to a coordinator (shards load their own)")
		}
		if c.coordDurable() && (c.coordWalDir == "" || c.coordSnapDir == "") {
			fail("-coord-wal-dir and -coord-snapshot-dir must be set together")
		}
		if c.coordSnapKeep < 1 {
			fail("-coord-snapshot-keep must be at least 1, got %d", c.coordSnapKeep)
		}
		if c.coordSnapEvery < 0 {
			fail("-coord-snapshot-interval must not be negative, got %v", c.coordSnapEvery)
		}
		if c.coordSnapEvery > 0 && !c.coordDurable() {
			fail("-coord-snapshot-interval requires -coord-wal-dir and -coord-snapshot-dir")
		}
		if c.moveThrottle < 0 {
			fail("-move-throttle must not be negative, got %v", c.moveThrottle)
		}
	} else {
		for _, name := range []string{"shards", "shard-timeout", "hedge-delay", "retry-budget", "max-retries", "breaker-threshold", "breaker-cooldown", "partial", "coord-wal-dir", "coord-snapshot-dir", "coord-snapshot-keep", "coord-snapshot-interval", "move-throttle"} {
			if set[name] {
				fail("-%s only applies to a coordinator (-cluster)", name)
			}
		}
	}
	return errors.Join(errs...)
}
