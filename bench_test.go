// Benchmarks: one per table and figure of the paper's evaluation (§7).
// Each benchmark regenerates the corresponding experiment through the
// shared harness (internal/experiments) at a reduced scale so that
// `go test -bench=.` completes in minutes; the cmd/kjoin-bench tool runs
// the same experiments at configurable scales and prints the full rows.
//
// b.N iterations re-run the whole experiment; the interesting output is
// the per-iteration wall time of each experiment (plus the printed rows
// on the first run, written to the benchmark log with -v).
package kjoin_test

import (
	"io"
	"testing"

	"kjoin"
	"kjoin/datasets"
	"kjoin/internal/experiments"
)

// benchConfig is the reduced-scale configuration for benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 3000
	cfg.BaselineScale = 800
	cfg.QualityN = 600
	cfg.Out = io.Discard
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the knowledge-hierarchy statistics table.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 regenerates the dataset statistics table.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4 regenerates the Pub/Res quality comparison
// (FastJoin, K-Join, K-Join+, Synonym, Crowd at δ=0.5, τ=0.6).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig7 regenerates effectiveness vs τ (recall and F-measure).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates effectiveness vs δ.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates filtering candidates/time vs τ
// (Node vs Shallow vs Deep).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates filtering candidates/time vs δ.
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates verification time (Basic vs SubGraph vs
// Adaptive) vs τ and δ.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates the state-of-the-art comparison vs τ.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates the state-of-the-art comparison vs δ.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14 regenerates the scalability sweep (K-Join and K-Join+
// total time vs collection size).
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblation regenerates the design-choice ablations
// (plain vs weighted prefix, φ_min sweep, mapping cap, worker scaling).
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkKnowledge regenerates the knowledge-quality degradation
// experiment.
func BenchmarkKnowledge(b *testing.B) { runExperiment(b, "knowledge") }

// BenchmarkDAG regenerates the §6.5 DAG-extension experiment.
func BenchmarkDAG(b *testing.B) { runExperiment(b, "dag") }

// BenchmarkSelfJoinPOI measures one K-Join self join on the POI workload
// at the benchmark scale (the paper's default configuration).
func BenchmarkSelfJoinPOI(b *testing.B) {
	b.ReportAllocs()
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(3000))
	opt := kjoin.Defaults(0.8, 0.85)
	opt.ComputeSims = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := kjoin.SelfJoin(hr.H, c.Records, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarity measures single-pair scoring.
func BenchmarkSimilarity(b *testing.B) {
	b.ReportAllocs()
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(100))
	opt := kjoin.Defaults(0.8, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kjoin.Similarity(hr.H, c.Records[0], c.Records[1], opt); err != nil {
			b.Fatal(err)
		}
	}
}
