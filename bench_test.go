// Benchmarks: one per table and figure of the paper's evaluation (§7).
// Each benchmark regenerates the corresponding experiment through the
// shared harness (internal/experiments) at a reduced scale so that
// `go test -bench=.` completes in minutes; the cmd/kjoin-bench tool runs
// the same experiments at configurable scales and prints the full rows.
//
// b.N iterations re-run the whole experiment; the interesting output is
// the per-iteration wall time of each experiment (plus the printed rows
// on the first run, written to the benchmark log with -v).
package kjoin_test

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"
	"time"

	"kjoin"
	"kjoin/datasets"
	"kjoin/internal/experiments"
)

// benchConfig is the reduced-scale configuration for benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 3000
	cfg.BaselineScale = 800
	cfg.QualityN = 600
	cfg.Out = io.Discard
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the knowledge-hierarchy statistics table.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 regenerates the dataset statistics table.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4 regenerates the Pub/Res quality comparison
// (FastJoin, K-Join, K-Join+, Synonym, Crowd at δ=0.5, τ=0.6).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig7 regenerates effectiveness vs τ (recall and F-measure).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates effectiveness vs δ.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates filtering candidates/time vs τ
// (Node vs Shallow vs Deep).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates filtering candidates/time vs δ.
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates verification time (Basic vs SubGraph vs
// Adaptive) vs τ and δ.
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates the state-of-the-art comparison vs τ.
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates the state-of-the-art comparison vs δ.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14 regenerates the scalability sweep (K-Join and K-Join+
// total time vs collection size).
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblation regenerates the design-choice ablations
// (plain vs weighted prefix, φ_min sweep, mapping cap, worker scaling).
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkKnowledge regenerates the knowledge-quality degradation
// experiment.
func BenchmarkKnowledge(b *testing.B) { runExperiment(b, "knowledge") }

// BenchmarkDAG regenerates the §6.5 DAG-extension experiment.
func BenchmarkDAG(b *testing.B) { runExperiment(b, "dag") }

// BenchmarkSelfJoinPOI measures one K-Join self join on the POI workload
// at the benchmark scale (the paper's default configuration).
func BenchmarkSelfJoinPOI(b *testing.B) {
	b.ReportAllocs()
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(3000))
	opt := kjoin.Defaults(0.8, 0.85)
	opt.ComputeSims = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := kjoin.SelfJoin(hr.H, c.Records, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarity measures single-pair scoring.
func BenchmarkSimilarity(b *testing.B) {
	b.ReportAllocs()
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(100))
	opt := kjoin.Defaults(0.8, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kjoin.Similarity(hr.H, c.Records[0], c.Records[1], opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedAddQuery measures the similarity-search latency of the
// segmented engine under sustained write pressure, against an RWMutex
// emulation of the pre-segmentation locking (queries shared one big
// read-write lock with adds; each add holds it across the engine insert
// plus a simulated 2ms WAL group commit, the server's durable-add
// shape). One iteration runs both variants on an identical workload and
// reports their query p50 as metrics; cmd/kjoin-bench -hotpath records
// the full comparison in BENCH_hotpath.json.
func BenchmarkMixedAddQuery(b *testing.B) {
	const (
		writers  = 2
		queriers = 2
		window   = 300 * time.Millisecond
		commit   = 2 * time.Millisecond
	)
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(1600))
	preload, stream := c.Records[:800], c.Records[800:]
	opt := kjoin.Defaults(0.8, 0.85)
	opt.ComputeSims = false

	run := func(lockfree bool) (float64, error) {
		ix, err := kjoin.NewIndexer(hr.H, opt)
		if err != nil {
			return 0, err
		}
		for _, r := range preload {
			if _, err := ix.Add(r); err != nil {
				return 0, err
			}
		}
		var queries [][]string
		for i := 0; i < len(preload); i += 25 {
			q := preload[i]
			if len(q) > 3 {
				q = q[:3]
			}
			queries = append(queries, q)
		}

		var mu sync.RWMutex
		var wmu sync.Mutex
		ctx := context.Background()
		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		lats := make([][]time.Duration, queriers)
		errs := make([]error, writers+queriers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(deadline); i += writers {
					rec := append(append([]string(nil), stream[i%len(stream)]...), fmt.Sprintf("w%d", i))
					if lockfree {
						wmu.Lock()
					} else {
						mu.Lock()
					}
					_, err := ix.Add(rec)
					if err == nil {
						time.Sleep(commit)
					}
					if lockfree {
						wmu.Unlock()
					} else {
						mu.Unlock()
					}
					if err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		for g := 0; g < queriers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					tokens := queries[(g+i)%len(queries)]
					t0 := time.Now()
					var err error
					if lockfree {
						var q *kjoin.PreparedQuery
						if q, err = ix.PrepareQuery(tokens); err == nil {
							_, err = ix.RunQuery(ctx, q)
						}
					} else {
						mu.Lock()
						q, perr := ix.PrepareQuery(tokens)
						mu.Unlock()
						err = perr
						if err == nil {
							mu.RLock()
							_, err = ix.RunQuery(ctx, q)
							mu.RUnlock()
						}
					}
					if err != nil {
						errs[writers+g] = err
						return
					}
					lats[g] = append(lats[g], time.Since(t0))
					time.Sleep(time.Millisecond)
				}
			}(g)
		}
		wg.Wait()
		ix.WaitMerges()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		if len(all) == 0 {
			return 0, nil
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return float64(all[len(all)/2]) / float64(time.Millisecond), nil
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segP50, err := run(true)
		if err != nil {
			b.Fatal(err)
		}
		rwP50, err := run(false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(segP50, "p50-segmented-ms")
		b.ReportMetric(rwP50, "p50-rwmutex-ms")
	}
}
