package kjoin_test

import (
	"fmt"

	"kjoin"
)

// ExampleSelfJoin reproduces the paper's running example: joining the
// Table 1 objects over the Figure 1 hierarchy at δ=0.7, τ=0.6 yields the
// single pair ⟨S1, S3⟩ with similarity 19/29.
func ExampleSelfJoin() {
	h := kjoin.NewHierarchy("Root")
	food := h.Add(h.Root(), "Food")
	western := h.Add(food, "WesternFood")
	fastfood := h.Add(western, "Fastfood")
	h.Add(fastfood, "BurgerKing")
	h.Add(fastfood, "KFC")
	loc := h.Add(h.Root(), "Location")
	us := h.Add(loc, "US")
	ca := h.Add(us, "CA")
	sf := h.Add(ca, "SanFrancisco")
	mv := h.Add(sf, "MountainView")
	h.Add(mv, "GoogleHeadquarters")

	objects := [][]string{
		{"BurgerKing", "MountainView"},
		{"Fastfood", "GoogleHeadquarters"},
	}
	pairs, _, err := kjoin.SelfJoin(h, objects, kjoin.Defaults(0.7, 0.6))
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("objects %d and %d: %.4f\n", p.X, p.Y, p.Sim)
	}
	// Output:
	// objects 0 and 1: 0.6552
}

// ExampleSimilarity scores one pair of objects directly.
func ExampleSimilarity() {
	h := kjoin.NewHierarchy("Root")
	food := h.Add(h.Root(), "Food")
	western := h.Add(food, "WesternFood")
	fastfood := h.Add(western, "Fastfood")
	h.Add(fastfood, "BurgerKing")
	h.Add(fastfood, "KFC")

	// The elements are siblings at depth 4 with their LCA at depth 3, so
	// their similarity is 3/4 (Definition 1); the singleton objects have
	// Jaccard (3/4)/(2−3/4) = 0.6.
	s, err := kjoin.Similarity(h, []string{"BurgerKing"}, []string{"KFC"}, kjoin.Defaults(0.7, 0.5))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", s)
	// Output:
	// 0.60
}

// ExampleCluster groups objects into similarity clusters from join
// results.
func ExampleCluster() {
	pairs := []kjoin.Pair{{X: 0, Y: 1}, {X: 1, Y: 2}, {X: 3, Y: 4}}
	for _, c := range kjoin.Cluster(6, pairs) {
		fmt.Println(c)
	}
	// Output:
	// [0 1 2]
	// [3 4]
	// [5]
}

// ExampleIndexer streams objects through the online join.
func ExampleIndexer() {
	h := kjoin.NewHierarchy("Root")
	food := h.Add(h.Root(), "Food")
	western := h.Add(food, "WesternFood")
	fastfood := h.Add(western, "Fastfood")
	h.Add(fastfood, "BurgerKing")
	h.Add(fastfood, "KFC")

	ix, err := kjoin.NewIndexer(h, kjoin.Defaults(0.7, 0.5))
	if err != nil {
		panic(err)
	}
	for _, obj := range [][]string{
		{"BurgerKing", "downtown"},
		{"KFC", "uptown"},
		{"KFC", "downtown"},
	} {
		pairs, err := ix.Add(obj)
		if err != nil {
			panic(err)
		}
		for _, p := range pairs {
			fmt.Printf("new object %d matches %d (%.2f)\n", p.Y, p.X, p.Sim)
		}
	}
	// {KFC, downtown} matches {BurgerKing, downtown}: the fuzzy overlap
	// is 3/4 (BurgerKing ~ KFC) + 1 (downtown) = 1.75, and
	// 1.75/(4−1.75) ≈ 0.78. It does not match {KFC, uptown}: sharing
	// only KFC gives 1/3 < τ.
	// Output:
	// new object 2 matches 0 (0.78)
}
