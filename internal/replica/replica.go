// Package replica implements WAL-shipping read replicas for the kjoin
// server: a Follower that bootstraps from a primary snapshot, tails the
// primary's /wal/stream long poll, and applies records through the same
// contiguity-checked path crash recovery replays through; and a
// fail-over Client that routes reads across primary + replicas with
// per-try deadlines, jittered backoff and hedged fallback.
//
// The replication contract is the durability contract stretched over a
// network: a follower only ever applies records the primary durably
// acknowledged (the stream never ships an unsynced byte), a torn or
// corrupt frame is dropped with the connection and re-fetched — never
// applied — and when primary compaction has deleted the records a
// follower needs, the stream says so loudly (410 + floor) and the
// follower resyncs from a fresh snapshot instead of silently skipping
// ahead.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/fault"
	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
	"kjoin/internal/server"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// errResync signals the tail loop that stream replay cannot continue
// from the current position and a full snapshot resync is required.
var errResync = errors.New("replica: stream resync required")

// Follower tails one primary and feeds one replica server.
type Follower struct {
	// Primary is the primary's base URL (required).
	Primary string
	// Srv is the replica server queries are served from (required; built
	// with server.NewReplica).
	Srv *server.Server
	// H and Opt must match the primary's hierarchy and join options —
	// snapshots carry a config fingerprint and refuse to load elsewhere.
	H   *hierarchy.Hierarchy
	Opt core.Options
	// HTTP is the client used for streaming and snapshot fetches (nil →
	// http.DefaultClient; chaos tests inject faulty transports).
	HTTP *http.Client
	// Dir is the local snapshot-generation directory the follower
	// persists its progress into and restarts from (required).
	Dir string
	// FS is the filesystem for Dir (nil → the real one).
	FS fault.FS
	// Keep is how many local generations to retain (default 2).
	Keep int
	// SnapshotEvery persists a local generation after this many applied
	// records (default 256). Restart replays at most this much stream.
	SnapshotEvery int
	// PollWait is the long-poll wait advertised to the primary (default
	// 2s). Shorter waits refresh the staleness clock more often.
	PollWait time.Duration
	// RequestTimeout bounds one snapshot fetch and, added to PollWait,
	// one stream poll (default 10s).
	RequestTimeout time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential backoff after
	// a failed poll (defaults 100ms / 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed makes the backoff jitter deterministic (default 1).
	Seed uint64
	// Logf, when set, receives replication progress and fault notices.
	Logf func(format string, args ...any)

	// applied is owned by Run; it mirrors Srv.ReplicaAppliedSeq but
	// avoids a dependency on Srv's atomics for control flow.
	applied uint64
	// sinceSnap counts records applied since the last local generation.
	sinceSnap int
	// lastSaved is the sequence the newest local generation covers.
	lastSaved uint64
	// resyncs counts snapshot resyncs, for tests: a follower that can
	// resume from its own state performs zero.
	resyncs atomic.Int64
	// bootSource records how Run bootstrapped: "local" or "empty".
	bootSource atomic.Value
	gens       *serverutil.GenStore
}

// Resyncs returns how many full snapshot resyncs the follower has
// performed (bootstrap from the primary counts as one).
func (f *Follower) Resyncs() int64 { return f.resyncs.Load() }

// BootSource reports how the last Run bootstrapped: "local" (a local
// generation was loaded) or "empty" (no local state; the stream or a
// resync filled the index).
func (f *Follower) BootSource() string {
	if v, ok := f.bootSource.Load().(string); ok {
		return v
	}
	return ""
}

func (f *Follower) logf(format string, args ...any) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

func (f *Follower) http() *http.Client {
	if f.HTTP != nil {
		return f.HTTP
	}
	return http.DefaultClient
}

func (f *Follower) pollWait() time.Duration {
	if f.PollWait > 0 {
		return f.PollWait
	}
	return 2 * time.Second
}

func (f *Follower) requestTimeout() time.Duration {
	if f.RequestTimeout > 0 {
		return f.RequestTimeout
	}
	return 10 * time.Second
}

func (f *Follower) snapshotEvery() int {
	if f.SnapshotEvery > 0 {
		return f.SnapshotEvery
	}
	return 256
}

// Run bootstraps from the newest local generation (if any), then tails
// the primary's stream until ctx is cancelled, persisting a final local
// generation on the way out. It returns nil on cancellation; every
// transient failure is retried with jittered exponential backoff.
func (f *Follower) Run(ctx context.Context) error {
	if f.Primary == "" || f.Srv == nil || f.Dir == "" {
		return errors.New("replica: Primary, Srv and Dir are required")
	}
	keep := f.Keep
	if keep <= 0 {
		keep = 2
	}
	f.gens = &serverutil.GenStore{FS: f.FS, Dir: f.Dir, Keep: keep, Logf: f.Logf}
	if err := f.bootstrap(); err != nil {
		return err
	}
	bmin, bmax := f.BackoffMin, f.BackoffMax
	if bmin <= 0 {
		bmin = 100 * time.Millisecond
	}
	if bmax < bmin {
		bmax = 5 * time.Second
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	r := rng.New(seed)
	cur := bmin
	for {
		if ctx.Err() != nil {
			break
		}
		err := f.pollOnce(ctx)
		switch {
		case err == nil:
			cur = bmin // healthy poll; backoff resets
			continue
		case ctx.Err() != nil:
			// Shutting down; the poll failure is cancellation fallout.
		case errors.Is(err, errResync):
			f.Srv.SetReplicaHealthy(false)
			if rerr := f.resync(ctx); rerr != nil {
				f.logf("replica: resync failed: %v", rerr)
				cur = sleepJittered(ctx, r, cur, bmin, bmax)
			} else {
				cur = bmin
			}
			continue
		default:
			f.Srv.SetReplicaHealthy(false)
			f.logf("replica: poll failed (retrying in ~%v): %v", cur, err)
			cur = sleepJittered(ctx, r, cur, bmin, bmax)
			continue
		}
		break
	}
	// Best-effort final generation so a restart resumes from here.
	if err := f.saveLocal(); err != nil {
		f.logf("replica: final local snapshot failed: %v", err)
	}
	return nil
}

// sleepJittered sleeps cur scaled by a jitter in [0.5, 1.5) (or until
// ctx is done) and returns the doubled, capped next backoff.
func sleepJittered(ctx context.Context, r *rng.RNG, cur, min, max time.Duration) time.Duration {
	d := time.Duration(float64(cur) * (0.5 + r.Float64()))
	if d < min {
		d = min
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
	next := cur * 2
	if next > max {
		next = max
	}
	return next
}

// bootstrap loads the newest readable local generation into the server.
// With no local state the follower starts empty at sequence zero: its
// very first poll asks the primary for seq 1, and if that predates the
// compaction floor the 410 path performs the snapshot bootstrap.
func (f *Follower) bootstrap() error {
	var ix *core.Indexer
	name, err := f.gens.Load(func(rd io.Reader) error {
		loaded, _, lerr := core.LoadIndexerMeta(f.H, f.Opt, rd)
		if lerr != nil {
			return lerr
		}
		ix = loaded
		return nil
	})
	switch {
	case errors.Is(err, serverutil.ErrNoSnapshot):
		f.bootSource.Store("empty")
		f.applied = 0
		f.logf("replica: no local snapshot; starting empty")
		return nil
	case err != nil:
		return fmt.Errorf("replica: load local snapshot: %w", err)
	}
	f.Srv.InstallIndex(ix)
	f.applied = ix.WALSeq()
	f.lastSaved = f.applied
	f.bootSource.Store("local")
	f.logf("replica: bootstrapped from local generation %s (%d objects, wal seq %d)", name, ix.Len(), f.applied)
	return nil
}

// pollOnce performs one long poll against the primary's stream and
// applies whatever it returns. A nil return means the poll round-tripped
// (even if it carried no records); errResync means stream replay cannot
// continue from f.applied.
func (f *Follower) pollOnce(ctx context.Context) error {
	wait := f.pollWait()
	rctx, cancel := context.WithTimeout(ctx, f.requestTimeout()+wait)
	defer cancel()
	url := fmt.Sprintf("%s/wal/stream?from=%d&wait=%s", f.Primary, f.applied+1, wait)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	// t0 is taken before the request: if the batch proves us caught up,
	// we were caught up at least as of the instant the poll started.
	t0 := time.Now()
	resp, err := f.http().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		// Fall through to decode.
	case http.StatusGone:
		floor := resp.Header.Get(server.HeaderWALFloor)
		f.logf("replica: records from seq %d compacted away on the primary (floor %s); resyncing from snapshot", f.applied+1, floor)
		return errResync
	default:
		return fmt.Errorf("replica: stream poll: primary answered %d", resp.StatusCode)
	}
	durable, err := strconv.ParseUint(resp.Header.Get(server.HeaderDurableSeq), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: stream poll: bad %s header: %w", server.HeaderDurableSeq, err)
	}
	dec := wal.NewStreamDecoder(resp.Body)
	for {
		if cerr := rctx.Err(); cerr != nil {
			// Cancelled mid-batch: records already applied stay applied;
			// the next poll (if any) resumes from f.applied.
			return cerr
		}
		seq, op, tokens, derr := dec.Next()
		if errors.Is(derr, io.EOF) {
			break
		}
		if derr != nil {
			// Torn or corrupt frame: never applied. Drop the batch and
			// re-poll from the last record that did apply.
			return fmt.Errorf("replica: stream frame after seq %d: %w", f.applied, derr)
		}
		if seq <= f.applied {
			continue // duplicate delivery is harmless; replay is idempotent here
		}
		if aerr := f.Srv.ApplyReplicated(seq, op, tokens); aerr != nil {
			// A contiguity refusal means this follower's state and the
			// stream disagree; only a snapshot can re-ground it.
			f.logf("replica: apply seq %d failed: %v", seq, aerr)
			return errResync
		}
		f.applied = seq
		f.sinceSnap++
	}
	if f.applied >= durable {
		f.Srv.MarkReplicaCaughtUp(t0)
	}
	f.Srv.SetReplicaHealthy(true)
	if f.sinceSnap >= f.snapshotEvery() {
		if serr := f.saveLocal(); serr != nil {
			f.logf("replica: local snapshot failed: %v", serr)
		}
	}
	return nil
}

// resync re-grounds the follower from a fresh primary snapshot: the
// catch-up path when the stream cannot serve from f.applied+1.
func (f *Follower) resync(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, f.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, f.Primary+"/replica/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.http().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot fetch: primary answered %d", resp.StatusCode)
	}
	ix, meta, err := core.LoadIndexerMeta(f.H, f.Opt, resp.Body)
	if err != nil {
		return fmt.Errorf("replica: snapshot fetch: %w", err)
	}
	f.Srv.InstallIndex(ix)
	f.applied = meta.WALSeq
	f.resyncs.Add(1)
	f.logf("replica: resynced from primary snapshot (%d objects, wal seq %d)", ix.Len(), f.applied)
	if serr := f.saveLocal(); serr != nil {
		f.logf("replica: local snapshot after resync failed: %v", serr)
	}
	return nil
}

// saveLocal persists the replica's current index as a local snapshot
// generation, so a restart resumes from here instead of re-shipping the
// whole log (or losing its place past the primary's compaction floor).
func (f *Follower) saveLocal() error {
	buf, seq, err := f.Srv.SnapshotBuffer()
	if err != nil {
		return err
	}
	if seq == f.lastSaved {
		return nil
	}
	name, err := f.gens.Save(func(w io.Writer) error {
		_, werr := w.Write(buf.Bytes())
		return werr
	})
	if err != nil {
		return err
	}
	f.lastSaved = seq
	f.sinceSnap = 0
	f.logf("replica: saved local generation %s (wal seq %d)", name, seq)
	return nil
}
