package replica

// The replication chaos matrix: run a real primary and real followers
// over deterministic faulty transports (drops, stalls, mid-frame
// truncation, hangups), kill and restart followers, compact the primary
// out from under them — and assert the replication contract holds:
//
//  1. every primary-acked add becomes query-visible on every live
//     replica, with results bit-identical to the primary's,
//  2. no unacknowledged or torn record is ever applied,
//  3. a killed replica restarts from its own local snapshot (zero
//     resyncs) and resumes the stream from its last applied sequence,
//  4. primary compaction never strands a follower silently: the typed
//     410 turns into exactly one snapshot resync and full catch-up.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/fault"
	"kjoin/internal/paperdata"
	"kjoin/internal/server"
	"kjoin/internal/wal"
)

func testOpt() core.Options { return core.Defaults(0.7, 0.6) }

// primaryHarness owns a durable primary and the record of what it has
// acknowledged.
type primaryHarness struct {
	t     *testing.T
	srv   *server.Server
	ts    *httptest.Server
	acked [][]string
}

func newPrimary(t *testing.T, keep int, fsys fault.FS) *primaryHarness {
	t.Helper()
	dir := t.TempDir()
	h, _ := paperdata.Fig1()
	s, err := server.Recover(h, testOpt(), server.Config{Logf: t.Logf}, server.Durability{
		FS:          fsys,
		WALDir:      filepath.Join(dir, "wal"),
		SnapshotDir: filepath.Join(dir, "snap"),
		Keep:        keep,
		Policy:      wal.SyncAlways,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return &primaryHarness{t: t, srv: s, ts: ts}
}

// add posts one object; acked records it only on a 200.
func (p *primaryHarness) add(tokens []string) bool {
	p.t.Helper()
	body, _ := json.Marshal(map[string]any{"tokens": tokens})
	resp, err := http.Post(p.ts.URL+"/objects", "application/json", bytes.NewReader(body))
	if err != nil {
		p.t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	p.acked = append(p.acked, tokens)
	return true
}

func (p *primaryHarness) mustAdd(tokens []string) {
	p.t.Helper()
	if !p.add(tokens) {
		p.t.Fatalf("add of %v was not acknowledged", tokens)
	}
}

// followerHandle is one running follower: its replica server, listener
// and tail loop.
type followerHandle struct {
	t      *testing.T
	srv    *server.Server
	ts     *httptest.Server
	f      *Follower
	cancel context.CancelFunc
	done   chan struct{}
}

// startFollower boots a follower over dir (restartable state) talking
// to primaryURL through hc (nil → default transport).
func startFollower(t *testing.T, primaryURL, dir string, hc *http.Client, rc server.ReplicaConfig) *followerHandle {
	t.Helper()
	h, _ := paperdata.Fig1()
	srv, err := server.NewReplica(h, testOpt(), server.Config{Logf: t.Logf}, rc)
	if err != nil {
		t.Fatal(err)
	}
	f := &Follower{
		Primary:        primaryURL,
		Srv:            srv,
		H:              h,
		Opt:            testOpt(),
		HTTP:           hc,
		Dir:            dir,
		SnapshotEvery:  4,
		PollWait:       50 * time.Millisecond,
		RequestTimeout: 700 * time.Millisecond,
		BackoffMin:     time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Seed:           7,
		Logf:           t.Logf,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if rerr := f.Run(ctx); rerr != nil {
			t.Errorf("follower run: %v", rerr)
		}
	}()
	ts := httptest.NewServer(srv)
	fh := &followerHandle{t: t, srv: srv, ts: ts, f: f, cancel: cancel, done: done}
	t.Cleanup(fh.stop)
	return fh
}

// stop cancels the tail loop and waits for it (idempotent).
func (fh *followerHandle) stop() {
	fh.cancel()
	select {
	case <-fh.done:
	case <-time.After(10 * time.Second):
		fh.t.Error("follower did not stop on cancel")
	}
	fh.ts.Close()
}

// waitUntil polls cond for up to 15s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitCaughtUp waits until the follower has applied through seq and its
// readiness probe answers 200.
func waitCaughtUp(t *testing.T, fh *followerHandle, seq uint64) {
	t.Helper()
	waitUntil(t, fmt.Sprintf("replica to apply through seq %d", seq), func() bool {
		if fh.srv.ReplicaAppliedSeq() < seq {
			return false
		}
		resp, err := http.Get(fh.ts.URL + "/readyz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

// queryHTTP runs POST /query against a base URL and returns the matches.
func queryHTTP(t *testing.T, url string, tokens []string) []Match {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tokens": tokens})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("query at %s: status %d: %s", url, resp.StatusCode, b)
	}
	var out struct {
		Matches []Match `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Matches
}

// assertBitIdentical queries every workload object on the primary and
// each replica and requires byte-for-byte identical answers (float
// similarity compared by bit pattern, not tolerance).
func assertBitIdentical(t *testing.T, primaryURL string, replicaURLs ...string) {
	t.Helper()
	for qi, q := range paperdata.Table1() {
		want := queryHTTP(t, primaryURL, q)
		for _, ru := range replicaURLs {
			got := queryHTTP(t, ru, q)
			if len(got) != len(want) {
				t.Fatalf("query %d: replica %s returned %d matches, primary %d", qi, ru, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index ||
					math.Float64bits(got[i].Sim) != math.Float64bits(want[i].Sim) {
					t.Fatalf("query %d match %d: replica %s returned %+v, primary %+v", qi, i, ru, got[i], want[i])
				}
			}
		}
	}
}

// generousBound keeps the staleness gate out of convergence tests.
func generousBound() server.ReplicaConfig {
	return server.ReplicaConfig{Bound: time.Minute}
}

// TestReplicaChaosMatrix runs the same workload under a matrix of
// injected transport faults and requires full, bit-identical
// convergence every time.
func TestReplicaChaosMatrix(t *testing.T) {
	fault.WatchGoroutines(t)
	objs := paperdata.Table1()
	cases := []struct {
		name   string
		script []fault.NetFault
	}{
		{"clean", nil},
		{"drop-dial", []fault.NetFault{
			{Op: fault.OpDial, N: 2, Mode: fault.NetFail},
			{Op: fault.OpDial, N: 5, Mode: fault.NetFail},
		}},
		{"stall-read", []fault.NetFault{
			{Op: fault.OpConnRead, N: 3, Mode: fault.NetStall}, // blocks until the deadline cuts the conn
		}},
		{"truncate-read-mid-frame", []fault.NetFault{
			{Op: fault.OpConnRead, N: 2, Mode: fault.NetTruncate, Keep: 9},
			{Op: fault.OpConnRead, N: 5, Mode: fault.NetTruncate, Keep: 3},
		}},
		{"hangup-write", []fault.NetFault{
			{Op: fault.OpConnWrite, N: 2, Mode: fault.NetHangup},
			{Op: fault.OpConnWrite, N: 6, Mode: fault.NetHangup},
		}},
		{"combined", []fault.NetFault{
			{Op: fault.OpDial, N: 3, Mode: fault.NetFail},
			{Op: fault.OpConnRead, N: 5, Mode: fault.NetTruncate, Keep: 5},
			{Op: fault.OpConnWrite, N: 4, Mode: fault.NetHangup},
			{Op: fault.OpConnRead, N: 11, Mode: fault.NetStall},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := newPrimary(t, 0, nil)
			// Half the workload lands before the follower exists (streamed
			// catch-up from seq 1), half while it is tailing live.
			for _, o := range objs[:len(objs)/2] {
				p.mustAdd(o)
			}
			inj := fault.NewNetInjector(nil, tc.script...)
			hc := &http.Client{Transport: inj.Transport()}
			fh := startFollower(t, p.ts.URL, t.TempDir(), hc, generousBound())
			for _, o := range objs[len(objs)/2:] {
				p.mustAdd(o)
			}
			waitCaughtUp(t, fh, uint64(len(p.acked)))
			if got := fh.srv.ReplicaAppliedSeq(); got != uint64(len(p.acked)) {
				t.Fatalf("replica applied seq %d, want %d", got, len(p.acked))
			}
			assertBitIdentical(t, p.ts.URL, fh.ts.URL)
			if tc.script != nil && inj.Fired() == 0 {
				t.Fatal("no scripted fault fired; the case tested nothing")
			}
		})
	}
}

// TestEveryAckedAddVisibleOnEveryLiveReplica runs two followers — one
// clean, one through a faulty transport — and requires both to converge
// to bit-identical answers.
func TestEveryAckedAddVisibleOnEveryLiveReplica(t *testing.T) {
	fault.WatchGoroutines(t)
	p := newPrimary(t, 0, nil)
	inj := fault.NewNetInjector(nil,
		fault.NetFault{Op: fault.OpConnRead, N: 3, Mode: fault.NetTruncate, Keep: 7},
		fault.NetFault{Op: fault.OpDial, N: 4, Mode: fault.NetFail},
	)
	faulty := startFollower(t, p.ts.URL, t.TempDir(), &http.Client{Transport: inj.Transport()}, generousBound())
	clean := startFollower(t, p.ts.URL, t.TempDir(), nil, generousBound())
	for _, o := range paperdata.Table1() {
		p.mustAdd(o)
	}
	want := uint64(len(p.acked))
	waitCaughtUp(t, faulty, want)
	waitCaughtUp(t, clean, want)
	assertBitIdentical(t, p.ts.URL, faulty.ts.URL, clean.ts.URL)
}

// TestReplicaKillRestartResumesFromLocalSnapshot kills a caught-up
// follower and restarts it over the same directory: it must bootstrap
// from its own local generation and resume the stream — zero snapshot
// resyncs — then catch up with records added while it was down.
func TestReplicaKillRestartResumesFromLocalSnapshot(t *testing.T) {
	fault.WatchGoroutines(t)
	p := newPrimary(t, 0, nil)
	dir := t.TempDir()
	objs := paperdata.Table1()
	for _, o := range objs {
		p.mustAdd(o)
	}
	fh := startFollower(t, p.ts.URL, dir, nil, generousBound())
	waitCaughtUp(t, fh, uint64(len(p.acked)))
	fh.stop() // clean kill: Run persists a final local generation

	// The primary moves on while the replica is down.
	for _, o := range objs[:3] {
		p.mustAdd(o)
	}
	fh2 := startFollower(t, p.ts.URL, dir, nil, generousBound())
	waitCaughtUp(t, fh2, uint64(len(p.acked)))
	if src := fh2.f.BootSource(); src != "local" {
		t.Fatalf("restarted follower bootstrapped from %q, want local", src)
	}
	if n := fh2.f.Resyncs(); n != 0 {
		t.Fatalf("restarted follower performed %d snapshot resyncs, want 0 (stream resume)", n)
	}
	assertBitIdentical(t, p.ts.URL, fh2.ts.URL)
}

// TestPrimaryCompactionNeverStrandsFollowerSilently compacts the
// primary's WAL past a downed follower's position. On restart the
// follower must hit the loud 410 path, resync from a primary snapshot
// exactly once, and fully catch up.
func TestPrimaryCompactionNeverStrandsFollowerSilently(t *testing.T) {
	fault.WatchGoroutines(t)
	p := newPrimary(t, 1, nil) // keep=1: each snapshot floors the WAL at its seq
	dir := t.TempDir()
	objs := paperdata.Table1()
	for _, o := range objs[:4] {
		p.mustAdd(o)
	}
	fh := startFollower(t, p.ts.URL, dir, nil, generousBound())
	waitCaughtUp(t, fh, uint64(len(p.acked)))
	fh.stop()

	// While the follower is down: more adds, then a snapshot that
	// compacts the log past everything — including the records the
	// follower would need to resume.
	for _, o := range objs[4:] {
		p.mustAdd(o)
	}
	if err := p.srv.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[:2] {
		p.mustAdd(o)
	}
	if err := p.srv.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}

	fh2 := startFollower(t, p.ts.URL, dir, nil, generousBound())
	waitCaughtUp(t, fh2, uint64(len(p.acked)))
	if src := fh2.f.BootSource(); src != "local" {
		t.Fatalf("restarted follower bootstrapped from %q, want local", src)
	}
	if n := fh2.f.Resyncs(); n != 1 {
		t.Fatalf("follower performed %d snapshot resyncs, want exactly 1 (the 410 fallback)", n)
	}
	assertBitIdentical(t, p.ts.URL, fh2.ts.URL)
}

// TestUnackedRecordNeverAppliedOnReplica poisons the primary's WAL so
// an add is refused, and requires that the refused add never becomes
// visible on the replica: the stream only ever ships what an
// acknowledgment could have been issued for.
func TestUnackedRecordNeverAppliedOnReplica(t *testing.T) {
	fault.WatchGoroutines(t)
	// The third WAL fsync fails: adds 1 and 2 are acked, add 3 refused.
	inj := fault.NewInjector(fault.OS{},
		fault.Fault{Op: fault.OpSync, Path: "wal", N: 3, Mode: fault.Fail})
	p := newPrimary(t, 0, inj)
	fh := startFollower(t, p.ts.URL, t.TempDir(), nil, generousBound())
	objs := paperdata.Table1()
	p.mustAdd(objs[0])
	p.mustAdd(objs[1])
	if p.add(objs[2]) {
		t.Fatal("add during injected fsync failure was acknowledged")
	}
	waitCaughtUp(t, fh, 2)
	// Give the follower time to (wrongly) apply anything extra.
	time.Sleep(200 * time.Millisecond)
	if got := fh.srv.ReplicaAppliedSeq(); got != 2 {
		t.Fatalf("replica applied seq %d, want 2 (unacked record leaked)", got)
	}
	resp, err := http.Get(fh.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["objects"] != float64(2) {
		t.Fatalf("replica serves %v objects, want 2 — the unacked add must never appear", stats["objects"])
	}
}

// TestStalenessGateRejectsWhenPrimaryDies proves the bounded-staleness
// contract end to end: a caught-up replica serves, and once the primary
// is unreachable longer than the bound, reject-mode queries answer 503
// stale_replica instead of silently serving old data.
func TestStalenessGateRejectsWhenPrimaryDies(t *testing.T) {
	fault.WatchGoroutines(t)
	p := newPrimary(t, 0, nil)
	for _, o := range paperdata.Table1()[:3] {
		p.mustAdd(o)
	}
	fh := startFollower(t, p.ts.URL, t.TempDir(), nil,
		server.ReplicaConfig{Bound: 150 * time.Millisecond, Mode: server.StaleReject})
	waitCaughtUp(t, fh, uint64(len(p.acked)))
	q, _ := json.Marshal(map[string]any{"tokens": paperdata.Table1()[0]})
	resp, err := http.Post(fh.ts.URL+"/query", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up replica rejected a fresh read: status %d", resp.StatusCode)
	}
	p.ts.Close() // the primary vanishes; polls start failing
	waitUntil(t, "staleness gate to reject", func() bool {
		resp, err := http.Post(fh.ts.URL+"/query", "application/json", bytes.NewReader(q))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			return false
		}
		var eb struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			return false
		}
		return eb.Code == "stale_replica"
	})
}
