package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kjoin/internal/rng"
)

// Match is one similarity-query result.
type Match struct {
	Index int     `json:"index"`
	Sim   float64 `json:"sim"`
}

// Result is a fail-over query's answer plus where it came from.
type Result struct {
	Matches []Match
	// Endpoint is the base URL that answered.
	Endpoint string
	// LagMS is the answering replica's advertised staleness in
	// milliseconds; -1 when unknown (e.g. the primary answered).
	LagMS int64
}

// Client routes similarity queries across a primary and its read
// replicas: each attempt gets its own deadline, replicas are tried in
// rotating order with jittered backoff between endpoints, and a replica
// try that fails or dawdles is hedged with a concurrent request to the
// primary — the read stays fast even while a replica is down, stalled
// or too stale to serve.
type Client struct {
	// Primary is the primary's base URL (required; last resort for reads
	// and the hedge target).
	Primary string
	// Replicas are the read replicas' base URLs (may be empty — then
	// every read goes straight to the primary).
	Replicas []string
	// HTTP is the transport (nil → http.DefaultClient).
	HTTP *http.Client
	// TryTimeout bounds one endpoint attempt, hedge included (default 2s).
	TryTimeout time.Duration
	// HedgeDelay is how long a replica attempt may run before a
	// concurrent hedge request is sent to the primary (default
	// TryTimeout/4). The first success wins.
	HedgeDelay time.Duration
	// BackoffMin/BackoffMax bound the jittered pause between endpoint
	// attempts within one Query call (defaults 10ms / 250ms).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed makes rotation and jitter deterministic (default 1).
	Seed uint64

	mu   sync.Mutex
	r    *rng.RNG // guarded by mu
	next int      // guarded by mu; round-robin start offset
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) tryTimeout() time.Duration {
	if c.TryTimeout > 0 {
		return c.TryTimeout
	}
	return 2 * time.Second
}

func (c *Client) hedgeDelay() time.Duration {
	if c.HedgeDelay > 0 {
		return c.HedgeDelay
	}
	return c.tryTimeout() / 4
}

// order returns this call's endpoint sequence: replicas rotated by a
// round-robin counter (so load spreads across them), primary last.
func (c *Client) order() []string {
	c.mu.Lock()
	start := c.next
	if len(c.Replicas) > 0 {
		c.next = (c.next + 1) % len(c.Replicas)
	}
	c.mu.Unlock()
	eps := make([]string, 0, len(c.Replicas)+1)
	for i := range c.Replicas {
		eps = append(eps, c.Replicas[(start+i)%len(c.Replicas)])
	}
	return append(eps, c.Primary)
}

// jitter returns a deterministic pause in [min, max].
func (c *Client) jitter(min, max time.Duration) time.Duration {
	if min <= 0 {
		min = 10 * time.Millisecond
	}
	if max < min {
		max = 250 * time.Millisecond
		if max < min {
			max = min
		}
	}
	c.mu.Lock()
	if c.r == nil {
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.r = rng.New(seed)
	}
	d := min + time.Duration(c.r.Float64()*float64(max-min))
	c.mu.Unlock()
	return d
}

// Query runs one similarity query with fail-over: every endpoint gets a
// bounded attempt (replica attempts hedged to the primary), and the
// first success anywhere is the answer. It returns the last error only
// after every endpoint has failed.
func (c *Client) Query(ctx context.Context, tokens []string) (*Result, error) {
	if c.Primary == "" {
		return nil, errors.New("replica: client has no primary endpoint")
	}
	var lastErr error
	for i, ep := range c.order() {
		if i > 0 {
			t := time.NewTimer(c.jitter(c.BackoffMin, c.BackoffMax))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		res, err := c.tryHedged(ctx, ep, tokens)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("replica: every endpoint failed: %w", lastErr)
}

// tryHedged attempts one endpoint under the per-try deadline. When the
// endpoint is a replica, a hedge request to the primary launches after
// HedgeDelay (or immediately when the replica errors out fast); the
// first success wins and the loser is cancelled with the shared try
// context.
func (c *Client) tryHedged(ctx context.Context, ep string, tokens []string) (*Result, error) {
	tctx, cancel := context.WithTimeout(ctx, c.tryTimeout())
	defer cancel()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(target string) {
		go func() {
			res, err := c.try(tctx, target, tokens)
			ch <- outcome{res, err}
		}()
	}
	launch(ep)
	pending := 1
	hedged := ep == c.Primary // nothing to hedge with when ep is the primary
	var timer *time.Timer
	var hedgeC <-chan time.Time
	if !hedged {
		timer = time.NewTimer(c.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}
	var lastErr error
	for pending > 0 {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				return out.res, nil
			}
			lastErr = out.err
			if !hedged {
				// The replica failed outright; hedge immediately rather than
				// waiting out the delay.
				hedged = true
				launch(c.Primary)
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if !hedged {
				hedged = true
				launch(c.Primary)
				pending++
			}
		case <-tctx.Done():
			if lastErr == nil {
				lastErr = tctx.Err()
			}
			return nil, fmt.Errorf("replica: try %s: %w", ep, lastErr)
		}
	}
	return nil, fmt.Errorf("replica: try %s: %w", ep, lastErr)
}

// try runs one POST /query against one endpoint.
func (c *Client) try(ctx context.Context, ep string, tokens []string) (*Result, error) {
	body, err := json.Marshal(map[string]any{"tokens": tokens})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: %s answered %d", ep, resp.StatusCode)
	}
	var out struct {
		Matches []Match `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("replica: %s: bad response body: %w", ep, err)
	}
	lag := int64(-1)
	if h := resp.Header.Get("X-Kjoin-Replica-Lag-Ms"); h != "" {
		if ms, perr := strconv.ParseInt(h, 10, 64); perr == nil {
			lag = ms
		}
	}
	return &Result{Matches: out.Matches, Endpoint: ep, LagMS: lag}, nil
}
