package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/rng"
)

// Match is one similarity-query result.
type Match struct {
	Index int     `json:"index"`
	Sim   float64 `json:"sim"`
}

// Result is a fail-over request's answer plus where it came from.
type Result struct {
	// Matches holds a Query's answer (nil for Similarity).
	Matches []Match
	// Sim holds a Similarity call's answer (zero for Query).
	Sim float64
	// Endpoint is the base URL that answered.
	Endpoint string
	// LagMS is the answering replica's advertised staleness in
	// milliseconds; -1 when unknown (e.g. the primary answered).
	LagMS int64
}

// StatusError is a non-success HTTP answer from one endpoint. It
// carries any Retry-After the server sent on a 429 or 503, so the
// caller's backoff can honor the server's own schedule instead of
// hammering an endpoint that just said how long it needs.
type StatusError struct {
	Endpoint string
	Status   int
	// RetryAfter is the server's requested pause (zero when none was
	// sent or the status carries none).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("replica: %s answered %d (retry after %v)", e.Endpoint, e.Status, e.RetryAfter)
	}
	return fmt.Sprintf("replica: %s answered %d", e.Endpoint, e.Status)
}

// retryAfterOf extracts the server-requested pause from an endpoint
// error chain (zero when there is none).
func retryAfterOf(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// Client routes similarity queries across a primary and its read
// replicas: each attempt gets its own deadline, replicas are tried in
// rotating order with jittered backoff between endpoints, and a replica
// try that fails or dawdles is hedged with a concurrent request to the
// primary — the read stays fast even while a replica is down, stalled
// or too stale to serve.
type Client struct {
	// Primary is the primary's base URL (required; last resort for reads
	// and the hedge target).
	Primary string
	// Replicas are the read replicas' base URLs (may be empty — then
	// every read goes straight to the primary).
	Replicas []string
	// HTTP is the transport (nil → http.DefaultClient).
	HTTP *http.Client
	// TryTimeout bounds one endpoint attempt, hedge included (default 2s).
	TryTimeout time.Duration
	// HedgeDelay is how long a replica attempt may run before a
	// concurrent hedge request is sent to the primary (default
	// TryTimeout/4). The first success wins.
	HedgeDelay time.Duration
	// BackoffMin/BackoffMax bound the jittered pause between endpoint
	// attempts within one Query call (defaults 10ms / 250ms). A 429/503
	// Retry-After from the previous endpoint raises the pause to at
	// least what the server asked for.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed makes rotation and jitter deterministic (default 1).
	Seed uint64

	mu   sync.Mutex
	r    *rng.RNG // guarded by mu
	next int      // guarded by mu; round-robin start offset

	// hedges counts hedge requests launched, for the coordinator's
	// hedges_total statistic.
	hedges atomic.Int64
}

// HedgeCount returns how many hedge requests this client has launched.
func (c *Client) HedgeCount() int64 { return c.hedges.Load() }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) tryTimeout() time.Duration {
	if c.TryTimeout > 0 {
		return c.TryTimeout
	}
	return 2 * time.Second
}

func (c *Client) hedgeDelay() time.Duration {
	if c.HedgeDelay > 0 {
		return c.HedgeDelay
	}
	return c.tryTimeout() / 4
}

// order returns this call's endpoint sequence: replicas rotated by a
// round-robin counter (so load spreads across them), primary last.
func (c *Client) order() []string {
	c.mu.Lock()
	start := c.next
	if len(c.Replicas) > 0 {
		c.next = (c.next + 1) % len(c.Replicas)
	}
	c.mu.Unlock()
	eps := make([]string, 0, len(c.Replicas)+1)
	for i := range c.Replicas {
		eps = append(eps, c.Replicas[(start+i)%len(c.Replicas)])
	}
	return append(eps, c.Primary)
}

// jitter returns a deterministic pause in [min, max].
func (c *Client) jitter(min, max time.Duration) time.Duration {
	if min <= 0 {
		min = 10 * time.Millisecond
	}
	if max < min {
		max = 250 * time.Millisecond
		if max < min {
			max = min
		}
	}
	c.mu.Lock()
	if c.r == nil {
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.r = rng.New(seed)
	}
	d := min + time.Duration(c.r.Float64()*float64(max-min))
	c.mu.Unlock()
	return d
}

// Query runs one similarity query with fail-over: every endpoint gets a
// bounded attempt (replica attempts hedged to the primary), and the
// first success anywhere is the answer. It returns the last error only
// after every endpoint has failed.
func (c *Client) Query(ctx context.Context, tokens []string) (*Result, error) {
	return c.run(ctx, func(tctx context.Context, ep string) (*Result, error) {
		return c.tryQuery(tctx, ep, tokens)
	})
}

// Similarity scores one pair of objects with the same fail-over and
// hedging as Query. Any endpoint can answer: /similarity is stateless
// over the shared hierarchy, so replicas serve it without a staleness
// gate.
func (c *Client) Similarity(ctx context.Context, x, y []string) (*Result, error) {
	return c.run(ctx, func(tctx context.Context, ep string) (*Result, error) {
		return c.trySimilarity(tctx, ep, x, y)
	})
}

// run drives one request across the endpoint order: a bounded, hedged
// attempt per endpoint, jittered backoff between endpoints (raised to a
// previous endpoint's Retry-After when one was sent), first success
// wins.
func (c *Client) run(ctx context.Context, try func(context.Context, string) (*Result, error)) (*Result, error) {
	if c.Primary == "" {
		return nil, errors.New("replica: client has no primary endpoint")
	}
	var lastErr error
	var floor time.Duration // Retry-After from the previous endpoint
	for i, ep := range c.order() {
		if i > 0 {
			d := c.jitter(c.BackoffMin, c.BackoffMax)
			if floor > d {
				// The server scheduled our next attempt itself; honoring it
				// beats retrying into the very saturation it reported. The
				// context still bounds the wait.
				d = floor
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		res, err := c.tryHedged(ctx, ep, try)
		if err == nil {
			return res, nil
		}
		lastErr = err
		floor = retryAfterOf(err)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("replica: every endpoint failed: %w", lastErr)
}

// tryHedged attempts one endpoint under the per-try deadline. When the
// endpoint is a replica, a hedge request to the primary launches after
// HedgeDelay (or immediately when the replica errors out fast); the
// first success wins and the loser is cancelled with the shared try
// context.
func (c *Client) tryHedged(ctx context.Context, ep string, try func(context.Context, string) (*Result, error)) (*Result, error) {
	tctx, cancel := context.WithTimeout(ctx, c.tryTimeout())
	defer cancel()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(target string) {
		go func() {
			res, err := try(tctx, target)
			ch <- outcome{res, err}
		}()
	}
	launch(ep)
	pending := 1
	hedged := ep == c.Primary // nothing to hedge with when ep is the primary
	var timer *time.Timer
	var hedgeC <-chan time.Time
	if !hedged {
		timer = time.NewTimer(c.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}
	var lastErr error
	for pending > 0 {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				return out.res, nil
			}
			lastErr = out.err
			if !hedged {
				// The replica failed outright; hedge immediately rather than
				// waiting out the delay.
				hedged = true
				c.hedges.Add(1)
				launch(c.Primary)
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if !hedged {
				hedged = true
				c.hedges.Add(1)
				launch(c.Primary)
				pending++
			}
		case <-tctx.Done():
			if lastErr == nil {
				lastErr = tctx.Err()
			}
			return nil, fmt.Errorf("replica: try %s: %w", ep, lastErr)
		}
	}
	return nil, fmt.Errorf("replica: try %s: %w", ep, lastErr)
}

// post runs one JSON POST against one endpoint and decodes a 200 into
// out. A non-200 becomes a *StatusError carrying any Retry-After the
// server attached to a 429 or 503.
func (c *Client) post(ctx context.Context, ep, path string, reqBody any, out any) (http.Header, error) {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Endpoint: ep, Status: resp.StatusCode}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, se
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("replica: %s: bad response body: %w", ep, err)
	}
	return resp.Header, nil
}

// tryQuery runs one POST /query against one endpoint.
func (c *Client) tryQuery(ctx context.Context, ep string, tokens []string) (*Result, error) {
	var out struct {
		Matches []Match `json:"matches"`
	}
	hdr, err := c.post(ctx, ep, "/query", map[string]any{"tokens": tokens}, &out)
	if err != nil {
		return nil, err
	}
	lag := int64(-1)
	if h := hdr.Get("X-Kjoin-Replica-Lag-Ms"); h != "" {
		if ms, perr := strconv.ParseInt(h, 10, 64); perr == nil {
			lag = ms
		}
	}
	return &Result{Matches: out.Matches, Endpoint: ep, LagMS: lag}, nil
}

// trySimilarity runs one POST /similarity against one endpoint.
func (c *Client) trySimilarity(ctx context.Context, ep string, x, y []string) (*Result, error) {
	var out struct {
		Sim float64 `json:"sim"`
	}
	if _, err := c.post(ctx, ep, "/similarity", map[string]any{"x": x, "y": y}, &out); err != nil {
		return nil, err
	}
	return &Result{Sim: out.Sim, Endpoint: ep, LagMS: -1}, nil
}
