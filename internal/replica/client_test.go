package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kjoin/internal/paperdata"
	"kjoin/internal/server"
)

// similarityHTTP scores one pair directly against one endpoint.
func similarityHTTP(t *testing.T, url string, x, y []string) float64 {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"x": x, "y": y})
	resp, err := http.Post(url+"/similarity", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("similarity at %s: status %d: %s", url, resp.StatusCode, b)
	}
	var out struct {
		Sim float64 `json:"sim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Sim
}

// deadEndpoint returns a URL nothing listens on.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	return url
}

// stalledEndpoint serves /query by hanging until the client gives up.
// The body must be drained first: net/http only watches for a client
// disconnect (and cancels r.Context()) once the request body hits EOF.
func stalledEndpoint(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// assertSameMatches requires res to be bit-identical to want.
func assertSameMatches(t *testing.T, res *Result, want []Match) {
	t.Helper()
	if len(res.Matches) != len(want) {
		t.Fatalf("client returned %d matches from %s, want %d", len(res.Matches), res.Endpoint, len(want))
	}
	for i := range want {
		if res.Matches[i].Index != want[i].Index ||
			math.Float64bits(res.Matches[i].Sim) != math.Float64bits(want[i].Sim) {
			t.Fatalf("match %d from %s: got %+v, want %+v", i, res.Endpoint, res.Matches[i], want[i])
		}
	}
}

// TestClientFailsOverWhileAnyReplicaIsDownOrStalled routes reads
// through a fleet where one replica is dead and one is stalled: every
// query must still return the primary's exact answer within the per-try
// deadline budget.
func TestClientFailsOverWhileAnyReplicaIsDownOrStalled(t *testing.T) {
	p := newPrimary(t, 0, nil)
	for _, o := range paperdata.Table1() {
		p.mustAdd(o)
	}
	live := startFollower(t, p.ts.URL, t.TempDir(), nil, generousBound())
	waitCaughtUp(t, live, uint64(len(p.acked)))
	c := &Client{
		Primary:    p.ts.URL,
		Replicas:   []string{deadEndpoint(t), stalledEndpoint(t), live.ts.URL},
		TryTimeout: 800 * time.Millisecond,
		HedgeDelay: 50 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
		Seed:       3,
	}
	// Budget: three endpoints (one dead → fast hedge, one stalled →
	// hedge at 50ms, one live) plus backoffs; each query must land well
	// inside a few try timeouts.
	for qi, q := range paperdata.Table1() {
		want := queryHTTP(t, p.ts.URL, q)
		start := time.Now()
		res, err := c.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if elapsed := time.Since(start); elapsed > 3*c.TryTimeout {
			t.Fatalf("query %d took %v, want under %v", qi, elapsed, 3*c.TryTimeout)
		}
		assertSameMatches(t, res, want)
	}
}

// TestClientHedgesStalledReplicaToPrimary proves the hedge: with the
// only replica stalled, the answer comes from the primary at roughly
// the hedge delay — not after the full try timeout.
func TestClientHedgesStalledReplicaToPrimary(t *testing.T) {
	p := newPrimary(t, 0, nil)
	for _, o := range paperdata.Table1()[:4] {
		p.mustAdd(o)
	}
	c := &Client{
		Primary:    p.ts.URL,
		Replicas:   []string{stalledEndpoint(t)},
		TryTimeout: 5 * time.Second,
		HedgeDelay: 50 * time.Millisecond,
		Seed:       3,
	}
	q := paperdata.Table1()[0]
	want := queryHTTP(t, p.ts.URL, q)
	start := time.Now()
	res, err := c.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.Endpoint != p.ts.URL {
		t.Fatalf("answer came from %s, want the hedged primary %s", res.Endpoint, p.ts.URL)
	}
	if elapsed >= c.TryTimeout {
		t.Fatalf("hedged query took %v — it waited out the stalled replica instead of hedging", elapsed)
	}
	assertSameMatches(t, res, want)
}

// TestClientReportsReplicaLagInMarkMode: a mark-mode replica serves
// with the lag header, and the client surfaces it.
func TestClientReportsReplicaLagInMarkMode(t *testing.T) {
	p := newPrimary(t, 0, nil)
	for _, o := range paperdata.Table1()[:4] {
		p.mustAdd(o)
	}
	fh := startFollower(t, p.ts.URL, t.TempDir(), nil,
		server.ReplicaConfig{Bound: time.Minute, Mode: server.StaleMark})
	waitCaughtUp(t, fh, uint64(len(p.acked)))
	c := &Client{Primary: p.ts.URL, Replicas: []string{fh.ts.URL}, Seed: 3}
	res, err := c.Query(context.Background(), paperdata.Table1()[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Endpoint != fh.ts.URL {
		t.Fatalf("answer came from %s, want the healthy replica %s", res.Endpoint, fh.ts.URL)
	}
	if res.LagMS < 0 {
		t.Fatalf("LagMS = %d, want the replica's advertised staleness", res.LagMS)
	}
}

// TestClientAllEndpointsDown: the client reports failure rather than
// hanging once every endpoint is unreachable.
func TestClientAllEndpointsDown(t *testing.T) {
	c := &Client{
		Primary:    deadEndpoint(t),
		Replicas:   []string{deadEndpoint(t)},
		TryTimeout: 300 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
		Seed:       3,
	}
	_, err := c.Query(context.Background(), paperdata.Table1()[0])
	if err == nil || !strings.Contains(err.Error(), "every endpoint failed") {
		t.Fatalf("err = %v, want every-endpoint failure", err)
	}
}

// TestClientHonorsRetryAfter: when an endpoint answers 429 with a
// Retry-After, the pause before the next endpoint attempt must be at
// least what the server asked for, not just the client's own jittered
// schedule. The replica always answers 429; the primary answers 429
// once (so the hedge inside the first try also fails and the sweep
// reaches its inter-endpoint backoff) and then serves normally.
func TestClientHonorsRetryAfter(t *testing.T) {
	p := newPrimary(t, 0, nil)
	for _, o := range paperdata.Table1()[:4] {
		p.mustAdd(o)
	}
	throttled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(throttled.Close)
	var primaryHits atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if primaryHits.Add(1) == 1 {
			io.Copy(io.Discard, r.Body)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		httputilProxy(t, p.ts.URL).ServeHTTP(w, r)
	}))
	t.Cleanup(gate.Close)
	c := &Client{
		Primary:    gate.URL,
		Replicas:   []string{throttled.URL},
		TryTimeout: 5 * time.Second,
		HedgeDelay: 50 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
		Seed:       3,
	}
	q := paperdata.Table1()[0]
	want := queryHTTP(t, p.ts.URL, q)
	start := time.Now()
	res, err := c.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("query returned after %v — the 1s Retry-After was not honored", elapsed)
	}
	assertSameMatches(t, res, want)
	if got := c.HedgeCount(); got != 1 {
		t.Fatalf("HedgeCount = %d, want 1 (the replica's 429 hedges to the primary once)", got)
	}
}

// httputilProxy forwards a request to the real primary, so a gating
// handler can throttle the first hit and then serve normally.
func httputilProxy(t *testing.T, target string) http.Handler {
	t.Helper()
	u, err := url.Parse(target)
	if err != nil {
		t.Fatal(err)
	}
	return httputil.NewSingleHostReverseProxy(u)
}

// TestClientRetryAfterCappedByContext: a huge Retry-After must not pin
// the caller past its own deadline.
func TestClientRetryAfterCappedByContext(t *testing.T) {
	throttled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(throttled.Close)
	c := &Client{
		Primary:    throttled.URL,
		Replicas:   []string{throttled.URL},
		TryTimeout: time.Second,
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
		Seed:       3,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, paperdata.Table1()[0])
	if err == nil {
		t.Fatal("query against a fully throttled fleet succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("query returned after %v — Retry-After outlived the caller's deadline", elapsed)
	}
}

// TestClientSimilarity: the Similarity call rides the same fail-over
// machinery and returns the primary's bit-exact score even when the
// only replica is dead.
func TestClientSimilarity(t *testing.T) {
	p := newPrimary(t, 0, nil)
	objs := paperdata.Table1()
	c := &Client{
		Primary:    p.ts.URL,
		Replicas:   []string{deadEndpoint(t)},
		TryTimeout: 2 * time.Second,
		HedgeDelay: 50 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
		Seed:       3,
	}
	want := similarityHTTP(t, p.ts.URL, objs[0], objs[1])
	res, err := c.Similarity(context.Background(), objs[0], objs[1])
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Sim) != math.Float64bits(want) {
		t.Fatalf("Similarity = %x, want bit-exact %x", math.Float64bits(res.Sim), math.Float64bits(want))
	}
}

// TestClientHonorsCallerContext: a cancelled caller context aborts the
// fail-over sweep immediately.
func TestClientHonorsCallerContext(t *testing.T) {
	c := &Client{
		Primary:    stalledEndpoint(t),
		TryTimeout: 30 * time.Second,
		Seed:       3,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, paperdata.Table1()[0])
	if err == nil {
		t.Fatal("query against a stalled primary succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled query returned after %v, want promptly", elapsed)
	}
}
