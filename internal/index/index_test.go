package index

import (
	"reflect"
	"testing"
)

func TestAddAndPostings(t *testing.T) {
	ix := New()
	ix.Add(1, 10)
	ix.Add(1, 11)
	ix.Add(2, 10)
	if got := ix.Postings(1); !reflect.DeepEqual(got, []int32{10, 11}) {
		t.Errorf("Postings(1) = %v", got)
	}
	if got := ix.Postings(2); !reflect.DeepEqual(got, []int32{10}) {
		t.Errorf("Postings(2) = %v", got)
	}
	if got := ix.Postings(99); got != nil {
		t.Errorf("Postings(99) = %v, want nil", got)
	}
	if ix.Keys() != 2 || ix.Len() != 3 {
		t.Errorf("Keys=%d Len=%d, want 2, 3", ix.Keys(), ix.Len())
	}
}

func TestAddAll(t *testing.T) {
	ix := New()
	ix.AddAll([]int32{5, 6, 7}, 42)
	for _, k := range []int32{5, 6, 7} {
		if got := ix.Postings(k); !reflect.DeepEqual(got, []int32{42}) {
			t.Errorf("Postings(%d) = %v", k, got)
		}
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestPostingsOrderedByInsertion(t *testing.T) {
	ix := New()
	for id := int32(0); id < 100; id++ {
		ix.Add(7, id)
	}
	ps := ix.Postings(7)
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("postings not ascending at %d", i)
		}
	}
}
