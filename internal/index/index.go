// Package index provides the inverted lists used by prefix filtering
// (paper §3.3: "for each node signature, we use an inverted list to keep
// the objects that have this signature in their prefixes").
//
// Keys are int32 signature ids (sig.Sig, or baseline-specific signature
// spaces); postings are object ids in insertion order (ascending when
// built by a single pass over the collection).
package index

// Inverted is an inverted index from signature to object postings.
type Inverted struct {
	lists map[int32][]int32
	size  int
}

// New returns an empty inverted index.
func New() *Inverted {
	return &Inverted{lists: make(map[int32][]int32)}
}

// Add appends object id to the posting list of key.
func (ix *Inverted) Add(key int32, id int32) {
	ix.lists[key] = append(ix.lists[key], id)
	ix.size++
}

// AddAll appends id to the posting lists of all keys (deduplicated by the
// caller if required).
func (ix *Inverted) AddAll(keys []int32, id int32) {
	for _, k := range keys {
		ix.Add(k, id)
	}
}

// Postings returns the posting list for key (nil if absent). The result
// must not be modified.
func (ix *Inverted) Postings(key int32) []int32 { return ix.lists[key] }

// Keys returns the number of distinct keys.
func (ix *Inverted) Keys() int { return len(ix.lists) }

// Len returns the total number of postings.
func (ix *Inverted) Len() int { return ix.size }
