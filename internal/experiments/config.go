// Package experiments regenerates every table and figure of the paper's
// evaluation section (§7). Each experiment prints the same rows/series
// the paper reports; absolute numbers differ from the authors' C++
// testbed, but the comparative shapes are the reproduced claims (see
// EXPERIMENTS.md). The runners are shared by cmd/kjoin-bench and the
// repository's bench_test.go.
package experiments

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"kjoin/internal/dataset"
)

// Config scales and routes an experiment run.
type Config struct {
	// Scale is the POI/Tweet collection size for the efficiency
	// experiments (the paper's "small" datasets are 100,000 records;
	// the default here is laptop-scale).
	Scale int
	// BaselineScale is the collection size for baseline comparisons
	// (FastJoin verification is expensive; the paper likewise used the
	// smaller datasets for Figures 12–13).
	BaselineScale int
	// QualityN optionally overrides the Pub/Res sizes (0 = paper sizes).
	QualityN int
	// Workers bounds join parallelism (0 = GOMAXPROCS).
	Workers int
	// Out receives the report (default os.Stdout).
	Out io.Writer
}

// DefaultConfig reads KJOIN_SCALE and KJOIN_BASELINE_SCALE from the
// environment (useful to push the harness toward the paper's 100k/1M
// scales) and falls back to laptop-scale defaults.
func DefaultConfig() Config {
	cfg := Config{Scale: 10000, BaselineScale: 2000, Out: os.Stdout}
	if v, err := strconv.Atoi(os.Getenv("KJOIN_SCALE")); err == nil && v > 0 {
		cfg.Scale = v
	}
	if v, err := strconv.Atoi(os.Getenv("KJOIN_BASELINE_SCALE")); err == nil && v > 0 {
		cfg.BaselineScale = v
	}
	if v, err := strconv.Atoi(os.Getenv("KJOIN_QUALITY_N")); err == nil && v > 0 {
		cfg.QualityN = v
	}
	return cfg
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.out(), format, args...)
}

// sharedData caches the generated datasets across experiments in one
// process (generation at 1M records is not free).
type sharedData struct {
	hier  *dataset.Hier
	poi   map[int]*dataset.Collection
	tweet map[int]*dataset.Collection
	pub   *dataset.Labeled
	res   *dataset.Labeled
}

var shared = &sharedData{poi: map[int]*dataset.Collection{}, tweet: map[int]*dataset.Collection{}}

func hier() *dataset.Hier {
	if shared.hier == nil {
		shared.hier = dataset.GenHierarchy(dataset.DefaultHierarchy())
	}
	return shared.hier
}

func poi(n int) *dataset.Collection {
	if shared.poi[n] == nil {
		shared.poi[n] = dataset.GenRecords(hier(), dataset.POIConfig(n))
	}
	return shared.poi[n]
}

func tweet(n int) *dataset.Collection {
	if shared.tweet[n] == nil {
		shared.tweet[n] = dataset.GenRecords(hier(), dataset.TweetConfig(n))
	}
	return shared.tweet[n]
}

func pub(n int) *dataset.Labeled {
	if shared.pub == nil || (n > 0 && len(shared.pub.Records) != n) {
		cfg := dataset.DefaultPub()
		if n > 0 {
			cfg.N = n
		}
		shared.pub = dataset.GenPub(cfg)
	}
	return shared.pub
}

func res(n int) *dataset.Labeled {
	if shared.res == nil || (n > 0 && len(shared.res.Records) != n) {
		cfg := dataset.DefaultRes()
		if n > 0 {
			cfg.N = n
		}
		shared.res = dataset.GenRes(hier(), cfg)
	}
	return shared.res
}

// ms renders a duration in the paper's seconds-with-precision style.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}
