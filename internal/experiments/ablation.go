package experiments

import (
	"time"

	"kjoin/internal/core"
	"kjoin/internal/sig"
	"kjoin/internal/verify"
)

// Ablation runs the design-choice ablations called out in DESIGN.md:
//
//	(a) plain vs weighted path prefix (Definition 8 vs 9) — candidates
//	    and time on POI across τ;
//	(b) K-Join+ typo tolerance φ_min sweep — quality on Res;
//	(c) K-Join+ mapping cap sweep — quality and preprocessing cost on Res;
//	(d) probe-loop worker scaling — speedup on POI.
func Ablation(cfg Config) error {
	if err := ablationPrefix(cfg); err != nil {
		return err
	}
	if err := ablationPhiMin(cfg); err != nil {
		return err
	}
	if err := ablationMaxMappings(cfg); err != nil {
		return err
	}
	return ablationWorkers(cfg)
}

// ablationPrefix compares the plain path prefix with the weighted path
// prefix (§4.2.2 claims the weighted prefix prunes more signatures).
func ablationPrefix(cfg Config) error {
	const delta = 0.8
	c := poi(cfg.Scale)
	cfg.printf("Ablation (a): plain vs weighted deep path prefix on POI (n=%d, delta=%.1f)\n", len(c.Records), delta)
	cfg.printf("%-6s %15s %15s %12s %12s\n", "tau", "plain cand", "weighted cand", "plain t", "weighted t")
	for _, tau := range []float64{0.75, 0.8, 0.85, 0.9, 0.95} {
		pc, pt, _, err := runKJoin(c, delta, tau, sig.Deep, false, verify.Adaptive, false, cfg.Workers)
		if err != nil {
			return err
		}
		wc, wt, _, err := runKJoin(c, delta, tau, sig.Deep, true, verify.Adaptive, false, cfg.Workers)
		if err != nil {
			return err
		}
		cfg.printf("%-6.2f %15d %15d %12s %12s\n", tau, pc, wc, secs(pt), secs(wt))
	}
	return nil
}

// ablationPhiMin sweeps the typo-tolerance threshold of K-Join+
// resolution on the Res corpus quality.
func ablationPhiMin(cfg Config) error {
	l := res(cfg.QualityN)
	const delta, tau = 0.5, 0.6
	cfg.printf("Ablation (b): K-Join+ phi_min sweep on Res (delta=%.1f, tau=%.1f)\n", delta, tau)
	cfg.printf("%-8s %10s %10s %10s %12s\n", "phi_min", "P(%)", "R(%)", "F1", "preprocess")
	for _, phi := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		opt := core.Defaults(delta, tau)
		opt.Plus = true
		opt.Synonyms = l.Aliases
		opt.PhiMin = phi
		opt.Workers = cfg.Workers
		t0 := time.Now()
		pairs, _, err := core.SelfJoin(l.H, l.Records, opt)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		var sc []scored
		for _, p := range pairs {
			sc = append(sc, scored{p.X, p.Y, p.Sim})
		}
		q := measureAt(sc, tau, l.Truth)
		cfg.printf("%-8.2f %10.1f %10.1f %10.3f %12s\n",
			phi, q.Precision()*100, q.Recall()*100, q.F1(), secs(elapsed))
	}
	return nil
}

// ablationMaxMappings sweeps the per-element mapping cap of K-Join+.
func ablationMaxMappings(cfg Config) error {
	l := res(cfg.QualityN)
	const delta, tau = 0.5, 0.6
	cfg.printf("Ablation (c): K-Join+ mapping cap sweep on Res (delta=%.1f, tau=%.1f)\n", delta, tau)
	cfg.printf("%-8s %10s %10s %10s %12s\n", "cap", "P(%)", "R(%)", "F1", "time")
	for _, cap := range []int{1, 2, 4, 8, 16} {
		opt := core.Defaults(delta, tau)
		opt.Plus = true
		opt.Synonyms = l.Aliases
		opt.MaxMappings = cap
		opt.Workers = cfg.Workers
		t0 := time.Now()
		pairs, _, err := core.SelfJoin(l.H, l.Records, opt)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		var sc []scored
		for _, p := range pairs {
			sc = append(sc, scored{p.X, p.Y, p.Sim})
		}
		q := measureAt(sc, tau, l.Truth)
		cfg.printf("%-8d %10.1f %10.1f %10.3f %12s\n",
			cap, q.Precision()*100, q.Recall()*100, q.F1(), secs(elapsed))
	}
	return nil
}

// ablationWorkers measures probe-loop scaling.
func ablationWorkers(cfg Config) error {
	c := poi(cfg.Scale)
	const delta, tau = 0.8, 0.8
	cfg.printf("Ablation (d): worker scaling on POI (n=%d, delta=%.1f, tau=%.1f)\n", len(c.Records), delta, tau)
	cfg.printf("%-8s %12s\n", "workers", "time")
	for _, w := range []int{1, 2, 4, 8} {
		_, t, _, err := runKJoin(c, delta, tau, sig.Deep, true, verify.Adaptive, false, w)
		if err != nil {
			return err
		}
		cfg.printf("%-8d %12s\n", w, secs(t))
	}
	return nil
}
