package experiments

import (
	"time"

	"kjoin/internal/core"
	"kjoin/internal/elem"
	"kjoin/internal/eval"
	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
	"kjoin/internal/setmetric"
)

// Knowledge runs the knowledge-quality experiment (not in the paper, but
// probing its thesis directly): degrade the hierarchy by detaching a
// growing fraction of its deep nodes to the root — destroying the
// ancestry knowledge while keeping every name resolvable — and measure
// Res quality. If the knowledge is what drives K-Join's quality, recall
// must fall toward the Synonym baseline's as degradation grows.
func Knowledge(cfg Config) error {
	l := res(cfg.QualityN)
	const delta, tau = 0.5, 0.6
	cfg.printf("Knowledge-quality: Res recall vs hierarchy degradation (delta=%.1f, tau=%.1f)\n", delta, tau)
	cfg.printf("%-10s %10s %10s %10s\n", "degraded", "P(%)", "R(%)", "F1")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		h := degradeHierarchy(l.H, frac, 99)
		opt := core.Defaults(delta, tau)
		opt.Workers = cfg.Workers
		pairs, _, err := core.SelfJoin(h, l.Records, opt)
		if err != nil {
			return err
		}
		keys := make([][2]int, len(pairs))
		for i, p := range pairs {
			keys[i] = [2]int{p.X, p.Y}
		}
		q := eval.Measure(keys, l.Truth)
		cfg.printf("%-10.2f %10.1f %10.1f %10.3f\n", frac, q.Precision()*100, q.Recall()*100, q.F1())
	}
	return nil
}

// degradeHierarchy rebuilds h with a fraction of its depth≥2 nodes
// re-attached directly under the root: their names stay resolvable but
// all ancestry knowledge about them is lost.
func degradeHierarchy(h *hierarchy.Hierarchy, frac float64, seed uint64) *hierarchy.Hierarchy {
	r := rng.New(seed)
	detached := make([]bool, h.Len())
	for i := 1; i < h.Len(); i++ {
		if h.Depth(hierarchy.NodeID(i)) >= 2 && r.Float64() < frac {
			detached[i] = true
		}
	}
	out := hierarchy.New(h.Name(h.Root()))
	idMap := make([]hierarchy.NodeID, h.Len())
	idMap[0] = out.Root()
	// Nodes are stored parent-before-child, so one pass suffices.
	for i := 1; i < h.Len(); i++ {
		n := hierarchy.NodeID(i)
		parent := out.Root()
		if !detached[i] {
			// Climb to the nearest non-detached ancestor.
			p := h.Parent(n)
			for p > 0 && detached[p] {
				p = h.Parent(p)
			}
			if p >= 0 {
				parent = idMap[p]
			}
		}
		idMap[i] = out.Add(parent, h.Name(n))
	}
	return out
}

// DAG runs the §6.5 extension end to end: a knowledge DAG (nodes with
// multiple parents) is converted to a tree by duplication, elements map
// to multiple nodes, and the filtered K-Join+ join must equal the naive
// join on the same converted hierarchy.
func DAG(cfg Config) error {
	// Build a category DAG: two domains, with a slice of nodes that have
	// parents in both (e.g. "CoffeeShop" under both Food and Retail).
	r := rng.New(7)
	var nodes []hierarchy.DAGNode
	nodes = append(nodes, hierarchy.DAGNode{Name: "root"})
	nm := 1
	addLevel := func(parents []int, count int, multi float64) []int {
		var out []int
		for i := 0; i < count; i++ {
			ps := []int{parents[r.Intn(len(parents))]}
			if r.Float64() < multi && len(parents) > 1 {
				for tries := 0; tries < 4; tries++ {
					p2 := parents[r.Intn(len(parents))]
					if p2 != ps[0] {
						ps = append(ps, p2)
						break
					}
				}
			}
			nodes = append(nodes, hierarchy.DAGNode{Name: nameOf(nm), Parents: ps})
			out = append(out, len(nodes)-1)
			nm++
		}
		return out
	}
	l1 := addLevel([]int{0}, 4, 0)
	l2 := addLevel(l1, 20, 0.2)
	l3 := addLevel(l2, 120, 0.3)
	addLevel(l3, 300, 0.3)

	h, err := hierarchy.FromDAG(nodes)
	if err != nil {
		return err
	}
	st := h.ComputeStats()
	cfg.printf("DAG extension (§6.5): %d DAG nodes → %d tree nodes after duplication\n", len(nodes), st.Nodes)

	// Objects sample DAG node names (which may now map to several tree
	// nodes each).
	var objs [][]string
	for i := 0; i < 400; i++ {
		n := 3 + r.Intn(5)
		var o []string
		for j := 0; j < n; j++ {
			o = append(o, nodes[1+r.Intn(len(nodes)-1)].Name)
		}
		objs = append(objs, o)
	}
	opt := core.Defaults(0.6, 0.6)
	opt.Plus = true // multi-node mappings (§6.4) handle the duplicates
	opt.Workers = cfg.Workers
	opt.ComputeSims = false
	got, jst, err := core.SelfJoin(h, objs, opt)
	if err != nil {
		return err
	}
	want, err := core.NaiveSelfJoin(h, objs, opt)
	if err != nil {
		return err
	}
	ok := len(got) == len(want)
	if ok {
		for i := range got {
			if got[i].X != want[i].X || got[i].Y != want[i].Y {
				ok = false
				break
			}
		}
	}
	cfg.printf("objects=%d candidates=%d results=%d matches-naive=%v\n",
		len(objs), jst.Candidates, len(got), ok)
	if !ok {
		cfg.printf("WARNING: filtered and naive joins disagree!\n")
	}
	// Example: generate one record naming a multi-parent node and show
	// its duplicated mappings.
	for i := 1; i < len(nodes); i++ {
		if len(nodes[i].Parents) > 1 {
			cfg.printf("multi-parent node %q maps to %d tree nodes\n",
				nodes[i].Name, len(h.Lookup(nodes[i].Name)))
			break
		}
	}
	return nil
}

// Metrics exercises the §6.2/§6.3 extensions at scale: every element
// metric × set metric combination runs the POI join with the default
// filtering, reporting candidates, results and time. (Completeness of
// the filters under each combination is asserted by the configuration
// grids in the internal/core tests.)
func Metrics(cfg Config) error {
	c := poi(cfg.BaselineScale)
	const delta, tau = 0.8, 0.85
	cfg.printf("Metrics extension (§6.2/§6.3) on POI (n=%d, delta=%.1f, tau=%.2f)\n", len(c.Records), delta, tau)
	cfg.printf("%-10s %-9s %14s %10s %10s\n", "element", "set", "candidates", "results", "time")
	for _, em := range []elem.Metric{elem.Standard, elem.WuPalmer} {
		for _, sm := range []setmetric.Kind{setmetric.Jaccard, setmetric.Dice, setmetric.Cosine} {
			opt := core.Defaults(delta, tau)
			opt.Metric = em
			opt.Set = sm
			opt.Workers = cfg.Workers
			opt.ComputeSims = false
			t0 := time.Now()
			pairs, st, err := core.SelfJoin(hier().H, c.Records, opt)
			if err != nil {
				return err
			}
			cfg.printf("%-10v %-9v %14d %10d %10s\n", em, sm, st.Candidates, len(pairs), secs(time.Since(t0)))
		}
	}
	return nil
}

// nameOf synthesizes a deterministic node name.
func nameOf(i int) string {
	const syll = "badecifogu"
	b := []byte{}
	for i > 0 {
		b = append(b, syll[i%10])
		i /= 10
	}
	return "cat" + string(b)
}
