package experiments

import (
	"fmt"

	"kjoin/internal/baseline"
	"kjoin/internal/core"
	"kjoin/internal/dataset"
	"kjoin/internal/eval"
)

// scored is a result pair with its similarity, so one low-τ run can be
// thresholded into a whole τ sweep (result sets are monotone in τ).
type scored struct {
	x, y int
	sim  float64
}

// runQualitySystem runs one system on a labeled corpus at element
// threshold delta and object threshold tau, returning scored pairs.
func runQualitySystem(sys string, l *dataset.Labeled, delta, tau float64, workers int) ([]scored, error) {
	var out []scored
	switch sys {
	case "K-Join", "K-Join+":
		opt := core.Defaults(delta, tau)
		opt.Workers = workers
		opt.ComputeSims = true
		if sys == "K-Join+" {
			opt.Plus = true
			opt.Synonyms = l.Aliases
		}
		pairs, _, err := core.SelfJoin(l.H, l.Records, opt)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			out = append(out, scored{p.X, p.Y, p.Sim})
		}
	case "FastJoin":
		pairs, _, err := baseline.FastJoin(l.Records, baseline.FastJoinOptions{Delta: delta, Tau: tau, Workers: workers})
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			out = append(out, scored{p.X, p.Y, p.Sim})
		}
	case "Synonym":
		pairs, _, err := baseline.SynonymJoin(l.Records, baseline.SynonymJoinOptions{Tau: tau, Synonyms: l.Synonyms, Workers: workers})
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			out = append(out, scored{p.X, p.Y, p.Sim})
		}
	case "Crowd":
		pairs, _, err := baseline.Crowd(l.Records, baseline.DefaultCrowdOptions(l.Truth, 7))
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			out = append(out, scored{p.X, p.Y, p.Sim})
		}
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", sys)
	}
	return out, nil
}

// measureAt thresholds scored pairs at tau and evaluates against truth.
func measureAt(pairs []scored, tau float64, truth map[[2]int]bool) eval.Quality {
	var keys [][2]int
	for _, p := range pairs {
		if p.sim >= tau-1e-9 {
			keys = append(keys, [2]int{p.x, p.y})
		}
	}
	return eval.Measure(keys, truth)
}

// Table4 prints the quality comparison on Pub and Res (δ=0.5, τ=0.6).
func Table4(cfg Config) error {
	const delta, tau = 0.5, 0.6
	cfg.printf("Table 4: Quality on Pub and Res (delta=%.1f, tau=%.1f)\n", delta, tau)
	cfg.printf("%-10s | %-9s %-9s %-9s | %-9s %-9s %-9s\n",
		"", "Pub P", "Pub R", "Pub F", "Res P", "Res R", "Res F")
	systems := []string{"FastJoin", "K-Join", "K-Join+", "Synonym", "Crowd"}
	p, r := pub(cfg.QualityN), res(cfg.QualityN)
	for _, sys := range systems {
		pp, err := runQualitySystem(sys, p, delta, tau, cfg.Workers)
		if err != nil {
			return err
		}
		rp, err := runQualitySystem(sys, r, delta, tau, cfg.Workers)
		if err != nil {
			return err
		}
		qp := measureAt(pp, tau, p.Truth)
		qr := measureAt(rp, tau, r.Truth)
		cfg.printf("%-10s | %-9.1f %-9.1f %-9.1f | %-9.1f %-9.1f %-9.1f\n",
			sys,
			qp.Precision()*100, qp.Recall()*100, qp.F1()*100,
			qr.Precision()*100, qr.Recall()*100, qr.F1()*100)
	}
	return nil
}

// Fig7 prints effectiveness versus the object threshold τ (δ=0.5):
// recall and F-measure for the four threshold-based systems on Pub and
// Res (paper Figure 7 a–d).
func Fig7(cfg Config) error {
	const delta = 0.5
	taus := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	systems := []string{"FastJoin", "Synonym", "K-Join", "K-Join+"}
	for _, ds := range []struct {
		name string
		l    *dataset.Labeled
	}{{"Pub", pub(cfg.QualityN)}, {"Res", res(cfg.QualityN)}} {
		// One low-τ run per system, thresholded per τ.
		runs := map[string][]scored{}
		for _, sys := range systems {
			p, err := runQualitySystem(sys, ds.l, delta, taus[0], cfg.Workers)
			if err != nil {
				return err
			}
			runs[sys] = p
		}
		for _, metric := range []string{"Recall(%)", "F-measure"} {
			cfg.printf("Fig 7 %s vs tau (delta=%.1f) on %s\n", metric, delta, ds.name)
			cfg.printf("%-6s", "tau")
			for _, sys := range systems {
				cfg.printf(" %12s", sys)
			}
			cfg.printf("\n")
			for _, tau := range taus {
				cfg.printf("%-6.2f", tau)
				for _, sys := range systems {
					q := measureAt(runs[sys], tau, ds.l.Truth)
					if metric == "Recall(%)" {
						cfg.printf(" %12.1f", q.Recall()*100)
					} else {
						cfg.printf(" %12.3f", q.F1())
					}
				}
				cfg.printf("\n")
			}
		}
	}
	return nil
}

// Fig8 prints effectiveness versus the element threshold δ (τ=0.7):
// recall and F-measure on Pub and Res (paper Figure 8 a–d).
func Fig8(cfg Config) error {
	const tau = 0.7
	deltas := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	systems := []string{"FastJoin", "Synonym", "K-Join", "K-Join+"}
	for _, ds := range []struct {
		name string
		l    *dataset.Labeled
	}{{"Pub", pub(cfg.QualityN)}, {"Res", res(cfg.QualityN)}} {
		type key struct {
			sys   string
			delta float64
		}
		runs := map[key]eval.Quality{}
		for _, sys := range systems {
			for _, delta := range deltas {
				p, err := runQualitySystem(sys, ds.l, delta, tau, cfg.Workers)
				if err != nil {
					return err
				}
				runs[key{sys, delta}] = measureAt(p, tau, ds.l.Truth)
			}
		}
		for _, metric := range []string{"Recall(%)", "F-measure"} {
			cfg.printf("Fig 8 %s vs delta (tau=%.1f) on %s\n", metric, tau, ds.name)
			cfg.printf("%-6s", "delta")
			for _, sys := range systems {
				cfg.printf(" %12s", sys)
			}
			cfg.printf("\n")
			for _, delta := range deltas {
				cfg.printf("%-6.2f", delta)
				for _, sys := range systems {
					q := runs[key{sys, delta}]
					if metric == "Recall(%)" {
						cfg.printf(" %12.1f", q.Recall()*100)
					} else {
						cfg.printf(" %12.3f", q.F1())
					}
				}
				cfg.printf("\n")
			}
		}
	}
	return nil
}
