package experiments

import (
	"time"

	"kjoin/internal/baseline"
	"kjoin/internal/core"
	"kjoin/internal/dataset"
	"kjoin/internal/sig"
	"kjoin/internal/verify"
)

// runKJoin runs a K-Join self join with the given scheme/verifier and
// returns candidates, elapsed time, and the join stats.
func runKJoin(c *dataset.Collection, delta, tau float64, scheme sig.Scheme, weighted bool,
	ver verify.Kind, plus bool, workers int) (int64, time.Duration, *core.Stats, error) {
	opt := core.Defaults(delta, tau)
	opt.Scheme = scheme
	opt.Weighted = weighted
	opt.Verifier = ver
	opt.Plus = plus
	opt.Workers = workers
	opt.ComputeSims = false
	t0 := time.Now()
	_, st, err := core.SelfJoin(hier().H, c.Records, opt)
	if err != nil {
		return 0, 0, nil, err
	}
	return st.Candidates, time.Since(t0), st, nil
}

// Fig9 evaluates the filtering schemes versus τ (δ=0.8): candidate
// counts and elapsed time for Node, Shallow and Deep signatures on POI
// and Tweet (paper Figure 9 a–d).
func Fig9(cfg Config) error {
	const delta = 0.8
	taus := []float64{0.75, 0.8, 0.85, 0.9, 0.95}
	for _, ds := range []struct {
		name string
		c    *dataset.Collection
	}{{"POI", poi(cfg.Scale)}, {"Tweet", tweet(cfg.Scale)}} {
		cfg.printf("Fig 9 filtering vs tau (delta=%.1f) on %s (n=%d)\n", delta, ds.name, len(ds.c.Records))
		cfg.printf("%-6s %15s %15s %15s %10s %10s %10s\n",
			"tau", "Node cand", "Shallow cand", "Deep cand", "Node t", "Shallow t", "Deep t")
		for _, tau := range taus {
			var cands [3]int64
			var times [3]time.Duration
			for i, scheme := range []sig.Scheme{sig.Node, sig.Shallow, sig.Deep} {
				c, t, _, err := runKJoin(ds.c, delta, tau, scheme, false, verify.Adaptive, false, cfg.Workers)
				if err != nil {
					return err
				}
				cands[i], times[i] = c, t
			}
			cfg.printf("%-6.2f %15d %15d %15d %10s %10s %10s\n",
				tau, cands[0], cands[1], cands[2], secs(times[0]), secs(times[1]), secs(times[2]))
		}
	}
	return nil
}

// Fig10 evaluates the filtering schemes versus δ (τ=0.95 on POI, 0.85 on
// Tweet), as in paper Figure 10 a–d.
func Fig10(cfg Config) error {
	deltas := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	for _, ds := range []struct {
		name string
		tau  float64
		c    *dataset.Collection
	}{{"POI", 0.95, poi(cfg.Scale)}, {"Tweet", 0.85, tweet(cfg.Scale)}} {
		cfg.printf("Fig 10 filtering vs delta (tau=%.2f) on %s (n=%d)\n", ds.tau, ds.name, len(ds.c.Records))
		cfg.printf("%-6s %15s %15s %15s %10s %10s %10s\n",
			"delta", "Node cand", "Shallow cand", "Deep cand", "Node t", "Shallow t", "Deep t")
		for _, delta := range deltas {
			var cands [3]int64
			var times [3]time.Duration
			for i, scheme := range []sig.Scheme{sig.Node, sig.Shallow, sig.Deep} {
				c, t, _, err := runKJoin(ds.c, delta, ds.tau, scheme, false, verify.Adaptive, false, cfg.Workers)
				if err != nil {
					return err
				}
				cands[i], times[i] = c, t
			}
			cfg.printf("%-6.2f %15d %15d %15d %10s %10s %10s\n",
				delta, cands[0], cands[1], cands[2], secs(times[0]), secs(times[1]), secs(times[2]))
		}
	}
	return nil
}

// Fig11 evaluates the verification algorithms Basic, SubGraph and
// Adaptive: verification time versus τ (δ=0.8) and versus δ (τ=0.95 POI
// / 0.85 Tweet), as in paper Figure 11 a–d. Filtering is fixed to deep
// path prefixes so only verification varies; the reported time is the
// portion of the probe phase spent in verification.
func Fig11(cfg Config) error {
	const delta = 0.8
	taus := []float64{0.75, 0.8, 0.85, 0.9, 0.95}
	verifiers := []verify.Kind{verify.Basic, verify.SubGraph, verify.Adaptive}
	for _, ds := range []struct {
		name string
		c    *dataset.Collection
	}{{"POI", poi(cfg.Scale)}, {"Tweet", tweet(cfg.Scale)}} {
		cfg.printf("Fig 11 verification vs tau (delta=%.1f) on %s (n=%d)\n", delta, ds.name, len(ds.c.Records))
		cfg.printf("%-6s %12s %12s %12s\n", "tau", "Basic", "SubGraph", "Adaptive")
		for _, tau := range taus {
			var times [3]time.Duration
			for i, ver := range verifiers {
				_, _, st, err := runKJoin(ds.c, delta, tau, sig.Deep, false, ver, false, cfg.Workers)
				if err != nil {
					return err
				}
				times[i] = st.VerifyTime
			}
			cfg.printf("%-6.2f %12s %12s %12s\n", tau, secs(times[0]), secs(times[1]), secs(times[2]))
		}
	}
	deltas := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	for _, ds := range []struct {
		name string
		tau  float64
		c    *dataset.Collection
	}{{"POI", 0.95, poi(cfg.Scale)}, {"Tweet", 0.85, tweet(cfg.Scale)}} {
		cfg.printf("Fig 11 verification vs delta (tau=%.2f) on %s (n=%d)\n", ds.tau, ds.name, len(ds.c.Records))
		cfg.printf("%-6s %12s %12s %12s\n", "delta", "Basic", "SubGraph", "Adaptive")
		for _, delta := range deltas {
			var times [3]time.Duration
			for i, ver := range verifiers {
				_, _, st, err := runKJoin(ds.c, delta, ds.tau, sig.Deep, false, ver, false, cfg.Workers)
				if err != nil {
					return err
				}
				times[i] = st.VerifyTime
			}
			cfg.printf("%-6.2f %12s %12s %12s\n", delta, secs(times[0]), secs(times[1]), secs(times[2]))
		}
	}
	return nil
}

// runBaselineJoin runs one of the four compared systems on a collection
// for the efficiency comparison, returning candidates and elapsed time.
func runCompareSystem(sys string, c *dataset.Collection, delta, tau float64, workers int) (int64, time.Duration, error) {
	switch sys {
	case "FastJoin":
		t0 := time.Now()
		_, st, err := baseline.FastJoin(c.Records, baseline.FastJoinOptions{Delta: delta, Tau: tau, Workers: workers})
		if err != nil {
			return 0, 0, err
		}
		return st.Candidates, time.Since(t0), nil
	case "Synonym":
		t0 := time.Now()
		_, st, err := baseline.SynonymJoin(c.Records, baseline.SynonymJoinOptions{Tau: tau, Workers: workers, Synonyms: nil})
		if err != nil {
			return 0, 0, err
		}
		return st.Candidates, time.Since(t0), nil
	case "K-Join":
		cand, t, _, err := runKJoin(c, delta, tau, sig.Deep, true, verify.Adaptive, false, workers)
		return cand, t, err
	case "K-Join+":
		cand, t, _, err := runKJoin(c, delta, tau, sig.Deep, true, verify.Adaptive, true, workers)
		return cand, t, err
	}
	return 0, 0, nil
}

// Fig12 compares candidates and time with the state-of-the-art systems
// versus τ (δ=0.8) on the small POI and Tweet datasets (paper Figure 12).
func Fig12(cfg Config) error {
	const delta = 0.8
	taus := []float64{0.75, 0.8, 0.85, 0.9, 0.95}
	systems := []string{"FastJoin", "Synonym", "K-Join", "K-Join+"}
	for _, ds := range []struct {
		name string
		c    *dataset.Collection
	}{{"POI", poi(cfg.BaselineScale)}, {"Tweet", tweet(cfg.BaselineScale)}} {
		cfg.printf("Fig 12 comparison vs tau (delta=%.1f) on %s (n=%d)\n", delta, ds.name, len(ds.c.Records))
		cfg.printf("%-6s %14s %14s %14s %14s %10s %10s %10s %10s\n", "tau",
			"FastJoin c", "Synonym c", "K-Join c", "K-Join+ c",
			"FJ t", "Syn t", "KJ t", "KJ+ t")
		for _, tau := range taus {
			var cands [4]int64
			var times [4]time.Duration
			for i, sys := range systems {
				c, t, err := runCompareSystem(sys, ds.c, delta, tau, cfg.Workers)
				if err != nil {
					return err
				}
				cands[i], times[i] = c, t
			}
			cfg.printf("%-6.2f %14d %14d %14d %14d %10s %10s %10s %10s\n", tau,
				cands[0], cands[1], cands[2], cands[3],
				secs(times[0]), secs(times[1]), secs(times[2]), secs(times[3]))
		}
	}
	return nil
}

// Fig13 compares candidates and time with the state-of-the-art systems
// versus δ (τ=0.95 POI / 0.85 Tweet) on the small datasets (Figure 13).
func Fig13(cfg Config) error {
	deltas := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	systems := []string{"FastJoin", "Synonym", "K-Join", "K-Join+"}
	for _, ds := range []struct {
		name string
		tau  float64
		c    *dataset.Collection
	}{{"POI", 0.95, poi(cfg.BaselineScale)}, {"Tweet", 0.85, tweet(cfg.BaselineScale)}} {
		cfg.printf("Fig 13 comparison vs delta (tau=%.2f) on %s (n=%d)\n", ds.tau, ds.name, len(ds.c.Records))
		cfg.printf("%-6s %14s %14s %14s %14s %10s %10s %10s %10s\n", "delta",
			"FastJoin c", "Synonym c", "K-Join c", "K-Join+ c",
			"FJ t", "Syn t", "KJ t", "KJ+ t")
		for _, delta := range deltas {
			var cands [4]int64
			var times [4]time.Duration
			for i, sys := range systems {
				c, t, err := runCompareSystem(sys, ds.c, delta, ds.tau, cfg.Workers)
				if err != nil {
					return err
				}
				cands[i], times[i] = c, t
			}
			cfg.printf("%-6.2f %14d %14d %14d %14d %10s %10s %10s %10s\n", delta,
				cands[0], cands[1], cands[2], cands[3],
				secs(times[0]), secs(times[1]), secs(times[2]), secs(times[3]))
		}
	}
	return nil
}

// Fig14 evaluates scalability: total join time versus collection size
// for K-Join and K-Join+ (δ=0.8, τ=0.95 POI / 0.85 Tweet), as in paper
// Figure 14. Sizes step from Scale/5 to Scale.
func Fig14(cfg Config) error {
	const delta = 0.8
	step := cfg.Scale / 5
	if step < 1 {
		step = 1
	}
	for _, ds := range []struct {
		name string
		tau  float64
		gen  func(int) *dataset.Collection
	}{{"POI", 0.95, poi}, {"Tweet", 0.85, tweet}} {
		cfg.printf("Fig 14 scalability (delta=%.1f, tau=%.2f) on %s\n", delta, ds.tau, ds.name)
		cfg.printf("%-10s %12s %12s\n", "objects", "K-Join", "K-Join+")
		for n := step; n <= cfg.Scale; n += step {
			c := ds.gen(n)
			_, t1, _, err := runKJoin(c, delta, ds.tau, sig.Deep, true, verify.Adaptive, false, cfg.Workers)
			if err != nil {
				return err
			}
			_, t2, _, err := runKJoin(c, delta, ds.tau, sig.Deep, true, verify.Adaptive, true, cfg.Workers)
			if err != nil {
				return err
			}
			cfg.printf("%-10d %12s %12s\n", n, secs(t1), secs(t2))
		}
	}
	return nil
}
