package experiments

import (
	"fmt"
	"sort"
)

// runners maps experiment ids to their runners.
var runners = map[string]func(Config) error{
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"fig13":     Fig13,
	"fig14":     Fig14,
	"ablation":  Ablation,
	"knowledge": Knowledge,
	"dag":       DAG,
	"metrics":   Metrics,
}

// Names returns the available experiment ids in a stable order.
func Names() []string {
	out := make([]string, 0, len(runners))
	for n := range runners {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id ("all" runs everything
// in paper order).
func Run(name string, cfg Config) error {
	if name == "all" {
		for _, n := range []string{"table2", "table3", "table4", "fig7", "fig8",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablation", "knowledge", "dag", "metrics"} {
			cfg.printf("\n===== %s =====\n", n)
			if err := runners[n](cfg); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	r, ok := runners[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}
