package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Scale: 300, BaselineScale: 150, QualityN: 200, Out: buf}
}

func TestNamesAndUnknown(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("Names() = %v", names)
	}
	if err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Run("table2", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4222") {
		t.Errorf("table2 output missing node count:\n%s", buf.String())
	}
	buf.Reset()
	if err := Run("table3", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Paper", "Restaurant", "POI(small)", "Tweet(large)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestQualityExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quality experiments are slow")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Run("table4", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, sys := range []string{"FastJoin", "K-Join", "K-Join+", "Synonym", "Crowd"} {
		if !strings.Contains(out, sys) {
			t.Errorf("table4 missing %s:\n%s", sys, out)
		}
	}
}

func TestEfficiencyExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency experiments are slow")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	for _, exp := range []string{"fig9", "fig11", "fig14"} {
		buf.Reset()
		if err := Run(exp, cfg); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
}

func TestMeasureAt(t *testing.T) {
	pairs := []scored{{0, 1, 0.9}, {2, 3, 0.5}}
	truth := map[[2]int]bool{{0, 1}: true}
	q := measureAt(pairs, 0.8, truth)
	if q.TruePositives != 1 || q.FalsePositives != 0 {
		t.Errorf("q = %+v", q)
	}
	q = measureAt(pairs, 0.4, truth)
	if q.TruePositives != 1 || q.FalsePositives != 1 {
		t.Errorf("q = %+v", q)
	}
}

func TestRunQualitySystemUnknown(t *testing.T) {
	if _, err := runQualitySystem("bogus", pub(200), 0.5, 0.5, 0); err == nil {
		t.Error("unknown system should error")
	}
}
