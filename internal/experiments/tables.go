package experiments

import "kjoin/internal/dataset"

// Table2 prints the knowledge-hierarchy shape statistics (paper Table 2).
func Table2(cfg Config) error {
	s := hier().H.ComputeStats()
	cfg.printf("Table 2: Knowledge Hierarchy\n")
	cfg.printf("%-8s %-7s %-10s %-10s %-10s\n", "# Nodes", "Height", "AvgFanout", "MaxFanout", "MinFanout")
	cfg.printf("%-8d %-7d %-10d %-10d %-10d\n", s.Nodes, s.Height, s.AvgFanout, s.MaxFanout, s.MinFanout)
	return nil
}

// Table3 prints the dataset statistics (paper Table 3).
func Table3(cfg Config) error {
	cfg.printf("Table 3: Datasets\n")
	cfg.printf("%-14s %-9s %-7s %-7s %-7s %-7s\n", "Dataset", "Size", "AvgLen", "MaxLen", "MinLen", "AvgDep")
	row := func(name string, s dataset.CollectionStats) {
		cfg.printf("%-14s %-9d %-7d %-7d %-7d %-7d\n", name, s.Size, s.AvgLen, s.MaxLen, s.MinLen, s.AvgDep)
	}
	p := pub(cfg.QualityN)
	row("Paper", dataset.ComputeCollectionStats(p.H, p.Records))
	r := res(cfg.QualityN)
	row("Restaurant", dataset.ComputeCollectionStats(r.H, r.Records))
	small := cfg.BaselineScale
	large := cfg.Scale
	row("POI(small)", dataset.ComputeCollectionStats(hier().H, poi(small).Records))
	row("POI(large)", dataset.ComputeCollectionStats(hier().H, poi(large).Records))
	row("Tweet(small)", dataset.ComputeCollectionStats(hier().H, tweet(small).Records))
	row("Tweet(large)", dataset.ComputeCollectionStats(hier().H, tweet(large).Records))
	return nil
}
