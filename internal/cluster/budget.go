package cluster

import (
	"context"
	"sync"
	"time"
)

// retryBudget is the SRE-style token bucket that bounds cluster-wide
// retry volume: every first attempt earns a fraction of a token, every
// retry spends a whole one. When failures are rare the bucket is full
// and retries are free; when a shard melts down the bucket drains and
// the coordinator sheds retries instead of amplifying the overload
// into a retry storm.
type retryBudget struct {
	//kjoinlint:lockorder rank=17
	mu     sync.Mutex
	tokens float64 // guarded by mu
	max    float64
	earn   float64 // earned per first attempt
}

// newRetryBudget returns a full bucket of capacity max (min 0) earning
// earn per first attempt.
func newRetryBudget(max, earn float64) *retryBudget {
	if max < 0 {
		max = 0
	}
	return &retryBudget{tokens: max, max: max, earn: earn}
}

// onAttempt credits a first attempt.
func (b *retryBudget) onAttempt() {
	b.mu.Lock()
	b.tokens += b.earn
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// spend takes one token for a retry, reporting false when the budget is
// exhausted and the retry must be shed.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// shardDeadline splits the request's remaining deadline budget into one
// shard attempt's allowance: the configured per-shard cap, shrunk so
// that slack remains for the gather/merge after the slowest shard
// answers. A request with no deadline gets the cap as-is.
func shardDeadline(ctx context.Context, cap, slack time.Duration) time.Duration {
	d, ok := ctx.Deadline()
	if !ok {
		return cap
	}
	remaining := time.Until(d) - slack
	if remaining < time.Millisecond {
		// The budget is gone; give the attempt a token allowance so it
		// fails fast with a deadline error instead of a zero-timeout panic.
		remaining = time.Millisecond
	}
	if remaining < cap {
		return remaining
	}
	return cap
}
