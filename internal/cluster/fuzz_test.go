package cluster

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"kjoin/internal/mathx"
)

// gatherPayload decodes fuzz bytes into shard payloads: 11-byte
// records of (control, int16 index, float64 sim bits); a control byte
// divisible by 4 opens a new shard. The raw float bits make NaN, Inf
// and negative zero routine inputs, and the signed index makes
// negative ids routine — exactly the malformed payloads a buggy or
// byzantine shard could gather back.
func gatherPayload(data []byte) [][]Entry {
	shards := [][]Entry{nil}
	for len(data) >= 11 {
		if data[0]%4 == 0 {
			shards = append(shards, nil)
		}
		idx := int(int16(binary.LittleEndian.Uint16(data[1:3])))
		sim := math.Float64frombits(binary.LittleEndian.Uint64(data[3:11]))
		shards[len(shards)-1] = append(shards[len(shards)-1], Entry{Index: idx, Sim: sim})
		data = data[11:]
	}
	return shards
}

// FuzzGatherMerge drives the gather merges with arbitrary shard
// payloads — duplicated, overlapping, empty, malformed — and checks
// they never panic and always produce their declared orders: top-k
// descending by similarity with ascending-id ties and at most k
// entries, ascending merge strictly increasing ids, both free of
// duplicates and non-finite scores.
func FuzzGatherMerge(f *testing.F) {
	rec := func(ctl byte, idx int16, sim float64) []byte {
		b := []byte{ctl}
		b = binary.LittleEndian.AppendUint16(b, uint16(idx))
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(sim))
	}
	cat := func(rs ...[]byte) []byte {
		var out []byte
		for _, r := range rs {
			out = append(out, r...)
		}
		return out
	}
	// Two shards with an overlapping id and a tie.
	f.Add(cat(rec(1, 5, 0.9), rec(2, 3, 0.7), rec(4, 5, 0.8), rec(3, 7, 0.9)), 3)
	// Malformed: NaN, +Inf, negative id, duplicate within one shard.
	f.Add(cat(rec(1, 1, math.NaN()), rec(1, -2, 0.5), rec(4, 9, math.Inf(1)), rec(1, 1, 0.4)), 2)
	// Empty shards and empty input.
	f.Add(cat(rec(4, 0, 0.1), rec(4, 0, 0.2), rec(4, 2, 0.3)), 0)
	f.Add([]byte{}, 5)

	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 0 {
			k = -k
		}
		k %= 64
		shards := gatherPayload(data)

		top := mergeTopK(shards, k)
		if k > 0 && len(top) > k {
			t.Fatalf("mergeTopK returned %d entries, cap %d", len(top), k)
		}
		seen := make(map[int]bool, len(top))
		for i, e := range top {
			if e.Index < 0 || math.IsNaN(e.Sim) || math.IsInf(e.Sim, 0) {
				t.Fatalf("mergeTopK kept malformed entry %+v", e)
			}
			if seen[e.Index] {
				t.Fatalf("mergeTopK kept duplicate id %d", e.Index)
			}
			seen[e.Index] = true
			if i > 0 {
				c := mathx.Cmp(top[i-1].Sim, e.Sim)
				if c < 0 {
					t.Fatalf("mergeTopK order broken at %d: %v before %v", i, top[i-1], e)
				}
				if c == 0 && top[i-1].Index >= e.Index {
					t.Fatalf("mergeTopK tie order broken at %d: %v before %v", i, top[i-1], e)
				}
			}
		}

		asc := mergeAscending(shards)
		for i, e := range asc {
			if e.Index < 0 || math.IsNaN(e.Sim) || math.IsInf(e.Sim, 0) {
				t.Fatalf("mergeAscending kept malformed entry %+v", e)
			}
			if i > 0 && asc[i-1].Index >= e.Index {
				t.Fatalf("mergeAscending order broken at %d: %v before %v", i, asc[i-1], e)
			}
		}
	})
}

// FuzzCoordinatorWALReplay feeds arbitrary record streams — one record
// per line, fields space-separated, exactly as a corrupted or byzantine
// coordinator WAL could replay them — through the replay reference
// implementation. Replay must refuse malformed or non-contiguous
// records with a typed error (never a panic), and any stream it does
// accept must rebuild a self-consistent control plane: every global id
// contiguous, homed at a cell that maps back to it, with live counts
// matching the non-tombstoned rows.
func FuzzCoordinatorWALReplay(f *testing.F) {
	// A clean add, an aborted add, a full grow with a move, an aborted
	// migration, and refusal shapes (unknown type, dangling done,
	// version skew) to seed the interesting branches.
	f.Add("assign-intent 0 0 kfc lax\nassign-done 0 0 0")
	f.Add("assign-intent 0 1 burger\nassign-abort 0\nassign-intent 0 1 burger\nassign-done 0 1 0")
	f.Add("assign-intent 0 0 kfc\nassign-done 0 0 0\n" +
		"reshard-begin 2 0,1,2 1 http://s2 0:0:0:2\n" +
		"move-intent 0 0 2\nmove-done 0 0 2 0\nreshard-finalize 3")
	f.Add("assign-intent 0 1 lax\nassign-done 0 1 0\n" +
		"reshard-begin 2 0,0 0 0:1:0:0\n" +
		"move-intent 0 1 0\nmove-abort 0\nreshard-abort 3")
	f.Add("bogus-record 1 2 3")
	f.Add("assign-done 0 0 0")
	f.Add("reshard-begin 9 0,1 0")

	f.Fuzz(func(t *testing.T, input string) {
		cfg := Config{Shards: []ShardConfig{{Primary: "http://s0"}, {Primary: "http://s1"}}}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs := &replayState{c: c}
		for _, line := range strings.Split(input, "\n") {
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			if err := rs.applyRecord(fields); err != nil {
				return // refused with a typed error: the correct outcome
			}
		}
		// Replay accepted the whole stream: the rebuilt state must be
		// self-consistent.
		c.mu.RLock()
		defer c.mu.RUnlock()
		if len(c.homeOf) != c.objects {
			t.Fatalf("%d homed ids for %d objects", len(c.homeOf), c.objects)
		}
		for g, loc := range c.homeOf {
			if loc.shard < 0 || loc.shard >= len(c.toGlobal) ||
				loc.local < 0 || loc.local >= len(c.toGlobal[loc.shard]) ||
				c.toGlobal[loc.shard][loc.local] != g {
				t.Fatalf("global id %d homed at %d:%d, which does not map back", g, loc.shard, loc.local)
			}
		}
		for s, tg := range c.toGlobal {
			live := 0
			for _, g := range tg {
				if g >= 0 {
					live++
				}
			}
			if live != c.live[s] {
				t.Fatalf("shard %d live count %d, rows say %d", s, c.live[s], live)
			}
		}
	})
}
