package cluster

import (
	"math"
	"testing"
)

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Float64bits(a[i].Sim) != math.Float64bits(b[i].Sim) {
			return false
		}
	}
	return true
}

// TestMergeAscendingOrdersAndDedups: overlapping shard payloads merge
// into ascending global-id order with one entry per id (first shard
// wins), and empty payloads contribute nothing.
func TestMergeAscendingOrdersAndDedups(t *testing.T) {
	got := mergeAscending([][]Entry{
		{{Index: 5, Sim: 0.9}, {Index: 1, Sim: 0.8}},
		nil,
		{{Index: 3, Sim: 0.7}, {Index: 5, Sim: 0.6}},
		{},
	})
	want := []Entry{{Index: 1, Sim: 0.8}, {Index: 3, Sim: 0.7}, {Index: 5, Sim: 0.9}}
	if !entriesEqual(got, want) {
		t.Fatalf("mergeAscending = %v, want %v", got, want)
	}
}

// TestMergeTopKDescendingWithTies: top-k ranks by descending
// similarity, breaks ties by ascending id, and truncates to k.
func TestMergeTopKDescendingWithTies(t *testing.T) {
	shards := [][]Entry{
		{{Index: 2, Sim: 0.7}, {Index: 9, Sim: 0.9}},
		{{Index: 4, Sim: 0.9}, {Index: 7, Sim: 0.5}},
	}
	got := mergeTopK(shards, 3)
	want := []Entry{{Index: 4, Sim: 0.9}, {Index: 9, Sim: 0.9}, {Index: 2, Sim: 0.7}}
	if !entriesEqual(got, want) {
		t.Fatalf("mergeTopK = %v, want %v", got, want)
	}
	if got := mergeTopK(shards, 0); len(got) != 4 {
		t.Fatalf("mergeTopK k=0 returned %d entries, want all 4", len(got))
	}
}

// TestMergeDropsMalformedEntries: NaN and infinite similarities and
// negative ids are dropped — NaN would break the strict weak order the
// sort needs, so a single malformed shard payload could otherwise
// scramble the whole merge.
func TestMergeDropsMalformedEntries(t *testing.T) {
	shards := [][]Entry{
		{{Index: 1, Sim: math.NaN()}, {Index: 2, Sim: 0.5}},
		{{Index: -3, Sim: 0.9}, {Index: 4, Sim: math.Inf(1)}},
	}
	if got := mergeAscending(shards); !entriesEqual(got, []Entry{{Index: 2, Sim: 0.5}}) {
		t.Fatalf("mergeAscending kept malformed entries: %v", got)
	}
	if got := mergeTopK(shards, 10); !entriesEqual(got, []Entry{{Index: 2, Sim: 0.5}}) {
		t.Fatalf("mergeTopK kept malformed entries: %v", got)
	}
}

// TestRetryBudgetSpendsAndEarns: the bucket starts full, sheds retries
// once drained, and refills from first attempts.
func TestRetryBudgetSpendsAndEarns(t *testing.T) {
	b := newRetryBudget(2, 0.5)
	if !b.spend() || !b.spend() {
		t.Fatal("full budget refused a retry")
	}
	if b.spend() {
		t.Fatal("drained budget granted a retry")
	}
	b.onAttempt()
	if b.spend() {
		t.Fatal("half a token granted a retry")
	}
	b.onAttempt()
	if !b.spend() {
		t.Fatal("earned token refused a retry")
	}
	for i := 0; i < 100; i++ {
		b.onAttempt()
	}
	if !b.spend() || !b.spend() || b.spend() {
		t.Fatal("budget earned past its capacity")
	}
}

// TestRouterIsDeterministicAndCoLocatesIdenticalSets: the home shard
// is a pure function of the token set — duplicates and order don't
// move it — and stays in range.
func TestRouterIsDeterministicAndCoLocatesIdenticalSets(t *testing.T) {
	r := NewRouter(4)
	a := r.Home([]string{"KFC", "Burger King", "bar"})
	b := r.Home([]string{"bar", "KFC", "Burger King", "KFC"})
	if a != b {
		t.Fatalf("home moved with token order/duplicates: %d vs %d", a, b)
	}
	if a < 0 || a >= 4 {
		t.Fatalf("home %d out of range", a)
	}
	if v := r.Version(); v != 1 {
		t.Fatalf("fresh route table version = %d, want 1", v)
	}
	// Sharing the minimum-hash token forces co-location: find the token
	// with the smallest hash and check that any superset keeps the home.
	base := []string{"KFC", "Burger King", "bar"}
	min := base[0]
	for _, tok := range base[1:] {
		if fnv1a64(tok) < fnv1a64(min) {
			min = tok
		}
	}
	if r.Home([]string{min}) != r.Home(base) {
		t.Fatal("minimum-hash token does not determine the home")
	}
}
