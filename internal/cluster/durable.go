package cluster

// Durable coordinator state. The control plane's entire truth — which
// global id every object got, where it lives, and what the route table
// says — is reconstructible from a coordinator WAL of typed records
// plus periodic snapshot generations, with the same loud
// over-compaction refusals as the server's data path.
//
// Every state change follows a write-ahead intent/outcome protocol:
//
//	assign-intent g home tok…   (fsync'd)   → shard add → assign-done g home local
//	move-intent   g src dst     (fsync'd)   → shard add → move-done g src dst local
//
// addMu serializes assigns, moves and reshard transitions, so the log
// holds at most ONE unresolved intent at any moment. Recovery replays
// the log; a dangling tail intent is resolved by consulting the target
// shard's object count: count == len(toGlobal[target]) means the shard
// never applied the add (the intent is aborted), count == len+1 means
// it did (the record is completed exactly as the live path would have).
// Either way the resolution is itself logged, so a second crash replays
// a closed log. Shard adds are serialized by the same addMu, which is
// what makes the count test unambiguous.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/fault"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// Coordinator WAL record types: fields[0] of every OpCoord record.
const (
	recAssignIntent = "assign-intent"    // g, home, tokens…
	recAssignDone   = "assign-done"      // g, home, local
	recAssignAbort  = "assign-abort"     // g
	recReshardBegin = "reshard-begin"    // vNew, assignCSV, nNew, spec…, moving…
	recMoveIntent   = "move-intent"      // g, src, dst
	recMoveDone     = "move-done"        // g, src, dst, dstLocal
	recMoveAbort    = "move-abort"       // g
	recReshardFinal = "reshard-finalize" // vFinal
	recReshardAbort = "reshard-abort"    // vAbort
)

// recordError is a malformed or out-of-sequence coordinator record:
// recovery refuses to start on one (the state is semantically unusable,
// not merely torn).
type recordError struct {
	field  string
	detail string
}

func (e *recordError) Error() string {
	return fmt.Sprintf("cluster: bad coordinator record (%s): %s", e.field, e.detail)
}

// Durability configures the coordinator's crash-safety machinery: a
// write-ahead log every id assignment and route change is fsync'd into
// before the add is acknowledged, and a directory of checksummed
// snapshot generations recovery rebuilds from.
type Durability struct {
	// FS is the filesystem (nil → the real one; tests inject faults).
	FS fault.FS
	// WALDir is the coordinator write-ahead-log directory (required).
	WALDir string
	// SnapshotDir is the snapshot generation directory (required; must
	// differ from WALDir so WAL repair never touches snapshots).
	SnapshotDir string
	// Keep is how many snapshot generations are retained (default 3).
	Keep int
	// Policy is the WAL fsync policy (default wal.SyncAlways).
	Policy wal.Policy
	// BatchWindow is the WAL group-commit window (0 = fsync immediately).
	BatchWindow time.Duration
	// Logf, when set, receives recovery and repair notices.
	Logf func(format string, args ...any)
}

// coordWAL bundles the open log with the snapshot generation store and
// its compaction-floor bookkeeping.
type coordWAL struct {
	wal  *wal.WAL
	gens *serverutil.GenStore
	keep int
	logf func(format string, args ...any)

	// snapMu serializes snapshot generations against each other. It is
	// acquired before addMu (snapshotting quiesces control-plane writes).
	//kjoinlint:lockorder rank=8
	snapMu sync.Mutex
	// snapSeqs holds the WAL sequence of each retained generation,
	// oldest first; the WAL may only be compacted up to snapSeqs[0].
	snapSeqs    []uint64 // guarded by snapMu
	lastSnapSeq atomic.Uint64
	snapOnDisk  atomic.Bool
}

// appendSync appends one typed record and group-commits it durable.
func (cw *coordWAL) appendSync(fields []string) (uint64, error) {
	seq, err := cw.wal.AppendCoord(fields)
	if err != nil {
		return 0, err
	}
	return seq, cw.wal.Sync(seq)
}

// migration is one in-flight reshard.
type migration struct {
	oldAssign []int // route table before begin: the dual-read union's other half, and what abort restores
	items     []moveItem
	moved     int // items with moved=true
}

// moveItem is one object the migration streams to a new home.
type moveItem struct {
	g, src, srcLocal, dst int
	moved                 bool
	dstLocal              int
}

// pendingIntent is the single unresolved intent record replay may end
// on.
type pendingIntent struct {
	kind   string // recAssignIntent or recMoveIntent
	g      int
	target int // home (assign) or dst (move)
	src    int // move only
	tokens []string
}

// ---- record encoding ----

func encAssignIntent(g, home int, tokens []string) []string {
	return append([]string{recAssignIntent, strconv.Itoa(g), strconv.Itoa(home)}, tokens...)
}

func encAssignDone(g, home, local int) []string {
	return []string{recAssignDone, strconv.Itoa(g), strconv.Itoa(home), strconv.Itoa(local)}
}

func encAssignAbort(g int) []string { return []string{recAssignAbort, strconv.Itoa(g)} }

func encMoveIntent(g, src, dst int) []string {
	return []string{recMoveIntent, strconv.Itoa(g), strconv.Itoa(src), strconv.Itoa(dst)}
}

func encMoveDone(g, src, dst, dstLocal int) []string {
	return []string{recMoveDone, strconv.Itoa(g), strconv.Itoa(src), strconv.Itoa(dst), strconv.Itoa(dstLocal)}
}

func encMoveAbort(g int) []string { return []string{recMoveAbort, strconv.Itoa(g)} }

// shardSpec renders a shard's endpoints as "primary|replica|…".
// Endpoints containing '|' are rejected at the reshard API.
func shardSpec(sc ShardConfig) string {
	return strings.Join(append([]string{sc.Primary}, sc.Replicas...), "|")
}

func parseShardSpec(s string) (ShardConfig, error) {
	parts := strings.Split(s, "|")
	if parts[0] == "" {
		return ShardConfig{}, &recordError{field: "shard-spec", detail: "empty primary"}
	}
	sc := ShardConfig{Primary: parts[0]}
	if len(parts) > 1 {
		sc.Replicas = parts[1:]
	}
	return sc, nil
}

func encReshardBegin(vNew int, newAssign []int, added []ShardConfig, items []moveItem) []string {
	fields := []string{recReshardBegin, strconv.Itoa(vNew), assignCSV(newAssign), strconv.Itoa(len(added))}
	for _, sc := range added {
		fields = append(fields, shardSpec(sc))
	}
	for _, it := range items {
		fields = append(fields, fmt.Sprintf("%d:%d:%d:%d", it.g, it.src, it.srcLocal, it.dst))
	}
	return fields
}

func parseMoveEntry(s string) (moveItem, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return moveItem{}, &recordError{field: "moving", detail: "bad entry " + s}
	}
	nums := make([]int, 4)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return moveItem{}, &recordError{field: "moving", detail: "bad entry " + s}
		}
		nums[i] = n
	}
	return moveItem{g: nums[0], src: nums[1], srcLocal: nums[2], dst: nums[3]}, nil
}

// atoiField parses one integer field of a typed record.
func atoiField(rec, name, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, &recordError{field: rec + "." + name, detail: "not a non-negative integer: " + v}
	}
	return n, nil
}

// ---- replay ----

// replayState carries the replay-only bookkeeping alongside the
// coordinator being rebuilt.
type replayState struct {
	c       *Coordinator
	pending *pendingIntent
}

// applyRecord applies one replayed (or snapshot-era) coordinator record
// to the state under construction. It performs the full contiguity
// validation — replay is the reference implementation of the record
// semantics, and the live mutation paths must land on exactly the state
// replay would build. The caller holds mu by construction: replay runs
// on an unpublished coordinator before any other goroutine can see it.
func (rs *replayState) applyRecord(fields []string) error {
	if len(fields) == 0 {
		return &recordError{field: "record", detail: "empty field list"}
	}
	c := rs.c
	switch fields[0] {
	case recAssignIntent:
		if rs.pending != nil {
			return &recordError{field: recAssignIntent, detail: "previous intent unresolved"}
		}
		if len(fields) < 3 {
			return &recordError{field: recAssignIntent, detail: "missing fields"}
		}
		g, err := atoiField(recAssignIntent, "g", fields[1])
		if err != nil {
			return err
		}
		home, err := atoiField(recAssignIntent, "home", fields[2])
		if err != nil {
			return err
		}
		if g != c.objects {
			return &recordError{field: recAssignIntent, detail: fmt.Sprintf("global id %d, expected %d", g, c.objects)}
		}
		if home >= len(c.shards) {
			return &recordError{field: recAssignIntent, detail: fmt.Sprintf("unknown shard index %d", home)}
		}
		rs.pending = &pendingIntent{kind: recAssignIntent, g: g, target: home, tokens: fields[3:]}
	case recAssignDone:
		if len(fields) != 4 {
			return &recordError{field: recAssignDone, detail: "field count"}
		}
		g, err := atoiField(recAssignDone, "g", fields[1])
		if err != nil {
			return err
		}
		home, err := atoiField(recAssignDone, "home", fields[2])
		if err != nil {
			return err
		}
		local, err := atoiField(recAssignDone, "local", fields[3])
		if err != nil {
			return err
		}
		if rs.pending == nil || rs.pending.kind != recAssignIntent || rs.pending.g != g || rs.pending.target != home {
			return &recordError{field: recAssignDone, detail: fmt.Sprintf("no matching intent for global id %d", g)}
		}
		rs.pending = nil
		return c.applyAssign(g, home, local)
	case recAssignAbort:
		if len(fields) != 2 {
			return &recordError{field: recAssignAbort, detail: "field count"}
		}
		g, err := atoiField(recAssignAbort, "g", fields[1])
		if err != nil {
			return err
		}
		if rs.pending == nil || rs.pending.kind != recAssignIntent || rs.pending.g != g {
			return &recordError{field: recAssignAbort, detail: fmt.Sprintf("no matching intent for global id %d", g)}
		}
		rs.pending = nil
	case recMoveIntent:
		if rs.pending != nil {
			return &recordError{field: recMoveIntent, detail: "previous intent unresolved"}
		}
		if len(fields) != 4 {
			return &recordError{field: recMoveIntent, detail: "field count"}
		}
		g, err := atoiField(recMoveIntent, "g", fields[1])
		if err != nil {
			return err
		}
		src, err := atoiField(recMoveIntent, "src", fields[2])
		if err != nil {
			return err
		}
		dst, err := atoiField(recMoveIntent, "dst", fields[3])
		if err != nil {
			return err
		}
		if c.mig == nil {
			return &recordError{field: recMoveIntent, detail: "no migration in progress"}
		}
		if it := c.mig.find(g); it == nil || it.moved || it.src != src || it.dst != dst {
			return &recordError{field: recMoveIntent, detail: fmt.Sprintf("global id %d is not an unmoved migration item", g)}
		}
		rs.pending = &pendingIntent{kind: recMoveIntent, g: g, target: dst, src: src}
	case recMoveDone:
		if len(fields) != 5 {
			return &recordError{field: recMoveDone, detail: "field count"}
		}
		g, err := atoiField(recMoveDone, "g", fields[1])
		if err != nil {
			return err
		}
		src, err := atoiField(recMoveDone, "src", fields[2])
		if err != nil {
			return err
		}
		dst, err := atoiField(recMoveDone, "dst", fields[3])
		if err != nil {
			return err
		}
		dstLocal, err := atoiField(recMoveDone, "local", fields[4])
		if err != nil {
			return err
		}
		if rs.pending == nil || rs.pending.kind != recMoveIntent || rs.pending.g != g || rs.pending.target != dst || rs.pending.src != src {
			return &recordError{field: recMoveDone, detail: fmt.Sprintf("no matching intent for global id %d", g)}
		}
		rs.pending = nil
		return c.applyMove(g, dst, dstLocal)
	case recMoveAbort:
		if len(fields) != 2 {
			return &recordError{field: recMoveAbort, detail: "field count"}
		}
		g, err := atoiField(recMoveAbort, "g", fields[1])
		if err != nil {
			return err
		}
		if rs.pending == nil || rs.pending.kind != recMoveIntent || rs.pending.g != g {
			return &recordError{field: recMoveAbort, detail: fmt.Sprintf("no matching intent for global id %d", g)}
		}
		rs.pending = nil
	case recReshardBegin:
		if rs.pending != nil {
			return &recordError{field: recReshardBegin, detail: "previous intent unresolved"}
		}
		if c.mig != nil {
			return &recordError{field: recReshardBegin, detail: "migration already in progress"}
		}
		if len(fields) < 4 {
			return &recordError{field: recReshardBegin, detail: "missing fields"}
		}
		vNew, err := atoiField(recReshardBegin, "version", fields[1])
		if err != nil {
			return err
		}
		if vNew != c.router.Version()+1 {
			return &recordError{field: recReshardBegin, detail: fmt.Sprintf("version %d, expected %d", vNew, c.router.Version()+1)}
		}
		nNew, err := atoiField(recReshardBegin, "added", fields[3])
		if err != nil {
			return err
		}
		if len(fields) < 4+nNew {
			return &recordError{field: recReshardBegin, detail: "truncated shard specs"}
		}
		added := make([]ShardConfig, 0, nNew)
		for _, spec := range fields[4 : 4+nNew] {
			sc, err := parseShardSpec(spec)
			if err != nil {
				return err
			}
			added = append(added, sc)
		}
		newAssign, err := parseAssignCSV(fields[2], len(c.shards)+nNew)
		if err != nil {
			return err
		}
		items := make([]moveItem, 0, len(fields)-4-nNew)
		for _, entry := range fields[4+nNew:] {
			it, err := parseMoveEntry(entry)
			if err != nil {
				return err
			}
			items = append(items, it)
		}
		return c.applyReshardBegin(vNew, newAssign, added, items)
	case recReshardFinal:
		if rs.pending != nil {
			return &recordError{field: recReshardFinal, detail: "previous intent unresolved"}
		}
		if len(fields) != 2 {
			return &recordError{field: recReshardFinal, detail: "field count"}
		}
		v, err := atoiField(recReshardFinal, "version", fields[1])
		if err != nil {
			return err
		}
		return c.applyReshardFinalize(v)
	case recReshardAbort:
		if rs.pending != nil {
			return &recordError{field: recReshardAbort, detail: "previous intent unresolved"}
		}
		if len(fields) != 2 {
			return &recordError{field: recReshardAbort, detail: "field count"}
		}
		v, err := atoiField(recReshardAbort, "version", fields[1])
		if err != nil {
			return err
		}
		return c.applyReshardAbort(v)
	default:
		return &recordError{field: fields[0], detail: "unknown record type"}
	}
	return nil
}

// find returns the migration item for global id g, nil when g is not in
// the moving set.
func (m *migration) find(g int) *moveItem {
	for i := range m.items {
		if m.items[i].g == g {
			return &m.items[i]
		}
	}
	return nil
}

// ---- state mutation (shared by replay and the live paths) ----

// applyAssign commits one id assignment: global id g lives on shard
// home at local id local. Caller holds addMu (or is single-threaded
// recovery).
func (c *Coordinator) applyAssign(g, home, local int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g != c.objects {
		return &recordError{field: recAssignDone, detail: fmt.Sprintf("global id %d, expected %d", g, c.objects)}
	}
	if home >= len(c.toGlobal) {
		return &recordError{field: recAssignDone, detail: fmt.Sprintf("unknown shard index %d", home)}
	}
	if local != len(c.toGlobal[home]) {
		return &recordError{field: recAssignDone, detail: fmt.Sprintf("shard %d local id %d, expected %d", home, local, len(c.toGlobal[home]))}
	}
	c.toGlobal[home] = append(c.toGlobal[home], g)
	c.live[home]++
	c.homeOf = append(c.homeOf, objLoc{shard: home, local: local})
	c.objects++
	return nil
}

// applyMove commits one migration copy: global id g now also lives on
// shard dst at dstLocal (the source copy stays authoritative until
// finalize). Caller holds addMu (or is single-threaded recovery).
func (c *Coordinator) applyMove(g, dst, dstLocal int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mig == nil {
		return &recordError{field: recMoveDone, detail: "no migration in progress"}
	}
	it := c.mig.find(g)
	if it == nil || it.moved || it.dst != dst {
		return &recordError{field: recMoveDone, detail: fmt.Sprintf("global id %d is not an unmoved migration item", g)}
	}
	if dstLocal != len(c.toGlobal[dst]) {
		return &recordError{field: recMoveDone, detail: fmt.Sprintf("shard %d local id %d, expected %d", dst, dstLocal, len(c.toGlobal[dst]))}
	}
	c.toGlobal[dst] = append(c.toGlobal[dst], g)
	c.live[dst]++
	it.moved = true
	it.dstLocal = dstLocal
	c.mig.moved++
	c.movedTotal.Add(1)
	return nil
}

// applyReshardBegin installs a migration: the fleet grows by the added
// shards, the route table switches to the new assignment under a bumped
// version (new adds route by it immediately), and the moving set enters
// its dual-read window. Caller holds addMu (or is single-threaded
// recovery).
func (c *Coordinator) applyReshardBegin(vNew int, newAssign []int, added []ShardConfig, items []moveItem) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sc := range added {
		c.shards = append(c.shards, c.newShard(len(c.shards), sc))
		c.toGlobal = append(c.toGlobal, nil)
		c.live = append(c.live, 0)
	}
	for i := range items {
		it := &items[i]
		if it.g >= c.objects || it.src >= len(c.shards) || it.dst >= len(c.shards) {
			return &recordError{field: recReshardBegin, detail: fmt.Sprintf("moving entry %d:%d:%d:%d out of range", it.g, it.src, it.srcLocal, it.dst)}
		}
		if loc := c.homeOf[it.g]; loc.shard != it.src || loc.local != it.srcLocal {
			return &recordError{field: recReshardBegin, detail: fmt.Sprintf("object %d lives at %d:%d, record says %d:%d", it.g, loc.shard, loc.local, it.src, it.srcLocal)}
		}
	}
	c.mig = &migration{oldAssign: c.router.Assign(), items: items}
	c.router = NewRouterAssign(vNew, newAssign)
	return nil
}

// applyReshardFinalize retires every moved object's source copy and
// closes the migration. Caller holds addMu (or is single-threaded
// recovery).
func (c *Coordinator) applyReshardFinalize(vFinal int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mig == nil {
		return &recordError{field: recReshardFinal, detail: "no migration in progress"}
	}
	if c.mig.moved != len(c.mig.items) {
		return &recordError{field: recReshardFinal, detail: fmt.Sprintf("%d of %d items moved", c.mig.moved, len(c.mig.items))}
	}
	if vFinal != c.router.Version()+1 {
		return &recordError{field: recReshardFinal, detail: fmt.Sprintf("version %d, expected %d", vFinal, c.router.Version()+1)}
	}
	for _, it := range c.mig.items {
		c.toGlobal[it.src][it.srcLocal] = -1 - it.g
		c.live[it.src]--
		c.homeOf[it.g] = objLoc{shard: it.dst, local: it.dstLocal}
	}
	c.router = NewRouterAssign(vFinal, c.router.assign)
	c.mig = nil
	return nil
}

// applyReshardAbort retires every moved object's destination copy,
// restores the pre-begin route table under a bumped version, and closes
// the migration. Objects added while the migration ran stay where the
// new assignment put them — still reachable, because gathers cover every
// shard with live objects — and a later reshard re-homes them. Caller
// holds addMu (or is single-threaded recovery).
func (c *Coordinator) applyReshardAbort(vAbort int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mig == nil {
		return &recordError{field: recReshardAbort, detail: "no migration in progress"}
	}
	if vAbort != c.router.Version()+1 {
		return &recordError{field: recReshardAbort, detail: fmt.Sprintf("version %d, expected %d", vAbort, c.router.Version()+1)}
	}
	for _, it := range c.mig.items {
		if !it.moved {
			continue
		}
		c.toGlobal[it.dst][it.dstLocal] = -1 - it.g
		c.live[it.dst]--
	}
	c.router = NewRouterAssign(vAbort, c.mig.oldAssign)
	c.mig = nil
	return nil
}

// ---- snapshot ----

const (
	coordSnapMagic   = "kjoin-coord-snapshot"
	coordSnapVersion = 1
	coordSnapTrailer = "end"
)

var coordCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter mirrors every byte into a CRC32C alongside the destination
// so the trailer can vouch for exactly the bytes written.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, coordCastagnoli, p)
	return cw.w.Write(p)
}

// tgCSV renders one shard's toGlobal row ("-" when empty); tombstones
// keep their -1-g encoding.
func tgCSV(row []int) string {
	if len(row) == 0 {
		return "-"
	}
	parts := make([]string, len(row))
	for i, g := range row {
		parts[i] = strconv.Itoa(g)
	}
	return strings.Join(parts, ",")
}

func parseTgCSV(s string) ([]int, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		g, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad snapshot toGlobal entry %q", p)
		}
		out = append(out, g)
	}
	return out, nil
}

// writeSnapshotLocked serializes the coordinator's control-plane state.
// Caller holds addMu (state is quiescent: no pending intent exists) and
// c.mu at least for reading.
func (c *Coordinator) writeSnapshotLocked(w io.Writer, walSeq uint64) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	state := "idle"
	if c.mig != nil {
		state = "migrating"
	}
	fmt.Fprintf(cw, "%s %d\n", coordSnapMagic, coordSnapVersion)
	fmt.Fprintf(cw, "version=%d objects=%d walseq=%d shards=%d state=%s\n",
		c.router.Version(), c.objects, walSeq, len(c.shards), state)
	for _, sh := range c.shards {
		fmt.Fprintf(cw, "shard %d %s\n", sh.id, shardSpec(sh.cfg))
	}
	fmt.Fprintf(cw, "assign %s\n", assignCSV(c.router.assign))
	for i, row := range c.toGlobal {
		fmt.Fprintf(cw, "tg %d %s\n", i, tgCSV(row))
	}
	if c.mig != nil {
		fmt.Fprintf(cw, "old %s\n", assignCSV(c.mig.oldAssign))
		for _, it := range c.mig.items {
			moved := 0
			if it.moved {
				moved = 1
			}
			fmt.Fprintf(cw, "mv %d:%d:%d:%d:%d:%d\n", it.g, it.src, it.srcLocal, it.dst, moved, it.dstLocal)
		}
	}
	fmt.Fprintf(bw, "%s crc32c=%08x\n", coordSnapTrailer, cw.crc)
	return bw.Flush()
}

// coordSnap is a parsed coordinator snapshot.
type coordSnap struct {
	version int
	objects int
	walSeq  uint64
	shards  []ShardConfig
	assign  []int
	tg      [][]int
	old     []int // non-nil when state=migrating
	items   []moveItem
	moving  bool
}

// loadCoordSnap parses and checksums a coordinator snapshot.
func loadCoordSnap(r io.Reader) (*coordSnap, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// The trailer is the last line; the CRC covers everything before it.
	idx := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '\n')
	if idx < 0 {
		return nil, errors.New("cluster: snapshot too short")
	}
	body, trailer := data[:idx+1], strings.TrimSpace(string(data[idx+1:]))
	var wantCRC uint32
	if _, err := fmt.Sscanf(trailer, coordSnapTrailer+" crc32c=%08x", &wantCRC); err != nil {
		return nil, fmt.Errorf("cluster: bad snapshot trailer %q", trailer)
	}
	if got := crc32.Checksum(body, coordCastagnoli); got != wantCRC {
		return nil, fmt.Errorf("cluster: snapshot checksum mismatch: %08x != %08x", got, wantCRC)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		return nil, errors.New("cluster: snapshot too short")
	}
	var ver int
	if _, err := fmt.Sscanf(lines[0], coordSnapMagic+" %d", &ver); err != nil || ver != coordSnapVersion {
		return nil, fmt.Errorf("cluster: bad snapshot magic %q", lines[0])
	}
	sn := &coordSnap{}
	var nshards int
	var state string
	if _, err := fmt.Sscanf(lines[1], "version=%d objects=%d walseq=%d shards=%d state=%s",
		&sn.version, &sn.objects, &sn.walSeq, &nshards, &state); err != nil {
		return nil, fmt.Errorf("cluster: bad snapshot header %q", lines[1])
	}
	sn.moving = state == "migrating"
	sn.shards = make([]ShardConfig, 0, nshards)
	sn.tg = make([][]int, nshards)
	for _, line := range lines[2:] {
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "shard":
			idxStr, spec, ok := strings.Cut(rest, " ")
			idx, err := strconv.Atoi(idxStr)
			if !ok || err != nil || idx != len(sn.shards) {
				return nil, fmt.Errorf("cluster: bad snapshot shard line %q", line)
			}
			sc, err := parseShardSpec(spec)
			if err != nil {
				return nil, err
			}
			sn.shards = append(sn.shards, sc)
		case "assign":
			a, err := parseAssignCSV(rest, nshards)
			if err != nil {
				return nil, err
			}
			sn.assign = a
		case "tg":
			idxStr, csv, ok := strings.Cut(rest, " ")
			idx, err := strconv.Atoi(idxStr)
			if !ok || err != nil || idx < 0 || idx >= nshards {
				return nil, fmt.Errorf("cluster: bad snapshot tg line %q", line)
			}
			row, err := parseTgCSV(csv)
			if err != nil {
				return nil, err
			}
			sn.tg[idx] = row
		case "old":
			a, err := parseAssignCSV(rest, nshards)
			if err != nil {
				return nil, err
			}
			sn.old = a
		case "mv":
			parts := strings.Split(rest, ":")
			if len(parts) != 6 {
				return nil, fmt.Errorf("cluster: bad snapshot mv line %q", line)
			}
			nums := make([]int, 6)
			for i, p := range parts {
				n, err := strconv.Atoi(p)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("cluster: bad snapshot mv line %q", line)
				}
				nums[i] = n
			}
			sn.items = append(sn.items, moveItem{
				g: nums[0], src: nums[1], srcLocal: nums[2], dst: nums[3],
				moved: nums[4] == 1, dstLocal: nums[5],
			})
		default:
			return nil, fmt.Errorf("cluster: unknown snapshot line %q", line)
		}
	}
	if len(sn.shards) != nshards || sn.assign == nil {
		return nil, errors.New("cluster: snapshot missing shard or assign lines")
	}
	if sn.moving && sn.old == nil {
		return nil, errors.New("cluster: migrating snapshot missing old assignment")
	}
	return sn, nil
}

// peekCoordSnapMeta reads just enough of a coordinator snapshot to
// learn the WAL sequence it covers, for seeding the compaction floor
// from every retained generation.
func peekCoordSnapMeta(r io.Reader) (walSeq uint64, err error) {
	br := bufio.NewReader(r)
	line1, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	var ver int
	if _, err := fmt.Sscanf(line1, coordSnapMagic+" %d", &ver); err != nil || ver != coordSnapVersion {
		return 0, fmt.Errorf("cluster: bad snapshot magic %q", strings.TrimSpace(line1))
	}
	line2, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	var version, objects, nshards int
	var state string
	if _, err := fmt.Sscanf(line2, "version=%d objects=%d walseq=%d shards=%d state=%s",
		&version, &objects, &walSeq, &nshards, &state); err != nil {
		return 0, fmt.Errorf("cluster: bad snapshot header %q", strings.TrimSpace(line2))
	}
	return walSeq, nil
}

// installSnap seeds a coordinator's state from a parsed snapshot. The
// caller holds mu by construction: installation runs during recovery on
// an unpublished coordinator before any other goroutine can see it.
func (c *Coordinator) installSnap(sn *coordSnap) error {
	c.shards = c.shards[:0]
	for i, sc := range sn.shards {
		c.shards = append(c.shards, c.newShard(i, sc))
	}
	c.toGlobal = sn.tg
	c.live = make([]int, len(sn.shards))
	c.homeOf = make([]objLoc, sn.objects)
	seen := make([]bool, sn.objects)
	for s, row := range sn.tg {
		for l, g := range row {
			if g < 0 {
				continue // tombstone
			}
			if g >= sn.objects {
				return fmt.Errorf("cluster: snapshot maps shard %d local %d to unknown global id %d", s, l, g)
			}
			c.live[s]++
			if !seen[g] {
				c.homeOf[g] = objLoc{shard: s, local: l}
				seen[g] = true
			}
		}
	}
	c.objects = sn.objects
	c.router = NewRouterAssign(sn.version, sn.assign)
	if sn.moving {
		c.mig = &migration{oldAssign: sn.old, items: sn.items}
		for i := range sn.items {
			it := &sn.items[i]
			if it.moved {
				c.mig.moved++
			} else if it.g < sn.objects {
				// The source copy stays authoritative until finalize; a moved
				// item may have registered its destination copy first above.
				c.homeOf[it.g] = objLoc{shard: it.src, local: it.srcLocal}
			}
		}
		for _, it := range sn.items {
			if it.moved {
				c.homeOf[it.g] = objLoc{shard: it.src, local: it.srcLocal}
			}
		}
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: snapshot has no live copy of global id %d", g)
		}
	}
	return nil
}

// ---- recovery ----

// Recover builds a durable coordinator: control-plane state is loaded
// from the newest readable snapshot generation, the coordinator WAL is
// replayed over it, a dangling tail intent is resolved against the
// target shard, and every later id assignment or route change is logged
// and fsync'd before it is acknowledged. cfg.Shards names the initial
// fleet and is only consulted when no durable state exists yet; once
// recorded, the durable fleet wins (resharding may have grown it past
// the flags). Recovery is single-threaded: until the coordinator is
// returned no other goroutine can see it, so Recover holds mu and
// snapMu by construction.
func Recover(cfg Config, d Durability) (*Coordinator, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	fsys := d.FS
	if fsys == nil {
		fsys = fault.OS{}
	}
	logf := d.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	gens := &serverutil.GenStore{FS: fsys, Dir: d.SnapshotDir, Keep: d.Keep, Logf: d.Logf}
	var sn *coordSnap
	name, err := gens.Load(func(r io.Reader) error {
		loaded, lerr := loadCoordSnap(r)
		if lerr != nil {
			return lerr
		}
		sn = loaded
		return nil
	})
	switch {
	case errors.Is(err, serverutil.ErrNoSnapshot):
		logf("coordinator recovery: no snapshot; starting from the configured fleet")
	case err != nil:
		return nil, fmt.Errorf("cluster: load coordinator snapshot: %w", err)
	default:
		if err := c.installSnap(sn); err != nil {
			return nil, err
		}
		logf("coordinator recovery: loaded snapshot %s (%d objects, route v%d, wal seq %d)",
			name, sn.objects, sn.version, sn.walSeq)
	}
	var base uint64
	if sn != nil {
		base = sn.walSeq
	}
	// Seed the compaction floor from every generation still on disk, not
	// just the one that loaded: the older ones remain fallback candidates,
	// so the WAL records they need must outlive them.
	snapSeqs := []uint64{base}
	if names, gerr := gens.Generations(); gerr == nil && len(names) > 0 {
		snapSeqs = snapSeqs[:0]
		for _, gn := range names {
			f, oerr := gens.Open(gn)
			if oerr != nil {
				logf("coordinator recovery: generation %s unreadable (%v); ignored for the compaction floor", gn, oerr)
				continue
			}
			seq, perr := peekCoordSnapMeta(f)
			_ = f.Close() // read-only; nothing written that a close could lose
			if perr != nil {
				logf("coordinator recovery: generation %s header corrupt (%v); ignored for the compaction floor", gn, perr)
				continue
			}
			snapSeqs = append(snapSeqs, seq)
		}
		if len(snapSeqs) == 0 {
			snapSeqs = append(snapSeqs, base)
		}
		sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	}
	rs := &replayState{c: c}
	replayed := 0
	var maxRec uint64
	w, err := wal.Open(fsys, d.WALDir, wal.Options{Policy: d.Policy, BatchWindow: d.BatchWindow, Logf: d.Logf},
		func(seq uint64, op wal.Op, fields []string) error {
			if seq > maxRec {
				maxRec = seq
			}
			if seq <= base {
				return nil // already inside the snapshot
			}
			if op != wal.OpCoord {
				return &recordError{field: "op", detail: fmt.Sprintf("non-coordinator record op %d at seq %d", op, seq)}
			}
			replayed++
			if rerr := rs.applyRecord(fields); rerr != nil {
				return fmt.Errorf("cluster: replaying seq %d: %w", seq, rerr)
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("cluster: open coordinator wal: %w", err)
	}
	if w.LastSeq() < base {
		_ = w.Close() // recovery already failed; the gap error is the one to report
		return nil, fmt.Errorf("cluster: coordinator wal ends at seq %d but snapshot %s covers seq %d: log truncated or deleted out-of-band", w.LastSeq(), name, base)
	}
	if tail := w.LastSeq(); tail > base && tail > maxRec {
		_ = w.Close() // recovery already failed; the gap error is the one to report
		return nil, fmt.Errorf("cluster: coordinator wal numbering reaches seq %d but its records end at seq %d and snapshot %s covers only seq %d: acknowledged records were compacted away", tail, maxRec, name, base)
	}
	c.cw = &coordWAL{wal: w, gens: gens, keep: gens.Keep, logf: logf}
	c.cw.snapSeqs = append(c.cw.snapSeqs, snapSeqs...)
	c.cw.lastSnapSeq.Store(base)
	c.cw.snapOnDisk.Store(name != "")
	if rs.pending != nil {
		if err := c.resolvePending(rs.pending, logf); err != nil {
			_ = w.Close() // recovery already failed; the resolution error is the one to report
			return nil, err
		}
	}
	logf("coordinator recovery: replayed %d record(s); %d objects, route v%d, %d shard(s)",
		replayed, c.objects, c.router.Version(), len(c.shards))
	if c.mig != nil {
		logf("coordinator recovery: migration in flight (%d of %d moved); resuming mover", c.mig.moved, len(c.mig.items))
		c.startMover()
	}
	return c, nil
}

// resolvePending settles the single intent record a crash can leave
// dangling: the target shard's object count says whether the shard add
// the intent announced actually applied. Count == expected means it
// never did (the intent is aborted); count == expected+1 means it did
// (the record is completed exactly as the live path would have). The
// resolution is itself logged so a second crash replays a closed log.
// An unreachable shard fails recovery loudly — guessing would corrupt
// the id map.
func (c *Coordinator) resolvePending(p *pendingIntent, logf func(string, ...any)) error {
	sh := c.shards[p.target]
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout)
	defer cancel()
	count, err := c.shardObjects(ctx, sh.cfg.Primary)
	if err != nil {
		return fmt.Errorf("cluster: cannot resolve in-flight %s for global id %d: shard %d (%s) unreachable: %w",
			p.kind, p.g, p.target, sh.cfg.Primary, err)
	}
	expected := len(c.toGlobal[p.target])
	switch count {
	case expected:
		// The shard never applied the add: the intent aborts, and the
		// object (never acknowledged) does not exist.
		var rec []string
		if p.kind == recAssignIntent {
			rec = encAssignAbort(p.g)
		} else {
			rec = encMoveAbort(p.g)
		}
		if _, err := c.cw.appendSync(rec); err != nil {
			return fmt.Errorf("cluster: logging intent resolution: %w", err)
		}
		logf("coordinator recovery: %s for global id %d never applied on shard %d; aborted", p.kind, p.g, p.target)
	case expected + 1:
		// The shard applied the add before the crash: adopt it at the
		// local id the count proves, exactly as the live path would have.
		if p.kind == recAssignIntent {
			if err := c.applyAssign(p.g, p.target, expected); err != nil {
				return err
			}
			if _, err := c.cw.appendSync(encAssignDone(p.g, p.target, expected)); err != nil {
				return fmt.Errorf("cluster: logging intent resolution: %w", err)
			}
		} else {
			if err := c.applyMove(p.g, p.target, expected); err != nil {
				return err
			}
			if _, err := c.cw.appendSync(encMoveDone(p.g, p.src, p.target, expected)); err != nil {
				return fmt.Errorf("cluster: logging intent resolution: %w", err)
			}
		}
		logf("coordinator recovery: %s for global id %d had applied on shard %d; adopted at local id %d", p.kind, p.g, p.target, expected)
	default:
		return fmt.Errorf("cluster: shard %d reports %d objects, coordinator expected %d or %d: writes bypassed the coordinator",
			p.target, count, expected, expected+1)
	}
	return nil
}

// shardObjects asks one shard primary how many objects it holds.
func (c *Coordinator) shardObjects(ctx context.Context, primary string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/stats", nil)
	if err != nil {
		return 0, err
	}
	hc := c.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: %s/stats: status %d", primary, resp.StatusCode)
	}
	var out struct {
		Objects *int `json:"objects"`
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Objects == nil {
		return 0, fmt.Errorf("cluster: %s/stats: bad body", primary)
	}
	return *out.Objects, nil
}

// SnapshotGeneration persists the control-plane state as a new snapshot
// generation and compacts the coordinator WAL. Control-plane writes are
// quiesced (addMu) only while the state serializes in memory and the
// log syncs through the covered sequence; the disk write happens with
// adds flowing again.
func (c *Coordinator) SnapshotGeneration() error {
	cw := c.cw
	if cw == nil {
		return errors.New("cluster: durability not configured")
	}
	cw.snapMu.Lock()
	defer cw.snapMu.Unlock()
	c.addMu.Lock()
	if err := cw.wal.Err(); err != nil {
		c.addMu.Unlock()
		return fmt.Errorf("cluster: coordinator wal unhealthy; refusing snapshot: %w", err)
	}
	seq := cw.wal.LastSeq()
	if cw.snapOnDisk.Load() && seq == cw.lastSnapSeq.Load() {
		c.addMu.Unlock()
		return nil // nothing advanced since the last durable generation
	}
	var buf bytes.Buffer
	c.mu.RLock()
	err := c.writeSnapshotLocked(&buf, seq)
	c.mu.RUnlock()
	if err == nil {
		// Records the snapshot claims to cover must be durable before a
		// generation naming that sequence exists.
		err = cw.wal.Sync(seq)
	}
	c.addMu.Unlock()
	if err != nil {
		return err
	}
	name, err := cw.gens.Save(func(dst io.Writer) error {
		_, werr := dst.Write(buf.Bytes())
		return werr
	})
	if err != nil {
		return err
	}
	cw.lastSnapSeq.Store(seq)
	cw.snapOnDisk.Store(true)
	keep := cw.keep
	if keep < 1 {
		keep = 3
	}
	cw.snapSeqs = append(cw.snapSeqs, seq)
	if len(cw.snapSeqs) > keep {
		cw.snapSeqs = cw.snapSeqs[len(cw.snapSeqs)-keep:]
	}
	if err := cw.wal.Compact(cw.snapSeqs[0]); err != nil {
		return fmt.Errorf("cluster: compact coordinator wal after %s: %w", name, err)
	}
	return nil
}

// Durable reports whether the coordinator logs its control-plane state.
func (c *Coordinator) Durable() bool { return c.cw != nil }
