package cluster

// The live-resharding chaos matrix. Resharding moves objects between
// shards while the cluster keeps serving, so every test here pins the
// same invariant the rest of the suite does: at no point — mid-window,
// post-finalize, post-abort, or post-crash — may any answer differ by
// one bit from a single node that was never resharded, and no acked
// object may be lost or duplicated.
//
// Covered: grow and shrink differentials, the dual-read window under a
// deliberately slow mover, transient source- and destination-shard
// death mid-migration, operator abort followed by a successful retry,
// and a coordinator crash swept across every WAL write the migration
// performs.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"kjoin/internal/fault"
	"kjoin/internal/paperdata"
)

// reshardStatus fetches GET /cluster/reshard.
func reshardStatus(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, b := doJSON(t, http.MethodGet, base+"/cluster/reshard", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reshard status: %d: %s", resp.StatusCode, b)
	}
	var out map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("reshard status: %v: %s", err, b)
	}
	return out
}

// startReshard posts the reshard request and returns the announced
// (version, moving) on success.
func startReshard(t *testing.T, base string, body map[string]any) (version, moving int) {
	t.Helper()
	resp, b := doJSON(t, http.MethodPost, base+"/cluster/reshard", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reshard begin: %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Version int `json:"version"`
		Moving  int `json:"moving"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("reshard begin: %v: %s", err, b)
	}
	return out.Version, out.Moving
}

// waitReshardIdle waits for the migration to finalize.
func waitReshardIdle(t *testing.T, base string) {
	t.Helper()
	waitUntil(t, "reshard to finalize", func() bool {
		return reshardStatus(t, base)["state"] == "idle"
	})
}

// TestReshardGrowBitIdentity: grow 2 shards to 3, wait for the mover to
// finalize, and pin everything — route version, moved counters, where
// the objects physically live, and the full query/join/add differential
// against a never-resharded single node — then reboot the coordinator
// and pin it all again off the replayed reshard records.
func TestReshardGrowBitIdentity(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newDFleet(t, 2, nil)
	f.mustBoot(fault.OS{})
	f.load(objs)
	ots := singleNode(t, objs)

	sc := f.newShardServer()
	version, moving := startReshard(t, f.ts.URL, map[string]any{"add": []map[string]any{{"primary": sc.Primary}}})
	if version != 2 {
		t.Fatalf("begin announced version %d, want 2", version)
	}
	if moving == 0 {
		t.Fatal("growing 2->3 moved nothing; the differential below would be vacuous")
	}
	waitReshardIdle(t, f.ts.URL)

	st := statsAt(t, f.ts.URL)
	if got := int(st["route_version"].(float64)); got != 3 {
		t.Fatalf("route_version after finalize = %d, want 3", got)
	}
	if got := int(st["reshard_moved_objects"].(float64)); got != moving {
		t.Fatalf("reshard_moved_objects = %d, want %d", got, moving)
	}
	if got := int(st["objects"].(float64)); got != len(objs) {
		t.Fatalf("objects = %d after reshard, want %d", got, len(objs))
	}
	// The new shard really owns its objects now.
	var route struct {
		Shards []struct {
			Objects int `json:"objects"`
		} `json:"shards"`
	}
	_, b := doJSON(t, http.MethodGet, f.ts.URL+"/cluster/route", nil, nil)
	if err := json.Unmarshal(b, &route); err != nil {
		t.Fatal(err)
	}
	// Note moving counts every rehomed object: growing the bucket count
	// also moves objects between the old shards, so the new shard owns
	// some — not all — of the moving set.
	total := 0
	for _, s := range route.Shards {
		total += s.Objects
	}
	if len(route.Shards) != 3 || route.Shards[2].Objects == 0 || total != len(objs) {
		t.Fatalf("route after grow: %+v, want 3 shards owning %d objects with the new one non-empty", route.Shards, len(objs))
	}

	f.verifyBitIdentical(ots.URL, objs)
	// Adds route by the new table and stay bit-identical.
	for i, o := range objs[:4] {
		_, wantID, wantPairs := addAt(t, ots.URL, o)
		_, gotID, gotPairs := addAt(t, f.ts.URL, o)
		if gotID != wantID || gotID != len(objs)+i {
			t.Fatalf("post-grow add %d: cluster id %d, oracle id %d", i, gotID, wantID)
		}
		assertPairsBitIdentical(t, fmt.Sprintf("post-grow add %d", i), gotPairs, wantPairs)
	}

	// Kill and reboot: the grown fleet, new route table, and every
	// moved object's location come back from the coordinator WAL alone.
	f.kill()
	f.mustBoot(fault.OS{})
	if got := int(statsAt(t, f.ts.URL)["route_version"].(float64)); got != 3 {
		t.Fatalf("route_version after reboot = %d, want 3", got)
	}
	f.verifyBitIdentical(ots.URL, append(append([][]string{}, objs...), objs[:4]...))
}

// TestReshardShrinkBitIdentity: reassign a shard's bucket away so the
// shard empties (the shrink direction), and pin the differential.
func TestReshardShrinkBitIdentity(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newDFleet(t, 3, nil)
	f.mustBoot(fault.OS{})
	f.load(objs)
	ots := singleNode(t, objs)

	_, moving := startReshard(t, f.ts.URL, map[string]any{"assign": []int{0, 1, 0}})
	if moving == 0 {
		t.Fatal("no objects homed on shard 2; the shrink is vacuous")
	}
	waitReshardIdle(t, f.ts.URL)

	var route struct {
		Version int `json:"version"`
		Shards  []struct {
			Objects int `json:"objects"`
		} `json:"shards"`
	}
	_, b := doJSON(t, http.MethodGet, f.ts.URL+"/cluster/route", nil, nil)
	if err := json.Unmarshal(b, &route); err != nil {
		t.Fatal(err)
	}
	if route.Version != 3 {
		t.Fatalf("route version after shrink = %d, want 3", route.Version)
	}
	if route.Shards[2].Objects != 0 {
		t.Fatalf("drained shard still owns %d objects", route.Shards[2].Objects)
	}

	f.verifyBitIdentical(ots.URL, objs)
	// New adds never land on the drained shard.
	for i, o := range objs[:3] {
		_, wantID, wantPairs := addAt(t, ots.URL, o)
		_, gotID, gotPairs := addAt(t, f.ts.URL, o)
		if gotID != wantID {
			t.Fatalf("post-shrink add %d: cluster id %d, oracle id %d", i, gotID, wantID)
		}
		assertPairsBitIdentical(t, fmt.Sprintf("post-shrink add %d", i), gotPairs, wantPairs)
	}
	_, b = doJSON(t, http.MethodGet, f.ts.URL+"/cluster/route", nil, nil)
	if err := json.Unmarshal(b, &route); err != nil {
		t.Fatal(err)
	}
	if route.Shards[2].Objects != 0 {
		t.Fatalf("post-shrink adds landed on the drained shard: %d objects", route.Shards[2].Objects)
	}
}

// TestReshardDualReadWindow: with a deliberately slow mover, every
// query and join issued while objects are split between their old and
// new homes must still be bit-identical — the scatter reads both homes
// and deduplicates by global id — and mid-window adds must land
// exactly once under the new table.
func TestReshardDualReadWindow(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newDFleet(t, 2, func(cfg *Config) { cfg.MoveThrottle = time.Second })
	f.mustBoot(fault.OS{})
	f.load(objs)
	ots := singleNode(t, objs)

	sc := f.newShardServer()
	_, moving := startReshard(t, f.ts.URL, map[string]any{"add": []map[string]any{{"primary": sc.Primary}}})
	if moving == 0 {
		t.Fatal("nothing moving; no dual-read window to test")
	}
	if st := reshardStatus(t, f.ts.URL); st["state"] != "migrating" {
		t.Fatalf("state %v immediately after begin with a 1s move throttle, want migrating", st["state"])
	}

	// Queries inside the window: bit-identical despite split homes.
	for qi, q := range objs {
		_, want := queryAt(t, ots.URL, q, nil)
		resp, got := queryAt(t, f.ts.URL, q, nil)
		if skipped := resp.Header.Get(HeaderSkippedShards); skipped != "" {
			t.Fatalf("window query %d skipped shards %q", qi, skipped)
		}
		assertMatchesBitIdentical(t, fmt.Sprintf("window query %d", qi), got, want)
	}
	// A join inside the window, against per-object oracle queries.
	var wantJoin []pairT
	for i, o := range objs[:4] {
		_, ms := queryAt(t, ots.URL, o, nil)
		for _, m := range ms {
			wantJoin = append(wantJoin, pairT{X: i, Y: m.Index, Sim: m.Sim})
		}
	}
	resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/join", map[string]any{"objects": objs[:4]}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window join: status %d: %s", resp.StatusCode, b)
	}
	var joinOut struct {
		Pairs []pairT `json:"pairs"`
	}
	if err := json.Unmarshal(b, &joinOut); err != nil {
		t.Fatal(err)
	}
	assertPairsBitIdentical(t, "window join", joinOut.Pairs, wantJoin)

	// A mid-window add: routed by the new table, discovered everywhere,
	// acked exactly once.
	_, wantID, wantPairs := addAt(t, ots.URL, objs[0])
	_, gotID, gotPairs := addAt(t, f.ts.URL, objs[0])
	if gotID != wantID || gotID != len(objs) {
		t.Fatalf("mid-window add: cluster id %d, oracle id %d", gotID, wantID)
	}
	assertPairsBitIdentical(t, "mid-window add", gotPairs, wantPairs)

	// A client still on the pre-reshard table gets the typed refusal.
	resp, b = doJSON(t, http.MethodPost, f.ts.URL+"/query",
		map[string]any{"tokens": objs[0]}, map[string]string{HeaderRouteVersion: "1"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale client in window: status %d: %s", resp.StatusCode, b)
	}
	if v := resp.Header.Get(HeaderRouteVersion); v != "2" {
		t.Fatalf("stale refusal carries version %q, want the window version 2", v)
	}

	if n := int(statsAt(t, f.ts.URL)["dual_read_total"].(float64)); n == 0 {
		t.Fatal("dual_read_total = 0 after a window full of scatters")
	}

	waitReshardIdle(t, f.ts.URL)
	f.verifyBitIdentical(ots.URL, append(append([][]string{}, objs...), objs[0]))
	if got := int(statsAt(t, f.ts.URL)["objects"].(float64)); got != len(objs)+1 {
		t.Fatalf("objects = %d after finalize, want %d (mid-window add lost or duplicated)", got, len(objs)+1)
	}
}

// TestReshardRidesOutTransientShardDeath: the destination refuses its
// first dials — the mover's copy goes ambiguous, the resolution consult
// fails too, and both must be retried until the truth is known — and
// mid-migration the source starts refusing reads for a while. The
// migration must still complete with nothing lost or duplicated.
func TestReshardRidesOutTransientShardDeath(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newDFleet(t, 2, func(cfg *Config) { cfg.MoveThrottle = 100 * time.Millisecond })
	f.mustBoot(fault.OS{})
	f.load(objs)
	ots := singleNode(t, objs)

	sc := f.newShardServer()
	// The only pre-idle traffic to the new shard is the mover's first
	// copy and its resolution consult: both are refused once,
	// deterministically.
	f.inj.Append(
		fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(2), N: 1},
		fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(2), N: 1},
	)
	_, moving := startReshard(t, f.ts.URL, map[string]any{"add": []map[string]any{{"primary": sc.Primary}}})
	if moving == 0 {
		t.Fatal("nothing moving")
	}
	// And mid-flight, the source refuses a read the mover needs.
	f.inj.Append(fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(0), N: 1})

	waitReshardIdle(t, f.ts.URL)
	if f.inj.Fired() < 2 {
		t.Fatalf("only %d injected faults fired; the destination-death path was not exercised", f.inj.Fired())
	}
	st := statsAt(t, f.ts.URL)
	if got := int(st["objects"].(float64)); got != len(objs) {
		t.Fatalf("objects = %d after faulted migration, want %d", got, len(objs))
	}
	if got := int(st["reshard_moved_objects"].(float64)); got != moving {
		t.Fatalf("reshard_moved_objects = %d, want %d (a refused copy was double-counted or dropped)", got, moving)
	}
	f.verifyBitIdentical(ots.URL, objs)
}

// TestReshardAbortThenRetry: abort a migration that has already moved
// some objects. The route must step to a fresh version of the old
// assignment, the half-moved destination copies must stop answering
// (no duplicates), every object must still answer from its source —
// and a later reshard over the same fleet, after a coordinator reboot
// replays begin/move/abort records, must complete normally.
func TestReshardAbortThenRetry(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	// A huge throttle parks the mover between objects, so the abort
	// lands in a quiet window rather than racing a half-logged move.
	f := newDFleet(t, 2, func(cfg *Config) { cfg.MoveThrottle = time.Hour })
	f.mustBoot(fault.OS{})
	f.load(objs)
	ots := singleNode(t, objs)

	sc := f.newShardServer()
	_, moving := startReshard(t, f.ts.URL, map[string]any{"add": []map[string]any{{"primary": sc.Primary}}})
	if moving < 2 {
		t.Fatalf("moving %d objects; need at least 2 so the abort catches a half-done migration", moving)
	}
	waitUntil(t, "first object to move", func() bool {
		return int(reshardStatus(t, f.ts.URL)["moved"].(float64)) >= 1
	})

	resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/cluster/reshard/abort", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("abort: %d: %s", resp.StatusCode, b)
	}
	var abortOut struct {
		Version int    `json:"version"`
		State   string `json:"state"`
	}
	if err := json.Unmarshal(b, &abortOut); err != nil {
		t.Fatal(err)
	}
	if abortOut.Version != 3 || abortOut.State != "aborted" {
		t.Fatalf("abort answered %+v, want version 3, state aborted", abortOut)
	}
	if st := reshardStatus(t, f.ts.URL); st["state"] != "idle" {
		t.Fatalf("state %v after abort, want idle", st["state"])
	}

	// Every answer comes from the source copies; the partial destination
	// copies are tombstoned and cannot duplicate a match.
	f.verifyBitIdentical(ots.URL, objs)
	for i, o := range objs[:2] {
		_, wantID, wantPairs := addAt(t, ots.URL, o)
		_, gotID, gotPairs := addAt(t, f.ts.URL, o)
		if gotID != wantID {
			t.Fatalf("post-abort add %d: cluster id %d, oracle id %d", i, gotID, wantID)
		}
		assertPairsBitIdentical(t, fmt.Sprintf("post-abort add %d", i), gotPairs, wantPairs)
	}
	all := append(append([][]string{}, objs...), objs[:2]...)

	// Reboot (replaying begin, the partial moves, and the abort), then
	// retry the reshard — this time without the parking throttle.
	f.kill()
	f.mod = nil
	f.mustBoot(fault.OS{})
	f.verifyBitIdentical(ots.URL, all)
	// The aborted attempt left shard 2 in the fleet with nothing
	// assigned; the retry routes bucket 2 at it.
	version, moving := startReshard(t, f.ts.URL, map[string]any{"assign": []int{0, 1, 2}})
	if version != 4 {
		t.Fatalf("retry began at version %d, want 4", version)
	}
	if moving == 0 {
		t.Fatal("retry moved nothing")
	}
	waitReshardIdle(t, f.ts.URL)
	if got := int(statsAt(t, f.ts.URL)["route_version"].(float64)); got != 5 {
		t.Fatalf("route_version after retried reshard = %d, want 5", got)
	}
	f.verifyBitIdentical(ots.URL, all)
	if got := int(statsAt(t, f.ts.URL)["objects"].(float64)); got != len(all) {
		t.Fatalf("objects = %d, want %d", got, len(all))
	}
}

// TestReshardCoordinatorCrashMidMigration sweeps a filesystem crash
// across every WAL write a migration performs — the begin record, each
// move's intent and done, and the finalize. Whatever survives, a clean
// reboot (plus re-issuing the reshard when its begin never became
// durable) must converge to the fully-resharded fleet with every
// object exactly once and every answer bit-identical.
func TestReshardCoordinatorCrashMidMigration(t *testing.T) {
	objs := paperdata.Table1()
	for n := 1; ; n++ {
		fired := false
		t.Run(fmt.Sprintf("crash-after-write-%d", n), func(t *testing.T) {
			watchGoroutines(t)
			f := newDFleet(t, 2, nil)
			f.mustBoot(fault.OS{})
			f.load(objs)
			f.kill() // the loading boot used a healthy filesystem

			sc := f.newShardServer()
			inj := fault.NewInjector(fault.OS{},
				fault.Fault{Op: fault.OpWrite, Path: "wal.", N: n, Mode: fault.CrashAfter})
			f.mustBoot(inj)
			resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/cluster/reshard",
				map[string]any{"add": []map[string]any{{"primary": sc.Primary}}}, nil)
			began := resp.StatusCode == http.StatusOK
			if !began && n > 1 {
				t.Fatalf("reshard begin refused before the crash point: %d: %s", resp.StatusCode, b)
			}
			if began {
				// Run until the crash poisons the log or the migration
				// finishes ahead of the crash point.
				waitUntil(t, "crash or finalize", func() bool {
					return inj.Crashed() || reshardStatus(t, f.ts.URL)["state"] == "idle"
				})
			}
			fired = inj.Fired() > 0
			f.kill()

			f.mustBoot(fault.OS{})
			if !began || int(statsAt(t, f.ts.URL)["route_version"].(float64)) == 1 {
				// The begin record never became durable: the operator sees the
				// old table and simply re-issues the reshard.
				if version, _ := startReshard(t, f.ts.URL, map[string]any{"add": []map[string]any{{"primary": sc.Primary}}}); version != 2 {
					t.Fatalf("re-issued reshard began at version %d, want 2", version)
				}
			}
			// Recovery re-arms the mover for a replayed in-flight
			// migration; either way the fleet converges.
			waitReshardIdle(t, f.ts.URL)
			st := statsAt(t, f.ts.URL)
			if got := int(st["route_version"].(float64)); got != 3 {
				t.Fatalf("route_version = %d after recovery, want 3", got)
			}
			if got := int(st["objects"].(float64)); got != len(objs) {
				t.Fatalf("objects = %d after recovery, want %d (migration lost or duplicated)", got, len(objs))
			}
			f.verifyBitIdentical(singleNode(t, objs).URL, objs)
			if _, id, _ := addAt(t, f.ts.URL, objs[0]); id != len(objs) {
				t.Fatalf("post-recovery add got id %d, want %d", id, len(objs))
			}
		})
		if !fired {
			break // past the last WAL write the migration performs
		}
		if n > 300 {
			t.Fatal("mid-migration crash sweep did not terminate")
		}
	}
}
