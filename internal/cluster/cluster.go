// Package cluster is the scatter-gather coordinator over a set of
// kjoin shard servers. Objects are partitioned across shards by a
// min-hash router (similar objects co-locate with probability about
// their Jaccard overlap, so most prefix-filter candidates are found by
// the home shard itself); queries and joins scatter to every shard and
// gather deterministically, bit-identical to a single-node server on
// full coverage.
//
// The coordinator is built to degrade instead of amplify: a
// per-request deadline budget is split into per-shard deadlines with
// slack reserved for the merge; shard attempts retry with jittered
// backoff under a cluster-wide retry budget (a token bucket — when a
// shard melts down, retries are shed rather than multiplied into a
// storm); each shard hides behind a circuit breaker
// (closed/open/half-open with a single probe) and a fail-over
// replica.Client that hedges slow primaries and falls back to
// replicas; and a per-request partial-result policy decides whether
// missing shards fail the request (503 naming the failed shards) or
// degrade it (200 with X-Kjoin-Coverage and the skipped shard list).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/replica"
	"kjoin/internal/rng"
	"kjoin/internal/serverutil"
)

// Partial-result policies: how a gather with failed shards answers.
const (
	// PartialFail turns any missed shard into a 503 naming the failed
	// shard set — for callers that need exact answers or nothing.
	PartialFail = "fail"
	// PartialDegrade answers 200 from the shards that responded, with
	// X-Kjoin-Coverage and X-Kjoin-Skipped-Shards declaring the gap —
	// for callers that prefer a partial answer now over none.
	PartialDegrade = "degrade"
)

// ShardConfig names one shard: its primary and any read replicas the
// fail-over client may use.
type ShardConfig struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Config tunes the coordinator. The zero value of every field selects
// the default documented on it.
type Config struct {
	// Shards is the fixed shard set (required, at least one).
	Shards []ShardConfig
	// RequestTimeout is the whole-request deadline budget (default 15s).
	// A request may shrink its own budget with an X-Kjoin-Deadline-Ms
	// header; it cannot grow it.
	RequestTimeout time.Duration
	// ShardTimeout caps one shard attempt (default 2s). The effective
	// per-shard deadline is min(ShardTimeout, remaining request budget
	// minus MergeSlack).
	ShardTimeout time.Duration
	// MergeSlack is the tail of the request budget reserved for the
	// gather merge after the slowest shard answers (default 25ms).
	MergeSlack time.Duration
	// HedgeDelay is how long a shard's replica attempt may run before
	// the fail-over client hedges the primary (default 100ms).
	HedgeDelay time.Duration
	// MaxRetries bounds retries per shard per request (default 1).
	MaxRetries int
	// RetryBudget is the retry token bucket's capacity (default 10);
	// RetryBudgetEarn is the fraction of a token earned per first
	// attempt (default 0.1). Retries spend one token each, so sustained
	// failure sheds retries at ~RetryBudgetEarn per request.
	RetryBudget     float64
	RetryBudgetEarn float64
	// RetryBackoffMin/Max bound the jittered pause before a retry
	// (defaults 5ms / 50ms).
	RetryBackoffMin time.Duration
	RetryBackoffMax time.Duration
	// BreakerThreshold opens a shard's breaker after that many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays open before admitting a half-open probe (default 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Partial is the default partial-result policy (PartialDegrade);
	// requests override it with an X-Kjoin-Partial header.
	Partial string
	// MaxBodyBytes caps a request body (default 1 MiB); MaxInflight
	// bounds concurrently executing requests (default 64).
	MaxBodyBytes int64
	MaxInflight  int
	// MoveThrottle, when positive, pauses the reshard mover between
	// objects so a migration trickles instead of saturating the fleet.
	MoveThrottle time.Duration
	// Seed makes retry jitter deterministic (default 1).
	Seed uint64
	// HTTP overrides the transport for every shard call (nil →
	// http.DefaultClient); chaos tests inject a faulty dialer here.
	HTTP *http.Client
	// Logf, when set, receives recovered panics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.MergeSlack == 0 {
		c.MergeSlack = 25 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 100 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 10
	}
	if c.RetryBudgetEarn == 0 {
		c.RetryBudgetEarn = 0.1
	}
	if c.RetryBackoffMin == 0 {
		c.RetryBackoffMin = 5 * time.Millisecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.Partial == "" {
		c.Partial = PartialDegrade
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shard is one shard's client-side state. The stable index id never
// changes once assigned: resharding appends new shards and retires old
// ones from the route table, but an index keeps naming the same
// endpoint forever (toGlobal rows, WAL records and snapshots all speak
// stable indices).
type shard struct {
	id      int
	cfg     ShardConfig
	client  *replica.Client
	breaker *Breaker
}

// objLoc is where one global object currently lives.
type objLoc struct {
	shard int // stable shard index
	local int // shard-local id
}

// Coordinator is an http.Handler fronting the shard fleet. It owns the
// global id space: every accepted object gets the id a single-node
// server would have assigned it, and gathers translate shard-local
// match indices back through that mapping, which is what makes cluster
// answers comparable (and on full coverage bit-identical) to one node.
//
// With durability configured (Recover), every id assignment and route
// change is a typed record in a coordinator WAL, fsync'd before the add
// is acknowledged, so a killed-and-restarted coordinator answers
// bit-identically to one that never died.
type Coordinator struct {
	cfg     Config
	budget  *retryBudget
	sem     *serverutil.Semaphore
	handler http.Handler

	// addMu serializes cluster adds end-to-end (home-shard add, global
	// id assignment, cross-shard pair discovery) and every reshard
	// transition and object move: insertion order is global-id order, an
	// add's discovery sweep sees exactly the objects with smaller ids —
	// the single-node add's invariant — and the coordinator WAL holds at
	// most one unresolved intent record at any moment, which is what
	// makes crash recovery's tail resolution unambiguous.
	//kjoinlint:lockorder rank=12
	addMu sync.Mutex

	//kjoinlint:lockorder rank=14
	mu sync.RWMutex
	// shards is the full fleet, append-only, indexed by stable shard
	// index. Guarded by mu for append (reshard begin); the *shard values
	// are immutable.
	shards []*shard
	// router is the current route table; replaced whole (never mutated)
	// at every reshard transition. Guarded by mu.
	router *Router
	// toGlobal maps each shard's local ids to global ids, in local-id
	// order. A tombstone (the copy retired by a reshard finalize or
	// abort) is stored as -1-g, which no gather can emit. Guarded by mu;
	// written under addMu+mu, read under mu.
	toGlobal [][]int
	// live counts each shard's non-tombstoned entries; a shard with live
	// objects stays in the gather set even when the route table no
	// longer assigns it anything. Guarded by mu.
	live []int
	// homeOf maps each global id to its current authoritative location
	// (the source copy until a migration finalizes). Guarded by mu.
	homeOf  []objLoc
	objects int // guarded by mu; next global id
	// mig is the in-flight migration, nil when idle. Guarded by mu.
	mig *migration

	// cw is the durable control-plane state (nil on a non-durable
	// coordinator): the coordinator WAL plus the snapshot generation
	// store. The WAL handle itself is safe for concurrent use; cw's
	// bookkeeping is written under addMu.
	cw *coordWAL

	// jmu guards the retry-jitter RNG (leaf lock).
	//kjoinlint:lockorder rank=18
	jmu sync.Mutex
	jr  *rng.RNG // guarded by jmu

	draining      atomic.Bool
	rr            atomic.Int64 // round-robin cursor for /similarity
	retriesTotal  atomic.Int64
	partialTotal  atomic.Int64
	dualReadTotal atomic.Int64 // gathers served during a dual-read window
	movedTotal    atomic.Int64 // objects moved by resharding, cumulative

	// closed stops the reshard mover; moverWG joins it on Close.
	closeOnce sync.Once
	closed    chan struct{}
	moverWG   sync.WaitGroup

	// ctrlFailed latches a control-plane invariant violation (shard
	// drift, an intent the log can never close): once set, adds and
	// reshard transitions fail fast instead of appending records after a
	// state the log cannot vouch for. Cleared only by restart (recovery
	// re-derives the truth from the log).
	ctrlFailed atomic.Pointer[ctrlFailure]
}

// ctrlFailure wraps the latched control-plane error.
type ctrlFailure struct{ err error }

// newShard builds one shard's client-side state for stable index id.
func (c *Coordinator) newShard(id int, sc ShardConfig) *shard {
	return &shard{
		id:  id,
		cfg: sc,
		client: &replica.Client{
			Primary:    sc.Primary,
			Replicas:   sc.Replicas,
			HTTP:       c.cfg.HTTP,
			TryTimeout: c.cfg.ShardTimeout,
			HedgeDelay: c.cfg.HedgeDelay,
			Seed:       c.cfg.Seed + uint64(id) + 1,
		},
		breaker: NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown),
	}
}

// New returns a non-durable coordinator over the configured shard
// fleet: the id map and route table live only in memory, and resharding
// (which needs durable progress records) is refused. Use Recover for a
// crash-safe control plane.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard is required")
	}
	if cfg.Partial != PartialFail && cfg.Partial != PartialDegrade {
		return nil, fmt.Errorf("cluster: unknown partial policy %q", cfg.Partial)
	}
	c := &Coordinator{
		cfg:      cfg,
		router:   NewRouter(len(cfg.Shards)),
		budget:   newRetryBudget(cfg.RetryBudget, cfg.RetryBudgetEarn),
		sem:      serverutil.NewSemaphore(cfg.MaxInflight),
		toGlobal: make([][]int, len(cfg.Shards)),
		live:     make([]int, len(cfg.Shards)),
		jr:       rng.New(cfg.Seed),
		closed:   make(chan struct{}),
	}
	for i, sc := range cfg.Shards {
		if sc.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %d has no primary", i)
		}
		c.shards = append(c.shards, c.newShard(i, sc))
	}
	c.handler = serverutil.Chain(c.mux(), serverutil.Recover(cfg.Logf))
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// SetDraining flips the readiness probe so load balancers stop routing
// new traffic here; serving itself is unaffected.
func (c *Coordinator) SetDraining(v bool) { c.draining.Store(v) }

// Close stops the reshard mover (waiting for it to exit) and closes the
// coordinator WAL. The coordinator keeps serving reads afterwards; adds
// on a durable coordinator fail once the log is closed.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.moverWG.Wait()
	if c.cw == nil {
		return nil
	}
	return c.cw.wal.Close()
}

// gatherTargets returns the stable indices a gather must scatter to —
// every shard the route table assigns plus every shard still holding
// live objects (during a dual-read window that is both the old and new
// homes of the moving set; after an aborted shrink it keeps stranded
// adds reachable) — and whether a migration made the set a dual-read
// union.
func (c *Coordinator) gatherTargets() (targets []int, dual bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gatherTargetsLocked()
}

// gatherTargetsLocked is gatherTargets under a held c.mu.
func (c *Coordinator) gatherTargetsLocked() (targets []int, dual bool) {
	in := make([]bool, len(c.shards))
	for _, s := range c.router.assign {
		in[s] = true
	}
	if c.mig != nil {
		dual = true
		for _, s := range c.mig.oldAssign {
			in[s] = true
		}
	}
	for s, n := range c.live {
		if n > 0 {
			in[s] = true
		}
	}
	for s, ok := range in {
		if ok {
			targets = append(targets, s)
		}
	}
	return targets, dual
}

// errBreakerOpen is a shard attempt rejected at the breaker without
// touching the network.
var errBreakerOpen = errors.New("cluster: circuit breaker open")

// jitterBackoff returns a deterministic retry pause in
// [RetryBackoffMin, RetryBackoffMax].
func (c *Coordinator) jitterBackoff() time.Duration {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	span := c.cfg.RetryBackoffMax - c.cfg.RetryBackoffMin
	return c.cfg.RetryBackoffMin + time.Duration(c.jr.Float64()*float64(span))
}

// callShard runs one logical shard request with the full robustness
// stack: breaker admission, a per-attempt deadline carved from the
// request budget, bounded retries under the cluster retry budget with
// jittered backoff. call receives a context already bounded by the
// per-shard deadline. An abort caused by the parent request's own
// deadline is forgiven, not charged to the shard's breaker.
func callShard[T any](c *Coordinator, ctx context.Context, sh *shard, call func(context.Context, *replica.Client) (T, error)) (T, error) {
	var zero T
	c.budget.onAttempt()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !sh.breaker.Allow() {
			if lastErr != nil {
				return zero, lastErr
			}
			return zero, errBreakerOpen
		}
		sctx, cancel := context.WithTimeout(ctx, shardDeadline(ctx, c.cfg.ShardTimeout, c.cfg.MergeSlack))
		res, err := call(sctx, sh.client)
		cancel()
		if err == nil {
			sh.breaker.Success()
			return res, nil
		}
		if ctx.Err() != nil {
			// The request's own budget expired mid-attempt; the shard may
			// be perfectly healthy.
			sh.breaker.Forgive()
			return zero, ctx.Err()
		}
		lastErr = err
		// Classify before charging the breaker: a 4xx is the caller's
		// input refused by a healthy shard (no charge, no retry), a 429 is
		// a live shard shedding load (no charge, retryable, honoring its
		// Retry-After), and only the rest is evidence the shard is broken.
		var retryFloor time.Duration
		if se := statusErrOf(err); se != nil && se.Status >= 400 && se.Status < 500 {
			sh.breaker.Forgive()
			if se.Status != http.StatusTooManyRequests {
				return zero, lastErr
			}
			retryFloor = se.RetryAfter
		} else {
			sh.breaker.Failure()
		}
		if attempt >= c.cfg.MaxRetries || !c.budget.spend() {
			return zero, lastErr
		}
		c.retriesTotal.Add(1)
		d := c.jitterBackoff()
		if retryFloor > d {
			d = retryFloor
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return zero, ctx.Err()
		case <-t.C:
		}
	}
}

// shardResult is one shard's gathered outcome.
type shardResult[T any] struct {
	val T
	err error
}

// scatter fans call out to the target shards concurrently and gathers
// every outcome, indexed by position in targets (targets[i] is the
// stable shard index outs[i] came from). The goroutines are joined
// before return — a coordinator deadline expiring mid-gather still
// waits for each shard call to observe its context and exit, so
// nothing leaks.
func scatter[T any](c *Coordinator, ctx context.Context, targets []int, call func(ctx context.Context, shardID int, cl *replica.Client) (T, error)) []shardResult[T] {
	c.mu.RLock()
	shs := make([]*shard, len(targets))
	for i, id := range targets {
		shs[i] = c.shards[id]
	}
	c.mu.RUnlock()
	outs := make([]shardResult[T], len(targets))
	var wg sync.WaitGroup
	for i := range targets {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			val, err := callShard(c, ctx, sh, func(sctx context.Context, cl *replica.Client) (T, error) {
				return call(sctx, sh.id, cl)
			})
			outs[i] = shardResult[T]{val: val, err: err}
		}(i, shs[i])
	}
	wg.Wait()
	return outs
}

// NumShards reports the current fleet size — the durable fleet after
// recovery or resharding, which may differ from the configured one.
func (c *Coordinator) NumShards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.shards)
}

// HedgesTotal sums hedge requests across every shard's fail-over
// client.
func (c *Coordinator) HedgesTotal() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, sh := range c.shards {
		n += sh.client.HedgeCount()
	}
	return n
}
