// Package cluster is the scatter-gather coordinator over a set of
// kjoin shard servers. Objects are partitioned across shards by a
// min-hash router (similar objects co-locate with probability about
// their Jaccard overlap, so most prefix-filter candidates are found by
// the home shard itself); queries and joins scatter to every shard and
// gather deterministically, bit-identical to a single-node server on
// full coverage.
//
// The coordinator is built to degrade instead of amplify: a
// per-request deadline budget is split into per-shard deadlines with
// slack reserved for the merge; shard attempts retry with jittered
// backoff under a cluster-wide retry budget (a token bucket — when a
// shard melts down, retries are shed rather than multiplied into a
// storm); each shard hides behind a circuit breaker
// (closed/open/half-open with a single probe) and a fail-over
// replica.Client that hedges slow primaries and falls back to
// replicas; and a per-request partial-result policy decides whether
// missing shards fail the request (503 naming the failed shards) or
// degrade it (200 with X-Kjoin-Coverage and the skipped shard list).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/replica"
	"kjoin/internal/rng"
	"kjoin/internal/serverutil"
)

// Partial-result policies: how a gather with failed shards answers.
const (
	// PartialFail turns any missed shard into a 503 naming the failed
	// shard set — for callers that need exact answers or nothing.
	PartialFail = "fail"
	// PartialDegrade answers 200 from the shards that responded, with
	// X-Kjoin-Coverage and X-Kjoin-Skipped-Shards declaring the gap —
	// for callers that prefer a partial answer now over none.
	PartialDegrade = "degrade"
)

// ShardConfig names one shard: its primary and any read replicas the
// fail-over client may use.
type ShardConfig struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Config tunes the coordinator. The zero value of every field selects
// the default documented on it.
type Config struct {
	// Shards is the fixed shard set (required, at least one).
	Shards []ShardConfig
	// RequestTimeout is the whole-request deadline budget (default 15s).
	// A request may shrink its own budget with an X-Kjoin-Deadline-Ms
	// header; it cannot grow it.
	RequestTimeout time.Duration
	// ShardTimeout caps one shard attempt (default 2s). The effective
	// per-shard deadline is min(ShardTimeout, remaining request budget
	// minus MergeSlack).
	ShardTimeout time.Duration
	// MergeSlack is the tail of the request budget reserved for the
	// gather merge after the slowest shard answers (default 25ms).
	MergeSlack time.Duration
	// HedgeDelay is how long a shard's replica attempt may run before
	// the fail-over client hedges the primary (default 100ms).
	HedgeDelay time.Duration
	// MaxRetries bounds retries per shard per request (default 1).
	MaxRetries int
	// RetryBudget is the retry token bucket's capacity (default 10);
	// RetryBudgetEarn is the fraction of a token earned per first
	// attempt (default 0.1). Retries spend one token each, so sustained
	// failure sheds retries at ~RetryBudgetEarn per request.
	RetryBudget     float64
	RetryBudgetEarn float64
	// RetryBackoffMin/Max bound the jittered pause before a retry
	// (defaults 5ms / 50ms).
	RetryBackoffMin time.Duration
	RetryBackoffMax time.Duration
	// BreakerThreshold opens a shard's breaker after that many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays open before admitting a half-open probe (default 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Partial is the default partial-result policy (PartialDegrade);
	// requests override it with an X-Kjoin-Partial header.
	Partial string
	// MaxBodyBytes caps a request body (default 1 MiB); MaxInflight
	// bounds concurrently executing requests (default 64).
	MaxBodyBytes int64
	MaxInflight  int
	// Seed makes retry jitter deterministic (default 1).
	Seed uint64
	// HTTP overrides the transport for every shard call (nil →
	// http.DefaultClient); chaos tests inject a faulty dialer here.
	HTTP *http.Client
	// Logf, when set, receives recovered panics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.MergeSlack == 0 {
		c.MergeSlack = 25 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 100 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 10
	}
	if c.RetryBudgetEarn == 0 {
		c.RetryBudgetEarn = 0.1
	}
	if c.RetryBackoffMin == 0 {
		c.RetryBackoffMin = 5 * time.Millisecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.Partial == "" {
		c.Partial = PartialDegrade
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shard is one shard's client-side state.
type shard struct {
	id      int
	cfg     ShardConfig
	client  *replica.Client
	breaker *Breaker
}

// Coordinator is an http.Handler fronting the shard fleet. It owns the
// global id space: every accepted object gets the id a single-node
// server would have assigned it, and gathers translate shard-local
// match indices back through that mapping, which is what makes cluster
// answers comparable (and on full coverage bit-identical) to one node.
type Coordinator struct {
	cfg     Config
	router  *Router
	shards  []*shard
	budget  *retryBudget
	sem     *serverutil.Semaphore
	handler http.Handler

	// addMu serializes cluster adds end-to-end (home-shard add, global
	// id assignment, cross-shard pair discovery): insertion order is
	// global-id order, and an add's discovery sweep sees exactly the
	// objects with smaller ids — the single-node add's invariant.
	//kjoinlint:lockorder rank=12
	addMu sync.Mutex

	//kjoinlint:lockorder rank=14
	mu sync.RWMutex
	// toGlobal maps each shard's local ids to global ids, in local-id
	// order. Guarded by mu; appended under addMu+mu, read under mu.
	toGlobal [][]int
	objects  int // guarded by mu; next global id

	// jmu guards the retry-jitter RNG (leaf lock).
	//kjoinlint:lockorder rank=18
	jmu sync.Mutex
	jr  *rng.RNG // guarded by jmu

	draining     atomic.Bool
	rr           atomic.Int64 // round-robin cursor for /similarity
	retriesTotal atomic.Int64
	partialTotal atomic.Int64
}

// New returns a coordinator over the configured shard fleet.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard is required")
	}
	if cfg.Partial != PartialFail && cfg.Partial != PartialDegrade {
		return nil, fmt.Errorf("cluster: unknown partial policy %q", cfg.Partial)
	}
	c := &Coordinator{
		cfg:      cfg,
		router:   NewRouter(len(cfg.Shards)),
		budget:   newRetryBudget(cfg.RetryBudget, cfg.RetryBudgetEarn),
		sem:      serverutil.NewSemaphore(cfg.MaxInflight),
		toGlobal: make([][]int, len(cfg.Shards)),
		jr:       rng.New(cfg.Seed),
	}
	for i, sc := range cfg.Shards {
		if sc.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %d has no primary", i)
		}
		c.shards = append(c.shards, &shard{
			id:  i,
			cfg: sc,
			client: &replica.Client{
				Primary:    sc.Primary,
				Replicas:   sc.Replicas,
				HTTP:       cfg.HTTP,
				TryTimeout: cfg.ShardTimeout,
				HedgeDelay: cfg.HedgeDelay,
				Seed:       cfg.Seed + uint64(i) + 1,
			},
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	c.handler = serverutil.Chain(c.mux(), serverutil.Recover(cfg.Logf))
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// SetDraining flips the readiness probe so load balancers stop routing
// new traffic here; serving itself is unaffected.
func (c *Coordinator) SetDraining(v bool) { c.draining.Store(v) }

// errBreakerOpen is a shard attempt rejected at the breaker without
// touching the network.
var errBreakerOpen = errors.New("cluster: circuit breaker open")

// jitterBackoff returns a deterministic retry pause in
// [RetryBackoffMin, RetryBackoffMax].
func (c *Coordinator) jitterBackoff() time.Duration {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	span := c.cfg.RetryBackoffMax - c.cfg.RetryBackoffMin
	return c.cfg.RetryBackoffMin + time.Duration(c.jr.Float64()*float64(span))
}

// callShard runs one logical shard request with the full robustness
// stack: breaker admission, a per-attempt deadline carved from the
// request budget, bounded retries under the cluster retry budget with
// jittered backoff. call receives a context already bounded by the
// per-shard deadline. An abort caused by the parent request's own
// deadline is forgiven, not charged to the shard's breaker.
func callShard[T any](c *Coordinator, ctx context.Context, sh *shard, call func(context.Context, *replica.Client) (T, error)) (T, error) {
	var zero T
	c.budget.onAttempt()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !sh.breaker.Allow() {
			if lastErr != nil {
				return zero, lastErr
			}
			return zero, errBreakerOpen
		}
		sctx, cancel := context.WithTimeout(ctx, shardDeadline(ctx, c.cfg.ShardTimeout, c.cfg.MergeSlack))
		res, err := call(sctx, sh.client)
		cancel()
		if err == nil {
			sh.breaker.Success()
			return res, nil
		}
		if ctx.Err() != nil {
			// The request's own budget expired mid-attempt; the shard may
			// be perfectly healthy.
			sh.breaker.Forgive()
			return zero, ctx.Err()
		}
		lastErr = err
		// Classify before charging the breaker: a 4xx is the caller's
		// input refused by a healthy shard (no charge, no retry), a 429 is
		// a live shard shedding load (no charge, retryable, honoring its
		// Retry-After), and only the rest is evidence the shard is broken.
		var retryFloor time.Duration
		if se := statusErrOf(err); se != nil && se.Status >= 400 && se.Status < 500 {
			sh.breaker.Forgive()
			if se.Status != http.StatusTooManyRequests {
				return zero, lastErr
			}
			retryFloor = se.RetryAfter
		} else {
			sh.breaker.Failure()
		}
		if attempt >= c.cfg.MaxRetries || !c.budget.spend() {
			return zero, lastErr
		}
		c.retriesTotal.Add(1)
		d := c.jitterBackoff()
		if retryFloor > d {
			d = retryFloor
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return zero, ctx.Err()
		case <-t.C:
		}
	}
}

// shardResult is one shard's gathered outcome.
type shardResult[T any] struct {
	val T
	err error
}

// scatter fans call out to every shard concurrently and gathers every
// outcome, indexed by shard id. The goroutines are joined before
// return — a coordinator deadline expiring mid-gather still waits for
// each shard call to observe its context and exit, so nothing leaks.
func scatter[T any](c *Coordinator, ctx context.Context, call func(ctx context.Context, shardID int, cl *replica.Client) (T, error)) []shardResult[T] {
	outs := make([]shardResult[T], len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			val, err := callShard(c, ctx, sh, func(sctx context.Context, cl *replica.Client) (T, error) {
				return call(sctx, i, cl)
			})
			outs[i] = shardResult[T]{val: val, err: err}
		}(i, c.shards[i])
	}
	wg.Wait()
	return outs
}

// HedgesTotal sums hedge requests across every shard's fail-over
// client.
func (c *Coordinator) HedgesTotal() int64 {
	var n int64
	for _, sh := range c.shards {
		n += sh.client.HedgeCount()
	}
	return n
}
