package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one in-flight probe request; its
	// outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-shard circuit breaker. Closed, it counts consecutive
// failures and opens at the threshold; open, it rejects until the
// cooldown elapses; then half-open admits a single probe whose success
// closes it and whose failure re-opens it for another cooldown. A
// breaker never decides on its own clock what a failure is — the
// caller reports outcomes, and reports Forgive for outcomes it cannot
// attribute to the shard (a parent request deadline expiring, say), so
// a coordinator-side abort cannot open a healthy shard's breaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for deterministic tests

	//kjoinlint:lockorder rank=16
	mu       sync.Mutex
	state    BreakerState // guarded by mu
	fails    int          // guarded by mu; consecutive failures while closed
	openedAt time.Time    // guarded by mu
	probing  bool         // guarded by mu; a half-open probe is in flight
}

// NewBreaker returns a closed breaker opening after threshold
// consecutive failures (min 1) and staying open for cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In half-open state only
// one caller at a time passes (the probe); every Allow=true must be
// balanced by exactly one Success, Failure, or Forgive.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success reports a request the shard answered.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure reports a request the shard failed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		// The probe failed: re-open for a fresh cooldown.
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// Forgive reports an outcome that says nothing about the shard — the
// parent request's own deadline expired, the client went away. It
// releases a held probe slot without moving the state.
func (b *Breaker) Forgive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// State returns the current position, applying the open→half-open
// transition the next Allow would make, so /stats reports "half-open"
// for a shard whose cooldown has elapsed even before a probe arrives.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
