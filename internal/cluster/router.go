package cluster

// The router decides which shard owns an object. It min-hashes the
// token set: FNV-1a over each token, the minimum hash mod the shard
// count picks the home. Min-hash is locality-sensitive for Jaccard
// overlap — two objects sharing most tokens share their minimum hash
// with probability about their Jaccard similarity — so the pairs the
// prefix filter would surface tend to live on one shard and are found
// by the home shard's own add, while cross-shard discovery only has to
// catch the tail. The mapping is pure (tokens → shard), so any client
// holding the route table can compute homes without asking the
// coordinator.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Router maps objects to shards. It is immutable; Version identifies
// the table so clients caching it can detect a repartition (a future
// rebalancer would publish a new version).
type Router struct {
	nshards int
	version int
}

// NewRouter returns a version-1 router over n shards (min 1).
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	return &Router{nshards: n, version: 1}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.nshards }

// Version returns the route-table version.
func (r *Router) Version() int { return r.version }

// Home returns the shard owning an object with these tokens. Duplicate
// tokens cannot move the minimum, so the mapping is set-semantic like
// the similarity itself.
func (r *Router) Home(tokens []string) int {
	min := ^uint64(0)
	for _, t := range tokens {
		if h := fnv1a64(t); h < min {
			min = h
		}
	}
	return int(min % uint64(r.nshards))
}
