package cluster

import (
	"strconv"
	"strings"
)

// The router decides which shard owns an object. It min-hashes the
// token set: FNV-1a over each token, the minimum hash mod the bucket
// count picks the bucket, and the route table assigns each bucket to a
// shard. Min-hash is locality-sensitive for Jaccard overlap — two
// objects sharing most tokens share their minimum hash with probability
// about their Jaccard similarity — so the pairs the prefix filter would
// surface tend to live on one shard and are found by the home shard's
// own add, while cross-shard discovery only has to catch the tail. The
// mapping is pure (tokens + table → shard), so any client holding the
// route table can compute homes without asking the coordinator.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Router maps objects to shards through a versioned assignment table:
// bucket i (the min-hash residue) is owned by the shard with stable
// index assign[i]. A Router value is immutable; a reshard installs a
// new one with a bumped version — every route-table transition (begin,
// finalize, abort) increments the version, so clients caching a table
// can detect any repartition.
type Router struct {
	assign  []int
	version int
}

// NewRouter returns a version-1 identity router over n shards (min 1):
// bucket i → shard i, the layout a fresh fleet starts with.
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i
	}
	return &Router{assign: assign, version: 1}
}

// NewRouterAssign returns a router with an explicit bucket→shard
// assignment and version. The assignment is copied.
func NewRouterAssign(version int, assign []int) *Router {
	return &Router{assign: append([]int(nil), assign...), version: version}
}

// Shards returns the bucket count (the number of serving shards).
func (r *Router) Shards() int { return len(r.assign) }

// Version returns the route-table version.
func (r *Router) Version() int { return r.version }

// Assign returns a copy of the bucket→shard assignment.
func (r *Router) Assign() []int { return append([]int(nil), r.assign...) }

// Home returns the stable index of the shard owning an object with
// these tokens. Duplicate tokens cannot move the minimum, so the
// mapping is set-semantic like the similarity itself.
func (r *Router) Home(tokens []string) int {
	min := ^uint64(0)
	for _, t := range tokens {
		if h := fnv1a64(t); h < min {
			min = h
		}
	}
	return r.assign[int(min%uint64(len(r.assign)))]
}

// assignCSV renders an assignment as "0,1,2" for route records and
// snapshots.
func assignCSV(assign []int) string {
	parts := make([]string, len(assign))
	for i, s := range assign {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, ",")
}

// parseAssignCSV parses assignCSV output, validating every index
// against the fleet size.
func parseAssignCSV(s string, nshards int) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		idx, err := strconv.Atoi(p)
		if err != nil || idx < 0 || idx >= nshards {
			return nil, &recordError{field: "assign", detail: "bad shard index " + p}
		}
		out = append(out, idx)
	}
	if len(out) == 0 {
		return nil, &recordError{field: "assign", detail: "empty assignment"}
	}
	return out, nil
}
