package cluster

// Live resharding. POST /cluster/reshard bumps the route version and
// installs a migration: new adds route by the new table immediately,
// while a background mover streams each moving object from its old home
// to its new one with idempotent, resumable progress records in the
// coordinator WAL (move-intent before the copy, move-done after). While
// the migration runs, gathers scatter to the union of the old and new
// homes and dedup by global id — the dual-read window — so answers stay
// bit-identical to a single node throughout. When every item has moved,
// the mover finalizes (retiring the source copies); POST
// /cluster/reshard/abort retires the destination copies and restores the
// old table instead. A crash at any point resumes from the WAL without
// losing or duplicating any acked object.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"kjoin/internal/serverutil"
)

// errMoverHalt marks a control-plane invariant violation the mover must
// not retry past: the coordinator latches the failure (failControl) and
// refuses further control-plane writes until an operator intervenes.
var errMoverHalt = errors.New("cluster: mover halted")

// errClosedMidIntent is the mover or an add resolving an intent when the
// coordinator shuts down: the intent stays unresolved in the log (the
// crash-equivalent state recovery is built for), and the control plane
// is latched so no later record can follow it.
var errClosedMidIntent = errors.New("cluster: closed with an unresolved intent; restart to resolve")

// logf forwards to the configured logger, if any.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// controlErr reports the latched control-plane failure, nil when
// healthy.
func (c *Coordinator) controlErr() error {
	if f := c.ctrlFailed.Load(); f != nil {
		return f.err
	}
	return nil
}

// failControl latches a control-plane failure: every later add and
// reshard fails fast instead of appending records after a state the
// log cannot vouch for.
func (c *Coordinator) failControl(err error) {
	if c.ctrlFailed.CompareAndSwap(nil, &ctrlFailure{err: err}) {
		c.logf("cluster: control plane failed: %v", err)
	}
}

// sleepClosed pauses for d, returning false when the coordinator closed
// instead.
func (c *Coordinator) sleepClosed(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
		return false
	case <-t.C:
		return true
	}
}

// provablyNotApplied reports whether a failed shard add provably never
// reached the shard's index: the breaker rejected it locally, or the
// shard itself refused it (4xx — including a 429 shed at the admission
// gate). Everything else is ambiguous and must be resolved by counting.
func provablyNotApplied(err error) bool {
	if errors.Is(err, errBreakerOpen) {
		return true
	}
	if se := statusErrOf(err); se != nil && se.Status >= 400 && se.Status < 500 {
		return true
	}
	return false
}

// resolveAmbiguous settles the unresolved intent for global id g
// targeting shard target after an add whose outcome is unknown: the
// target's object count says whether the add applied (see
// resolvePending for the counting argument — addMu, held by the caller,
// is what makes it unambiguous). The resolution is applied and logged
// before return. A dead target is retried with backoff until it answers
// or the coordinator closes — adds queue behind addMu meanwhile, which
// is the safe direction: an unresolved intent followed by more records
// would be unreplayable. Returns whether the add applied and at which
// local id.
func (c *Coordinator) resolveAmbiguous(kind string, g, src, target int) (applied bool, local int, err error) {
	c.mu.RLock()
	primary := c.shards[target].cfg.Primary
	c.mu.RUnlock()
	backoff := 10 * time.Millisecond
	for {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout)
		count, cerr := c.shardObjects(ctx, primary)
		cancel()
		if cerr == nil {
			c.mu.RLock()
			expected := len(c.toGlobal[target])
			c.mu.RUnlock()
			switch count {
			case expected:
				var rec []string
				if kind == recAssignIntent {
					rec = encAssignAbort(g)
				} else {
					rec = encMoveAbort(g)
				}
				if _, aerr := c.cw.appendSync(rec); aerr != nil {
					return false, 0, fmt.Errorf("cluster: logging intent resolution: %w", aerr)
				}
				return false, 0, nil
			case expected + 1:
				if kind == recAssignIntent {
					if aerr := c.applyAssign(g, target, expected); aerr != nil {
						c.failControl(aerr)
						return false, 0, fmt.Errorf("%w: %v", errMoverHalt, aerr)
					}
					if _, aerr := c.cw.appendSync(encAssignDone(g, target, expected)); aerr != nil {
						return false, 0, fmt.Errorf("cluster: logging intent resolution: %w", aerr)
					}
				} else {
					if aerr := c.applyMove(g, target, expected); aerr != nil {
						c.failControl(aerr)
						return false, 0, fmt.Errorf("%w: %v", errMoverHalt, aerr)
					}
					if _, aerr := c.cw.appendSync(encMoveDone(g, src, target, expected)); aerr != nil {
						return false, 0, fmt.Errorf("cluster: logging intent resolution: %w", aerr)
					}
				}
				return true, expected, nil
			default:
				err := fmt.Errorf("%w: shard %d reports %d objects, coordinator expected %d or %d: writes bypassed the coordinator",
					errMoverHalt, target, count, expected, expected+1)
				c.failControl(err)
				return false, 0, err
			}
		}
		if !c.sleepClosed(backoff) {
			c.failControl(errClosedMidIntent)
			return false, 0, errClosedMidIntent
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// getObjectTokens fetches one object's normalized tokens off a shard by
// local id (GET /objects/{id}) — the mover's read side.
func (c *Coordinator) getObjectTokens(primary string, local int) ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/objects/%d", primary, local), nil)
	if err != nil {
		return nil, err
	}
	hc := c.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s/objects/%d: status %d", primary, local, resp.StatusCode)
	}
	var out struct {
		ID     *int     `json:"id"`
		Tokens []string `json:"tokens"`
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, &out); err != nil || out.ID == nil || *out.ID != local {
		return nil, fmt.Errorf("cluster: %s/objects/%d: bad body", primary, local)
	}
	return out.Tokens, nil
}

// ---- the mover ----

// startMover spawns the background migration mover (joined by Close).
func (c *Coordinator) startMover() {
	c.moverWG.Add(1)
	go func() {
		defer c.moverWG.Done()
		c.runMover()
	}()
}

// runMover drives the migration to completion: one object per addMu
// hold, with backoff on transient failure, a configurable throttle
// between objects, and a finalize record once nothing is left to move.
// It exits when the migration finishes, aborts, halts on an invariant
// violation, or the coordinator closes (recovery respawns it).
func (c *Coordinator) runMover() {
	backoff := 10 * time.Millisecond
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		done, err := c.moveNext()
		if errors.Is(err, errMoverHalt) || errors.Is(err, errClosedMidIntent) {
			c.logf("cluster: mover stopped: %v", err)
			return
		}
		if done {
			return
		}
		if err != nil {
			c.logf("cluster: mover retrying: %v", err)
			if !c.sleepClosed(backoff) {
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 10 * time.Millisecond
		if c.cfg.MoveThrottle > 0 && !c.sleepClosed(c.cfg.MoveThrottle) {
			return
		}
	}
}

// moveNext moves one object (or finalizes when none remain). done=true
// means the migration is over — finished, aborted, or halted.
func (c *Coordinator) moveNext() (done bool, err error) {
	c.addMu.Lock()
	defer c.addMu.Unlock()
	if cerr := c.controlErr(); cerr != nil {
		return true, fmt.Errorf("%w: %v", errMoverHalt, cerr)
	}
	c.mu.RLock()
	mig := c.mig
	var it *moveItem
	if mig != nil {
		for i := range mig.items {
			if !mig.items[i].moved {
				it = &mig.items[i]
				break
			}
		}
	}
	vNext := c.router.Version() + 1
	c.mu.RUnlock()
	if mig == nil {
		return true, nil // aborted out from under us
	}
	if it == nil {
		// Everything moved: finalize. Record first, then apply — exactly
		// the order replay reproduces.
		if _, err := c.cw.appendSync([]string{recReshardFinal, fmt.Sprint(vNext)}); err != nil {
			return false, fmt.Errorf("cluster: logging finalize: %w", err)
		}
		if err := c.applyReshardFinalize(vNext); err != nil {
			c.failControl(err)
			return true, fmt.Errorf("%w: %v", errMoverHalt, err)
		}
		c.logf("cluster: reshard finalized at route v%d (%d objects moved)", vNext, len(mig.items))
		return true, nil
	}
	return false, c.moveOne(it)
}

// moveOne streams one object to its new home under the caller's addMu:
// read the tokens off the source, log move-intent durable, add to the
// destination, then log move-done (or resolve an ambiguous outcome by
// counting). The intent/outcome pair is what makes a crash anywhere in
// between resumable without duplicating the object.
func (c *Coordinator) moveOne(it *moveItem) error {
	c.mu.RLock()
	src := c.shards[it.src]
	dst := c.shards[it.dst]
	expected := len(c.toGlobal[it.dst])
	c.mu.RUnlock()
	tokens, err := c.getObjectTokens(src.cfg.Primary, it.srcLocal)
	if err != nil {
		return fmt.Errorf("cluster: reading object %d off shard %d: %w", it.g, it.src, err)
	}
	if _, err := c.cw.appendSync(encMoveIntent(it.g, it.src, it.dst)); err != nil {
		return fmt.Errorf("cluster: logging move-intent: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout)
	res, aerr := c.postAdd(ctx, dst.cfg.Primary, tokens)
	cancel()
	if aerr != nil {
		if provablyNotApplied(aerr) {
			if _, lerr := c.cw.appendSync(encMoveAbort(it.g)); lerr != nil {
				return fmt.Errorf("cluster: logging move-abort: %w", lerr)
			}
			return fmt.Errorf("cluster: moving object %d to shard %d: %w", it.g, it.dst, aerr)
		}
		applied, _, rerr := c.resolveAmbiguous(recMoveIntent, it.g, it.src, it.dst)
		if rerr != nil {
			return rerr
		}
		if !applied {
			return fmt.Errorf("cluster: moving object %d to shard %d: %w", it.g, it.dst, aerr)
		}
		return nil // adopted: the copy landed before the failure surfaced
	}
	if res.ID != expected {
		err := fmt.Errorf("%w: shard %d assigned local id %d, coordinator expected %d: writes bypassed the coordinator",
			errMoverHalt, it.dst, res.ID, expected)
		c.failControl(err)
		return err
	}
	if err := c.applyMove(it.g, it.dst, res.ID); err != nil {
		c.failControl(err)
		return fmt.Errorf("%w: %v", errMoverHalt, err)
	}
	if _, err := c.cw.appendSync(encMoveDone(it.g, it.src, it.dst, res.ID)); err != nil {
		return fmt.Errorf("cluster: logging move-done: %w", err)
	}
	return nil
}

// ---- HTTP surface ----

// reshardRequest is the body of POST /cluster/reshard. Add grows the
// fleet; Assign is the new bucket→shard table over the grown fleet
// (stable indices; omitted means the identity table, one bucket per
// shard). A shrink is an Assign that stops naming a shard.
type reshardRequest struct {
	Add    []ShardConfig `json:"add,omitempty"`
	Assign []int         `json:"assign,omitempty"`
}

// handleReshard begins a live migration: it scans the corpus for
// objects whose home changes under the requested table, logs one
// reshard-begin record carrying the new table, any new shards and the
// full moving set, installs the new route table (bumped version), and
// starts the mover. The scan and begin hold addMu, so the moving set is
// exact — no add can slip between the scan and the new table.
func (c *Coordinator) handleReshard(w http.ResponseWriter, r *http.Request) {
	if c.cw == nil {
		serverutil.WriteError(w, http.StatusBadRequest, "not_durable",
			"resharding requires a durable coordinator (start with a coordinator WAL)")
		return
	}
	if err := c.controlErr(); err != nil {
		writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", err)
		return
	}
	var req reshardRequest
	if !c.decode(w, r, &req) {
		return
	}
	for i, sc := range req.Add {
		if sc.Primary == "" {
			serverutil.WriteError(w, http.StatusBadRequest, "bad_shard",
				fmt.Sprintf("added shard %d has no primary", i))
			return
		}
		for _, ep := range append([]string{sc.Primary}, sc.Replicas...) {
			if strings.Contains(ep, "|") {
				serverutil.WriteError(w, http.StatusBadRequest, "bad_shard",
					fmt.Sprintf("endpoint %q contains '|', which the record encoding reserves", ep))
				return
			}
		}
	}
	c.addMu.Lock()
	defer c.addMu.Unlock()
	c.mu.RLock()
	inFlight := c.mig != nil
	nOld := len(c.shards)
	vNew := c.router.Version() + 1
	oldAssign := c.router.Assign()
	objects := c.objects
	homes := append([]objLoc(nil), c.homeOf...)
	primaries := make([]string, nOld)
	for i, sh := range c.shards {
		primaries[i] = sh.cfg.Primary
	}
	c.mu.RUnlock()
	if inFlight {
		serverutil.WriteError(w, http.StatusConflict, "reshard_in_progress",
			"a migration is already running; finish or abort it first")
		return
	}
	nNew := nOld + len(req.Add)
	assign := req.Assign
	if len(assign) == 0 {
		assign = make([]int, nNew)
		for i := range assign {
			assign[i] = i
		}
	}
	for _, s := range assign {
		if s < 0 || s >= nNew {
			serverutil.WriteError(w, http.StatusBadRequest, "bad_assign",
				fmt.Sprintf("assignment names shard %d; the fleet has %d", s, nNew))
			return
		}
	}
	if len(req.Add) == 0 && equalAssign(assign, oldAssign) {
		serverutil.WriteError(w, http.StatusBadRequest, "no_change",
			"the requested table is the current one; nothing to reshard")
		return
	}
	// Scan: every object whose home changes under the new table joins the
	// moving set. Tokens come off each object's current home (addMu keeps
	// homes frozen while we look).
	newRouter := NewRouterAssign(vNew, assign)
	var items []moveItem
	for g := 0; g < objects; g++ {
		loc := homes[g]
		tokens, err := c.getObjectTokens(primaries[loc.shard], loc.local)
		if err != nil {
			// Nothing logged yet: the reshard simply did not start.
			serverutil.WriteError(w, http.StatusServiceUnavailable, "reshard_scan_failed",
				fmt.Sprintf("cannot read object %d off shard %d: %v", g, loc.shard, err))
			return
		}
		if dst := newRouter.Home(tokens); dst != loc.shard {
			items = append(items, moveItem{g: g, src: loc.shard, srcLocal: loc.local, dst: dst})
		}
	}
	if _, err := c.cw.appendSync(encReshardBegin(vNew, assign, req.Add, items)); err != nil {
		writeCtrlError(w, http.StatusInternalServerError, "wal_failed", err)
		return
	}
	if err := c.applyReshardBegin(vNew, assign, req.Add, items); err != nil {
		c.failControl(err)
		writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", err)
		return
	}
	c.startMover()
	c.logf("cluster: reshard begun at route v%d: %d shard(s), %d object(s) moving", vNew, nNew, len(items))
	writeJSON(w, map[string]any{"version": vNew, "shards": nNew, "moving": len(items)})
}

// equalAssign reports whether two bucket→shard tables are identical.
func equalAssign(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// handleReshardAbort safely unwinds the in-flight migration: the abort
// record is logged durable, every destination copy is tombstoned, and
// the pre-begin route table comes back under a bumped version. Objects
// added under the new table keep serving from where they landed.
func (c *Coordinator) handleReshardAbort(w http.ResponseWriter, r *http.Request) {
	if c.cw == nil {
		serverutil.WriteError(w, http.StatusBadRequest, "not_durable", "this coordinator has no durable state")
		return
	}
	if err := c.controlErr(); err != nil {
		writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", err)
		return
	}
	c.addMu.Lock()
	defer c.addMu.Unlock()
	c.mu.RLock()
	inFlight := c.mig != nil
	vAbort := c.router.Version() + 1
	c.mu.RUnlock()
	if !inFlight {
		serverutil.WriteError(w, http.StatusConflict, "no_reshard", "no migration is running")
		return
	}
	if _, err := c.cw.appendSync([]string{recReshardAbort, fmt.Sprint(vAbort)}); err != nil {
		writeCtrlError(w, http.StatusInternalServerError, "wal_failed", err)
		return
	}
	if err := c.applyReshardAbort(vAbort); err != nil {
		c.failControl(err)
		writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", err)
		return
	}
	c.logf("cluster: reshard aborted; route table restored at v%d", vAbort)
	writeJSON(w, map[string]any{"version": vAbort, "state": "aborted"})
}

// handleReshardStatus reports the migration's progress.
func (c *Coordinator) handleReshardStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	state := "idle"
	moved, total := 0, 0
	if c.mig != nil {
		state = "migrating"
		moved, total = c.mig.moved, len(c.mig.items)
	}
	version := c.router.Version()
	c.mu.RUnlock()
	writeJSON(w, map[string]any{
		"state":         state,
		"route_version": version,
		"moved":         moved,
		"total":         total,
	})
}
