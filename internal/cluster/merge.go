package cluster

import (
	"math"
	"sort"

	"kjoin/internal/mathx"
)

// Entry is one match in a shard's gathered payload, already mapped to
// the coordinator's global id space.
type Entry struct {
	Index int     `json:"index"`
	Sim   float64 `json:"sim"`
}

// sanitize drops entries no well-formed shard can produce — negative
// ids and non-finite similarities. NaN is the dangerous one: mathx.Cmp
// reports NaN comparisons as equal, which breaks the strict weak order
// a sort needs, so one malformed shard payload could otherwise scramble
// the whole merged ordering.
func sanitize(entries []Entry) []Entry {
	out := entries[:0]
	for _, e := range entries {
		if e.Index < 0 || math.IsNaN(e.Sim) || math.IsInf(e.Sim, 0) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// mergeAscending merges per-shard payloads into one result in ascending
// global-id order — the single-node engine's output order, which is
// what makes full-coverage cluster answers bit-identical to it.
// Duplicate ids (overlapping or duplicated payloads) keep the first
// occurrence in shard order, so the merge is deterministic for any
// fixed gather.
func mergeAscending(shards [][]Entry) []Entry {
	var all []Entry
	for _, sh := range shards {
		all = append(all, sh...)
	}
	all = sanitize(all)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Index < all[j].Index })
	return dedupSorted(all)
}

// mergeTopK merges per-shard payloads into the k best matches in
// descending-similarity order (ties broken by ascending global id, so
// equal scores have one canonical order). k <= 0 means no truncation.
func mergeTopK(shards [][]Entry, k int) []Entry {
	var all []Entry
	for _, sh := range shards {
		all = append(all, sh...)
	}
	all = sanitize(all)
	// Dedup on id first (ascending-id pass keeps the first occurrence in
	// shard order, same rule as mergeAscending), then rank.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Index < all[j].Index })
	all = dedupSorted(all)
	sort.SliceStable(all, func(i, j int) bool {
		if c := mathx.Cmp(all[i].Sim, all[j].Sim); c != 0 {
			return c > 0
		}
		return all[i].Index < all[j].Index
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// dedupSorted removes duplicate ids from an id-sorted slice, keeping
// each id's first entry.
func dedupSorted(all []Entry) []Entry {
	out := all[:0]
	for i, e := range all {
		if i > 0 && e.Index == all[i-1].Index {
			continue
		}
		out = append(out, e)
	}
	return out
}
