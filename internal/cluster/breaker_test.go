package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

// TestBreakerOpensAtThreshold: consecutive failures open the breaker;
// a success in between resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("allow %d: closed breaker rejected", i)
		}
		b.Failure()
	}
	if !b.Allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.Success() // resets the consecutive count
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("allow after reset %d: rejected", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after %d consecutive failures, want open", b.State(), 3)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

// TestBreakerHalfOpenSingleProbe: after the cooldown exactly one probe
// passes; its success closes the breaker, and concurrent requests are
// rejected while the probe is in flight.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second in-flight probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}
	b.Success()
}

// TestBreakerProbeFailureReopens: a failed probe re-opens the breaker
// for a fresh cooldown (the flapping-shard path).
func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request without a new cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after the shard recovers", b.State())
	}
}

// TestBreakerForgiveReleasesProbe: an outcome not attributable to the
// shard releases the probe slot without moving the state, so the next
// caller can probe instead of waiting out another cooldown.
func TestBreakerForgiveReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Forgive() // parent deadline expired mid-probe
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after forgiven probe = %v, want still half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("probe slot not released by Forgive")
	}
	b.Success()
}

// TestBreakerForgiveDoesNotCountAgainstThreshold: forgiven outcomes
// while closed do not accumulate toward opening.
func TestBreakerForgiveDoesNotCountAgainstThreshold(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("allow %d rejected", i)
		}
		b.Forgive()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after only forgiven outcomes, want closed", b.State())
	}
}
