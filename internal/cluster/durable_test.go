package cluster

// The durable-control-plane matrix: a coordinator whose id map and
// route table live in a coordinator WAL plus snapshot generations,
// killed and rebooted over whatever the crash left on disk, asserting
// the control-plane durability contract —
//
//  1. a killed-and-restarted coordinator answers bit-identically to one
//     that never died (ids, pair sets, Float64bits, order);
//  2. a crash at every single WAL write (and fsync) boundary leaves a
//     recoverable state: every acknowledged add survives with its id,
//     and at most the one in-flight add is adopted from the shard;
//  3. snapshot generations compact the log without ever dropping a
//     record an older retained generation still needs;
//  4. over-compaction and out-of-band deletion are refused loudly, with
//     the same failure shapes as the server's data path.
//
// The shard servers deliberately outlive coordinator reboots: they play
// the remote processes that keep running (and keep their objects) while
// the coordinator crashes and recovers against them.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kjoin/internal/fault"
	"kjoin/internal/paperdata"
	"kjoin/internal/server"
	"kjoin/internal/wal"
)

// dfleet is a durable coordinator over persistent shard servers. Unlike
// fleet, the coordinator can be killed and rebooted mid-test from its
// WAL and snapshot directories while the shards keep serving.
type dfleet struct {
	t               *testing.T
	shards          []*httptest.Server
	n               int // initial fleet size; config() names only these
	inj             *fault.NetInjector
	tr              *http.Transport
	walDir, snapDir string
	keep            int
	mod             func(*Config)

	coord *Coordinator
	ts    *httptest.Server
}

// newDFleet starts n shard servers and prepares (but does not boot) a
// durable coordinator over them; mod may adjust the config at each
// boot.
func newDFleet(t *testing.T, n int, mod func(*Config)) *dfleet {
	t.Helper()
	dir := t.TempDir()
	f := &dfleet{
		t:       t,
		n:       n,
		inj:     fault.NewNetInjector(nil),
		walDir:  filepath.Join(dir, "coord-wal"),
		snapDir: filepath.Join(dir, "coord-snap"),
		keep:    2,
		mod:     mod,
	}
	f.tr = f.inj.Transport()
	t.Cleanup(f.tr.CloseIdleConnections)
	for i := 0; i < n; i++ {
		f.newShardServer()
	}
	t.Cleanup(f.kill)
	return f
}

// newShardServer starts one more shard server (an in-memory kjoin
// server playing a remote shard process) and returns its ShardConfig.
// Servers beyond the initial n are not named in config(): a rebooted
// coordinator must learn them from its own durable reshard records.
func (f *dfleet) newShardServer() ShardConfig {
	f.t.Helper()
	h, _ := paperdata.Fig1()
	s, err := server.New(h, testOpt())
	if err != nil {
		f.t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	f.t.Cleanup(ts.Close)
	f.shards = append(f.shards, ts)
	return ShardConfig{Primary: ts.URL}
}

// addr returns shard i's dial address, for scoping injected faults.
func (f *dfleet) addr(i int) string {
	return strings.TrimPrefix(f.shards[i].URL, "http://")
}

// config builds a fresh coordinator config over the initial fleet.
func (f *dfleet) config() Config {
	cfg := Config{
		HTTP:             &http.Client{Transport: f.tr},
		RequestTimeout:   10 * time.Second,
		ShardTimeout:     2 * time.Second,
		HedgeDelay:       100 * time.Millisecond,
		RetryBackoffMin:  time.Millisecond,
		RetryBackoffMax:  5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		Seed:             7,
		Logf:             f.t.Logf,
	}
	for i := 0; i < f.n; i++ {
		cfg.Shards = append(cfg.Shards, ShardConfig{Primary: f.shards[i].URL})
	}
	if f.mod != nil {
		f.mod(&cfg)
	}
	return cfg
}

// boot recovers a coordinator from the fleet's directories over fsys
// (the reboot: a fresh filesystem handle over the surviving bytes).
func (f *dfleet) boot(fsys fault.FS) (*Coordinator, error) {
	f.t.Helper()
	c, err := Recover(f.config(), Durability{
		FS:          fsys,
		WALDir:      f.walDir,
		SnapshotDir: f.snapDir,
		Keep:        f.keep,
		Policy:      wal.SyncAlways,
		Logf:        f.t.Logf,
	})
	if err != nil {
		return nil, err
	}
	f.coord = c
	f.ts = httptest.NewServer(c)
	return c, nil
}

func (f *dfleet) mustBoot(fsys fault.FS) *Coordinator {
	f.t.Helper()
	c, err := f.boot(fsys)
	if err != nil {
		f.t.Fatalf("coordinator recovery failed: %v", err)
	}
	return c
}

// kill stops the coordinator process: the HTTP front end goes away and
// the log handle closes, while the shard servers keep running with
// everything they hold. Idempotent, and registered as a cleanup so the
// goroutine watchdog always sees the mover joined.
func (f *dfleet) kill() {
	if f.ts != nil {
		f.ts.Close()
		f.ts = nil
	}
	if f.coord != nil {
		_ = f.coord.Close() // a crashed log may refuse the final sync
		f.coord = nil
	}
}

// load adds the objects through the coordinator, requiring clean full
// coverage and the expected global ids.
func (f *dfleet) load(objs [][]string) {
	f.t.Helper()
	for i, o := range objs {
		resp, id, _ := addAt(f.t, f.ts.URL, o)
		if id != i {
			f.t.Fatalf("load: object %d got global id %d", i, id)
		}
		want := fmt.Sprintf("%d/%d", f.n, f.n)
		if cov := resp.Header.Get(HeaderCoverage); cov != want {
			f.t.Fatalf("load: add %d coverage %q, want %s", i, cov, want)
		}
	}
}

// verifyBitIdentical pins every query answer to the single-node oracle.
func (f *dfleet) verifyBitIdentical(oracle string, objs [][]string) {
	f.t.Helper()
	for qi, q := range objs {
		_, want := queryAt(f.t, oracle, q, nil)
		resp, got := queryAt(f.t, f.ts.URL, q, nil)
		if skipped := resp.Header.Get(HeaderSkippedShards); skipped != "" {
			f.t.Fatalf("query %d skipped shards %q on a healthy fleet", qi, skipped)
		}
		assertMatchesBitIdentical(f.t, fmt.Sprintf("query %d", qi), got, want)
	}
}

// TestCoordinatorKillRestartBitIdentity: the basic durability
// round-trip. Load through a durable coordinator, kill it, recover from
// the WAL alone (no snapshot was ever taken), and every answer — and
// every later add — must be bit-identical to an uncrashed single node.
func TestCoordinatorKillRestartBitIdentity(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newDFleet(t, 3, nil)
	f.mustBoot(fault.OS{})
	oh, _ := paperdata.Fig1()
	osrv, err := server.New(oh, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(osrv)
	t.Cleanup(ots.Close)

	for i, o := range objs {
		_, wantID, wantPairs := addAt(t, ots.URL, o)
		_, gotID, gotPairs := addAt(t, f.ts.URL, o)
		if gotID != wantID {
			t.Fatalf("add %d: cluster id %d, oracle id %d", i, gotID, wantID)
		}
		assertPairsBitIdentical(t, fmt.Sprintf("add %d", i), gotPairs, wantPairs)
	}

	f.kill()
	f.mustBoot(fault.OS{})
	f.verifyBitIdentical(ots.URL, objs)

	// The id sequence continues exactly where the dead coordinator left
	// it, with bit-identical pair reports.
	for i, o := range objs[:4] {
		_, wantID, wantPairs := addAt(t, ots.URL, o)
		_, gotID, gotPairs := addAt(t, f.ts.URL, o)
		if gotID != wantID || gotID != len(objs)+i {
			t.Fatalf("post-restart add %d: cluster id %d, oracle id %d", i, gotID, wantID)
		}
		assertPairsBitIdentical(t, fmt.Sprintf("post-restart add %d", i), gotPairs, wantPairs)
	}

	st := statsAt(t, f.ts.URL)
	if got := int(st["objects"].(float64)); got != len(objs)+4 {
		t.Fatalf("stats objects = %d, want %d", got, len(objs)+4)
	}
	if got := int(st["route_version"].(float64)); got != 1 {
		t.Fatalf("route_version = %d, want 1", got)
	}
	if seq := st["coordinator_wal_durable_seq"].(float64); seq <= 0 {
		t.Fatalf("coordinator_wal_durable_seq = %v, want > 0", seq)
	}
	if healthy := st["control_plane_healthy"].(bool); !healthy {
		t.Fatal("control_plane_healthy = false on a healthy coordinator")
	}
}

// TestCoordinatorCrashSweepEveryWalBoundary crashes the coordinator's
// filesystem after the Nth WAL write — and, in the second sweep, the
// Nth fsync — for every N the workload produces. After each crash the
// rebooted coordinator must hold every acknowledged add (plus at most
// the one in-flight add, adopted from the shard's own count), continue
// the workload at the recovered id, and end bit-identical to a single
// node that saw the full corpus.
func TestCoordinatorCrashSweepEveryWalBoundary(t *testing.T) {
	objs := paperdata.Table1()
	sweeps := []struct {
		name string
		op   fault.Op
	}{
		{"write", fault.OpWrite},
		{"sync", fault.OpSync},
	}
	for _, sweep := range sweeps {
		t.Run(sweep.name, func(t *testing.T) {
			for n := 1; ; n++ {
				fired := false
				t.Run(fmt.Sprintf("crash-after-%d", n), func(t *testing.T) {
					watchGoroutines(t)
					f := newDFleet(t, 3, nil)
					inj := fault.NewInjector(fault.OS{},
						fault.Fault{Op: sweep.op, Path: "wal.", N: n, Mode: fault.CrashAfter})
					f.mustBoot(inj)
					acked := 0
					for _, o := range objs {
						resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/objects", map[string]any{"tokens": o}, nil)
						if resp.StatusCode != http.StatusOK {
							continue // the crash refused the ack; the log decides its fate
						}
						var out struct {
							ID int `json:"id"`
						}
						if err := json.Unmarshal(b, &out); err != nil {
							t.Fatalf("add response: %v: %s", err, b)
						}
						if out.ID != acked {
							t.Fatalf("acked ids are not contiguous: add %d got id %d", acked, out.ID)
						}
						acked++
					}
					fired = inj.Fired() > 0
					f.kill()

					f.mustBoot(fault.OS{})
					got := int(statsAt(t, f.ts.URL)["objects"].(float64))
					// The one legal divergence: the add whose intent was durable
					// and whose shard write landed before the crash is adopted at
					// recovery even though its ack never went out.
					if got != acked && got != acked+1 {
						t.Fatalf("recovered %d objects, acknowledged %d (at most one adoption allowed)", got, acked)
					}
					// Continue the workload where recovery left it; the corpus
					// must become exactly objs, with contiguous ids.
					for i := got; i < len(objs); i++ {
						_, id, _ := addAt(t, f.ts.URL, objs[i])
						if id != i {
							t.Fatalf("continuation add %d got id %d", i, id)
						}
					}
					f.verifyBitIdentical(singleNode(t, objs).URL, objs)
				})
				if !fired {
					break // past the last WAL operation the workload performs
				}
				if n > 200 {
					t.Fatal("crash sweep did not terminate")
				}
			}
		})
	}
}

// TestCoordinatorSnapshotCompactionRoundTrip: snapshot generations
// quiesce the control plane, compact the log behind the oldest retained
// generation, skip when nothing advanced, and recovery over snapshot +
// log tail stays bit-identical.
func TestCoordinatorSnapshotCompactionRoundTrip(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newDFleet(t, 3, nil)
	f.mustBoot(fault.OS{})
	for i, o := range objs {
		_, id, _ := addAt(t, f.ts.URL, o)
		if id != i {
			t.Fatalf("add %d got id %d", i, id)
		}
		if i == 3 || i == 7 {
			if err := f.coord.SnapshotGeneration(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.coord.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}
	// Idle snapshots must not churn generations: nothing advanced since
	// the last one.
	if err := f.coord.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}
	gens, _ := filepath.Glob(filepath.Join(f.snapDir, "snap.0*"))
	if len(gens) != f.keep {
		t.Fatalf("have %d generations, want keep=%d", len(gens), f.keep)
	}
	st := statsAt(t, f.ts.URL)
	if snapSeq, lastSeq := st["coordinator_snapshot_seq"].(float64), st["coordinator_wal_last_seq"].(float64); snapSeq != lastSeq || snapSeq == 0 {
		t.Fatalf("snapshot covers seq %v, wal at seq %v; want equal and nonzero", snapSeq, lastSeq)
	}

	f.kill()
	f.mustBoot(fault.OS{})
	f.verifyBitIdentical(singleNode(t, objs).URL, objs)
	if _, id, _ := addAt(t, f.ts.URL, objs[0]); id != len(objs) {
		t.Fatalf("post-recovery add got id %d, want %d", id, len(objs))
	}
}

// TestCoordinatorRecoveryRefusals: the loud-failure paths. A WAL
// deleted out-of-band, or compacted past what the only readable
// snapshot covers, must refuse recovery — serving the shorter id map as
// if nothing happened would silently break the global id space.
func TestCoordinatorRecoveryRefusals(t *testing.T) {
	objs := paperdata.Table1()

	t.Run("deleted wal", func(t *testing.T) {
		f := newDFleet(t, 3, nil)
		f.mustBoot(fault.OS{})
		f.load(objs[:4])
		if err := f.coord.SnapshotGeneration(); err != nil {
			t.Fatal(err)
		}
		f.kill()
		if err := os.RemoveAll(f.walDir); err != nil {
			t.Fatal(err)
		}
		_, err := f.boot(fault.OS{})
		if err == nil {
			t.Fatal("recovery with a deleted coordinator wal succeeded")
		}
		if !strings.Contains(err.Error(), "truncated or deleted") {
			t.Fatalf("wrong failure shape: %v", err)
		}
	})

	t.Run("over-compacted wal", func(t *testing.T) {
		f := newDFleet(t, 3, nil)
		f.mustBoot(fault.OS{})
		f.load(objs[:2])
		if err := f.coord.SnapshotGeneration(); err != nil { // generation 1
			t.Fatal(err)
		}
		for _, o := range objs[2:4] {
			addAt(t, f.ts.URL, o)
		}
		if err := f.coord.SnapshotGeneration(); err != nil { // generation 2
			t.Fatal(err)
		}
		lastSeq := uint64(statsAt(t, f.ts.URL)["coordinator_wal_last_seq"].(float64))
		f.kill()
		// Simulate an over-compacted log: every record gone, numbering
		// surviving only in a fresh segment's name.
		if err := os.RemoveAll(f.walDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(f.walDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(f.walDir, fmt.Sprintf("wal.%020d", lastSeq+1)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		// Rot the newest generation: the fallback covers less of the log,
		// and the records between now exist nowhere.
		gens, err := filepath.Glob(filepath.Join(f.snapDir, "snap.0*"))
		if err != nil || len(gens) != 2 {
			t.Fatalf("want 2 generations, have %v (%v)", gens, err)
		}
		if err := os.WriteFile(gens[len(gens)-1], []byte("rotten"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = f.boot(fault.OS{})
		if err == nil {
			t.Fatal("recovery over an over-compacted coordinator wal succeeded silently")
		}
		if !strings.Contains(err.Error(), "compacted") {
			t.Fatalf("wrong failure shape: %v", err)
		}
	})
}

// TestStaleRouteVersion: a client asserting the route-table version it
// computed against gets a typed 409 stale_route (carrying the current
// version) when the table has moved — on the query, join and add paths
// alike — and a 400 on a nonsense assertion.
func TestStaleRouteVersion(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	f := newFleet(t, 2, nil)
	f.load(objs[:4])

	current := map[string]string{HeaderRouteVersion: "1"}
	stale := map[string]string{HeaderRouteVersion: "2"}
	garbage := map[string]string{HeaderRouteVersion: "zork"}

	// The current version passes every gate.
	if resp, _ := queryAt(t, f.ts.URL, objs[0], current); resp.StatusCode != http.StatusOK {
		t.Fatalf("current-version query refused: %d", resp.StatusCode)
	}
	for _, ep := range []struct {
		name string
		path string
		body any
	}{
		{"query", "/query", map[string]any{"tokens": objs[0]}},
		{"join", "/join", map[string]any{"objects": objs[:2]}},
		{"add", "/objects", map[string]any{"tokens": objs[0]}},
	} {
		resp, b := doJSON(t, http.MethodPost, f.ts.URL+ep.path, ep.body, stale)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s with stale route version: status %d: %s", ep.name, resp.StatusCode, b)
		}
		if !strings.Contains(string(b), "stale_route") {
			t.Fatalf("%s stale-route body lacks the typed code: %s", ep.name, b)
		}
		if v := resp.Header.Get(HeaderRouteVersion); v != "1" {
			t.Fatalf("%s stale-route response carries version %q, want the current 1", ep.name, v)
		}
		resp, b = doJSON(t, http.MethodPost, f.ts.URL+ep.path, ep.body, garbage)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "bad_route_version") {
			t.Fatalf("%s with garbage route version: status %d: %s", ep.name, resp.StatusCode, b)
		}
	}
	// The refused add never reached a shard: the corpus is unchanged.
	if got := int(statsAt(t, f.ts.URL)["objects"].(float64)); got != 4 {
		t.Fatalf("stale-route add changed the corpus: %d objects, want 4", got)
	}
}

// TestAddChargesRetryBudgetOnce is the regression test for the add-path
// breaker double-count: the home shard's answer arrives with the add
// itself, so the discovery scatter must not send it a no-op query —
// that phantom call earned a second retry-budget token (and a phantom
// breaker Success that could close a half-open breaker off a probe
// that proved nothing). One add therefore earns exactly one token.
func TestAddChargesRetryBudgetOnce(t *testing.T) {
	watchGoroutines(t)
	f := newFleet(t, 1, func(cfg *Config) { cfg.RetryBudgetEarn = 1.0 })
	// Drain the bucket so earning becomes observable.
	for f.coord.budget.spend() {
	}
	if _, id, _ := addAt(t, f.ts.URL, paperdata.Table1()[0]); id != 0 {
		t.Fatalf("add got id %d, want 0", id)
	}
	earned := 0
	for f.coord.budget.spend() {
		if earned++; earned > 10 {
			break
		}
	}
	if earned != 1 {
		t.Fatalf("one add earned %d retry tokens, want exactly 1 (the home-shard no-op was double-charged)", earned)
	}
	if n := int(statsAt(t, f.ts.URL)["retries_total"].(float64)); n != 0 {
		t.Fatalf("retries_total = %d after one clean add", n)
	}
}
