package cluster

// The cluster chaos matrix: a real coordinator over real shard servers
// joined by a deterministic faulty transport (fault.NetInjector), plus
// a single-node oracle, asserting the scatter-gather contract:
//
//  1. full-coverage cluster answers are bit-identical (ids, Float64bits
//     of similarities, order) to the single-node engine on the same
//     corpus — adds, queries, joins, similarity;
//  2. with shards dead or stalled, degrade-policy requests answer
//     within the deadline with X-Kjoin-Coverage naming exactly the live
//     set, and their results are exactly the live shards' contribution;
//  3. fail-policy requests turn the same gap into a 503 naming the
//     failed shards;
//  4. the per-shard breaker opens on repeated failure, half-opens after
//     its cooldown, and a probe closes it (or re-opens it on a flap);
//  5. nothing leaks: every scatter goroutine is joined even when the
//     request deadline expires mid-gather.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/fault"
	"kjoin/internal/mathx"
	"kjoin/internal/paperdata"
	"kjoin/internal/server"
)

func testOpt() core.Options { return core.Defaults(0.7, 0.6) }

// matchT mirrors one /query match.
type matchT struct {
	Index int     `json:"index"`
	Sim   float64 `json:"sim"`
}

// pairT mirrors one /objects or /join pair.
type pairT struct {
	X   int     `json:"x"`
	Y   int     `json:"y"`
	Sim float64 `json:"sim"`
}

// doJSON runs one JSON request and returns the response with its body
// read and closed.
func doJSON(t *testing.T, method, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// queryAt posts a query and decodes the matches (status must be 200).
func queryAt(t *testing.T, base string, tokens []string, hdr map[string]string) (*http.Response, []matchT) {
	t.Helper()
	resp, b := doJSON(t, http.MethodPost, base+"/query", map[string]any{"tokens": tokens}, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query at %s: status %d: %s", base, resp.StatusCode, b)
	}
	var out struct {
		Matches []matchT `json:"matches"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("query response: %v: %s", err, b)
	}
	return resp, out.Matches
}

// addAt posts an object and decodes id and pairs (status must be 200).
func addAt(t *testing.T, base string, tokens []string) (*http.Response, int, []pairT) {
	t.Helper()
	resp, b := doJSON(t, http.MethodPost, base+"/objects", map[string]any{"tokens": tokens}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add at %s: status %d: %s", base, resp.StatusCode, b)
	}
	var out struct {
		ID    int     `json:"id"`
		Pairs []pairT `json:"pairs"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("add response: %v: %s", err, b)
	}
	return resp, out.ID, out.Pairs
}

// statsAt fetches /stats.
func statsAt(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, b := doJSON(t, http.MethodGet, base+"/stats", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, b)
	}
	var out map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func assertMatchesBitIdentical(t *testing.T, what string, got, want []matchT) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d (got %v, want %v)", what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Index != want[i].Index || math.Float64bits(got[i].Sim) != math.Float64bits(want[i].Sim) {
			t.Fatalf("%s: match %d = %+v, want bit-identical %+v", what, i, got[i], want[i])
		}
	}
}

func assertPairsBitIdentical(t *testing.T, what string, got, want []pairT) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d (got %v, want %v)", what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].X != want[i].X || got[i].Y != want[i].Y ||
			math.Float64bits(got[i].Sim) != math.Float64bits(want[i].Sim) {
			t.Fatalf("%s: pair %d = %+v, want bit-identical %+v", what, i, got[i], want[i])
		}
	}
}

// waitUntil polls cond for up to 15s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// watchGoroutines fails the test if the goroutine count does not settle
// back to its baseline — a scatter goroutine, stalled dial, or hedge
// that outlived its request. The logic lives in fault.WatchGoroutines,
// shared with the replica and reshard suites.
func watchGoroutines(t *testing.T) {
	fault.WatchGoroutines(t)
}

// fleet is a coordinator over n real shard servers whose transport
// runs through a fault injector.
type fleet struct {
	t      *testing.T
	coord  *Coordinator
	ts     *httptest.Server // coordinator
	shards []*httptest.Server
	inj    *fault.NetInjector
}

// newFleet starts n shards and a coordinator with test-sized timeouts;
// mod may adjust the config before the coordinator is built.
func newFleet(t *testing.T, n int, mod func(*Config)) *fleet {
	t.Helper()
	h, _ := paperdata.Fig1()
	f := &fleet{t: t, inj: fault.NewNetInjector(nil)}
	tr := f.inj.Transport()
	// The transport detaches dial contexts from request cancellation
	// (a future request might want the connection), so a stalled dial
	// outlives its abandoned request until the transport is torn down.
	// Close it on cleanup so the goroutine watchdog sees a clean exit.
	t.Cleanup(tr.CloseIdleConnections)
	cfg := Config{
		HTTP:             &http.Client{Transport: tr},
		RequestTimeout:   10 * time.Second,
		ShardTimeout:     2 * time.Second,
		HedgeDelay:       100 * time.Millisecond,
		RetryBackoffMin:  time.Millisecond,
		RetryBackoffMax:  5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		Seed:             7,
		Logf:             t.Logf,
	}
	for i := 0; i < n; i++ {
		s, err := server.New(h, testOpt())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		f.shards = append(f.shards, ts)
		cfg.Shards = append(cfg.Shards, ShardConfig{Primary: ts.URL})
	}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	f.ts = httptest.NewServer(coord)
	t.Cleanup(f.ts.Close)
	return f
}

// addr returns shard i's dial address, for scoping injected faults.
func (f *fleet) addr(i int) string {
	return strings.TrimPrefix(f.shards[i].URL, "http://")
}

// load adds the objects through the coordinator, requiring clean full
// coverage.
func (f *fleet) load(objs [][]string) {
	f.t.Helper()
	for i, o := range objs {
		resp, id, _ := addAt(f.t, f.ts.URL, o)
		if id != i {
			f.t.Fatalf("load: object %d got global id %d", i, id)
		}
		if cov := resp.Header.Get(HeaderCoverage); cov != fmt.Sprintf("%d/%d", len(f.shards), len(f.shards)) {
			f.t.Fatalf("load: add %d coverage %q, want full", i, cov)
		}
	}
}

// singleNode starts the single-node oracle server.
func singleNode(t *testing.T, objs [][]string) *httptest.Server {
	t.Helper()
	h, _ := paperdata.Fig1()
	s, err := server.New(h, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	for _, o := range objs {
		addAt(t, ts.URL, o)
	}
	return ts
}

// liveOnly filters an oracle match set down to the objects homed on
// live shards — the exact answer a degraded gather must produce.
func liveOnly(matches []matchT, objs [][]string, nshards int, dead map[int]bool) []matchT {
	r := NewRouter(nshards)
	out := []matchT{}
	for _, m := range matches {
		if m.Index < len(objs) && dead[r.Home(objs[m.Index])] {
			continue
		}
		out = append(out, m)
	}
	return out
}

// TestClusterDifferentialBitIdentity pins full-coverage cluster
// answers to the single-node engine: same global ids, same pair sets,
// same Float64bits, same order — for adds, queries, top-k queries,
// joins, and similarity.
func TestClusterDifferentialBitIdentity(t *testing.T) {
	watchGoroutines(t)
	objs := paperdata.Table1()
	oh, _ := paperdata.Fig1()
	osrv, err := server.New(oh, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(osrv)
	t.Cleanup(ots.Close)
	f := newFleet(t, 3, nil)

	// Adds: every response bit-identical to the oracle's, step by step.
	for i, o := range objs {
		_, wantID, wantPairs := addAt(t, ots.URL, o)
		resp, gotID, gotPairs := addAt(t, f.ts.URL, o)
		if gotID != wantID {
			t.Fatalf("add %d: cluster id %d, oracle id %d", i, gotID, wantID)
		}
		if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
			t.Fatalf("add %d: coverage %q, want 3/3", i, cov)
		}
		assertPairsBitIdentical(t, fmt.Sprintf("add %d", i), gotPairs, wantPairs)
	}

	// Queries: bit-identical matches, full coverage declared.
	for qi, q := range objs {
		_, want := queryAt(t, ots.URL, q, nil)
		resp, got := queryAt(t, f.ts.URL, q, nil)
		if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
			t.Fatalf("query %d: coverage %q, want 3/3", qi, cov)
		}
		if skipped := resp.Header.Get(HeaderSkippedShards); skipped != "" {
			t.Fatalf("query %d: skipped shards %q on a healthy fleet", qi, skipped)
		}
		assertMatchesBitIdentical(t, fmt.Sprintf("query %d", qi), got, want)
	}

	// Top-k: descending score with ascending-id ties, truncated to k.
	q := objs[8]
	_, full := queryAt(t, ots.URL, q, nil)
	wantTop := append([]matchT(nil), full...)
	sort.SliceStable(wantTop, func(i, j int) bool {
		if c := mathx.Cmp(wantTop[i].Sim, wantTop[j].Sim); c != 0 {
			return c > 0
		}
		return wantTop[i].Index < wantTop[j].Index
	})
	if len(wantTop) > 3 {
		wantTop = wantTop[:3]
	}
	resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/query?k=3", map[string]any{"tokens": q}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("top-k query: status %d: %s", resp.StatusCode, b)
	}
	var topOut struct {
		Matches []matchT `json:"matches"`
	}
	if err := json.Unmarshal(b, &topOut); err != nil {
		t.Fatal(err)
	}
	assertMatchesBitIdentical(t, "top-k query", topOut.Matches, wantTop)

	// Join: the batch against the corpus equals per-object oracle
	// queries.
	batch := objs[:4]
	var wantJoin []pairT
	for i, o := range batch {
		_, ms := queryAt(t, ots.URL, o, nil)
		for _, m := range ms {
			wantJoin = append(wantJoin, pairT{X: i, Y: m.Index, Sim: m.Sim})
		}
	}
	resp, b = doJSON(t, http.MethodPost, f.ts.URL+"/join", map[string]any{"objects": batch}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d: %s", resp.StatusCode, b)
	}
	if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
		t.Fatalf("join coverage %q, want 3/3", cov)
	}
	var joinOut struct {
		Pairs []pairT `json:"pairs"`
	}
	if err := json.Unmarshal(b, &joinOut); err != nil {
		t.Fatal(err)
	}
	assertPairsBitIdentical(t, "join", joinOut.Pairs, wantJoin)

	// Similarity: bit-exact score through the cluster.
	resp, b = doJSON(t, http.MethodPost, ots.URL+"/similarity", map[string]any{"x": objs[0], "y": objs[8]}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle similarity: status %d: %s", resp.StatusCode, b)
	}
	var wantSim, gotSim struct {
		Sim float64 `json:"sim"`
	}
	if err := json.Unmarshal(b, &wantSim); err != nil {
		t.Fatal(err)
	}
	resp, b = doJSON(t, http.MethodPost, f.ts.URL+"/similarity", map[string]any{"x": objs[0], "y": objs[8]}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster similarity: status %d: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &gotSim); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gotSim.Sim) != math.Float64bits(wantSim.Sim) {
		t.Fatalf("similarity %x, want bit-exact %x", math.Float64bits(gotSim.Sim), math.Float64bits(wantSim.Sim))
	}

	// Stats and route table agree with what happened.
	st := statsAt(t, f.ts.URL)
	if int(st["objects"].(float64)) != len(objs) {
		t.Fatalf("stats objects = %v, want %d", st["objects"], len(objs))
	}
	if int(st["partial_responses_total"].(float64)) != 0 {
		t.Fatalf("partial_responses_total = %v on a healthy fleet", st["partial_responses_total"])
	}
	for i, s := range st["breaker_state"].([]any) {
		if s.(string) != "closed" {
			t.Fatalf("breaker %d state %v on a healthy fleet", i, s)
		}
	}
	resp, b = doJSON(t, http.MethodGet, f.ts.URL+"/cluster/route", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route: status %d: %s", resp.StatusCode, b)
	}
	var route struct {
		Version int    `json:"version"`
		Algo    string `json:"algo"`
		Shards  []struct {
			ID      int `json:"id"`
			Objects int `json:"objects"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(b, &route); err != nil {
		t.Fatal(err)
	}
	if route.Version != 1 || route.Algo != "minhash-fnv1a64" {
		t.Fatalf("route table version %d algo %q", route.Version, route.Algo)
	}
	total := 0
	for _, rs := range route.Shards {
		total += rs.Objects
	}
	if total != len(objs) {
		t.Fatalf("route table accounts for %d objects, want %d", total, len(objs))
	}
}

// TestClusterChaosMatrix runs the fault schedules. Every case gets a
// fresh fleet loaded cleanly through the coordinator, then faults are
// appended to the live injector and the scatter-gather contract is
// asserted.
func TestClusterChaosMatrix(t *testing.T) {
	objs := paperdata.Table1()

	t.Run("dead shard degrades and fails by policy", func(t *testing.T) {
		watchGoroutines(t)
		f := newFleet(t, 3, nil)
		f.load(objs)
		ots := singleNode(t, objs)
		// Shard 1 dies: every dial from now on is refused.
		f.inj.Append(fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1, Sticky: true})
		dead := map[int]bool{1: true}
		for qi, q := range objs {
			_, oracle := queryAt(t, ots.URL, q, nil)
			want := liveOnly(oracle, objs, 3, dead)
			resp, got := queryAt(t, f.ts.URL, q, map[string]string{HeaderPartial: PartialDegrade})
			if cov := resp.Header.Get(HeaderCoverage); cov != "2/3" {
				t.Fatalf("query %d coverage %q, want 2/3", qi, cov)
			}
			if skipped := resp.Header.Get(HeaderSkippedShards); skipped != "1" {
				t.Fatalf("query %d skipped %q, want exactly shard 1", qi, skipped)
			}
			assertMatchesBitIdentical(t, fmt.Sprintf("degraded query %d", qi), got, want)
		}
		// Fail policy: same gap, explicit refusal naming the shard.
		resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/query",
			map[string]any{"tokens": objs[0]}, map[string]string{HeaderPartial: PartialFail})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("fail-policy query: status %d: %s", resp.StatusCode, b)
		}
		if fs := resp.Header.Get(HeaderFailedShards); fs != "1" {
			t.Fatalf("failed shards header %q, want 1", fs)
		}
		if !bytes.Contains(b, []byte("partial_failure")) || !bytes.Contains(b, []byte("1")) {
			t.Fatalf("fail-policy body does not name the failed shard: %s", b)
		}
		// Adds: a live home degrades its discovery; the dead home refuses.
		resp, _, _ = addAt(t, f.ts.URL, objs[5]) // home shard 0
		if cov := resp.Header.Get(HeaderCoverage); cov != "2/3" {
			t.Fatalf("add with dead discovery shard: coverage %q, want 2/3", cov)
		}
		resp, b = doJSON(t, http.MethodPost, f.ts.URL+"/objects", map[string]any{"tokens": objs[0]}, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("add homed on dead shard: status %d: %s", resp.StatusCode, b)
		}
		if !bytes.Contains(b, []byte("shard_unavailable")) {
			t.Fatalf("add homed on dead shard: body %s", b)
		}
		st := statsAt(t, f.ts.URL)
		if healthy := st["shard_healthy"].([]any); healthy[1].(bool) {
			t.Fatal("stats report the dead shard healthy")
		}
		if n := int(st["partial_responses_total"].(float64)); n < len(objs) {
			t.Fatalf("partial_responses_total = %d, want at least %d", n, len(objs))
		}
	})

	t.Run("stalled shard degrades within the deadline", func(t *testing.T) {
		watchGoroutines(t)
		f := newFleet(t, 3, nil)
		f.load(objs)
		ots := singleNode(t, objs)
		// Shard 1 black-holes: dials hang until the caller's context
		// expires.
		f.inj.Append(fault.NetFault{Op: fault.OpDial, Mode: fault.NetStall, Addr: f.addr(1), N: 1, Sticky: true})
		_, oracle := queryAt(t, ots.URL, objs[7], nil)
		want := liveOnly(oracle, objs, 3, map[int]bool{1: true})
		start := time.Now()
		resp, got := queryAt(t, f.ts.URL, objs[7], map[string]string{
			HeaderPartial:    PartialDegrade,
			HeaderDeadlineMs: "500",
		})
		elapsed := time.Since(start)
		if elapsed > 2*time.Second {
			t.Fatalf("degraded query took %v against a 500ms budget", elapsed)
		}
		if cov := resp.Header.Get(HeaderCoverage); cov != "2/3" {
			t.Fatalf("coverage %q, want 2/3", cov)
		}
		assertMatchesBitIdentical(t, "stalled-shard query", got, want)
	})

	t.Run("mid-frame truncation is retried to full coverage", func(t *testing.T) {
		watchGoroutines(t)
		f := newFleet(t, 3, nil)
		f.load(objs)
		ots := singleNode(t, objs)
		// The next read from shard 1 delivers 8 bytes and cuts the
		// connection mid-frame; the retry gets a clean connection.
		f.inj.Append(fault.NetFault{Op: fault.OpConnRead, Mode: fault.NetTruncate, Keep: 8, Addr: f.addr(1), N: 1})
		_, want := queryAt(t, ots.URL, objs[3], nil)
		resp, got := queryAt(t, f.ts.URL, objs[3], map[string]string{HeaderPartial: PartialDegrade})
		if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
			t.Fatalf("coverage %q, want full after retry", cov)
		}
		assertMatchesBitIdentical(t, "post-truncation query", got, want)
		if f.inj.Fired() == 0 {
			t.Fatal("truncation fault never fired")
		}
		if n := int(statsAt(t, f.ts.URL)["retries_total"].(float64)); n < 1 {
			t.Fatalf("retries_total = %d, want at least 1", n)
		}
	})

	t.Run("flapping shard exercises open, half-open, close", func(t *testing.T) {
		watchGoroutines(t)
		f := newFleet(t, 3, nil)
		f.load(objs)
		ots := singleNode(t, objs)
		breakerState := func(i int) string {
			return statsAt(t, f.ts.URL)["breaker_state"].([]any)[i].(string)
		}
		// Flap one: two refused dials (initial attempt + its retry) open
		// the breaker at threshold 2.
		f.inj.Append(
			fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1},
			fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1},
		)
		resp, _ := queryAt(t, f.ts.URL, objs[0], map[string]string{HeaderPartial: PartialDegrade})
		if cov := resp.Header.Get(HeaderCoverage); cov != "2/3" {
			t.Fatalf("flap 1 coverage %q, want 2/3", cov)
		}
		if st := breakerState(1); st != "open" {
			t.Fatalf("breaker state %q after consecutive failures, want open", st)
		}
		// While open, the gap persists without touching the dead shard.
		before := f.inj.Fired()
		resp, _ = queryAt(t, f.ts.URL, objs[0], map[string]string{HeaderPartial: PartialDegrade})
		if cov := resp.Header.Get(HeaderCoverage); cov != "2/3" {
			t.Fatalf("open-breaker coverage %q, want 2/3", cov)
		}
		if f.inj.Fired() != before {
			t.Fatal("open breaker still dialed the failed shard")
		}
		// Cooldown elapses: half-open, and the successful probe closes it.
		waitUntil(t, "breaker to half-open", func() bool { return breakerState(1) == "half-open" })
		_, want := queryAt(t, ots.URL, objs[0], nil)
		resp, got := queryAt(t, f.ts.URL, objs[0], map[string]string{HeaderPartial: PartialDegrade})
		if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
			t.Fatalf("post-probe coverage %q, want full", cov)
		}
		assertMatchesBitIdentical(t, "post-probe query", got, want)
		if st := breakerState(1); st != "closed" {
			t.Fatalf("breaker state %q after successful probe, want closed", st)
		}
		// Flap two: the shard dies again, and this time the first probe
		// also fails — the breaker must re-open for a fresh cooldown.
		f.inj.Append(
			fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1},
			fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1},
			fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1},
		)
		queryAt(t, f.ts.URL, objs[0], map[string]string{HeaderPartial: PartialDegrade})
		if st := breakerState(1); st != "open" {
			t.Fatalf("breaker state %q after flap two, want open", st)
		}
		waitUntil(t, "breaker to half-open again", func() bool { return breakerState(1) == "half-open" })
		resp, _ = queryAt(t, f.ts.URL, objs[0], map[string]string{HeaderPartial: PartialDegrade})
		if cov := resp.Header.Get(HeaderCoverage); cov != "2/3" {
			t.Fatalf("failed-probe coverage %q, want 2/3", cov)
		}
		if st := breakerState(1); st != "open" {
			t.Fatalf("breaker state %q after failed probe, want re-opened", st)
		}
		// And the shard's real recovery closes it again.
		waitUntil(t, "breaker to half-open after failed probe", func() bool { return breakerState(1) == "half-open" })
		resp, got = queryAt(t, f.ts.URL, objs[0], map[string]string{HeaderPartial: PartialDegrade})
		if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
			t.Fatalf("recovery coverage %q, want full", cov)
		}
		assertMatchesBitIdentical(t, "recovered query", got, want)
	})

	t.Run("coordinator deadline expiry mid-gather", func(t *testing.T) {
		watchGoroutines(t)
		f := newFleet(t, 3, nil)
		f.load(objs)
		// Every shard black-holes; the request budget expires mid-gather
		// and the gather must still join all scatter goroutines and
		// answer promptly.
		for i := 0; i < 3; i++ {
			f.inj.Append(fault.NetFault{Op: fault.OpDial, Mode: fault.NetStall, Addr: f.addr(i), N: 1, Sticky: true})
		}
		start := time.Now()
		resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/query",
			map[string]any{"tokens": objs[0]},
			map[string]string{HeaderPartial: PartialDegrade, HeaderDeadlineMs: "400"})
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("zero-coverage query: status %d: %s", resp.StatusCode, b)
		}
		if !bytes.Contains(b, []byte("timeout")) {
			t.Fatalf("zero-coverage body: %s", b)
		}
		if elapsed > 3*time.Second {
			t.Fatalf("deadline-expired query took %v against a 400ms budget", elapsed)
		}
	})

	t.Run("stalled replica hedges to the primary", func(t *testing.T) {
		watchGoroutines(t)
		// Shard 1 gets a replica that black-holes from the start: every
		// query to shard 1 must hedge to the primary at the hedge delay
		// and stay bit-identical, with hedges surfaced in /stats.
		replicaTS := httptest.NewServer(http.NotFoundHandler())
		t.Cleanup(replicaTS.Close)
		f := newFleet(t, 3, func(cfg *Config) {
			cfg.Shards[1].Replicas = []string{replicaTS.URL}
		})
		f.inj.Append(fault.NetFault{Op: fault.OpDial, Mode: fault.NetStall,
			Addr: strings.TrimPrefix(replicaTS.URL, "http://"), N: 1, Sticky: true})
		f.load(objs)
		ots := singleNode(t, objs)
		_, want := queryAt(t, ots.URL, objs[2], nil)
		resp, got := queryAt(t, f.ts.URL, objs[2], nil)
		if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
			t.Fatalf("hedged query coverage %q, want full", cov)
		}
		assertMatchesBitIdentical(t, "hedged query", got, want)
		if n := int(statsAt(t, f.ts.URL)["hedges_total"].(float64)); n < 1 {
			t.Fatalf("hedges_total = %d, want at least 1", n)
		}
	})

	t.Run("dead primary fails over to its replica", func(t *testing.T) {
		watchGoroutines(t)
		// Shard 1's replica mirrors its primary; when the primary dies,
		// reads fail over and coverage stays full — only adds homed there
		// refuse.
		h, _ := paperdata.Fig1()
		rsrv, err := server.New(h, testOpt())
		if err != nil {
			t.Fatal(err)
		}
		replicaTS := httptest.NewServer(rsrv)
		t.Cleanup(replicaTS.Close)
		f := newFleet(t, 3, func(cfg *Config) {
			cfg.Shards[1].Replicas = []string{replicaTS.URL}
		})
		r := NewRouter(3)
		for i, o := range objs {
			resp, id, _ := addAt(t, f.ts.URL, o)
			if id != i {
				t.Fatalf("load: object %d got id %d", i, id)
			}
			if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
				t.Fatalf("load coverage %q", cov)
			}
			if r.Home(o) == 1 {
				addAt(t, replicaTS.URL, o) // mirror, same local id order
			}
		}
		ots := singleNode(t, objs)
		f.inj.Append(fault.NetFault{Op: fault.OpDial, Mode: fault.NetFail, Addr: f.addr(1), N: 1, Sticky: true})
		for qi, q := range objs {
			_, want := queryAt(t, ots.URL, q, nil)
			resp, got := queryAt(t, f.ts.URL, q, map[string]string{HeaderPartial: PartialFail})
			if cov := resp.Header.Get(HeaderCoverage); cov != "3/3" {
				t.Fatalf("failover query %d coverage %q, want full", qi, cov)
			}
			assertMatchesBitIdentical(t, fmt.Sprintf("failover query %d", qi), got, want)
		}
		resp, b := doJSON(t, http.MethodPost, f.ts.URL+"/objects", map[string]any{"tokens": objs[0]}, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("add to dead primary: status %d: %s", resp.StatusCode, b)
		}
		if !bytes.Contains(b, []byte("shard_unavailable")) {
			t.Fatalf("add to dead primary: body %s", b)
		}
	})
}
