package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"kjoin/internal/replica"
	"kjoin/internal/serverutil"
)

// Request headers the coordinator honors and response headers it sets.
const (
	// HeaderPartial selects the partial-result policy per request
	// ("fail" or "degrade"); absent means the configured default.
	HeaderPartial = "X-Kjoin-Partial"
	// HeaderDeadlineMs shrinks the request's deadline budget below the
	// configured RequestTimeout (milliseconds; it cannot grow it).
	HeaderDeadlineMs = "X-Kjoin-Deadline-Ms"
	// HeaderCoverage reports gather coverage as "k/n": k of n shards
	// contributed to the answer.
	HeaderCoverage = "X-Kjoin-Coverage"
	// HeaderSkippedShards lists the shard ids missing from a degraded
	// answer, comma-separated.
	HeaderSkippedShards = "X-Kjoin-Skipped-Shards"
	// HeaderFailedShards lists the shard ids that caused a fail-policy
	// 503, comma-separated.
	HeaderFailedShards = "X-Kjoin-Failed-Shards"
)

func (c *Coordinator) mux() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /objects", c.limited(http.HandlerFunc(c.handleAdd)))
	mux.Handle("POST /query", c.limited(http.HandlerFunc(c.handleQuery)))
	mux.Handle("POST /join", c.limited(http.HandlerFunc(c.handleJoin)))
	mux.Handle("POST /similarity", c.limited(http.HandlerFunc(c.handleSimilarity)))
	mux.HandleFunc("GET /cluster/route", c.handleRoute)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	return mux
}

// limited is the coordinator's protection stack: admission control
// first (shed before spending), then the deadline budget, then the
// body cap.
func (c *Coordinator) limited(h http.Handler) http.Handler {
	return serverutil.Chain(h,
		serverutil.Admit(c.sem, time.Second, 3*time.Second, c.cfg.Seed),
		c.deadline,
		serverutil.LimitBody(c.cfg.MaxBodyBytes),
	)
}

// deadline attaches the request's deadline budget: the configured
// RequestTimeout, shrunk by an X-Kjoin-Deadline-Ms header when the
// caller wants a tighter bound.
func (c *Coordinator) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := c.cfg.RequestTimeout
		if h := r.Header.Get(HeaderDeadlineMs); h != "" {
			ms, err := strconv.Atoi(h)
			if err != nil || ms <= 0 {
				serverutil.WriteError(w, http.StatusBadRequest, "bad_deadline",
					fmt.Sprintf("%s must be a positive integer, got %q", HeaderDeadlineMs, h))
				return
			}
			if hd := time.Duration(ms) * time.Millisecond; hd < d {
				d = hd
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// policy resolves the request's partial-result policy.
func (c *Coordinator) policy(w http.ResponseWriter, r *http.Request) (string, bool) {
	p := r.Header.Get(HeaderPartial)
	if p == "" {
		return c.cfg.Partial, true
	}
	if p != PartialFail && p != PartialDegrade {
		serverutil.WriteError(w, http.StatusBadRequest, "bad_policy",
			fmt.Sprintf("%s must be %q or %q, got %q", HeaderPartial, PartialFail, PartialDegrade, p))
		return "", false
	}
	return p, true
}

// decode parses a JSON body, reporting a structured 400 on failure.
func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			serverutil.WriteError(w, http.StatusBadRequest, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		serverutil.WriteError(w, http.StatusBadRequest, "bad_json", "bad request body: "+err.Error())
		return false
	}
	return true
}

// shardList renders shard ids as "1,3".
func shardList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// gatherHeaders applies the partial-result policy to a gather with the
// given failed shard set. It returns false after writing the response
// itself (nothing answered, or fail policy with gaps); on true the
// caller proceeds to write the 200, whose coverage headers are already
// set.
func (c *Coordinator) gatherHeaders(w http.ResponseWriter, policy string, failed []int, lastErr error) bool {
	n := len(c.shards)
	live := n - len(failed)
	if live == 0 {
		detail := "every shard failed"
		if lastErr != nil {
			detail = "every shard failed: " + lastErr.Error()
		}
		w.Header().Set(HeaderFailedShards, shardList(failed))
		if errors.Is(lastErr, context.DeadlineExceeded) {
			serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded before any shard answered")
			return false
		}
		serverutil.WriteError(w, http.StatusServiceUnavailable, "all_shards_failed", detail)
		return false
	}
	if len(failed) > 0 {
		c.partialTotal.Add(1)
		if policy == PartialFail {
			w.Header().Set(HeaderFailedShards, shardList(failed))
			serverutil.WriteError(w, http.StatusServiceUnavailable, "partial_failure",
				fmt.Sprintf("shards %s failed and the request demands full coverage", shardList(failed)))
			return false
		}
		w.Header().Set(HeaderSkippedShards, shardList(failed))
	}
	w.Header().Set(HeaderCoverage, fmt.Sprintf("%d/%d", live, n))
	return true
}

// objectRequest is the body of POST /objects and POST /query.
type objectRequest struct {
	Tokens []string `json:"tokens"`
}

// toEntries maps one shard's local match indices into global-id
// entries. Matches for local ids the coordinator has not assigned are
// dropped — they can only come from writes that bypassed the
// coordinator, and inventing global ids for them would corrupt the
// merge. Caller holds c.mu (read side).
func (c *Coordinator) toEntries(shardID int, ms []replica.Match) []Entry {
	tg := c.toGlobal[shardID]
	out := make([]Entry, 0, len(ms))
	for _, m := range ms {
		if m.Index < 0 || m.Index >= len(tg) {
			continue
		}
		out = append(out, Entry{Index: tg[m.Index], Sim: m.Sim})
	}
	return out
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	policy, ok := c.policy(w, r)
	if !ok {
		return
	}
	k := 0
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		if k, err = strconv.Atoi(kq); err != nil || k < 1 {
			serverutil.WriteError(w, http.StatusBadRequest, "bad_k",
				fmt.Sprintf("k must be a positive integer, got %q", kq))
			return
		}
	}
	var req objectRequest
	if !c.decode(w, r, &req) {
		return
	}
	outs := scatter(c, r.Context(), func(ctx context.Context, _ int, cl *replica.Client) (*replica.Result, error) {
		return cl.Query(ctx, req.Tokens)
	})
	var failed []int
	var lastErr error
	entries := make([][]Entry, len(outs))
	c.mu.RLock()
	for i, out := range outs {
		if out.err != nil {
			failed = append(failed, i)
			lastErr = out.err
			continue
		}
		entries[i] = c.toEntries(i, out.val.Matches)
	}
	c.mu.RUnlock()
	// A shard-side 400 means the input itself is bad (every shard would
	// refuse it); answer 400, not a coverage gap.
	var se *replica.StatusError
	if errors.As(lastErr, &se) && se.Status == http.StatusBadRequest && len(failed) == len(outs) {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shards rejected the query: "+lastErr.Error())
		return
	}
	if !c.gatherHeaders(w, policy, failed, lastErr) {
		return
	}
	var merged []Entry
	if k > 0 {
		merged = mergeTopK(entries, k)
	} else {
		merged = mergeAscending(entries)
	}
	if merged == nil {
		merged = []Entry{}
	}
	writeJSON(w, map[string]any{"matches": merged})
}

// joinRequest is the body of POST /join: a batch of objects joined
// against the cluster's indexed corpus.
type joinRequest struct {
	Objects [][]string `json:"objects"`
}

// joinPair is one reported (batch object, corpus object) match.
type joinPair struct {
	X   int     `json:"x"` // index into the posted batch
	Y   int     `json:"y"` // global id of the corpus object
	Sim float64 `json:"sim"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	policy, ok := c.policy(w, r)
	if !ok {
		return
	}
	var req joinRequest
	if !c.decode(w, r, &req) {
		return
	}
	// Each shard serves the whole batch under one shard deadline: the
	// per-object queries are sequential, so the shard's allowance covers
	// the batch, not each object.
	outs := scatter(c, r.Context(), func(ctx context.Context, _ int, cl *replica.Client) ([][]replica.Match, error) {
		res := make([][]replica.Match, len(req.Objects))
		for i, obj := range req.Objects {
			out, err := cl.Query(ctx, obj)
			if err != nil {
				return nil, err
			}
			res[i] = out.Matches
		}
		return res, nil
	})
	var failed []int
	var lastErr error
	var pairs []joinPair
	c.mu.RLock()
	for s, out := range outs {
		if out.err != nil {
			failed = append(failed, s)
			lastErr = out.err
			continue
		}
		for i, ms := range out.val {
			for _, e := range c.toEntries(s, ms) {
				pairs = append(pairs, joinPair{X: i, Y: e.Index, Sim: e.Sim})
			}
		}
	}
	c.mu.RUnlock()
	var se *replica.StatusError
	if errors.As(lastErr, &se) && se.Status == http.StatusBadRequest && len(failed) == len(outs) {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shards rejected the batch: "+lastErr.Error())
		return
	}
	if !c.gatherHeaders(w, policy, failed, lastErr) {
		return
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].X != pairs[j].X {
			return pairs[i].X < pairs[j].X
		}
		return pairs[i].Y < pairs[j].Y
	})
	if pairs == nil {
		pairs = []joinPair{}
	}
	writeJSON(w, map[string]any{"pairs": pairs})
}

// similarityRequest is the body of POST /similarity.
type similarityRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
}

func (c *Coordinator) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	var req similarityRequest
	if !c.decode(w, r, &req) {
		return
	}
	// Similarity is stateless over the shared hierarchy, so any shard
	// can answer; start from a rotating cursor and fail over across the
	// fleet.
	start := int(c.rr.Add(1))
	var lastErr error
	for off := 0; off < len(c.shards); off++ {
		sh := c.shards[(start+off)%len(c.shards)]
		res, err := callShard(c, r.Context(), sh, func(ctx context.Context, cl *replica.Client) (*replica.Result, error) {
			return cl.Similarity(ctx, req.X, req.Y)
		})
		if err == nil {
			writeJSON(w, map[string]float64{"sim": res.Sim})
			return
		}
		lastErr = err
		if r.Context().Err() != nil {
			break
		}
	}
	if se := statusErrOf(lastErr); se != nil && se.Status == http.StatusBadRequest {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shards rejected the pair: "+lastErr.Error())
		return
	}
	if errors.Is(lastErr, context.DeadlineExceeded) {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded")
		return
	}
	serverutil.WriteError(w, http.StatusServiceUnavailable, "all_shards_failed", "no shard could score the pair: "+lastErr.Error())
}

// pairJSON is one reported pair in an add response, in global ids.
type pairJSON struct {
	X   int     `json:"x"`
	Y   int     `json:"y"`
	Sim float64 `json:"sim"`
}

// shardAddResponse is what a shard's POST /objects returns (local ids).
type shardAddResponse struct {
	ID    int        `json:"id"`
	Pairs []pairJSON `json:"pairs"`
}

func (c *Coordinator) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !c.decode(w, r, &req) {
		return
	}
	home := c.router.Home(req.Tokens)
	// Adds serialize cluster-wide: the global id order is the insertion
	// order, and the discovery sweep below sees exactly the objects with
	// smaller global ids — the single-node add's invariant. Throughput
	// scales with shards via query traffic, not add traffic.
	c.addMu.Lock()
	defer c.addMu.Unlock()
	res, err := c.addToShard(r.Context(), c.shards[home], req.Tokens)
	if err != nil {
		c.addError(w, home, err)
		return
	}
	c.mu.Lock()
	g := c.objects
	if res.ID != len(c.toGlobal[home]) {
		// The shard's id sequence diverged from ours: something wrote to
		// it around the coordinator. Refuse loudly rather than serve a
		// corrupted mapping.
		c.mu.Unlock()
		serverutil.WriteError(w, http.StatusInternalServerError, "shard_drift",
			fmt.Sprintf("shard %d assigned local id %d, coordinator expected %d", home, res.ID, len(c.toGlobal[home])))
		return
	}
	c.objects++
	c.toGlobal[home] = append(c.toGlobal[home], g)
	homeEntries := make([]Entry, 0, len(res.Pairs))
	for _, p := range res.Pairs {
		// A shard add reports pairs as (candidate local id, new local id).
		if p.X < 0 || p.X >= len(c.toGlobal[home]) {
			continue
		}
		homeEntries = append(homeEntries, Entry{Index: c.toGlobal[home][p.X], Sim: p.Sim})
	}
	c.mu.Unlock()
	// Cross-shard pair discovery: the new object queried against every
	// other shard's corpus (all ids < g — adds are serialized). The home
	// add has already committed, so discovery gaps degrade the reported
	// pair set with coverage headers; they never fail the add.
	outs := scatter(c, r.Context(), func(ctx context.Context, shardID int, cl *replica.Client) (*replica.Result, error) {
		if shardID == home {
			return &replica.Result{}, nil
		}
		return cl.Query(ctx, req.Tokens)
	})
	var failed []int
	entries := make([][]Entry, 0, len(outs)+1)
	entries = append(entries, homeEntries)
	c.mu.RLock()
	for i, out := range outs {
		if i == home {
			continue
		}
		if out.err != nil {
			failed = append(failed, i)
			continue
		}
		entries = append(entries, c.toEntries(i, out.val.Matches))
	}
	c.mu.RUnlock()
	if len(failed) > 0 {
		c.partialTotal.Add(1)
		w.Header().Set(HeaderSkippedShards, shardList(failed))
	}
	w.Header().Set(HeaderCoverage, fmt.Sprintf("%d/%d", len(c.shards)-len(failed), len(c.shards)))
	merged := mergeAscending(entries)
	pairs := make([]pairJSON, 0, len(merged))
	for _, e := range merged {
		pairs = append(pairs, pairJSON{X: e.Index, Y: g, Sim: e.Sim})
	}
	writeJSON(w, map[string]any{"id": g, "pairs": pairs})
}

// addToShard runs the home-shard add. Adds are not idempotent — a
// timed-out add may have applied — so only responses that prove the
// add was not applied (a 429 shed at the shard's admission gate) are
// retried; everything else surfaces to the caller after one attempt.
func (c *Coordinator) addToShard(ctx context.Context, sh *shard, tokens []string) (*shardAddResponse, error) {
	c.budget.onAttempt()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !sh.breaker.Allow() {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, errBreakerOpen
		}
		sctx, cancel := context.WithTimeout(ctx, shardDeadline(ctx, c.cfg.ShardTimeout, c.cfg.MergeSlack))
		res, err := c.postAdd(sctx, sh.cfg.Primary, tokens)
		cancel()
		if err == nil {
			sh.breaker.Success()
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			sh.breaker.Forgive()
			return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
		}
		se := statusErrOf(err)
		switch {
		case se != nil && se.Status == http.StatusTooManyRequests:
			// Shed at the door: provably not applied, safe to retry, and
			// no evidence the shard is broken.
			sh.breaker.Forgive()
			if attempt >= c.cfg.MaxRetries || !c.budget.spend() {
				return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
			}
			c.retriesTotal.Add(1)
			d := c.jitterBackoff()
			if se.RetryAfter > d {
				d = se.RetryAfter
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		case se != nil && se.Status >= 400 && se.Status < 500:
			// The object itself was refused; not the shard's fault.
			sh.breaker.Forgive()
			return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
		default:
			sh.breaker.Failure()
			return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
		}
	}
}

// postAdd posts one object to a shard primary.
func (c *Coordinator) postAdd(ctx context.Context, primary string, tokens []string) (*shardAddResponse, error) {
	body, err := json.Marshal(map[string]any{"tokens": tokens})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primary+"/objects", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		se := &replica.StatusError{Endpoint: primary, Status: resp.StatusCode}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, se
	}
	var out shardAddResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: %s: bad add response: %w", primary, err)
	}
	return &out, nil
}

// addError maps a failed home-shard add to a response: client errors
// pass through as 400, deadline expiry is 503 timeout, everything else
// is 503 naming the shard the object routes to.
func (c *Coordinator) addError(w http.ResponseWriter, home int, err error) {
	if se := statusErrOf(err); se != nil && se.Status >= 400 && se.Status < 500 && se.Status != http.StatusTooManyRequests {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shard rejected the object: "+err.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded")
		return
	}
	w.Header().Set(HeaderFailedShards, strconv.Itoa(home))
	serverutil.WriteError(w, http.StatusServiceUnavailable, "shard_unavailable",
		fmt.Sprintf("home shard %d cannot accept the object: %v", home, err))
}

// statusErrOf unwraps a *replica.StatusError from a shard call's error
// chain (nil when there is none).
func statusErrOf(err error) *replica.StatusError {
	var se *replica.StatusError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// routeShard is one shard's row in the route table.
type routeShard struct {
	ID       int      `json:"id"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
	Objects  int      `json:"objects"`
}

// handleRoute serves the versioned route table: the partitioning
// algorithm and the shard endpoints, so clients can compute homes and
// detect a repartition by comparing versions.
func (c *Coordinator) handleRoute(w http.ResponseWriter, r *http.Request) {
	rows := make([]routeShard, len(c.shards))
	c.mu.RLock()
	for i, sh := range c.shards {
		rows[i] = routeShard{ID: i, Primary: sh.cfg.Primary, Replicas: sh.cfg.Replicas, Objects: len(c.toGlobal[i])}
	}
	c.mu.RUnlock()
	writeJSON(w, map[string]any{
		"version": c.router.Version(),
		"algo":    "minhash-fnv1a64",
		"shards":  rows,
	})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	healthy := make([]bool, len(c.shards))
	states := make([]string, len(c.shards))
	for i, sh := range c.shards {
		st := sh.breaker.State()
		states[i] = st.String()
		healthy[i] = st != BreakerOpen
	}
	c.mu.RLock()
	objects := c.objects
	c.mu.RUnlock()
	writeJSON(w, map[string]any{
		"objects":                 objects,
		"shards":                  len(c.shards),
		"route_version":           c.router.Version(),
		"shard_healthy":           healthy,
		"breaker_state":           states,
		"hedges_total":            c.HedgesTotal(),
		"retries_total":           c.retriesTotal.Load(),
		"partial_responses_total": c.partialTotal.Load(),
		"inflight":                c.sem.InFlight(),
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if c.draining.Load() {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// writeJSON writes the success response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}
