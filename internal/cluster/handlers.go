package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/replica"
	"kjoin/internal/serverutil"
)

// Request headers the coordinator honors and response headers it sets.
const (
	// HeaderPartial selects the partial-result policy per request
	// ("fail" or "degrade"); absent means the configured default.
	HeaderPartial = "X-Kjoin-Partial"
	// HeaderDeadlineMs shrinks the request's deadline budget below the
	// configured RequestTimeout (milliseconds; it cannot grow it).
	HeaderDeadlineMs = "X-Kjoin-Deadline-Ms"
	// HeaderCoverage reports gather coverage as "k/n": k of n shards
	// contributed to the answer.
	HeaderCoverage = "X-Kjoin-Coverage"
	// HeaderSkippedShards lists the shard ids missing from a degraded
	// answer, comma-separated.
	HeaderSkippedShards = "X-Kjoin-Skipped-Shards"
	// HeaderFailedShards lists the shard ids that caused a fail-policy
	// 503, comma-separated.
	HeaderFailedShards = "X-Kjoin-Failed-Shards"
	// HeaderRouteVersion, on a request, asserts the route-table version
	// the client computed against. A mismatch (a reshard moved the table
	// out from under the client's cache) is refused with a typed 409
	// stale_route carrying the current version in this same header, so
	// the client refetches /cluster/route instead of acting on a stale
	// partitioning.
	HeaderRouteVersion = "X-Kjoin-Route-Version"
)

func (c *Coordinator) mux() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /objects", c.limited(c.routeGate(http.HandlerFunc(c.handleAdd))))
	mux.Handle("POST /query", c.limited(c.routeGate(http.HandlerFunc(c.handleQuery))))
	mux.Handle("POST /join", c.limited(c.routeGate(http.HandlerFunc(c.handleJoin))))
	mux.Handle("POST /similarity", c.limited(http.HandlerFunc(c.handleSimilarity)))
	// The reshard endpoints skip the admission gate and request deadline:
	// they are rare control operations whose begin scan is allowed to
	// outlive a data-plane deadline, and shedding one under load would
	// only postpone draining that load off the hot shard.
	mux.Handle("POST /cluster/reshard", serverutil.Chain(http.HandlerFunc(c.handleReshard), serverutil.LimitBody(c.cfg.MaxBodyBytes)))
	mux.HandleFunc("POST /cluster/reshard/abort", c.handleReshardAbort)
	mux.HandleFunc("GET /cluster/reshard", c.handleReshardStatus)
	mux.HandleFunc("GET /cluster/route", c.handleRoute)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	return mux
}

// limited is the coordinator's protection stack: admission control
// first (shed before spending), then the deadline budget, then the
// body cap.
func (c *Coordinator) limited(h http.Handler) http.Handler {
	return serverutil.Chain(h,
		serverutil.Admit(c.sem, time.Second, 3*time.Second, c.cfg.Seed),
		c.deadline,
		serverutil.LimitBody(c.cfg.MaxBodyBytes),
	)
}

// deadline attaches the request's deadline budget: the configured
// RequestTimeout, shrunk by an X-Kjoin-Deadline-Ms header when the
// caller wants a tighter bound.
func (c *Coordinator) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := c.cfg.RequestTimeout
		if h := r.Header.Get(HeaderDeadlineMs); h != "" {
			ms, err := strconv.Atoi(h)
			if err != nil || ms <= 0 {
				serverutil.WriteError(w, http.StatusBadRequest, "bad_deadline",
					fmt.Sprintf("%s must be a positive integer, got %q", HeaderDeadlineMs, h))
				return
			}
			if hd := time.Duration(ms) * time.Millisecond; hd < d {
				d = hd
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// routeGate refuses requests asserting a stale route-table version. A
// client that computed an object's home against version v must not act
// on the answer if the table has since moved: the 409 carries the
// current version so it can refetch /cluster/route and retry.
func (c *Coordinator) routeGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get(HeaderRouteVersion); h != "" {
			v, err := strconv.Atoi(h)
			if err != nil || v < 1 {
				serverutil.WriteError(w, http.StatusBadRequest, "bad_route_version",
					fmt.Sprintf("%s must be a positive integer, got %q", HeaderRouteVersion, h))
				return
			}
			c.mu.RLock()
			cur := c.router.Version()
			c.mu.RUnlock()
			if v != cur {
				w.Header().Set(HeaderRouteVersion, strconv.Itoa(cur))
				serverutil.WriteError(w, http.StatusConflict, "stale_route",
					fmt.Sprintf("route version %d is stale; the table is now version %d", v, cur))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// policy resolves the request's partial-result policy.
func (c *Coordinator) policy(w http.ResponseWriter, r *http.Request) (string, bool) {
	p := r.Header.Get(HeaderPartial)
	if p == "" {
		return c.cfg.Partial, true
	}
	if p != PartialFail && p != PartialDegrade {
		serverutil.WriteError(w, http.StatusBadRequest, "bad_policy",
			fmt.Sprintf("%s must be %q or %q, got %q", HeaderPartial, PartialFail, PartialDegrade, p))
		return "", false
	}
	return p, true
}

// decode parses a JSON body, reporting a structured 400 on failure.
func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			serverutil.WriteError(w, http.StatusBadRequest, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		serverutil.WriteError(w, http.StatusBadRequest, "bad_json", "bad request body: "+err.Error())
		return false
	}
	return true
}

// shardList renders shard ids as "1,3".
func shardList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// gatherHeaders applies the partial-result policy to a gather over n
// target shards with the given failed shard set. It returns false after
// writing the response itself (nothing answered, or fail policy with
// gaps); on true the caller proceeds to write the 200, whose coverage
// headers are already set.
func (c *Coordinator) gatherHeaders(w http.ResponseWriter, policy string, n int, failed []int, lastErr error) bool {
	live := n - len(failed)
	if live == 0 {
		detail := "every shard failed"
		if lastErr != nil {
			detail = "every shard failed: " + lastErr.Error()
		}
		w.Header().Set(HeaderFailedShards, shardList(failed))
		if errors.Is(lastErr, context.DeadlineExceeded) {
			serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded before any shard answered")
			return false
		}
		serverutil.WriteError(w, http.StatusServiceUnavailable, "all_shards_failed", detail)
		return false
	}
	if len(failed) > 0 {
		c.partialTotal.Add(1)
		if policy == PartialFail {
			w.Header().Set(HeaderFailedShards, shardList(failed))
			serverutil.WriteError(w, http.StatusServiceUnavailable, "partial_failure",
				fmt.Sprintf("shards %s failed and the request demands full coverage", shardList(failed)))
			return false
		}
		w.Header().Set(HeaderSkippedShards, shardList(failed))
	}
	w.Header().Set(HeaderCoverage, fmt.Sprintf("%d/%d", live, n))
	return true
}

// objectRequest is the body of POST /objects and POST /query.
type objectRequest struct {
	Tokens []string `json:"tokens"`
}

// toEntries maps one shard's local match indices into global-id
// entries. Matches for local ids the coordinator has not assigned are
// dropped — they can only come from writes that bypassed the
// coordinator, and inventing global ids for them would corrupt the
// merge. Tombstoned copies (retired by a reshard finalize or abort) are
// dropped too: the surviving copy answers for the object. Caller holds
// c.mu (read side).
func (c *Coordinator) toEntries(shardID int, ms []replica.Match) []Entry {
	tg := c.toGlobal[shardID]
	out := make([]Entry, 0, len(ms))
	for _, m := range ms {
		if m.Index < 0 || m.Index >= len(tg) {
			continue
		}
		if tg[m.Index] < 0 {
			continue
		}
		out = append(out, Entry{Index: tg[m.Index], Sim: m.Sim})
	}
	return out
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	policy, ok := c.policy(w, r)
	if !ok {
		return
	}
	k := 0
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		if k, err = strconv.Atoi(kq); err != nil || k < 1 {
			serverutil.WriteError(w, http.StatusBadRequest, "bad_k",
				fmt.Sprintf("k must be a positive integer, got %q", kq))
			return
		}
	}
	var req objectRequest
	if !c.decode(w, r, &req) {
		return
	}
	// During a dual-read window the targets cover both the old and new
	// homes of every moving object; duplicate answers collapse in the
	// merge's global-id dedup (sims are placement-independent, so which
	// copy answers cannot change a bit of the result).
	targets, dual := c.gatherTargets()
	if dual {
		c.dualReadTotal.Add(1)
	}
	outs := scatter(c, r.Context(), targets, func(ctx context.Context, _ int, cl *replica.Client) (*replica.Result, error) {
		return cl.Query(ctx, req.Tokens)
	})
	var failed []int
	var lastErr error
	entries := make([][]Entry, len(outs))
	c.mu.RLock()
	for i, out := range outs {
		if out.err != nil {
			failed = append(failed, targets[i])
			lastErr = out.err
			continue
		}
		entries[i] = c.toEntries(targets[i], out.val.Matches)
	}
	c.mu.RUnlock()
	// A shard-side 400 means the input itself is bad (every shard would
	// refuse it); answer 400, not a coverage gap.
	var se *replica.StatusError
	if errors.As(lastErr, &se) && se.Status == http.StatusBadRequest && len(failed) == len(outs) {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shards rejected the query: "+lastErr.Error())
		return
	}
	if !c.gatherHeaders(w, policy, len(targets), failed, lastErr) {
		return
	}
	var merged []Entry
	if k > 0 {
		merged = mergeTopK(entries, k)
	} else {
		merged = mergeAscending(entries)
	}
	if merged == nil {
		merged = []Entry{}
	}
	writeJSON(w, map[string]any{"matches": merged})
}

// joinRequest is the body of POST /join: a batch of objects joined
// against the cluster's indexed corpus.
type joinRequest struct {
	Objects [][]string `json:"objects"`
}

// joinPair is one reported (batch object, corpus object) match.
type joinPair struct {
	X   int     `json:"x"` // index into the posted batch
	Y   int     `json:"y"` // global id of the corpus object
	Sim float64 `json:"sim"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	policy, ok := c.policy(w, r)
	if !ok {
		return
	}
	var req joinRequest
	if !c.decode(w, r, &req) {
		return
	}
	targets, dual := c.gatherTargets()
	if dual {
		c.dualReadTotal.Add(1)
	}
	// Each shard serves the whole batch under one shard deadline: the
	// per-object queries are sequential, so the shard's allowance covers
	// the batch, not each object.
	outs := scatter(c, r.Context(), targets, func(ctx context.Context, _ int, cl *replica.Client) ([][]replica.Match, error) {
		res := make([][]replica.Match, len(req.Objects))
		for i, obj := range req.Objects {
			out, err := cl.Query(ctx, obj)
			if err != nil {
				return nil, err
			}
			res[i] = out.Matches
		}
		return res, nil
	})
	var failed []int
	var lastErr error
	// Per-batch-object entry lists, so duplicate copies of a corpus
	// object collapse per query exactly as /query's merge would.
	perObj := make([][][]Entry, len(req.Objects))
	c.mu.RLock()
	for s, out := range outs {
		if out.err != nil {
			failed = append(failed, targets[s])
			lastErr = out.err
			continue
		}
		for i, ms := range out.val {
			perObj[i] = append(perObj[i], c.toEntries(targets[s], ms))
		}
	}
	c.mu.RUnlock()
	var se *replica.StatusError
	if errors.As(lastErr, &se) && se.Status == http.StatusBadRequest && len(failed) == len(outs) {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shards rejected the batch: "+lastErr.Error())
		return
	}
	if !c.gatherHeaders(w, policy, len(targets), failed, lastErr) {
		return
	}
	var pairs []joinPair
	for i, lists := range perObj {
		for _, e := range mergeAscending(lists) {
			pairs = append(pairs, joinPair{X: i, Y: e.Index, Sim: e.Sim})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].X != pairs[j].X {
			return pairs[i].X < pairs[j].X
		}
		return pairs[i].Y < pairs[j].Y
	})
	if pairs == nil {
		pairs = []joinPair{}
	}
	writeJSON(w, map[string]any{"pairs": pairs})
}

// similarityRequest is the body of POST /similarity.
type similarityRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
}

func (c *Coordinator) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	var req similarityRequest
	if !c.decode(w, r, &req) {
		return
	}
	// Similarity is stateless over the shared hierarchy, so any shard
	// can answer; start from a rotating cursor and fail over across the
	// fleet.
	c.mu.RLock()
	shs := append([]*shard(nil), c.shards...)
	c.mu.RUnlock()
	start := int(c.rr.Add(1))
	var lastErr error
	for off := 0; off < len(shs); off++ {
		sh := shs[(start+off)%len(shs)]
		res, err := callShard(c, r.Context(), sh, func(ctx context.Context, cl *replica.Client) (*replica.Result, error) {
			return cl.Similarity(ctx, req.X, req.Y)
		})
		if err == nil {
			writeJSON(w, map[string]float64{"sim": res.Sim})
			return
		}
		lastErr = err
		if r.Context().Err() != nil {
			break
		}
	}
	if se := statusErrOf(lastErr); se != nil && se.Status == http.StatusBadRequest {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shards rejected the pair: "+lastErr.Error())
		return
	}
	if errors.Is(lastErr, context.DeadlineExceeded) {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded")
		return
	}
	serverutil.WriteError(w, http.StatusServiceUnavailable, "all_shards_failed", "no shard could score the pair: "+lastErr.Error())
}

// pairJSON is one reported pair in an add response, in global ids.
type pairJSON struct {
	X   int     `json:"x"`
	Y   int     `json:"y"`
	Sim float64 `json:"sim"`
}

// shardAddResponse is what a shard's POST /objects returns (local ids).
type shardAddResponse struct {
	ID    int        `json:"id"`
	Pairs []pairJSON `json:"pairs"`
}

// writeCtrlError reports a control-plane failure, classifying the
// error before surfacing it: an invalid-input error wrapped inside a
// shard or WAL failure is the caller's fault and comes back as a 400,
// everything else keeps the caller-chosen status and code.
func writeCtrlError(w http.ResponseWriter, status int, code string, err error) {
	var ie *core.InputError
	if errors.As(err, &ie) {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", ie.Error())
		return
	}
	serverutil.WriteError(w, status, code, err.Error())
}

func (c *Coordinator) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !c.decode(w, r, &req) {
		return
	}
	// Adds serialize cluster-wide (see the addMu doc): global id order is
	// insertion order, the discovery sweep sees exactly the objects with
	// smaller ids, and the coordinator WAL holds at most one unresolved
	// intent. Throughput scales with shards via query traffic, not adds.
	c.addMu.Lock()
	defer c.addMu.Unlock()
	if err := c.controlErr(); err != nil {
		writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", err)
		return
	}
	c.mu.RLock()
	home := c.router.Home(req.Tokens)
	g := c.objects
	sh := c.shards[home]
	expected := len(c.toGlobal[home])
	c.mu.RUnlock()
	durable := c.cw != nil
	if durable {
		// Fail fast once the log is poisoned: taking more adds into a state
		// the log cannot vouch for only widens the gap recovery will erase.
		if werr := c.cw.wal.Err(); werr != nil {
			writeCtrlError(w, http.StatusInternalServerError, "wal_failed", werr)
			return
		}
		// Write-ahead intent: a crash between the shard add and its outcome
		// record leaves this as the log's tail, and recovery settles it
		// against the shard's object count.
		if _, err := c.cw.appendSync(encAssignIntent(g, home, req.Tokens)); err != nil {
			writeCtrlError(w, http.StatusInternalServerError, "wal_failed", err)
			return
		}
	}
	res, err := c.addToShard(r.Context(), sh, req.Tokens)
	var homePairs []pairJSON
	adopted := false
	switch {
	case err == nil:
		if res.ID != expected {
			// The shard's id sequence diverged from ours: something wrote to
			// it around the coordinator. Refuse loudly rather than serve a
			// corrupted mapping — and on a durable coordinator latch the
			// control plane, because the log now ends in an intent no record
			// can truthfully close.
			derr := fmt.Errorf("shard %d assigned local id %d, coordinator expected %d: writes bypassed the coordinator", home, res.ID, expected)
			if durable {
				c.failControl(derr)
			}
			writeCtrlError(w, http.StatusInternalServerError, "shard_drift", derr)
			return
		}
		homePairs = res.Pairs
		if aerr := c.applyAssign(g, home, expected); aerr != nil {
			c.failControl(aerr)
			writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", aerr)
			return
		}
		if durable {
			// The ack below is written only after this record is durable: an
			// acked id assignment survives any crash bit-identically.
			if _, werr := c.cw.appendSync(encAssignDone(g, home, expected)); werr != nil {
				writeCtrlError(w, http.StatusInternalServerError, "wal_failed", werr)
				return
			}
		}
	case !durable:
		c.addError(w, home, err)
		return
	case provablyNotApplied(err):
		// The shard never indexed the object: close the intent with an
		// abort record and surface the refusal.
		if _, aerr := c.cw.appendSync(encAssignAbort(g)); aerr != nil {
			writeCtrlError(w, http.StatusInternalServerError, "wal_failed", aerr)
			return
		}
		c.addError(w, home, err)
		return
	default:
		// Ambiguous outcome (timed out mid-flight, connection dropped):
		// settle the intent by counting, exactly as recovery would.
		applied, _, rerr := c.resolveAmbiguous(recAssignIntent, g, home, home)
		if rerr != nil {
			writeCtrlError(w, http.StatusInternalServerError, "control_plane_failed", rerr)
			return
		}
		if !applied {
			c.addError(w, home, err)
			return
		}
		// The add landed before the failure surfaced: the object exists and
		// is durably mapped, so acknowledge it rather than invite a
		// duplicating retry. Its pair report was lost with the response;
		// the coverage headers below declare the home shard's gap.
		adopted = true
	}
	c.mu.RLock()
	tgHome := c.toGlobal[home]
	homeEntries := make([]Entry, 0, len(homePairs))
	for _, p := range homePairs {
		// A shard add reports pairs as (candidate local id, new local id).
		if p.X < 0 || p.X >= len(tgHome) || tgHome[p.X] < 0 {
			continue
		}
		homeEntries = append(homeEntries, Entry{Index: tgHome[p.X], Sim: p.Sim})
	}
	targets, dual := c.gatherTargetsLocked()
	c.mu.RUnlock()
	if dual {
		c.dualReadTotal.Add(1)
	}
	// Cross-shard pair discovery: the new object queried against every
	// other gather target's corpus (all ids < g — adds are serialized).
	// The home add has already committed, so discovery gaps degrade the
	// reported pair set with coverage headers; they never fail the add.
	// The home shard is excluded from the scatter outright: its pairs
	// came with the add, and even a no-op call would charge its breaker
	// and the retry budget — a half-open breaker must never be closed by
	// a probe that proved nothing.
	others := make([]int, 0, len(targets))
	for _, t := range targets {
		if t != home {
			others = append(others, t)
		}
	}
	outs := scatter(c, r.Context(), others, func(ctx context.Context, _ int, cl *replica.Client) (*replica.Result, error) {
		return cl.Query(ctx, req.Tokens)
	})
	var failed []int
	entries := make([][]Entry, 0, len(outs)+1)
	entries = append(entries, homeEntries)
	c.mu.RLock()
	for i, out := range outs {
		if out.err != nil {
			failed = append(failed, others[i])
			continue
		}
		entries = append(entries, c.toEntries(others[i], out.val.Matches))
	}
	c.mu.RUnlock()
	if adopted {
		failed = append([]int{home}, failed...)
	}
	if len(failed) > 0 {
		c.partialTotal.Add(1)
		w.Header().Set(HeaderSkippedShards, shardList(failed))
	}
	n := len(others) + 1
	w.Header().Set(HeaderCoverage, fmt.Sprintf("%d/%d", n-len(failed), n))
	merged := mergeAscending(entries)
	pairs := make([]pairJSON, 0, len(merged))
	for _, e := range merged {
		pairs = append(pairs, pairJSON{X: e.Index, Y: g, Sim: e.Sim})
	}
	writeJSON(w, map[string]any{"id": g, "pairs": pairs})
}

// addToShard runs the home-shard add. Adds are not idempotent — a
// timed-out add may have applied — so only responses that prove the
// add was not applied (a 429 shed at the shard's admission gate) are
// retried; everything else surfaces to the caller after one attempt
// (on a durable coordinator, an ambiguous failure is then settled by
// counting — see resolveAmbiguous).
func (c *Coordinator) addToShard(ctx context.Context, sh *shard, tokens []string) (*shardAddResponse, error) {
	c.budget.onAttempt()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !sh.breaker.Allow() {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, errBreakerOpen
		}
		sctx, cancel := context.WithTimeout(ctx, shardDeadline(ctx, c.cfg.ShardTimeout, c.cfg.MergeSlack))
		res, err := c.postAdd(sctx, sh.cfg.Primary, tokens)
		cancel()
		if err == nil {
			sh.breaker.Success()
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			sh.breaker.Forgive()
			return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
		}
		se := statusErrOf(err)
		switch {
		case se != nil && se.Status == http.StatusTooManyRequests:
			// Shed at the door: provably not applied, safe to retry, and
			// no evidence the shard is broken.
			sh.breaker.Forgive()
			if attempt >= c.cfg.MaxRetries || !c.budget.spend() {
				return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
			}
			c.retriesTotal.Add(1)
			d := c.jitterBackoff()
			if se.RetryAfter > d {
				d = se.RetryAfter
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		case se != nil && se.Status >= 400 && se.Status < 500:
			// The object itself was refused; not the shard's fault.
			sh.breaker.Forgive()
			return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
		default:
			sh.breaker.Failure()
			return nil, fmt.Errorf("add to shard %d: %w", sh.id, err)
		}
	}
}

// postAdd posts one object to a shard primary.
func (c *Coordinator) postAdd(ctx context.Context, primary string, tokens []string) (*shardAddResponse, error) {
	body, err := json.Marshal(map[string]any{"tokens": tokens})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primary+"/objects", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		se := &replica.StatusError{Endpoint: primary, Status: resp.StatusCode}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, se
	}
	var out shardAddResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: %s: bad add response: %w", primary, err)
	}
	return &out, nil
}

// addError maps a failed home-shard add to a response: client errors
// pass through as 400, deadline expiry is 503 timeout, everything else
// is 503 naming the shard the object routes to.
func (c *Coordinator) addError(w http.ResponseWriter, home int, err error) {
	if se := statusErrOf(err); se != nil && se.Status >= 400 && se.Status < 500 && se.Status != http.StatusTooManyRequests {
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", "shard rejected the object: "+err.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded")
		return
	}
	w.Header().Set(HeaderFailedShards, strconv.Itoa(home))
	serverutil.WriteError(w, http.StatusServiceUnavailable, "shard_unavailable",
		fmt.Sprintf("home shard %d cannot accept the object: %v", home, err))
}

// statusErrOf unwraps a *replica.StatusError from a shard call's error
// chain (nil when there is none).
func statusErrOf(err error) *replica.StatusError {
	var se *replica.StatusError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// routeShard is one shard's row in the route table.
type routeShard struct {
	ID       int      `json:"id"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
	Objects  int      `json:"objects"`
}

// handleRoute serves the versioned route table: the partitioning
// algorithm, the bucket→shard assignment and the shard endpoints, so
// clients can compute homes themselves and detect a repartition by
// comparing versions (or asserting one with X-Kjoin-Route-Version).
func (c *Coordinator) handleRoute(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	rows := make([]routeShard, len(c.shards))
	for i, sh := range c.shards {
		rows[i] = routeShard{ID: i, Primary: sh.cfg.Primary, Replicas: sh.cfg.Replicas, Objects: c.live[i]}
	}
	version := c.router.Version()
	assign := c.router.Assign()
	c.mu.RUnlock()
	writeJSON(w, map[string]any{
		"version": version,
		"algo":    "minhash-fnv1a64",
		"assign":  assign,
		"shards":  rows,
	})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	objects := c.objects
	version := c.router.Version()
	shs := append([]*shard(nil), c.shards...)
	state := "idle"
	moved, moving := 0, 0
	if c.mig != nil {
		state = "migrating"
		moved, moving = c.mig.moved, len(c.mig.items)
	}
	c.mu.RUnlock()
	healthy := make([]bool, len(shs))
	states := make([]string, len(shs))
	for i, sh := range shs {
		st := sh.breaker.State()
		states[i] = st.String()
		healthy[i] = st != BreakerOpen
	}
	out := map[string]any{
		"objects":                 objects,
		"shards":                  len(shs),
		"route_version":           version,
		"shard_healthy":           healthy,
		"breaker_state":           states,
		"hedges_total":            c.HedgesTotal(),
		"retries_total":           c.retriesTotal.Load(),
		"partial_responses_total": c.partialTotal.Load(),
		"inflight":                c.sem.InFlight(),
		"reshard_state":           state,
		"reshard_moved":           moved,
		"reshard_moving":          moving,
		"reshard_moved_objects":   c.movedTotal.Load(),
		"dual_read_total":         c.dualReadTotal.Load(),
	}
	if c.cw != nil {
		out["coordinator_wal_last_seq"] = c.cw.wal.LastSeq()
		out["coordinator_wal_durable_seq"] = c.cw.wal.DurableSeq()
		out["coordinator_wal_healthy"] = c.cw.wal.Err() == nil
		out["coordinator_snapshot_seq"] = c.cw.lastSnapSeq.Load()
		out["control_plane_healthy"] = c.controlErr() == nil
	}
	writeJSON(w, out)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if c.draining.Load() {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "draining", "coordinator is draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// writeJSON writes the success response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}
