package serverutil

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWriteErrorShape(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusBadRequest, "bad_json", "cannot parse body")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "bad_json" || body.Error != "cannot parse body" {
		t.Errorf("body = %+v", body)
	}
}

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var logged atomic.Bool
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), Recover(func(string, ...any) { logged.Store(true) }))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "internal_panic" {
		t.Errorf("code = %q", body.Code)
	}
	if !logged.Load() {
		t.Error("panic was not logged")
	}
}

func TestRecoverPassesThrough(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), Recover(nil))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAdmitShedsLoadAt429(t *testing.T) {
	sem := NewSemaphore(2)
	enter := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		enter <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), Admit(sem, 3*time.Second, 3*time.Second, 1))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("admitted request: status %d", rec.Code)
			}
		}()
	}
	<-enter
	<-enter // both slots held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated: status = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "saturated" {
		t.Errorf("code = %q", body.Code)
	}

	close(release) // unblock the two admitted handlers; <-release now never blocks
	wg.Wait()
	// Slots must be released: a new request is admitted again.
	go func() { <-enter }()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-release request: status %d", rec.Code)
	}
}

// TestAdmitRetryAfterJitterBand saturates the gate and checks every
// shed response advertises a Retry-After inside the configured band —
// and not always the same value, or shed clients would all retry in the
// same instant and recreate the overload they were shed for.
func TestAdmitRetryAfterJitterBand(t *testing.T) {
	sem := NewSemaphore(1)
	if !sem.TryAcquire() {
		t.Fatal("could not saturate semaphore")
	}
	defer sem.Release()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), Admit(sem, 2*time.Second, 5*time.Second, 42))
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, rec.Code)
		}
		ra := rec.Header().Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("request %d: Retry-After %q is not an integer", i, ra)
		}
		if secs < 2 || secs > 5 {
			t.Fatalf("request %d: Retry-After %d outside band [2,5]", i, secs)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 shed requests all got the same Retry-After %v; jitter is not jittering", seen)
	}
}

func TestWithTimeoutSetsDeadline(t *testing.T) {
	var sawDeadline atomic.Bool
	h := Chain(http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			sawDeadline.Store(true)
		}
	}), WithTimeout(time.Minute))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !sawDeadline.Load() {
		t.Error("request context has no deadline")
	}
}

func TestLimitBodyCaps(t *testing.T) {
	var gotErr error
	h := Chain(http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		_, gotErr = io.ReadAll(r.Body)
	}), LimitBody(8))
	req := httptest.NewRequest("POST", "/x", strings.NewReader(strings.Repeat("a", 100)))
	h.ServeHTTP(httptest.NewRecorder(), req)
	var mbe *http.MaxBytesError
	if !errors.As(gotErr, &mbe) {
		t.Fatalf("read error = %v, want *http.MaxBytesError", gotErr)
	}
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.txt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello world")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello world" {
		t.Errorf("content = %q", b)
	}
	// Overwrite: new content fully replaces old.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if string(b) != "v2" {
		t.Errorf("content after overwrite = %q", b)
	}
	// No temp droppings.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp file left behind?)", len(entries))
	}
}

// TestWriteFileAtomicFaultInjection kills the write midway and checks
// the target file is never corrupted: old contents stay intact and no
// temp file leaks.
func TestWriteFileAtomicFaultInjection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.txt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good snapshot")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("disk on fire")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		// Partial write, then failure — the torn state a crash mid-write
		// would leave in a non-atomic implementation.
		io.WriteString(w, "half a snap")
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(b) != "good snapshot" {
		t.Errorf("target corrupted by failed write: %q", b)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("temp file leaked: %d entries in dir", len(entries))
	}
}

func TestSnapshotterBackoffAndRecovery(t *testing.T) {
	var calls atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	wrote := make(chan int64, 64)
	s := &Snapshotter{
		Interval:   time.Millisecond,
		MinBackoff: time.Millisecond,
		MaxBackoff: 2 * time.Millisecond,
		Write: func() error {
			n := calls.Add(1)
			if fail.Load() {
				return errors.New("injected snapshot failure")
			}
			wrote <- n
			return nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	// Let it fail (and back off) a few times, then heal the disk.
	deadline := time.After(5 * time.Second)
	for calls.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("snapshotter stopped retrying after failures")
		case <-time.After(time.Millisecond):
		}
	}
	fail.Store(false)
	select {
	case <-wrote:
		// recovered: a successful snapshot happened
	case <-deadline:
		t.Fatal("snapshotter never recovered after failures stopped")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("snapshotter did not stop on ctx cancel")
	}
}

func TestSnapshotterStopsOnCancel(t *testing.T) {
	s := &Snapshotter{Interval: time.Hour, Write: func() error { return nil }}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return on cancel")
	}
}
