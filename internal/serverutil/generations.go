package serverutil

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"kjoin/internal/fault"
)

// Generation file layout: a directory of immutable numbered snapshots
// (`snap.000017`) plus a CURRENT file naming the newest complete one.
// Save writes the next generation atomically, repoints CURRENT, then
// prunes old generations; Load starts at CURRENT and falls back
// generation-by-generation past corrupt files, so one bad snapshot (a
// torn write CURRENT was repointed to anyway, a bit flip at rest) costs
// recency, not availability.

// genPrefix heads every generation file name.
const genPrefix = "snap."

// currentName is the pointer file naming the active generation.
const currentName = "CURRENT"

// ErrNoSnapshot is returned by GenStore.Load when the directory holds
// no readable generation at all — the caller starts empty.
var ErrNoSnapshot = errors.New("serverutil: no snapshot generation")

func genName(n uint64) string { return fmt.Sprintf("%s%06d", genPrefix, n) }

func parseGenName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, genPrefix)
	if !ok || len(s) < 6 {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// GenStore keeps N generations of a snapshot file in a directory.
// Methods are not safe for concurrent use with each other; the
// snapshotter serializes them.
type GenStore struct {
	// FS is the filesystem (nil → the real one).
	FS fault.FS
	// Dir is the generation directory, created on first use.
	Dir string
	// Keep is how many generations Save retains (default 3, min 1).
	Keep int
	// Logf, when set, receives fallback and sweep notices.
	Logf func(format string, args ...any)
}

func (g *GenStore) fs() fault.FS {
	if g.FS == nil {
		return fault.OS{}
	}
	return g.FS
}

func (g *GenStore) keep() int {
	if g.Keep < 1 {
		return 3
	}
	return g.Keep
}

func (g *GenStore) logf(format string, args ...any) {
	if g.Logf != nil {
		g.Logf(format, args...)
	}
}

// scan returns the generation numbers present, ascending.
func (g *GenStore) scan() ([]uint64, error) {
	ents, err := g.fs().ReadDir(g.Dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n, ok := parseGenName(e.Name()); ok {
			gens = append(gens, n)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Save writes the next generation atomically, repoints CURRENT at it,
// and prunes generations beyond Keep. It returns the new generation's
// file name. The write order makes every crash window safe: the new
// generation is complete and fsync'd before CURRENT names it, and
// pruning only runs after CURRENT points away from the victims.
//
//kjoinlint:ackorder commit
func (g *GenStore) Save(write func(w io.Writer) error) (string, error) {
	fsys := g.fs()
	if err := fsys.MkdirAll(g.Dir, 0o755); err != nil {
		return "", fmt.Errorf("serverutil: mkdir %s: %w", g.Dir, err)
	}
	gens, err := g.scan()
	if err != nil {
		return "", fmt.Errorf("serverutil: scan %s: %w", g.Dir, err)
	}
	var next uint64 = 1
	if len(gens) > 0 {
		next = gens[len(gens)-1] + 1
	}
	name := genName(next)
	if err := WriteFileAtomicFS(fsys, g.Dir+"/"+name, write); err != nil {
		return "", err
	}
	if err := WriteFileAtomicFS(fsys, g.Dir+"/"+currentName, func(w io.Writer) error {
		_, werr := io.WriteString(w, name+"\n")
		return werr
	}); err != nil {
		return "", fmt.Errorf("serverutil: repoint CURRENT: %w", err)
	}
	// Prune: keep the newest Keep generations (the one just written
	// included). A failed removal is reported but the snapshot is saved.
	gens = append(gens, next)
	for len(gens) > g.keep() {
		victim := genName(gens[0])
		gens = gens[1:]
		if err := fsys.Remove(g.Dir + "/" + victim); err != nil {
			return name, fmt.Errorf("serverutil: prune %s: %w", victim, err)
		}
	}
	return name, nil
}

// Load opens the newest readable generation and passes it to load,
// starting with the one CURRENT names and falling back generation-by-
// generation past files that fail to open or that load rejects
// (corruption). As part of the scan it sweeps stale temp files left by
// a crash mid-Save. It returns the name of the generation that loaded,
// or ErrNoSnapshot when the directory holds none (first boot).
func (g *GenStore) Load(load func(r io.Reader) error) (string, error) {
	fsys := g.fs()
	if err := fsys.MkdirAll(g.Dir, 0o755); err != nil {
		return "", fmt.Errorf("serverutil: mkdir %s: %w", g.Dir, err)
	}
	if removed, err := SweepTemps(fsys, g.Dir); err != nil {
		return "", err
	} else if len(removed) > 0 {
		g.logf("snapshot: swept %d stale temp file(s): %s", len(removed), strings.Join(removed, ", "))
	}
	gens, err := g.scan()
	if err != nil {
		return "", fmt.Errorf("serverutil: scan %s: %w", g.Dir, err)
	}
	if len(gens) == 0 {
		return "", ErrNoSnapshot
	}
	// Candidate order: CURRENT's target first, then the rest newest-first.
	candidates := make([]string, 0, len(gens)+1)
	if cur, err := g.readCurrent(); err == nil && cur != "" {
		candidates = append(candidates, cur)
	} else if err != nil {
		g.logf("snapshot: unreadable CURRENT (%v); falling back to newest generation", err)
	}
	for i := len(gens) - 1; i >= 0; i-- {
		name := genName(gens[i])
		if len(candidates) > 0 && candidates[0] == name {
			continue
		}
		candidates = append(candidates, name)
	}
	var lastErr error
	for _, name := range candidates {
		f, err := fsys.OpenFile(g.Dir+"/"+name, os.O_RDONLY, 0)
		if err != nil {
			g.logf("snapshot: cannot open generation %s (%v); falling back", name, err)
			lastErr = err
			continue
		}
		err = load(f)
		_ = f.Close() // read-only; nothing written that a close could lose
		if err != nil {
			g.logf("snapshot: generation %s corrupt (%v); falling back", name, err)
			lastErr = err
			continue
		}
		return name, nil
	}
	return "", fmt.Errorf("serverutil: every snapshot generation failed to load: %w", lastErr)
}

// Generations returns the names of every generation on disk, oldest
// first (empty when the directory holds none). Recovery uses it to
// learn about generations beyond the one it loaded — they are still
// fallback candidates, and compaction must not outrun them.
func (g *GenStore) Generations() ([]string, error) {
	if err := g.fs().MkdirAll(g.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serverutil: mkdir %s: %w", g.Dir, err)
	}
	gens, err := g.scan()
	if err != nil {
		return nil, fmt.Errorf("serverutil: scan %s: %w", g.Dir, err)
	}
	names := make([]string, len(gens))
	for i, n := range gens {
		names[i] = genName(n)
	}
	return names, nil
}

// Open opens one generation file for reading; the caller closes it.
func (g *GenStore) Open(name string) (fault.File, error) {
	return g.fs().OpenFile(g.Dir+"/"+name, os.O_RDONLY, 0)
}

// readCurrent returns the generation name CURRENT points at.
func (g *GenStore) readCurrent() (string, error) {
	f, err := g.fs().OpenFile(g.Dir+"/"+currentName, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", nil
		}
		return "", err
	}
	//kjoinlint:ignore syncerr read-only open; a close failure cannot lose data
	defer f.Close()
	b, err := io.ReadAll(io.LimitReader(f, 256))
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(b))
	if _, ok := parseGenName(name); !ok {
		return "", fmt.Errorf("serverutil: CURRENT names %q, not a generation", name)
	}
	return name, nil
}
