// Package serverutil holds the production-hardening building blocks of
// the kjoin HTTP service: panic recovery, admission control, per-request
// deadlines, body size caps, structured JSON errors, atomic file writes
// and a background snapshotter. It is deliberately independent of the
// join engine so the server package composes it freely.
package serverutil

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kjoin/internal/rng"
)

// Middleware wraps an http.Handler with extra behavior.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares to h: the first middleware is outermost
// (runs first on the way in).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// ErrorBody is the structured JSON error shape every failure path
// writes: a machine-readable code and a human-readable message.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// WriteError writes a structured JSON error with the given status.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: msg, Code: code})
}

// Recover converts a handler panic into a 500 response instead of
// killing the process (net/http would only kill the goroutine, but a
// shared-nothing 500 with a logged stack beats a hung client and a
// half-written body). logf may be nil.
func Recover(logf func(format string, args ...any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if v == http.ErrAbortHandler {
						panic(v) // deliberate connection abort; let net/http handle it
					}
					if logf != nil {
						logf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
					}
					// Best effort: if the handler already wrote headers
					// this is a no-op superfluous-WriteHeader.
					WriteError(w, http.StatusInternalServerError, "internal_panic", "internal server error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// Semaphore is a bounded-concurrency admission gate.
type Semaphore struct {
	ch chan struct{}
}

// NewSemaphore returns a semaphore admitting at most n concurrent
// holders. n <= 0 panics — an unlimited gate is spelled by not using one.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		panic("serverutil: semaphore size must be positive")
	}
	return &Semaphore{ch: make(chan struct{}, n)}
}

// TryAcquire takes a slot if one is free, without blocking.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot.
func (s *Semaphore) Release() { <-s.ch }

// InFlight returns the number of held slots.
func (s *Semaphore) InFlight() int { return len(s.ch) }

// Admit rejects requests with 429 + Retry-After when the semaphore is
// saturated, instead of queueing them unboundedly. Load-shedding at the
// door keeps latency bounded for the requests that are admitted. The
// Retry-After value is jittered uniformly over [retryMin, retryMax]
// (whole seconds, at least 1): a fixed value would tell every shed
// client to come back at the same instant, converting one overload spike
// into a synchronized retry herd that recreates it. seed makes the
// jitter sequence deterministic for tests.
func Admit(sem *Semaphore, retryMin, retryMax time.Duration, seed uint64) Middleware {
	lo := int(retryMin / time.Second)
	if lo < 1 {
		lo = 1
	}
	hi := int(retryMax / time.Second)
	if hi < lo {
		hi = lo
	}
	var mu sync.Mutex
	r := rng.New(seed)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if !sem.TryAcquire() {
				mu.Lock()
				secs := lo + r.Intn(hi-lo+1)
				mu.Unlock()
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				WriteError(w, http.StatusTooManyRequests, "saturated", "server is at capacity; retry later")
				return
			}
			defer sem.Release()
			next.ServeHTTP(w, req)
		})
	}
}

// WithTimeout attaches a deadline to each request's context. Handlers
// that thread the context into the join engine abort within one
// verification batch when it expires.
func WithTimeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// LimitBody caps the request body at n bytes via http.MaxBytesReader;
// reads past the cap fail with *http.MaxBytesError, which the server
// maps to a structured 400.
func LimitBody(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		if n <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			r.Body = http.MaxBytesReader(w, r.Body, n)
			next.ServeHTTP(w, r)
		})
	}
}
