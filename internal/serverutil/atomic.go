package serverutil

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"kjoin/internal/fault"
)

// tmpInfix marks the temp files WriteFileAtomic writes before renaming;
// SweepTemps recognizes strays by it after a crash.
const tmpInfix = ".tmp-"

// WriteFileAtomic writes a file on the real filesystem such that path
// either keeps its old contents or holds the complete new contents —
// never a torn mix, even if the process dies mid-write. See
// WriteFileAtomicFS.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return WriteFileAtomicFS(fault.OS{}, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem (the
// fault-injection seam). It writes to a temp file in the same
// directory, fsyncs it, renames it over path, and fsyncs the directory
// so the rename itself is durable. On any error the temp file is
// removed and path is untouched; if the process crashes between
// creating the temp file and cleaning it up, the stray is reclaimed by
// SweepTemps on the next startup.
func WriteFileAtomicFS(fsys fault.FS, path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+tmpInfix+"*")
	if err != nil {
		return fmt.Errorf("serverutil: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close() // best-effort cleanup; err already carries the failure
			fsys.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("serverutil: write %s: %w", tmpName, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("serverutil: fsync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("serverutil: close %s: %w", tmpName, err)
	}
	if err = fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("serverutil: rename: %w", err)
	}
	// fsync the directory so a crash cannot lose the rename. Failure
	// here is reported but the file content is already correct.
	if serr := fsys.SyncDir(dir); serr != nil {
		err = fmt.Errorf("serverutil: fsync dir %s: %w", dir, serr)
	}
	return err
}

// SweepTemps removes stale WriteFileAtomic temp files from dir: strays
// left by a crash between creating the temp file and renaming or
// removing it. It returns the names it removed. Callers run it on
// startup scans (the generation store does it as part of loading) —
// never while another process may be mid-write in the same directory.
func SweepTemps(fsys fault.FS, dir string) ([]string, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serverutil: sweep %s: %w", dir, err)
	}
	var removed []string
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), tmpInfix) {
			continue
		}
		if err := fsys.Remove(dir + "/" + e.Name()); err != nil {
			return removed, fmt.Errorf("serverutil: sweep %s: %w", e.Name(), err)
		}
		removed = append(removed, e.Name())
	}
	return removed, nil
}
