package serverutil

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file such that path either keeps its old
// contents or holds the complete new contents — never a torn mix, even
// if the process dies mid-write. It writes to a temp file in the same
// directory, fsyncs it, renames it over path, and fsyncs the directory
// so the rename itself is durable. On any error the temp file is
// removed and path is untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serverutil: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("serverutil: write %s: %w", tmpName, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("serverutil: fsync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("serverutil: close %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("serverutil: rename: %w", err)
	}
	// fsync the directory so a crash cannot lose the rename. Failure
	// here is reported but the file content is already correct.
	if d, derr := os.Open(dir); derr == nil {
		if serr := d.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("serverutil: fsync dir %s: %w", dir, serr)
		}
		d.Close()
	}
	return err
}
