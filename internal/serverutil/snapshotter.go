package serverutil

import (
	"context"
	"time"

	"kjoin/internal/rng"
)

// Snapshotter periodically invokes a snapshot function, retrying failed
// attempts with capped, jittered exponential backoff so a transient
// disk problem (full volume, slow NFS) degrades to delayed snapshots
// instead of a crash, a silent stop, or a thundering herd of replicas
// retrying in lockstep.
type Snapshotter struct {
	// Interval between successful snapshots. Must be positive.
	Interval time.Duration
	// Write performs one snapshot attempt (typically Server.SnapshotTo
	// wrapped over WriteFileAtomic).
	Write func() error
	// MinBackoff is the first retry delay after a failure (default 1s).
	MinBackoff time.Duration
	// MaxBackoff caps the retry delay (default Interval).
	MaxBackoff time.Duration
	// Jitter spreads each retry delay uniformly over
	// [base·(1−Jitter), base·(1+Jitter)] (default 0.2; set negative for
	// none). The stream is seeded by Seed, so schedules are reproducible
	// in tests.
	Jitter float64
	// Seed seeds the jitter stream (default 1).
	Seed uint64
	// Logf, when set, receives snapshot failures and recoveries.
	Logf func(format string, args ...any)

	// newTimer makes the clock injectable for tests; nil means real time.
	newTimer func(d time.Duration) snapTimer
}

func (s *Snapshotter) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// snapTimer is the slice of time.Timer the Snapshotter needs.
type snapTimer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop()
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time   { return r.t.C }
func (r realTimer) Reset(d time.Duration) { r.t.Reset(d) }
func (r realTimer) Stop()                 { r.t.Stop() }

// backoff computes the retry schedule: exponential doubling from min,
// capped at max, jittered by ±frac, reset to healthy after a success.
type backoff struct {
	min, max time.Duration
	frac     float64
	r        *rng.RNG
	base     time.Duration // 0 = healthy (no failures since last success)
}

// next returns the delay before the following retry and advances the
// schedule.
func (b *backoff) next() time.Duration {
	if b.base == 0 {
		b.base = b.min
	} else if b.base > b.max/2 {
		b.base = b.max
	} else {
		b.base *= 2
	}
	d := b.base
	if b.frac > 0 {
		span := float64(d) * b.frac
		d += time.Duration(span * (2*b.r.Float64() - 1))
		if d < b.min {
			d = b.min
		}
		if d > b.max+time.Duration(float64(b.max)*b.frac) {
			d = b.max
		}
	}
	return d
}

// reset returns the schedule to healthy after a success.
func (b *backoff) reset() { b.base = 0 }

// failures reports whether the schedule is in a failure run.
func (b *backoff) failing() bool { return b.base != 0 }

func (s *Snapshotter) backoff() *backoff {
	minB := s.MinBackoff
	if minB <= 0 {
		minB = time.Second
	}
	maxB := s.MaxBackoff
	if maxB <= 0 {
		maxB = s.Interval
	}
	if maxB < minB {
		maxB = minB
	}
	frac := s.Jitter
	if frac == 0 {
		frac = 0.2
	}
	if frac < 0 {
		frac = 0
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return &backoff{min: minB, max: maxB, frac: frac, r: rng.New(seed)}
}

// Run snapshots on the interval until ctx is done, backing off on
// failure per the jittered schedule and returning to the plain interval
// after the next success. It does not write a final snapshot on exit —
// shutdown owns that, after the listener has drained.
func (s *Snapshotter) Run(ctx context.Context) {
	mk := s.newTimer
	if mk == nil {
		mk = func(d time.Duration) snapTimer { return realTimer{time.NewTimer(d)} }
	}
	bo := s.backoff()
	failures := 0
	t := mk(s.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C():
		}
		if err := s.Write(); err != nil {
			failures++
			delay := bo.next()
			s.logf("snapshot failed (attempt %d, retrying in %v): %v", failures, delay, err)
			t.Reset(delay)
			continue
		}
		if bo.failing() {
			s.logf("snapshot recovered after %d failed attempts", failures)
		}
		failures = 0
		bo.reset()
		t.Reset(s.Interval)
	}
}
