package serverutil

import (
	"context"
	"time"
)

// Snapshotter periodically invokes a snapshot function, retrying failed
// attempts with exponential backoff so a transient disk problem (full
// volume, slow NFS) degrades to delayed snapshots instead of a crash or
// a silent stop.
type Snapshotter struct {
	// Interval between successful snapshots. Must be positive.
	Interval time.Duration
	// Write performs one snapshot attempt (typically Server.SnapshotTo
	// wrapped over WriteFileAtomic).
	Write func() error
	// MinBackoff is the first retry delay after a failure (default 1s).
	MinBackoff time.Duration
	// MaxBackoff caps the retry delay (default Interval).
	MaxBackoff time.Duration
	// Logf, when set, receives snapshot failures and recoveries.
	Logf func(format string, args ...any)
}

func (s *Snapshotter) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Run snapshots on the interval until ctx is done, backing off
// exponentially while Write keeps failing. It does not write a final
// snapshot on exit — shutdown owns that, after the listener has drained.
func (s *Snapshotter) Run(ctx context.Context) {
	minB := s.MinBackoff
	if minB <= 0 {
		minB = time.Second
	}
	maxB := s.MaxBackoff
	if maxB <= 0 {
		maxB = s.Interval
	}
	if maxB < minB {
		maxB = minB
	}
	delay := s.Interval
	backoff := time.Duration(0) // 0 = healthy
	failures := 0
	t := time.NewTimer(delay)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if err := s.Write(); err != nil {
			failures++
			if backoff == 0 {
				backoff = minB
			} else {
				backoff *= 2
			}
			if backoff > maxB {
				backoff = maxB
			}
			s.logf("snapshot failed (attempt %d, retrying in %v): %v", failures, backoff, err)
			t.Reset(backoff)
			continue
		}
		if failures > 0 {
			s.logf("snapshot recovered after %d failed attempts", failures)
		}
		failures = 0
		backoff = 0
		t.Reset(s.Interval)
	}
}
