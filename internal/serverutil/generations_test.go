package serverutil

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kjoin/internal/fault"
)

func saveString(t *testing.T, g *GenStore, s string) string {
	t.Helper()
	name, err := g.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	})
	if err != nil {
		t.Fatalf("save %q: %v", s, err)
	}
	return name
}

// loadChecked is a load callback that mimics a checksummed snapshot
// reader: contents must start with "ok:", anything else is corruption.
func loadChecked(got *string) func(r io.Reader) error {
	return func(r io.Reader) error {
		b, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		if !strings.HasPrefix(string(b), "ok:") {
			return errors.New("bad checksum")
		}
		*got = string(b)
		return nil
	}
}

func TestGenStoreSaveLoadRoundTrip(t *testing.T) {
	g := &GenStore{Dir: filepath.Join(t.TempDir(), "snaps")}
	if _, err := g.Load(func(io.Reader) error { return nil }); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
	if name := saveString(t, g, "ok:v1"); name != "snap.000001" {
		t.Fatalf("first generation named %q", name)
	}
	if name := saveString(t, g, "ok:v2"); name != "snap.000002" {
		t.Fatalf("second generation named %q", name)
	}
	var got string
	name, err := g.Load(loadChecked(&got))
	if err != nil {
		t.Fatal(err)
	}
	if name != "snap.000002" || got != "ok:v2" {
		t.Fatalf("loaded %q = %q, want snap.000002 = ok:v2", name, got)
	}
}

func TestGenStorePrunesBeyondKeep(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	g := &GenStore{Dir: dir, Keep: 2}
	for i := 1; i <= 4; i++ {
		saveString(t, g, fmt.Sprintf("ok:v%d", i))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{"CURRENT", "snap.000003", "snap.000004"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("dir holds %v, want %v", names, want)
	}
}

func TestGenStoreFallsBackPastCorruptGeneration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	g := &GenStore{Dir: dir, Logf: t.Logf}
	saveString(t, g, "ok:v1")
	saveString(t, g, "ok:v2")
	// Bit-rot the newest generation, the one CURRENT names.
	if err := os.WriteFile(filepath.Join(dir, "snap.000002"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got string
	name, err := g.Load(loadChecked(&got))
	if err != nil {
		t.Fatal(err)
	}
	if name != "snap.000001" || got != "ok:v1" {
		t.Fatalf("fallback loaded %q = %q, want snap.000001 = ok:v1", name, got)
	}
	// All generations corrupt: the error is not ErrNoSnapshot (data
	// exists, it is just unreadable — the caller must not start empty).
	if err := os.WriteFile(filepath.Join(dir, "snap.000001"), []byte("also garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Load(loadChecked(&got)); err == nil || errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all-corrupt dir: err = %v, want hard failure", err)
	}
}

func TestGenStoreSurvivesBadCurrent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	g := &GenStore{Dir: dir, Logf: t.Logf}
	saveString(t, g, "ok:v1")
	for _, current := range []string{"snap.000099\n", "not-a-generation\n"} {
		if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte(current), 0o644); err != nil {
			t.Fatal(err)
		}
		var got string
		name, err := g.Load(loadChecked(&got))
		if err != nil {
			t.Fatalf("CURRENT=%q: %v", current, err)
		}
		if name != "snap.000001" || got != "ok:v1" {
			t.Fatalf("CURRENT=%q loaded %q = %q", current, name, got)
		}
	}
}

func TestGenStoreLoadSweepsStaleTemps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	g := &GenStore{Dir: dir, Logf: t.Logf}
	saveString(t, g, "ok:v1")
	// A crash mid-Save leaves a temp file behind.
	stray := filepath.Join(dir, "snap.000002"+tmpInfix+"123456")
	if err := os.WriteFile(stray, []byte("half written"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got string
	if _, err := g.Load(loadChecked(&got)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived load: %v", err)
	}
}

func TestSweepTempsLeavesRealFilesAlone(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"snap.000001":                  "keep",
		"snap.000002" + tmpInfix + "x": "sweep",
		"CURRENT":                      "keep",
		"other" + tmpInfix + "99":      "sweep",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := SweepTemps(fault.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the 2 temp files", removed)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Fatalf("%d entries left, want 2", len(ents))
	}
}

// TestGenStoreSaveUnderInjectedFaults scripts failures at each point of
// a Save and checks the previous generation is always the one that
// loads: a failed save costs the new snapshot, never the old one.
func TestGenStoreSaveUnderInjectedFaults(t *testing.T) {
	for _, f := range []fault.Fault{
		{Op: fault.OpWrite, N: 1, Path: "snap.000002", Mode: fault.Fail},
		{Op: fault.OpSync, N: 1, Path: "snap.000002", Mode: fault.Fail},
		{Op: fault.OpRename, N: 1, Path: "snap.000002", Mode: fault.Fail},
	} {
		t.Run(fmt.Sprintf("%v-%v", f.Op, f.Mode), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "snaps")
			inj := fault.NewInjector(fault.OS{}, f)
			g := &GenStore{FS: inj, Dir: dir, Logf: t.Logf}
			saveString(t, g, "ok:v1")
			_, err := g.Save(func(w io.Writer) error {
				_, werr := io.WriteString(w, "ok:v2")
				return werr
			})
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("save under %v/%v: err = %v, want injected", f.Op, f.Mode, err)
			}
			if inj.Fired() != 1 {
				t.Fatalf("fired = %d", inj.Fired())
			}
			// Reboot: a fresh store over the same directory still loads v1.
			var got string
			name, lerr := (&GenStore{Dir: dir, Logf: t.Logf}).Load(loadChecked(&got))
			if lerr != nil {
				t.Fatal(lerr)
			}
			if name != "snap.000001" || got != "ok:v1" {
				t.Fatalf("after failed save, loaded %q = %q", name, got)
			}
		})
	}
}

// TestGenStoreCrashAfterRename: the new generation file lands but the
// process dies before CURRENT repoints. Recovery must still come up —
// with either generation — and a subsequent Save must keep numbering
// past the orphan.
func TestGenStoreCrashAfterRename(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	inj := fault.NewInjector(fault.OS{},
		fault.Fault{Op: fault.OpRename, N: 1, Path: "snap.000002", Mode: fault.CrashAfter})
	g := &GenStore{FS: inj, Dir: dir, Logf: t.Logf}
	saveString(t, g, "ok:v1")
	_, err := g.Save(func(w io.Writer) error {
		_, werr := io.WriteString(w, "ok:v2")
		return werr
	})
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("err = %v, want crash", err)
	}
	// Reboot.
	g2 := &GenStore{Dir: dir, Logf: t.Logf}
	var got string
	name, err := g2.Load(loadChecked(&got))
	if err != nil {
		t.Fatal(err)
	}
	// CURRENT still names v1; the orphaned v2 is acceptable only via
	// explicit fallback, so the load must honor CURRENT.
	if name != "snap.000001" || got != "ok:v1" {
		t.Fatalf("loaded %q = %q, want CURRENT's snap.000001", name, got)
	}
	if next := saveString(t, g2, "ok:v3"); next != "snap.000003" {
		t.Fatalf("post-crash save named %q, want snap.000003 (past the orphan)", next)
	}
}

// fakeTimer lets the backoff test drive the Snapshotter clock by hand:
// the test fires ticks and observes every Reset duration.
type fakeTimer struct {
	ch     chan time.Time
	resets chan time.Duration
}

func (f *fakeTimer) C() <-chan time.Time   { return f.ch }
func (f *fakeTimer) Reset(d time.Duration) { f.resets <- d }
func (f *fakeTimer) Stop()                 {}

// TestSnapshotterBackoffSchedule drives the retry schedule with a fake
// clock: no jitter → exact doubling to the cap; a success resets the
// schedule to the plain interval and the next failure starts over at
// MinBackoff.
func TestSnapshotterBackoffSchedule(t *testing.T) {
	ft := &fakeTimer{ch: make(chan time.Time), resets: make(chan time.Duration, 16)}
	failing := true
	s := &Snapshotter{
		Interval:   time.Minute,
		MinBackoff: time.Second,
		MaxBackoff: 8 * time.Second,
		Jitter:     -1, // exact schedule
		Write: func() error {
			if failing {
				return errors.New("disk full")
			}
			return nil
		},
		newTimer: func(d time.Duration) snapTimer {
			if d != time.Minute {
				t.Errorf("initial timer = %v, want Interval", d)
			}
			return ft
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()

	tick := func() time.Duration {
		t.Helper()
		select {
		case ft.ch <- time.Time{}:
		case <-time.After(5 * time.Second):
			t.Fatal("Run not waiting on timer")
		}
		select {
		case d := <-ft.resets:
			return d
		case <-time.After(5 * time.Second):
			t.Fatal("Run never reset the timer")
			return 0
		}
	}

	// Six failures: 1s, 2s, 4s, 8s, 8s, 8s — doubling, capped.
	wantFail := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, 8 * time.Second}
	for i, want := range wantFail {
		if got := tick(); got != want {
			t.Fatalf("retry %d delay = %v, want %v", i+1, got, want)
		}
	}
	// Success: back to the plain interval.
	failing = false
	if got := tick(); got != time.Minute {
		t.Fatalf("post-success delay = %v, want Interval", got)
	}
	// Next failure starts the schedule over at MinBackoff, not the cap.
	failing = true
	if got := tick(); got != time.Second {
		t.Fatalf("fresh-failure delay = %v, want MinBackoff", got)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop")
	}
}

// TestSnapshotterJitterBoundedAndSeeded: jittered delays stay within
// ±Jitter of the deterministic base, and the same seed reproduces the
// same schedule.
func TestSnapshotterJitterBoundedAndSeeded(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		s := &Snapshotter{
			Interval:   time.Minute,
			MinBackoff: time.Second,
			MaxBackoff: 8 * time.Second,
			Jitter:     0.5,
			Seed:       seed,
		}
		bo := s.backoff()
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = bo.next()
		}
		return out
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	base := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, 8 * time.Second, 8 * time.Second, 8 * time.Second}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
		lo := base[i] - time.Duration(float64(base[i])*0.5)
		hi := base[i] + time.Duration(float64(base[i])*0.5)
		if lo < time.Second {
			lo = time.Second
		}
		if a[i] < lo || a[i] > hi {
			t.Errorf("delay %d = %v outside [%v, %v]", i, a[i], lo, hi)
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}
