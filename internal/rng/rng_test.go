package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of range", v)
		}
		sum += v
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleAndPick(t *testing.T) {
	r := New(4)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Error("Shuffle changed contents")
	}
	v := Pick(r, xs)
	found := false
	for _, x := range xs {
		if x == v {
			found = true
		}
	}
	if !found {
		t.Error("Pick returned a foreign element")
	}
}

func TestPairHash(t *testing.T) {
	if PairHash(1, 3, 7) != PairHash(1, 7, 3) {
		t.Error("PairHash must be order independent")
	}
	if PairHash(1, 3, 7) == PairHash(2, 3, 7) {
		t.Error("PairHash should depend on the seed")
	}
	if PairHash(1, 3, 7) == PairHash(1, 3, 8) {
		t.Error("PairHash should depend on the ids")
	}
}
