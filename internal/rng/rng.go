// Package rng provides a tiny deterministic splitmix64 generator used by
// the dataset generators and the simulated crowd oracle. Everything in
// the benchmark harness derives from explicit seeds through this package,
// so every experiment is reproducible bit-for-bit across runs and
// platforms (math/rand's stream is version-dependent for some APIs and
// its global state is shared).
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap func.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a pseudo-random element of xs. It panics on empty input.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// PairHash mixes two ids into a stable 64-bit hash, used to derive
// per-pair randomness (e.g. the crowd oracle's error coin) that does not
// depend on iteration order.
func PairHash(seed uint64, a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	x := seed ^ (uint64(a) << 32) ^ uint64(b)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
