package hierarchy

import (
	"strings"
	"testing"
)

func TestFromPaths(t *testing.T) {
	in := `
# a comment
Food/WesternFood/Fastfood/KFC
Food/WesternFood/Fastfood/BurgerKing
Food/WesternFood/Pizza/PizzaHut
Location/US/CA/SanFrancisco
Location/US/NY
`
	h, err := FromPaths(strings.NewReader(in), '/', "Root")
	if err != nil {
		t.Fatal(err)
	}
	if h.Name(h.Root()) != "Root" {
		t.Errorf("root name = %q", h.Name(h.Root()))
	}
	kfc, ok := h.LookupOne("KFC")
	if !ok || h.Depth(kfc) != 4 {
		t.Fatalf("KFC depth = %v ok=%v, want 4", h.Depth(kfc), ok)
	}
	bk, _ := h.LookupOne("BurgerKing")
	if got := h.Name(h.LCA(kfc, bk)); got != "Fastfood" {
		t.Errorf("LCA(KFC, BurgerKing) = %s", got)
	}
	// Shared prefixes are not duplicated.
	if got := len(h.Lookup("WesternFood")); got != 1 {
		t.Errorf("WesternFood appears %d times, want 1", got)
	}
	// Two domains under the synthesized root.
	if got := len(h.Children(h.Root())); got != 2 {
		t.Errorf("root children = %d, want 2", got)
	}
}

func TestFromPathsDuplicateNamesUnderDifferentParents(t *testing.T) {
	in := "A/X\nB/X\n"
	h, err := FromPaths(strings.NewReader(in), '/', "Root")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Lookup("X")); got != 2 {
		t.Errorf("X should be two nodes (one per parent), got %d", got)
	}
}

func TestFromPathsErrors(t *testing.T) {
	if _, err := FromPaths(strings.NewReader(""), '/', "R"); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FromPaths(strings.NewReader("A//B\n"), '/', "R"); err == nil {
		t.Error("empty segment should fail")
	}
	if _, err := FromPaths(strings.NewReader("# only comments\n"), '/', "R"); err == nil {
		t.Error("comment-only input should fail")
	}
}

func TestFromEdges(t *testing.T) {
	in := `
Food	WesternFood
WesternFood	Fastfood
Fastfood	KFC
Fastfood	BurgerKing
Location	US
`
	h, err := FromEdges(strings.NewReader(in), "Root")
	if err != nil {
		t.Fatal(err)
	}
	kfc, ok := h.LookupOne("KFC")
	if !ok || h.Depth(kfc) != 4 {
		t.Fatalf("KFC depth = %v, want 4", h.Depth(kfc))
	}
	// Food and Location have no parents → children of the root.
	food, _ := h.LookupOne("Food")
	loc, _ := h.LookupOne("Location")
	if h.Parent(food) != h.Root() || h.Parent(loc) != h.Root() {
		t.Error("parentless names should attach to the root")
	}
	// Duplicate edges are tolerated.
	h2, err := FromEdges(strings.NewReader("A\tB\nA\tB\n"), "R")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 3 {
		t.Errorf("Len = %d, want 3", h2.Len())
	}
}

func TestFromEdgesErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"onefield\n",   // malformed
		"A\tB\nC\tB\n", // two parents
		"A\tB\nB\tA\n", // cycle (also a two-parent case by structure)
		"A\t\n",        // empty child
		"\tB\n",        // empty parent
	}
	for _, c := range cases {
		if _, err := FromEdges(strings.NewReader(c), "R"); err == nil {
			t.Errorf("FromEdges(%q) should fail", c)
		}
	}
}

func TestFromEdgesCycle(t *testing.T) {
	// A pure cycle with distinct parents per child: A→B, B→C, C→A.
	in := "A\tB\nB\tC\nC\tA\n"
	if _, err := FromEdges(strings.NewReader(in), "R"); err == nil {
		t.Error("cycle should be rejected")
	}
}
