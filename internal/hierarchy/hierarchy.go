// Package hierarchy implements the knowledge hierarchy used by K-Join:
// a rooted tree of named nodes with depth and lowest-common-ancestor
// queries, plus a DAG-to-tree transformation (paper §6.5) and a simple
// text serialization.
//
// The hierarchy is append-only: nodes are added under an existing parent
// and never removed. Node names need not be unique — an element may map
// to several nodes (paper §6.4) — so lookup by name returns a slice.
package hierarchy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeID identifies a node in a Hierarchy. The root is always NodeID 0.
type NodeID int32

// None is the invalid node id, used for "no node" results.
const None NodeID = -1

// Hierarchy is a rooted tree of named nodes. The zero value is not usable;
// call New to create a hierarchy with a root.
type Hierarchy struct {
	names    []string
	parent   []NodeID
	depth    []int32
	children [][]NodeID
	byName   map[string][]NodeID
}

// New returns a hierarchy containing only a root node with the given name.
// The root has depth 0 (paper §2.1.1).
func New(rootName string) *Hierarchy {
	h := &Hierarchy{byName: make(map[string][]NodeID)}
	h.names = append(h.names, rootName)
	h.parent = append(h.parent, None)
	h.depth = append(h.depth, 0)
	h.children = append(h.children, nil)
	h.byName[rootName] = []NodeID{0}
	return h
}

// Root returns the root node id (always 0).
func (h *Hierarchy) Root() NodeID { return 0 }

// Len returns the number of nodes in the hierarchy.
func (h *Hierarchy) Len() int { return len(h.names) }

// Add appends a new node named name under parent and returns its id.
// It panics if parent is not a valid node of h.
func (h *Hierarchy) Add(parent NodeID, name string) NodeID {
	if parent < 0 || int(parent) >= len(h.names) {
		panic(fmt.Sprintf("hierarchy: Add under invalid parent %d", parent))
	}
	id := NodeID(len(h.names))
	h.names = append(h.names, name)
	h.parent = append(h.parent, parent)
	h.depth = append(h.depth, h.depth[parent]+1)
	h.children = append(h.children, nil)
	h.children[parent] = append(h.children[parent], id)
	h.byName[name] = append(h.byName[name], id)
	return id
}

// Name returns the name of node n.
func (h *Hierarchy) Name(n NodeID) string { return h.names[n] }

// Parent returns the parent of n, or None for the root.
func (h *Hierarchy) Parent(n NodeID) NodeID { return h.parent[n] }

// Depth returns the depth of n; the root has depth 0.
func (h *Hierarchy) Depth(n NodeID) int { return int(h.depth[n]) }

// Children returns the children of n. The returned slice must not be
// modified.
func (h *Hierarchy) Children(n NodeID) []NodeID { return h.children[n] }

// IsLeaf reports whether n has no children.
func (h *Hierarchy) IsLeaf(n NodeID) bool { return len(h.children[n]) == 0 }

// Lookup returns all nodes named name, or nil if there are none.
// The returned slice must not be modified.
func (h *Hierarchy) Lookup(name string) []NodeID { return h.byName[name] }

// LookupOne returns some node named name (the first added) and whether one
// exists. It is the single-node mapping used by plain K-Join (§2.1.1).
func (h *Hierarchy) LookupOne(name string) (NodeID, bool) {
	ns := h.byName[name]
	if len(ns) == 0 {
		return None, false
	}
	return ns[0], true
}

// LCA returns the lowest common ancestor of a and b. Both must be valid
// nodes. The walk is O(depth), which is tiny for knowledge hierarchies
// (the paper's hierarchy has height 6).
func (h *Hierarchy) LCA(a, b NodeID) NodeID {
	for h.depth[a] > h.depth[b] {
		a = h.parent[a]
	}
	for h.depth[b] > h.depth[a] {
		b = h.parent[b]
	}
	for a != b {
		a = h.parent[a]
		b = h.parent[b]
	}
	return a
}

// LCADepth returns the depth of the lowest common ancestor of a and b,
// the quantity d_{ex,ey} of Definition 1.
func (h *Hierarchy) LCADepth(a, b NodeID) int { return int(h.depth[h.LCA(a, b)]) }

// Ancestor returns the ancestor of n at depth d. If d >= Depth(n) it
// returns n itself; if d < 0 it returns the root.
func (h *Hierarchy) Ancestor(n NodeID, d int) NodeID {
	if d < 0 {
		d = 0
	}
	for int(h.depth[n]) > d {
		n = h.parent[n]
	}
	return n
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (h *Hierarchy) IsAncestor(a, b NodeID) bool {
	return h.Ancestor(b, h.Depth(a)) == a
}

// Names returns all distinct node names in sorted order.
func (h *Hierarchy) Names() []string {
	out := make([]string, 0, len(h.byName))
	for n := range h.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Leaves returns all leaf node ids in id order.
func (h *Hierarchy) Leaves() []NodeID {
	var out []NodeID
	for i := range h.names {
		if len(h.children[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Height returns the maximum node depth in the hierarchy.
func (h *Hierarchy) Height() int {
	max := int32(0)
	for _, d := range h.depth {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// Stats describes the shape of a hierarchy, matching Table 2 of the paper.
type Stats struct {
	Nodes     int // total node count
	Height    int // maximum depth
	AvgFanout int // average children per internal node, rounded
	MaxFanout int // maximum children of any node
	MinFanout int // minimum children of any internal node
}

// ComputeStats returns shape statistics in the format of the paper's
// Table 2. Fanout statistics consider internal (non-leaf) nodes only.
func (h *Hierarchy) ComputeStats() Stats {
	s := Stats{Nodes: h.Len(), Height: h.Height(), MinFanout: 1 << 30}
	internal, totalFan := 0, 0
	for i := range h.names {
		f := len(h.children[i])
		if f == 0 {
			continue
		}
		internal++
		totalFan += f
		if f > s.MaxFanout {
			s.MaxFanout = f
		}
		if f < s.MinFanout {
			s.MinFanout = f
		}
	}
	if internal > 0 {
		s.AvgFanout = (totalFan + internal/2) / internal
	}
	if s.MinFanout == 1<<30 {
		s.MinFanout = 0
	}
	return s
}

// WriteTo serializes the hierarchy in a line-oriented text format:
// one node per line, "<id>\t<parent-id>\t<name>", root first with parent
// -1. It implements io.WriterTo.
func (h *Hierarchy) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for i, name := range h.names {
		c, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", i, h.parent[i], name)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses the text format produced by WriteTo. Parents must appear
// before children (WriteTo guarantees this).
func Read(r io.Reader) (*Hierarchy, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var h *Hierarchy
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("hierarchy: line %d: want 3 tab-separated fields, got %q", line, text)
		}
		var id, parent int
		if _, err := fmt.Sscanf(parts[0], "%d", &id); err != nil {
			return nil, fmt.Errorf("hierarchy: line %d: bad id %q", line, parts[0])
		}
		if _, err := fmt.Sscanf(parts[1], "%d", &parent); err != nil {
			return nil, fmt.Errorf("hierarchy: line %d: bad parent %q", line, parts[1])
		}
		name := parts[2]
		if h == nil {
			if parent != -1 {
				return nil, fmt.Errorf("hierarchy: line %d: first node must be the root (parent -1)", line)
			}
			h = New(name)
			continue
		}
		if parent < 0 || parent >= h.Len() {
			return nil, fmt.Errorf("hierarchy: line %d: parent %d not yet defined", line, parent)
		}
		if got := h.Add(NodeID(parent), name); int(got) != id {
			return nil, fmt.Errorf("hierarchy: line %d: node ids must be dense and in order (want %d, got %d)", line, got, id)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("hierarchy: empty input")
	}
	return h, nil
}

// DAGNode is one node of an input DAG for FromDAG. Parents index into the
// node slice; the root has no parents.
type DAGNode struct {
	Name    string
	Parents []int
}

// FromDAG converts a DAG into a tree by duplicating each multi-parent node
// under every parent (paper §6.5). Node 0 of dag must be the unique root.
// The resulting tree preserves every root-to-node path of the DAG, and a
// name maps to one tree node per distinct DAG path, so the multi-node
// machinery of §6.4 applies.
func FromDAG(dag []DAGNode) (*Hierarchy, error) {
	if len(dag) == 0 {
		return nil, fmt.Errorf("hierarchy: empty DAG")
	}
	if len(dag[0].Parents) != 0 {
		return nil, fmt.Errorf("hierarchy: DAG node 0 must be the root (no parents)")
	}
	children := make([][]int, len(dag))
	indeg := make([]int, len(dag))
	for i, n := range dag {
		if i == 0 {
			continue
		}
		if len(n.Parents) == 0 {
			return nil, fmt.Errorf("hierarchy: DAG node %d (%s) has no parents and is not the root", i, n.Name)
		}
		for _, p := range n.Parents {
			if p < 0 || p >= len(dag) {
				return nil, fmt.Errorf("hierarchy: DAG node %d has invalid parent %d", i, p)
			}
			children[p] = append(children[p], i)
			indeg[i]++
		}
	}
	// Verify acyclicity via Kahn's algorithm.
	order := make([]int, 0, len(dag))
	queue := []int{0}
	deg := append([]int(nil), indeg...)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range children[u] {
			deg[v]--
			if deg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(dag) {
		return nil, fmt.Errorf("hierarchy: input graph has a cycle or unreachable nodes")
	}
	h := New(dag[0].Name)
	// Duplicate each DAG subtree under every tree copy of each parent.
	var expand func(dagNode int, treeParent NodeID)
	expand = func(dagNode int, treeParent NodeID) {
		id := h.Add(treeParent, dag[dagNode].Name)
		// Sort children for deterministic output.
		cs := append([]int(nil), children[dagNode]...)
		sort.Ints(cs)
		for _, c := range cs {
			expand(c, id)
		}
	}
	cs := append([]int(nil), children[0]...)
	sort.Ints(cs)
	for _, c := range cs {
		expand(c, 0)
	}
	return h, nil
}
