package hierarchy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// FromPaths builds a hierarchy from a path-per-line listing, the shape
// knowledge-base category dumps commonly reduce to:
//
//	Food/WesternFood/Fastfood/KFC
//	Food/WesternFood/Fastfood/BurgerKing
//	Location/US/CA/SanFrancisco
//
// Segments are separated by sep (e.g. '/'). The first path's first
// segment does not need to repeat: every distinct first segment becomes
// a child of a synthesized root named rootName. A node is identified by
// its full path, so the same name may appear under different parents
// (multi-node names, paper §6.4). Empty lines and lines starting with
// '#' are skipped.
func FromPaths(r io.Reader, sep byte, rootName string) (*Hierarchy, error) {
	h := New(rootName)
	byPath := map[string]NodeID{"": h.Root()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		segs := strings.Split(text, string(sep))
		path := ""
		parent := h.Root()
		for _, seg := range segs {
			seg = strings.TrimSpace(seg)
			if seg == "" {
				return nil, fmt.Errorf("hierarchy: line %d: empty path segment in %q", line, text)
			}
			path += string(sep) + seg
			n, ok := byPath[path]
			if !ok {
				n = h.Add(parent, seg)
				byPath[path] = n
			}
			parent = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if h.Len() == 1 {
		return nil, fmt.Errorf("hierarchy: no paths in input")
	}
	return h, nil
}

// FromEdges builds a hierarchy from "parent<TAB>child" name pairs (an
// is-a edge list, the raw shape of taxonomy dumps):
//
//	Food	WesternFood
//	WesternFood	Fastfood
//	Fastfood	KFC
//
// Node identity is by name: each name is one node, so the input must be
// a forest (a child may appear under only one parent — use FromDAG for
// graphs with shared children). Names never used as a child become
// children of a synthesized root named rootName. Empty lines and lines
// starting with '#' are skipped.
func FromEdges(r io.Reader, rootName string) (*Hierarchy, error) {
	type edge struct{ parent, child string }
	var edges []edge
	childOf := map[string]string{}
	names := map[string]bool{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("hierarchy: line %d: want \"parent\\tchild\", got %q", line, text)
		}
		p := strings.TrimSpace(parts[0])
		c := strings.TrimSpace(parts[1])
		if p == "" || c == "" {
			return nil, fmt.Errorf("hierarchy: line %d: empty name in %q", line, text)
		}
		if prev, ok := childOf[c]; ok && prev != p {
			return nil, fmt.Errorf("hierarchy: line %d: %q has two parents (%q, %q); use FromDAG for DAGs", line, c, prev, p)
		}
		if prev, ok := childOf[c]; ok && prev == p {
			continue // duplicate edge
		}
		childOf[c] = p
		edges = append(edges, edge{p, c})
		for _, n := range []string{p, c} {
			if !names[n] {
				names[n] = true
				order = append(order, n)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("hierarchy: no edges in input")
	}

	h := New(rootName)
	ids := map[string]NodeID{}
	// Materialize each name once its ancestor chain is known; detect
	// cycles by bounding the chain length.
	var materialize func(name string, depth int) (NodeID, error)
	materialize = func(name string, depth int) (NodeID, error) {
		if id, ok := ids[name]; ok {
			return id, nil
		}
		if depth > len(names) {
			return 0, fmt.Errorf("hierarchy: cycle involving %q", name)
		}
		parent := h.Root()
		if pn, ok := childOf[name]; ok {
			pid, err := materialize(pn, depth+1)
			if err != nil {
				return 0, err
			}
			parent = pid
		}
		id := h.Add(parent, name)
		ids[name] = id
		return id, nil
	}
	for _, n := range order {
		if _, err := materialize(n, 0); err != nil {
			return nil, err
		}
	}
	return h, nil
}
