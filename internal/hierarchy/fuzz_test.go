package hierarchy

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the hierarchy parser never panics and that any
// successfully parsed hierarchy round-trips through WriteTo/Read.
func FuzzRead(f *testing.F) {
	f.Add("0\t-1\tRoot\n1\t0\tA\n2\t0\tB\n")
	f.Add("0\t-1\tRoot\n")
	f.Add("garbage")
	f.Add("0\t-1\tRoot\n1\t7\tA\n")
	f.Add("0\t-1\tRoot\n1\t0\t\n")
	f.Fuzz(func(t *testing.T, input string) {
		h, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := h.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after successful Read: %v", err)
		}
		h2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if h2.Len() != h.Len() {
			t.Fatalf("round trip changed size: %d != %d", h2.Len(), h.Len())
		}
		for i := 0; i < h.Len(); i++ {
			n := NodeID(i)
			if h.Name(n) != h2.Name(n) || h.Parent(n) != h2.Parent(n) {
				t.Fatalf("node %d changed", i)
			}
		}
	})
}

// FuzzFromPaths checks the path parser never panics and that parsed
// hierarchies are well-formed.
func FuzzFromPaths(f *testing.F) {
	f.Add("Food/WesternFood/Fastfood/KFC\nLocation/US")
	f.Add("A//B")
	f.Add("#comment\nX/Y")
	f.Fuzz(func(t *testing.T, input string) {
		h, err := FromPaths(strings.NewReader(input), '/', "Root")
		if err != nil {
			return
		}
		for i := 1; i < h.Len(); i++ {
			n := NodeID(i)
			if h.Depth(n) != h.Depth(h.Parent(n))+1 {
				t.Fatal("depth invariant broken")
			}
		}
	})
}

// FuzzFromEdges checks the edge parser never panics and rejects cycles.
func FuzzFromEdges(f *testing.F) {
	f.Add("A\tB\nB\tC")
	f.Add("A\tB\nB\tA")
	f.Add("x")
	f.Fuzz(func(t *testing.T, input string) {
		h, err := FromEdges(strings.NewReader(input), "Root")
		if err != nil {
			return
		}
		for i := 1; i < h.Len(); i++ {
			n := NodeID(i)
			if h.Depth(n) != h.Depth(h.Parent(n))+1 {
				t.Fatal("depth invariant broken")
			}
		}
	})
}
