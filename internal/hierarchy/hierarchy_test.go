package hierarchy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildFig1 constructs the paper's Figure 1 hierarchy.
func buildFig1() (*Hierarchy, map[string]NodeID) {
	h := New("Root")
	m := map[string]NodeID{"Root": h.Root()}
	add := func(parent, name string) {
		m[name] = h.Add(m[parent], name)
	}
	add("Root", "Food")
	add("Root", "Location")
	add("Food", "WesternFood")
	add("WesternFood", "Fastfood")
	add("WesternFood", "Pizza")
	add("Fastfood", "BurgerKing")
	add("Fastfood", "KFC")
	add("Pizza", "PizzaHut")
	add("Pizza", "Dominos")
	add("Location", "US")
	add("US", "CA")
	add("US", "NY")
	add("CA", "SanFrancisco")
	add("CA", "PaloAlto")
	add("SanFrancisco", "MountainView")
	add("MountainView", "GoogleHeadquarters")
	add("NY", "NewYork")
	add("NewYork", "Manhattan")
	add("NewYork", "Brooklyn")
	return h, m
}

func TestFig1Depths(t *testing.T) {
	h, m := buildFig1()
	want := map[string]int{
		"Root": 0, "Food": 1, "WesternFood": 2, "Fastfood": 3,
		"BurgerKing": 4, "KFC": 4, "PizzaHut": 4, "Dominos": 4,
		"Location": 1, "US": 2, "CA": 3, "NY": 3,
		"SanFrancisco": 4, "MountainView": 5, "GoogleHeadquarters": 6,
		"NewYork": 4, "Manhattan": 5, "Brooklyn": 5, "PaloAlto": 4,
	}
	for name, d := range want {
		if got := h.Depth(m[name]); got != d {
			t.Errorf("Depth(%s) = %d, want %d", name, got, d)
		}
	}
}

func TestFig1LCA(t *testing.T) {
	h, m := buildFig1()
	cases := []struct{ a, b, want string }{
		{"BurgerKing", "KFC", "Fastfood"},        // paper §2.1.1 example
		{"BurgerKing", "Dominos", "WesternFood"}, // §4 example
		{"BurgerKing", "Manhattan", "Root"},
		{"MountainView", "GoogleHeadquarters", "MountainView"},
		{"SanFrancisco", "PaloAlto", "CA"},
		{"KFC", "KFC", "KFC"},
	}
	for _, c := range cases {
		if got := h.LCA(m[c.a], m[c.b]); h.Name(got) != c.want {
			t.Errorf("LCA(%s, %s) = %s, want %s", c.a, c.b, h.Name(got), c.want)
		}
		if got := h.LCA(m[c.b], m[c.a]); h.Name(got) != c.want {
			t.Errorf("LCA(%s, %s) = %s, want %s (symmetry)", c.b, c.a, h.Name(got), c.want)
		}
	}
	// Paper: depth(LCA(BurgerKing, KFC)) = 3 giving similarity 3/4.
	if d := h.LCADepth(m["BurgerKing"], m["KFC"]); d != 3 {
		t.Errorf("LCADepth(BurgerKing, KFC) = %d, want 3", d)
	}
}

func TestAncestor(t *testing.T) {
	h, m := buildFig1()
	if got := h.Ancestor(m["GoogleHeadquarters"], 3); h.Name(got) != "CA" {
		t.Errorf("Ancestor(GoogleHeadquarters, 3) = %s, want CA", h.Name(got))
	}
	if got := h.Ancestor(m["KFC"], 10); got != m["KFC"] {
		t.Errorf("Ancestor beyond depth should return the node itself")
	}
	if got := h.Ancestor(m["KFC"], -1); got != h.Root() {
		t.Errorf("Ancestor(-1) should return root")
	}
	if !h.IsAncestor(m["Food"], m["KFC"]) {
		t.Errorf("Food should be an ancestor of KFC")
	}
	if h.IsAncestor(m["Pizza"], m["KFC"]) {
		t.Errorf("Pizza must not be an ancestor of KFC")
	}
	if !h.IsAncestor(m["KFC"], m["KFC"]) {
		t.Errorf("a node is its own ancestor")
	}
}

func TestLookup(t *testing.T) {
	h, m := buildFig1()
	if got, ok := h.LookupOne("KFC"); !ok || got != m["KFC"] {
		t.Errorf("LookupOne(KFC) = %v, %v", got, ok)
	}
	if _, ok := h.LookupOne("Sushi"); ok {
		t.Errorf("LookupOne(Sushi) should not exist")
	}
	// Duplicate names map to multiple nodes.
	h.Add(m["NY"], "MountainView") // a hypothetical second MountainView
	if got := h.Lookup("MountainView"); len(got) != 2 {
		t.Errorf("Lookup(MountainView) returned %d nodes, want 2", len(got))
	}
}

func TestLeavesAndStats(t *testing.T) {
	h, _ := buildFig1()
	leaves := h.Leaves()
	wantLeaves := 9 // BurgerKing KFC PizzaHut Dominos GoogleHeadquarters Manhattan Brooklyn PaloAlto ... count below
	// Leaves: BurgerKing, KFC, PizzaHut, Dominos, PaloAlto, GoogleHeadquarters, Manhattan, Brooklyn = 8
	wantLeaves = 8
	if len(leaves) != wantLeaves {
		names := make([]string, len(leaves))
		for i, l := range leaves {
			names[i] = h.Name(l)
		}
		t.Errorf("Leaves() = %v (%d), want %d", names, len(leaves), wantLeaves)
	}
	s := h.ComputeStats()
	if s.Nodes != 20 || s.Height != 6 {
		t.Errorf("stats = %+v, want 20 nodes height 6", s)
	}
	if s.MaxFanout < 2 || s.MinFanout < 1 {
		t.Errorf("fanout stats out of range: %+v", s)
	}
}

func TestRoundTripSerialization(t *testing.T) {
	h, m := buildFig1()
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h2.Len() != h.Len() {
		t.Fatalf("round trip changed node count: %d != %d", h2.Len(), h.Len())
	}
	for name, id := range m {
		if h2.Name(id) != name || h2.Depth(id) != h.Depth(id) || h2.Parent(id) != h.Parent(id) {
			t.Errorf("node %s changed after round trip", name)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"0\t5\tRoot\n",         // root with bad parent
		"garbage\n",            // malformed line
		"0\t-1\tRoot\nx\ty\n",  // malformed second line
		"0\t-1\tRoot\n1\t7\tA", // undefined parent
		"0\t-1\tRoot\n5\t0\tA", // non-dense id
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestFromDAG(t *testing.T) {
	// Diamond: Root -> A, B; C has parents A and B. C must be duplicated.
	dag := []DAGNode{
		{Name: "Root"},
		{Name: "A", Parents: []int{0}},
		{Name: "B", Parents: []int{0}},
		{Name: "C", Parents: []int{1, 2}},
		{Name: "D", Parents: []int{3}},
	}
	h, err := FromDAG(dag)
	if err != nil {
		t.Fatalf("FromDAG: %v", err)
	}
	if got := len(h.Lookup("C")); got != 2 {
		t.Errorf("C duplicated %d times, want 2", got)
	}
	if got := len(h.Lookup("D")); got != 2 {
		t.Errorf("D duplicated %d times, want 2 (one per copy of C)", got)
	}
	// Every copy of C must have depth 2 and a distinct parent name path.
	for _, c := range h.Lookup("C") {
		if h.Depth(c) != 2 {
			t.Errorf("copy of C at depth %d, want 2", h.Depth(c))
		}
	}
}

func TestFromDAGErrors(t *testing.T) {
	if _, err := FromDAG(nil); err == nil {
		t.Error("empty DAG should fail")
	}
	if _, err := FromDAG([]DAGNode{{Name: "R", Parents: []int{1}}}); err == nil {
		t.Error("root with parents should fail")
	}
	if _, err := FromDAG([]DAGNode{{Name: "R"}, {Name: "A"}}); err == nil {
		t.Error("orphan non-root should fail")
	}
	if _, err := FromDAG([]DAGNode{{Name: "R"}, {Name: "A", Parents: []int{9}}}); err == nil {
		t.Error("invalid parent index should fail")
	}
}

// randomTree builds a random hierarchy with n nodes for property tests.
func randomTree(r *rand.Rand, n int) *Hierarchy {
	h := New("root")
	for i := 1; i < n; i++ {
		parent := NodeID(r.Intn(h.Len()))
		h.Add(parent, "n")
	}
	return h
}

// lcaNaive computes the LCA by materializing root paths.
func lcaNaive(h *Hierarchy, a, b NodeID) NodeID {
	anc := map[NodeID]bool{}
	for n := a; n != None; n = h.Parent(n) {
		anc[n] = true
	}
	for n := b; n != None; n = h.Parent(n) {
		if anc[n] {
			return n
		}
	}
	return h.Root()
}

func TestLCAProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64, an, bn uint16) bool {
		rr := rand.New(rand.NewSource(seed))
		h := randomTree(rr, 2+rr.Intn(200))
		a := NodeID(int(an) % h.Len())
		b := NodeID(int(bn) % h.Len())
		got := h.LCA(a, b)
		want := lcaNaive(h, a, b)
		if got != want {
			return false
		}
		// LCA laws: idempotent, symmetric, ancestor of both.
		return h.LCA(a, a) == a && h.LCA(b, a) == got &&
			h.IsAncestor(got, a) && h.IsAncestor(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestDepthMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		h := randomTree(rr, 2+rr.Intn(100))
		for i := 1; i < h.Len(); i++ {
			n := NodeID(i)
			if h.Depth(n) != h.Depth(h.Parent(n))+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddPanicsOnInvalidParent(t *testing.T) {
	h := New("root")
	defer func() {
		if recover() == nil {
			t.Error("Add with invalid parent should panic")
		}
	}()
	h.Add(99, "x")
}
