package lockorder_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "orderdata"), lockorder.Analyzer)
}
