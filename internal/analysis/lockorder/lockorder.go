// Package lockorder derives the module-wide lock-acquisition graph and
// checks it against a declared canonical order.
//
// Mutex fields (and package-level mutex vars) declare their place in
// the canonical order with an annotation on the declaration:
//
//	//kjoinlint:lockorder rank=20
//	mu sync.RWMutex
//
// Lower ranks are acquired first. The analyzer tracks, per function,
// which locks are held at each acquisition site — including locks
// acquired inside callees, propagated as facts along the call graph —
// and reports
//
//   - an acquisition of a lock whose declared rank is not strictly
//     greater than that of a lock already held (an inversion of the
//     canonical order, i.e. a potential deadlock against a thread
//     acquiring in the declared order), and
//   - re-acquisition of a lock already held (self-deadlock for
//     sync.Mutex, writer starvation for RWMutex), and
//   - cycles in the acquisition graph even among unranked locks.
//
// The analysis is a may-hold approximation: branches contribute the
// union of their acquisitions, an Unlock not executed on every path is
// still treated as releasing, and calls through interfaces or func
// values propagate nothing (static call edges only). Those are the
// same trade-offs the dynamic lock-rank checkers in large Go systems
// make; the point is catching structural inversions, not proving their
// absence.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "detect lock-order inversions and acquisition cycles against the declared canonical order",
	Run:  run,
}

// Acquires is the object fact exported for every function: the set of
// lock keys the function (transitively, along static call edges) may
// acquire. Callers use it to extend their held-set edges through calls
// into already-analyzed packages.
type Acquires struct {
	Keys []string
}

func (*Acquires) AFact() {}

// Edge is one observed acquisition ordering: To was acquired while From
// was held. Pos is the "file:line" of the acquisition, kept only for
// cross-package cycle reports.
type Edge struct {
	From, To, Pos string
}

// Order is the package fact carrying everything known at or below this
// package: declared ranks and observed acquisition edges, merged with
// the Order facts of all module-internal imports. The topmost packages
// therefore see the whole module's graph.
type Order struct {
	Ranks map[string]int
	Edges []Edge
}

func (*Order) AFact() {}

var rankRe = regexp.MustCompile(`kjoinlint:lockorder\s+rank=(\d+)`)

func run(pass *analysis.Pass) error {
	ranks := collectRanks(pass)
	merged := &Order{Ranks: make(map[string]int)}
	for k, v := range ranks {
		merged.Ranks[k] = v
	}
	edgeSeen := make(map[string]bool)
	for _, imp := range pass.Pkg.Imports() {
		var of Order
		if !pass.ImportPackageFact(imp, &of) {
			continue
		}
		for k, v := range of.Ranks {
			merged.Ranks[k] = v
		}
		for _, e := range of.Edges {
			if !edgeSeen[e.From+"\x00"+e.To] {
				edgeSeen[e.From+"\x00"+e.To] = true
				merged.Edges = append(merged.Edges, e)
			}
		}
	}

	w := &walker{
		pass:     pass,
		ranks:    merged.Ranks,
		acquires: make(map[*types.Func]map[string]bool),
	}
	w.computeAcquires()

	var localEdges []localEdge
	w.local = &localEdges
	for _, body := range w.bodies() {
		// A nil held set means "path terminated"; the empty-but-non-nil
		// slice is the live empty set.
		w.walkStmts(body.body.List, []string{})
	}

	for _, e := range localEdges {
		if !edgeSeen[e.from+"\x00"+e.to] {
			edgeSeen[e.from+"\x00"+e.to] = true
			merged.Edges = append(merged.Edges, Edge{From: e.from, To: e.to, Pos: pass.Fset.Position(e.pos).String()})
		}
	}
	reportCycles(pass, merged, localEdges)

	pass.ExportPackageFact(merged)
	for fn, keys := range w.acquires {
		if fn.Pkg() != pass.Pkg || len(keys) == 0 {
			continue
		}
		f := &Acquires{Keys: sortedKeys(keys)}
		pass.ExportObjectFact(fn, f)
	}
	return nil
}

// collectRanks scans struct fields and package-level vars for
// //kjoinlint:lockorder rank=N annotations.
func collectRanks(pass *analysis.Pass) map[string]int {
	ranks := make(map[string]int)
	note := func(doc *ast.CommentGroup, comment *ast.CommentGroup, key string) {
		for _, cg := range []*ast.CommentGroup{doc, comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if m := rankRe.FindStringSubmatch(c.Text); m != nil {
					var n int
					fmt.Sscanf(m[1], "%d", &n)
					ranks[key] = n
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							key := pass.Pkg.Path() + "." + sp.Name.Name + "." + name.Name
							note(field.Doc, field.Comment, key)
						}
					}
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						key := pass.Pkg.Path() + "." + name.Name
						note(gd.Doc, sp.Comment, key)
						note(sp.Doc, nil, key)
					}
				}
			}
		}
	}
	return ranks
}

type localEdge struct {
	from, to string
	pos      token.Pos
}

type funcBody struct {
	fn   *types.Func // nil for function literals
	body *ast.BlockStmt
}

type walker struct {
	pass     *analysis.Pass
	ranks    map[string]int
	acquires map[*types.Func]map[string]bool // this package's functions, after fixpoint
	local    *[]localEdge
}

// bodies returns every function body in the package: declared functions
// first, then function literals (walked with an empty held set — a
// literal runs on its own goroutine or callback stack, not under the
// syntactic locks of its enclosing function; the enclosing frames that
// do call it synchronously lose precision, never soundness of the
// may-hold edges recorded inside it).
func (w *walker) bodies() []funcBody {
	var out []funcBody
	for _, f := range w.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := w.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			out = append(out, funcBody{fn: fn, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{body: lit.Body})
					return false
				}
				return true
			})
		}
	}
	return out
}

// computeAcquires derives, for every function declared in the package,
// the transitive set of lock keys it may acquire: direct Lock/RLock
// sites plus the acquire sets of static callees (imported as facts for
// other packages, iterated to fixpoint within this one).
func (w *walker) computeAcquires() {
	direct := make(map[*types.Func]map[string]bool)
	callees := make(map[*types.Func][]*types.Func)
	for _, b := range w.bodies() {
		if b.fn == nil {
			continue
		}
		acq := make(map[string]bool)
		ast.Inspect(b.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, kind := w.lockOp(call); kind == opLock {
				acq[key] = true
			} else if kind == opNone {
				if callee, dyn := analysis.StaticCallee(w.pass.TypesInfo, call); callee != nil && !dyn {
					callees[b.fn] = append(callees[b.fn], callee)
				}
			}
			return true
		})
		direct[b.fn] = acq
	}
	for fn, acq := range direct {
		w.acquires[fn] = acq
	}
	// Seed cross-package callee sets once, then iterate the in-package
	// closure to fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, callee := range cs {
				for _, k := range w.calleeKeys(callee) {
					if !w.acquires[fn][k] {
						w.acquires[fn][k] = true
						changed = true
					}
				}
			}
		}
	}
}

// calleeKeys returns the may-acquire set of a callee: the in-package
// fixpoint state for local functions, the exported Acquires fact for
// functions of already-analyzed packages.
func (w *walker) calleeKeys(callee *types.Func) []string {
	if callee.Pkg() == w.pass.Pkg {
		return sortedKeys(w.acquires[callee])
	}
	var f Acquires
	if w.pass.ImportObjectFact(callee, &f) {
		return f.Keys
	}
	return nil
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a mutex acquisition or release and
// returns the lock's canonical key. Locks that cannot be named
// module-wide (locals, embedded mutexes reached by promotion) yield
// opNone — they cannot participate in a cross-function order.
func (w *walker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	if !isMutex(w.pass.TypeOf(sel.X)) {
		return "", opNone
	}
	key, ok := w.lockKey(sel.X)
	if !ok {
		return "", opNone
	}
	return key, kind
}

// lockKey names a mutex module-wide: "pkg.Type.field" for struct
// fields, "pkg.var" for package-level vars.
func (w *walker) lockKey(expr ast.Expr) (string, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if s, ok := w.pass.TypesInfo.Selections[x]; ok && s.Kind() == types.FieldVal {
			if named, ok := deref(s.Recv()).(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name, true
			}
			return "", false
		}
		if v, ok := w.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := w.pass.TypesInfo.Uses[x].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isMutex(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// walkStmts tracks the may-held set through a statement list in source
// order. It returns the held set at fall-through, or nil if every path
// through the list terminates (return/panic). held is an ordered list:
// edge sources report in acquisition order.
func (w *walker) walkStmts(list []ast.Stmt, held []string) []string {
	for _, stmt := range list {
		held = w.walkStmt(stmt, held)
		if held == nil {
			return nil
		}
	}
	if held == nil {
		held = []string{}
	}
	return held
}

func (w *walker) walkStmt(stmt ast.Stmt, held []string) []string {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = w.walkExpr(rhs, held)
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock to function exit: keep it
		// held. Other deferred effects are applied immediately — an
		// over-approximation consistent with may-hold.
		if key, kind := w.lockOp(s.Call); kind == opUnlock && key != "" {
			return held
		}
		return w.walkExpr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine body runs concurrently, not under our locks;
		// its own edges are recorded by the FuncLit walk.
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.walkExpr(r, held)
		}
		return nil
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		held = w.walkExpr(s.Cond, held)
		thenOut := w.walkStmts(s.Body.List, cloneHeld(held))
		var elseOut []string
		if s.Else != nil {
			elseOut = w.walkStmt(s.Else, cloneHeld(held))
		} else {
			elseOut = held
		}
		return mergeHeld(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.walkExpr(s.Cond, held)
		}
		out := w.walkStmts(s.Body.List, cloneHeld(held))
		return mergeHeld(out, held)
	case *ast.RangeStmt:
		held = w.walkExpr(s.X, held)
		out := w.walkStmts(s.Body.List, cloneHeld(held))
		return mergeHeld(out, held)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.walkExpr(v, held)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

func (w *walker) walkBranches(stmt ast.Stmt, held []string) []string {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.walkExpr(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := []string(nil)
	terminated := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			stmts = cc.Body
		}
		branch := w.walkStmts(stmts, cloneHeld(held))
		if branch != nil {
			out = mergeHeld(out, branch)
			terminated = false
		}
	}
	if !hasDefault {
		out = mergeHeld(out, held)
		terminated = false
	}
	if terminated {
		return nil
	}
	return out
}

// walkExpr records lock operations and call effects inside an
// expression, in evaluation order, and returns the updated held set.
func (w *walker) walkExpr(expr ast.Expr, held []string) []string {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, kind := w.lockOp(call)
		switch kind {
		case opLock:
			held = w.acquire(held, key, call.Pos())
		case opUnlock:
			held = removeHeld(held, key)
		case opNone:
			if callee, dyn := analysis.StaticCallee(w.pass.TypesInfo, call); callee != nil && !dyn {
				for _, k := range w.calleeKeys(callee) {
					w.recordEdge(held, k, call.Pos(), callee.Name())
				}
			}
		}
		return true
	})
	return held
}

// acquire records edges from every held lock to the newly acquired one
// and checks the declared order.
func (w *walker) acquire(held []string, key string, pos token.Pos) []string {
	w.recordEdge(held, key, pos, "")
	return append(held, key)
}

// recordEdge adds held→key edges and reports inversions. via names the
// callee when the acquisition happens inside a call rather than at a
// literal Lock().
func (w *walker) recordEdge(held []string, key string, pos token.Pos, via string) {
	suffix := ""
	if via != "" {
		suffix = fmt.Sprintf(" (via call to %s)", via)
	}
	for _, h := range held {
		if h == key {
			w.pass.Reportf(pos, "acquires %s while already holding it%s", key, suffix)
			continue
		}
		if rh, okh := w.ranks[h]; okh {
			if rk, okk := w.ranks[key]; okk && rh >= rk {
				w.pass.Reportf(pos, "acquires %s (rank %d) while holding %s (rank %d): violates declared lock order%s",
					key, rk, h, rh, suffix)
			}
		}
		*w.local = append(*w.local, localEdge{from: h, to: key, pos: pos})
	}
}

func cloneHeld(held []string) []string {
	if held == nil {
		return nil
	}
	out := make([]string, len(held))
	copy(out, held)
	return out
}

// mergeHeld unions two may-held sets, preserving a's order.
func mergeHeld(a, b []string) []string {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	seen := make(map[string]bool, len(a))
	out := cloneHeld(a)
	for _, k := range a {
		seen[k] = true
	}
	for _, k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func removeHeld(held []string, key string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == key {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reportCycles finds strongly connected components in the merged edge
// set and reports each cycle that involves an edge recorded in this
// package (so a module-wide cycle is reported exactly once, where its
// last edge appears). Self-edges are excluded: re-acquisition is
// already reported at the acquisition site. Cycles whose every lock
// carries a declared rank are skipped too — such a cycle necessarily
// contains a rank inversion, already reported at its acquisition site.
func reportCycles(pass *analysis.Pass, merged *Order, local []localEdge) {
	adj := make(map[string][]string)
	for _, e := range merged.Edges {
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	sccs := tarjan(adj)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		allRanked := true
		for _, k := range scc {
			if _, ok := merged.Ranks[k]; !ok {
				allRanked = false
				break
			}
		}
		if allRanked {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, k := range scc {
			inSCC[k] = true
		}
		// Report at the last local edge — the acquisition that closed
		// the cycle in source order.
		for i := len(local) - 1; i >= 0; i-- {
			le := local[i]
			if le.from != le.to && inSCC[le.from] && inSCC[le.to] {
				sort.Strings(scc)
				pass.Reportf(le.pos, "lock-order cycle among %s (potential deadlock)", strings.Join(scc, " ↔ "))
				break
			}
		}
	}
}

// tarjan computes strongly connected components of the key graph.
func tarjan(adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var nodes []string
	seen := make(map[string]bool)
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wd := range adj[v] {
			if _, ok := index[wd]; !ok {
				strongconnect(wd)
				if low[wd] < low[v] {
					low[v] = low[wd]
				}
			} else if onStack[wd] && index[wd] < low[v] {
				low[v] = index[wd]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[n] = false
				scc = append(scc, n)
				if n == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return sccs
}
