// Package orderdata exercises the lockorder analyzer: declared ranks,
// inversions, re-acquisition, acquisition through helpers, branch
// handling, and cycles among unranked locks.
package orderdata

import "sync"

type Store struct {
	//kjoinlint:lockorder rank=10
	mu sync.Mutex
	//kjoinlint:lockorder rank=20
	walMu sync.Mutex
}

// Good acquires in the declared order.
func (s *Store) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.walMu.Lock()
	s.walMu.Unlock()
}

// Inverted acquires against the declared order.
func (s *Store) Inverted() {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	s.mu.Lock() // want `acquires orderdata\.Store\.mu \(rank 10\) while holding orderdata\.Store\.walMu \(rank 20\): violates declared lock order`
	s.mu.Unlock()
}

// Reacquire locks a mutex already held.
func (s *Store) Reacquire() {
	s.mu.Lock()
	s.mu.Lock() // want `acquires orderdata\.Store\.mu while already holding it`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *Store) lockLow() {
	s.mu.Lock()
	s.mu.Unlock()
}

// ViaCall inverts the order through a helper: the callee's acquire set
// is propagated, so holding walMu while calling lockLow is flagged.
func (s *Store) ViaCall() {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	s.lockLow() // want `acquires orderdata\.Store\.mu \(rank 10\) while holding orderdata\.Store\.walMu \(rank 20\): violates declared lock order \(via call to lockLow\)`
}

// EarlyReturn releases only on the early path; the fall-through path
// still holds mu, and acquiring walMu there is the declared order.
func (s *Store) EarlyReturn(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.walMu.Lock()
	s.walMu.Unlock()
	s.mu.Unlock()
}

// Spawn starts a goroutine: its acquisitions are not nested under the
// spawner's locks and must not be flagged.
func (s *Store) Spawn() {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	go func() {
		s.mu.Lock()
		s.mu.Unlock()
	}()
}

// Pair has no declared ranks; opposite acquisition orders in two
// functions still form a cycle.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock() // want `lock-order cycle among orderdata\.Pair\.a ↔ orderdata\.Pair\.b \(potential deadlock\)`
	p.a.Unlock()
	p.b.Unlock()
}
