// Package ctxpoll enforces the repo's cancellation discipline from PR 1:
//
//  1. In a function that takes a context.Context, every outermost loop
//     that does real work (contains at least one function or method
//     call) must touch the context somewhere in its body — ctx.Err() /
//     ctx.Done() polling, the stride-check idiom
//     (i%cancelCheckEvery == 0 && ctx.Err() != nil), or passing the
//     context into a callee that polls. A join loop that never looks at
//     its context turns cancellation and request deadlines into no-ops
//     for the whole phase.
//
//  2. Every exported function or method F for which a sibling FCtx
//     exists must be a thin wrapper over FCtx (reference it in a body
//     of at most four statements). The Ctx variant is the real
//     implementation; logic drifting into the non-Ctx shell silently
//     escapes cancellation.
//
// "Touching the context" is detected type-directed: any expression of
// type context.Context inside the loop body qualifies, which covers
// both direct ctx parameters and stored fields like joiner.cc.
package ctxpoll

import (
	"go/ast"
	"go/types"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "loops in context-aware functions must poll the context; exported APIs must delegate to their Ctx variants",
	Run:  run,
}

// maxWrapperStmts is how many statements a non-Ctx wrapper may have and
// still count as "thin".
const maxWrapperStmts = 4

func run(pass *analysis.Pass) error {
	decls := packageFuncs(pass)
	for _, fn := range decls {
		if fn.Body == nil {
			continue
		}
		if hasCtxParam(pass, fn) {
			checkLoops(pass, fn)
		}
	}
	checkWrappers(pass, decls)
	return nil
}

// packageFuncs returns every function declaration in the package.
func packageFuncs(pass *analysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fn)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func hasCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, p := range fn.Type.Params.List {
		if t := pass.TypeOf(p.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// checkLoops flags outermost loops that call functions but never touch
// a context value.
func checkLoops(pass *analysis.Pass, fn *ast.FuncDecl) {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch loop := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if callsFunctions(pass, loop) && !touchesContext(pass, loop) {
					pass.Reportf(loop.Pos(), "loop in context-aware function %s does not poll the context; check ctx.Err() (directly or with the %%cancelCheckEvery stride idiom) or pass ctx to the callee", fn.Name.Name)
				}
				return false // nested loops are covered by the outer poll
			}
			return true
		})
	}
	visit(fn.Body)
}

// callsFunctions reports whether the subtree performs at least one real
// function or method call (conversions and the cheap builtins len, cap,
// append, delete, copy, make, new do not count).
func callsFunctions(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok {
			return true
		}
		if tv.IsType() || tv.IsBuiltin() {
			return true // conversion or builtin
		}
		if _, ok := tv.Type.Underlying().(*types.Signature); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// touchesContext reports whether any expression of type context.Context
// appears in the subtree.
func touchesContext(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		e, ok := m.(ast.Expr)
		if !ok {
			return true
		}
		if t := pass.TypeOf(e); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkWrappers enforces rule 2: exported F with a sibling FCtx must
// thinly delegate.
func checkWrappers(pass *analysis.Pass, decls []*ast.FuncDecl) {
	// Key: "RecvTypeName.FuncName" (empty recv for plain functions).
	byKey := make(map[string]*ast.FuncDecl, len(decls))
	for _, fn := range decls {
		byKey[funcKey(pass, fn)] = fn
	}
	for _, fn := range decls {
		name := fn.Name.Name
		if !fn.Name.IsExported() || fn.Body == nil {
			continue
		}
		ctxName := name + "Ctx"
		key := funcKey(pass, fn)
		ctxKey := key[:len(key)-len(name)] + ctxName
		if _, ok := byKey[ctxKey]; !ok {
			continue
		}
		if delegatesToPackage(pass, fn) {
			continue // pure facade: kjoin.SelfJoin -> core.SelfJoin
		}
		if !referencesName(fn.Body, ctxName) {
			pass.Reportf(fn.Pos(), "exported %s has a %s variant but does not delegate to it; non-Ctx APIs must be thin wrappers over their Ctx variants", name, ctxName)
			continue
		}
		if len(fn.Body.List) > maxWrapperStmts {
			pass.Reportf(fn.Pos(), "exported %s should be a thin wrapper over %s (max %d statements, got %d); put the logic in the Ctx variant", name, ctxName, maxWrapperStmts, len(fn.Body.List))
		}
	}
}

func funcKey(pass *analysis.Pass, fn *ast.FuncDecl) string {
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := pass.TypeOf(fn.Recv.List[0].Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return recv + "." + fn.Name.Name
}

// delegatesToPackage reports whether fn is a facade re-export: a thin
// body whose only work is calling a same-named function of another
// package (which carries its own Ctx discipline).
func delegatesToPackage(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if len(fn.Body.List) > maxWrapperStmts {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != fn.Name.Name {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			found = true
		}
		return !found
	})
	return found
}

func referencesName(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
