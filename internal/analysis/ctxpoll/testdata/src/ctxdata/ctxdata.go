// Package ctxdata is ctxpoll's testdata: loops that must poll their
// context and exported wrappers that must delegate to Ctx variants.
package ctxdata

import "context"

func work() {}

func helper(ctx context.Context) {}

// BadLoop does real work per iteration but never looks at ctx.
func BadLoop(ctx context.Context, items []int) {
	for range items { // want `does not poll the context`
		work()
	}
}

// GoodStride uses the stride-check idiom.
func GoodStride(ctx context.Context, items []int) {
	for i := range items {
		if i%64 == 0 && ctx.Err() != nil {
			return
		}
		work()
	}
}

// GoodDelegate hands ctx to the callee, which is assumed to poll.
func GoodDelegate(ctx context.Context, items []int) {
	for range items {
		helper(ctx)
	}
}

// GoodNested polls in the inner loop; the outer loop is covered.
func GoodNested(ctx context.Context, items [][]int) {
	for _, row := range items {
		for range row {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}
}

// CheapLoop performs no calls: pure arithmetic scans are exempt.
func CheapLoop(ctx context.Context, items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

// Process is a correct thin wrapper.
func Process(items []int) error {
	return ProcessCtx(context.Background(), items)
}

// ProcessCtx is the real implementation.
func ProcessCtx(ctx context.Context, items []int) error {
	for range items {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		work()
	}
	return nil
}

// Scan has a Ctx sibling but re-implements the logic instead of
// delegating.
func Scan(items []int) int { // want `does not delegate`
	n := 0
	for range items {
		n++
	}
	return n
}

// ScanCtx is the variant Scan should delegate to.
func ScanCtx(ctx context.Context, items []int) int {
	n := 0
	for range items {
		n++
	}
	return n
}

// Fat delegates but carries too much extra logic for a wrapper.
func Fat(items []int) (int, error) { // want `thin wrapper`
	a := 1
	b := 2
	c := a + b
	d := c * 2
	n := FatCtx(context.Background(), items)
	return n + d, nil
}

// FatCtx is the variant Fat should thinly wrap.
func FatCtx(ctx context.Context, items []int) int { return len(items) }

type runner struct{}

// Run is a method wrapper: fine.
func (r *runner) Run(items []int) error { return r.RunCtx(context.Background(), items) }

// RunCtx is the method's real implementation.
func (r *runner) RunCtx(ctx context.Context, items []int) error { return ctx.Err() }
