package ctxpoll_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/ctxpoll"
)

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "ctxdata"), ctxpoll.Analyzer)
}
