// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that kjoin's project-specific
// analyzers are written against. The container this repo builds in has
// no module cache and no network, so the x/tools framework cannot be
// vendored; the subset below (Analyzer, Pass, Diagnostic, a package
// loader and a `// want`-comment test harness) is enough to express the
// five invariant checkers in cmd/kjoin-lint and keeps their code
// source-compatible with the upstream API shape should the dependency
// ever become available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// kjoinlint:ignore comments. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by kjoin-lint -help.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for internal failures (a
	// broken invariant of the framework, not a finding).
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an
// analyzer, mirroring x/tools' analysis.Pass. Module-aware analyzers
// additionally see the whole-module call graph via Graph and exchange
// cross-package information through the fact methods in facts.go.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Graph is the module-wide static call graph. It is never nil; for
	// a single-package Run it covers just that package.
	Graph *CallGraph

	module *Module
	diags  *[]Diagnostic
}

// Diagnostic is one finding. Suppressed findings (matched by a
// //kjoinlint:ignore comment) are retained rather than dropped so
// drivers can surface them (e.g. in -json output); they do not count
// toward a failing exit code.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Analyzer   string
	Suppressed bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// Package is a loaded, type-checked package ready for analysis. It is
// produced by the load subpackage (kept separate so analyzers do not
// depend on the loader).
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Imports lists the module-internal packages this one imports
	// (stdlib imports are omitted). The loader fills it so NewModule
	// can order packages dependencies-first for fact propagation.
	Imports []*Package
}

// Module is a set of packages analyzed together: the unit across which
// facts flow and over which the call graph is built. Packages are held
// in dependency order — every package appears after all of its
// module-internal imports — so an analyzer running over them in order
// can always import facts about the objects a call site references.
type Module struct {
	Pkgs  []*Package
	Graph *CallGraph
	facts *factStore
}

// NewModule builds a module from the loaded packages: topologically
// sorts them along Package.Imports and constructs the shared call
// graph. Packages imported by members but not listed are not analyzed
// (the loader is expected to supply the full closure when analyzers
// need it).
func NewModule(pkgs []*Package) *Module {
	listed := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		listed[p] = true
	}
	var order []*Package
	done := make(map[*Package]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if done[p] {
			return
		}
		done[p] = true
		for _, imp := range p.Imports {
			if listed[imp] {
				visit(imp)
			}
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return &Module{
		Pkgs:  order,
		Graph: buildCallGraph(order),
		facts: newFactStore(),
	}
}

// Run applies the analyzers to one member package. Facts exported by
// earlier runs over the package's dependencies are visible; facts
// exported here become visible to later runs over dependents. Findings
// matched by //kjoinlint:ignore comments are returned with Suppressed
// set rather than dropped. An analyzer panic is converted into the
// error return (exit-code 2 territory for drivers, not a finding).
func (m *Module) Run(pkg *Package, analyzers []*Analyzer) (diags []Diagnostic, err error) {
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Graph:     m.Graph,
			module:    m,
			diags:     &diags,
		}
		if err := runSafely(a, pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	markIgnored(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

func runSafely(a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal panic: %v", r)
		}
	}()
	return a.Run(pass)
}

// ignoreRe matches suppression comments: //kjoinlint:ignore <name> <reason>.
var ignoreRe = regexp.MustCompile(`kjoinlint:ignore\s+([A-Za-z0-9_,]+)`)

// Run applies the analyzers to a standalone package and returns the
// unsuppressed diagnostics in position order. It is the single-package
// convenience over Module.Run: the package becomes a one-member module,
// so facts still work within it and Pass.Graph covers its own calls.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := NewModule([]*Package{pkg}).Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	kept := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// markIgnored flags diagnostics suppressed by kjoinlint:ignore
// comments. A suppression applies to findings of the named analyzers on
// its own line and on the following line (so it can sit above the
// offending statement).
func markIgnored(pkg *Package, diags []Diagnostic) {
	// ignored["file:line"] = set of analyzer names (or "all").
	ignored := make(map[string]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if ignored[key] == nil {
							ignored[key] = make(map[string]bool)
						}
						ignored[key][name] = true
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return
	}
	for i := range diags {
		pos := pkg.Fset.Position(diags[i].Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if set := ignored[key]; set != nil && (set[diags[i].Analyzer] || set["all"]) {
			diags[i].Suppressed = true
		}
	}
}
