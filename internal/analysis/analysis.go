// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that kjoin's project-specific
// analyzers are written against. The container this repo builds in has
// no module cache and no network, so the x/tools framework cannot be
// vendored; the subset below (Analyzer, Pass, Diagnostic, a package
// loader and a `// want`-comment test harness) is enough to express the
// five invariant checkers in cmd/kjoin-lint and keeps their code
// source-compatible with the upstream API shape should the dependency
// ever become available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// kjoinlint:ignore comments. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by kjoin-lint -help.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for internal failures (a
	// broken invariant of the framework, not a finding).
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// Package is a loaded, type-checked package ready for analysis. It is
// produced by the load subpackage (kept separate so analyzers do not
// depend on the loader).
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// ignoreRe matches suppression comments: //kjoinlint:ignore <name> <reason>.
var ignoreRe = regexp.MustCompile(`kjoinlint:ignore\s+([A-Za-z0-9_,]+)`)

// Run applies the analyzers to the package and returns the surviving
// diagnostics in position order. Findings on a line carrying (or
// directly below a line carrying) a matching //kjoinlint:ignore comment
// are dropped.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	diags = filterIgnored(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// filterIgnored drops diagnostics suppressed by kjoinlint:ignore
// comments. A suppression applies to findings of the named analyzers on
// its own line and on the following line (so it can sit above the
// offending statement).
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	// ignored["file:line"] = set of analyzer names (or "all").
	ignored := make(map[string]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if ignored[key] == nil {
							ignored[key] = make(map[string]bool)
						}
						ignored[key][name] = true
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if set := ignored[key]; set != nil && (set[d.Analyzer] || set["all"]) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
