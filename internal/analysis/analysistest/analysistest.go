// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A testdata source line that should trigger a diagnostic carries a
// trailing comment of the form
//
//	code() // want `regexp` `another regexp`
//
// with each expectation quoted in backquotes or double quotes. The test
// fails if a diagnostic is reported on a line with no matching
// expectation, or an expectation matches no diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"kjoin/internal/analysis"
	"kjoin/internal/analysis/load"
)

// wantRe captures one quoted expectation after a `// want` marker.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the package rooted at dir (typically
// filepath.Join("testdata", "src", pkgname)) and applies the analyzers,
// comparing diagnostics against the package's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir, filepath.Base(dir))
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	expects, err := parseWants(pkg.Fset, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// parseWants extracts want expectations from the package's files by
// scanning raw source lines (comments inside testdata may sit after
// code on the same line).
func parseWants(fset *token.FileSet, pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want "):]
			ms := wantRe.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment", name, i+1)
			}
			for _, m := range ms {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				out = append(out, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return out, nil
}
