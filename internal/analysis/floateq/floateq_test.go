package floateq_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "floatdata"), floateq.Analyzer)
}

// TestMathxExempt checks the policy package itself is not checked: the
// same comparisons produce no findings in a package named mathx.
func TestMathxExempt(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "mathx"), floateq.Analyzer)
}
