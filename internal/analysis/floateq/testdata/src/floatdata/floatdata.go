// Package floatdata is floateq's testdata: float equality in all its
// forbidden and permitted forms.
package floatdata

const half = 0.5

// eq64 is the canonical violation.
func eq64(a, b float64) bool {
	return a == b // want `== on float values`
}

// ne64 is the negated form.
func ne64(a, b float64) bool {
	return a != b // want `!= on float values`
}

// eq32 covers float32 too.
func eq32(a, b float32) bool {
	return a == b // want `== on float values`
}

// sentinelZero is the documented unset-option idiom: exempt.
func sentinelZero(a float64) bool { return a == 0 }

// sentinelZeroNe is the negated sentinel: exempt.
func sentinelZeroNe(a float64) bool { return a != 0.0 }

// intEq is not a float comparison.
func intEq(a, b int) bool { return a == b }

// constConst folds at compile time: exempt.
func constConst() bool { return half == 0.5 }

// mixed compares a float against an int constant.
func mixed(a float64) bool {
	return a == 1 // want `== on float values`
}

// sw switches on a float, which compares with == per case.
func sw(a float64) int {
	switch a { // want `switch on a float`
	case 1.0:
		return 1
	default:
		return 0
	}
}

// ordered comparisons are fine — they are what the mathx helpers and
// sort comparators are built from.
func ordered(a, b float64) bool { return a < b || a > b }
