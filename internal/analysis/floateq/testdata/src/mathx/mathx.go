// Package mathx mirrors the real policy package's name: floateq
// exempts it, so the comparison below must produce no finding.
package mathx

// ExactEq would be flagged anywhere else.
func ExactEq(a, b float64) bool { return a == b }
