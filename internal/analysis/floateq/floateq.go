// Package floateq forbids == / != / switch on floating-point values
// outside internal/mathx. Similarity scores and thresholds are the
// currency of every filter and verifier in this repo, and the paper's
// bounds (lower ≤ exact ≤ upper, §5.2) only hold under a consistent
// comparison policy; that policy lives in internal/mathx (Eps, GE, LT,
// Eq, Cmp). Exact equality sneaking in elsewhere either breaks the
// epsilon discipline or, in sort comparators, silently depends on
// bit-exact float behaviour.
//
// Two comparisons are exempt: against an exact constant zero (zero is
// exactly representable and is the documented "unset option" sentinel,
// e.g. Options.PhiMin == 0), and between two compile-time constants.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!=/switch on float values outside internal/mathx; use the mathx epsilon helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "mathx" {
		return nil // the one place the comparison policy is implemented
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if !isFloat(pass, e.X) && !isFloat(pass, e.Y) {
					return true
				}
				if isConstZero(pass, e.X) || isConstZero(pass, e.Y) {
					return true // unset-sentinel check; exact by construction
				}
				if isConst(pass, e.X) && isConst(pass, e.Y) {
					return true
				}
				pass.Reportf(e.OpPos, "%s on float values; use kjoin/internal/mathx (Eq/GE/LT for thresholds, Cmp for deterministic ordering) or restructure with </>", e.Op)
			case *ast.SwitchStmt:
				if e.Tag != nil && isFloat(pass, e.Tag) {
					pass.Reportf(e.Switch, "switch on a float value compares with ==; use kjoin/internal/mathx comparisons instead")
				}
			}
			return true
		})
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isConstZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
