package load_test

import (
	"testing"

	"kjoin/internal/analysis/load"
)

func TestLoadSinglePackage(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "kjoin" {
		t.Fatalf("module path = %q, want kjoin", l.ModulePath())
	}
	pkgs, err := l.Load("internal/mathx")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "kjoin/internal/mathx" {
		t.Fatalf("got %d packages, first %v", len(pkgs), pkgs)
	}
	if pkgs[0].Types == nil || pkgs[0].Types.Scope().Lookup("Cmp") == nil {
		t.Fatal("mathx.Cmp not in loaded package scope")
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	// The framework, loader, harness and five analyzers — and never the
	// testdata directories, which hold deliberately broken packages.
	if len(pkgs) < 8 {
		t.Fatalf("expected at least 8 packages under internal/analysis, got %d", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil {
			t.Errorf("%s: no type information", p.Path)
		}
		for i := range p.Path {
			if p.Path[i:] == "testdata" {
				t.Errorf("testdata package leaked into Load: %s", p.Path)
			}
		}
	}
}
