package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kjoin/internal/analysis/load"
)

func TestLoadSinglePackage(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "kjoin" {
		t.Fatalf("module path = %q, want kjoin", l.ModulePath())
	}
	pkgs, err := l.Load("internal/mathx")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "kjoin/internal/mathx" {
		t.Fatalf("got %d packages, first %v", len(pkgs), pkgs)
	}
	if pkgs[0].Types == nil || pkgs[0].Types.Scope().Lookup("Cmp") == nil {
		t.Fatal("mathx.Cmp not in loaded package scope")
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	// The framework, loader, harness and five analyzers — and never the
	// testdata directories, which hold deliberately broken packages.
	if len(pkgs) < 8 {
		t.Fatalf("expected at least 8 packages under internal/analysis, got %d", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil {
			t.Errorf("%s: no type information", p.Path)
		}
		for i := range p.Path {
			if p.Path[i:] == "testdata" {
				t.Errorf("testdata package leaked into Load: %s", p.Path)
			}
		}
	}
}

func TestLoadMissingPackage(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("internal/no_such_package"); err == nil {
		t.Fatal("loading a nonexistent package succeeded")
	}
}

func TestLoadMalformedRecursivePattern(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("no/such/dir/..."); err == nil {
		t.Fatal("walking a nonexistent pattern base succeeded")
	}
}

func TestLoadTypeErrorPackage(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc F() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(dir, "broken")
	if err == nil {
		t.Fatal("type-error package loaded without error")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("error does not name the type-check phase: %v", err)
	}
}

func TestLoadParseErrorPackage(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc F( {\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(dir, "broken"); err == nil {
		t.Fatal("syntax-error package loaded without error")
	}
}

// TestAllDependencyOrder loads a package with module-internal imports
// and checks the loader's completion order: every dependency must
// appear in All() before its importer, and the importer's Imports list
// must carry the resolved dependency package.
func TestAllDependencyOrder(t *testing.T) {
	l, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	wal := pkgs[0]
	var foundDep bool
	for _, dep := range wal.Imports {
		if dep.Path == "kjoin/internal/fault" {
			foundDep = true
		}
	}
	if !foundDep {
		t.Fatal("wal.Imports does not include kjoin/internal/fault")
	}
	idx := make(map[string]int)
	for i, p := range l.All() {
		idx[p.Path] = i
	}
	for _, p := range l.All() {
		for _, dep := range p.Imports {
			di, ok := idx[dep.Path]
			if !ok {
				t.Fatalf("%s imports %s, which is missing from All()", p.Path, dep.Path)
			}
			if di >= idx[p.Path] {
				t.Errorf("All() lists %s (index %d) before its dependency %s (index %d)",
					p.Path, idx[p.Path], dep.Path, di)
			}
		}
	}
}
