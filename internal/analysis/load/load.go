// Package load parses and type-checks packages of this module for the
// analysis framework, using only the standard library. Module-internal
// imports are resolved by mapping import paths under the module path to
// directories; standard-library imports go through the compiler's
// export data (go/importer). The loader deliberately understands just
// enough of the go tool's layout for this repository: no cgo, no build
// tags, no vendoring, no external module dependencies.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kjoin/internal/analysis"
)

// Loader loads and caches type-checked packages of one module.
type Loader struct {
	Fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*analysis.Package // by import path
	order      []*analysis.Package          // completion order: deps before dependents
	loading    map[string]bool              // cycle detection
	// IncludeTests, when set, adds _test.go files of the package itself
	// (not external _test packages) to the loaded files.
	IncludeTests bool
}

// NewLoader returns a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.Default(),
		pkgs:       make(map[string]*analysis.Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// All returns every package this loader has type-checked, in completion
// order: a package's module-internal imports always precede it. This is
// the dependency order the analysis facts layer relies on — analyzing
// packages in this order guarantees facts about imported objects exist
// before any importer is analyzed.
func (l *Loader) All() []*analysis.Package {
	out := make([]*analysis.Package, len(l.order))
	copy(out, l.order)
	return out
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s has no module directive", gm)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves the patterns (directory paths, optionally ending in
// /... for a recursive walk, relative to the module root) and returns
// the type-checked packages in deterministic order. Directories without
// buildable Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*analysis.Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			add(filepath.Join(l.moduleDir, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(dirs)
	var out []*analysis.Package
	for _, d := range dirs {
		rel, err := filepath.Rel(l.moduleDir, d)
		if err != nil {
			return nil, err
		}
		ip := l.modulePath
		if rel != "." {
			ip = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.importPath(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package in dir (which may live outside
// the module tree, e.g. an analyzer's testdata) under the given import
// path. Imports beneath the module path resolve into the module.
func (l *Loader) LoadDir(dir, importPath string) (*analysis.Package, error) {
	return l.load(dir, importPath)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isBuildableGoFile(e, false) {
			return true
		}
	}
	return false
}

func isBuildableGoFile(e os.DirEntry, includeTests bool) bool {
	name := e.Name()
	if e.IsDir() || !strings.HasSuffix(name, ".go") {
		return false
	}
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	if !includeTests && strings.HasSuffix(name, "_test.go") {
		return false
	}
	return true
}

// importPath returns the package for an import path, loading it (and
// its module-internal dependencies) on first use.
func (l *Loader) importPath(path string) (*analysis.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: import %q is outside module %s", path, l.modulePath)
	}
	return l.load(dir, path)
}

func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.modulePath {
		return l.moduleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

func (l *Loader) load(dir, importPath string) (*analysis.Package, error) {
	if l.loading[importPath] {
		return nil, fmt.Errorf("load: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if isBuildableGoFile(e, l.IncludeTests) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			if _, in := l.dirFor(p); in {
				pkg, err := l.importPath(p)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return l.std.Import(p)
		}),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	p := &analysis.Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	// Module-internal dependencies were loaded (recursively) by the
	// importer during Check, so they are all in l.pkgs by now.
	depSeen := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			ip := strings.Trim(spec.Path.Value, `"`)
			if dep, ok := l.pkgs[ip]; ok && !depSeen[ip] {
				depSeen[ip] = true
				p.Imports = append(p.Imports, dep)
			}
		}
	}
	l.pkgs[importPath] = p
	l.order = append(l.order, p)
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
