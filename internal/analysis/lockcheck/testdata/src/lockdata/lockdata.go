// Package lockdata is lockcheck's testdata: deliberately broken lock
// discipline next to correct uses of every sanctioned form.
package lockdata

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int // unannotated: never checked
}

// Good locks before touching the guarded field.
func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bad touches the guarded field with no locking anywhere.
func (c *counter) Bad() int {
	return c.n // want `guarded by mu`
}

// Unguarded fields are free.
func (c *counter) Unguarded() int { return c.ok }

// bump runs under the caller's lock; caller must hold mu.
func (c *counter) bump() { c.n++ }

// fresh constructs the value itself, so nothing can race yet.
func fresh() *counter {
	c := &counter{}
	c.n = 5
	return c
}

type table struct {
	mu sync.RWMutex
	// m is the shared mapping.
	m map[string]int // guarded by mu
}

// Read holds the read lock: fine.
func (t *table) Read(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// BadWrite mutates shared state without the lock.
func (t *table) BadWrite(k string) {
	t.m[k] = 1 // want `guarded by mu`
}

type broken struct {
	mu sync.Mutex
	x  int // guarded by gone // want `no sync.Mutex/RWMutex field "gone"`
}

func use(b *broken) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.x
}
