package lockcheck_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "lockdata"), lockcheck.Analyzer)
}
