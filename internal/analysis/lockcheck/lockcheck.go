// Package lockcheck enforces the `// guarded by <mutex>` annotation
// convention: a struct field carrying that comment may only be accessed
//
//   - in a function that locks the named mutex of the same struct
//     (mu.Lock, mu.RLock — acquisition anywhere in the body counts),
//   - in a function whose doc comment declares the precondition
//     ("must hold mu" / "caller holds mu"), or
//   - through a value the function itself constructed (composite
//     literal), which cannot be shared yet.
//
// The check is intra-procedural and syntactic about lock state — it
// does not prove the lock is held at the access point, only that the
// function participates in the locking discipline at all. That is the
// same altitude as go vet's checks and catches the real failure mode:
// a new method (or a refactor) touching Indexer/server state with no
// locking whatsoever.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated `// guarded by mu` must be accessed under the annotated mutex",
	Run:  run,
}

var (
	guardRe   = regexp.MustCompile(`guarded by (\w+)`)
	holdDocRe = regexp.MustCompile(`(?i)(must hold|caller holds|holds) \w*mu`)
)

// guard records one annotated field and the mutex field protecting it.
type guard struct {
	mutex *types.Var // the sync.Mutex / sync.RWMutex field
	name  string     // mutex field name, for diagnostics
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards finds `// guarded by <name>` field annotations and
// resolves <name> to a mutex field of the same struct.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	out := make(map[*types.Var]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// Field name -> object, to resolve the mutex by name.
			byName := make(map[string]*types.Var)
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[nm].(*types.Var); ok {
						byName[nm.Name] = v
					}
				}
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mu, ok := byName[m[1]]
				if !ok || !isMutex(mu.Type()) {
					pass.Reportf(fld.Pos(), "field is annotated `guarded by %s` but the struct has no sync.Mutex/RWMutex field %q", m[1], m[1])
					continue
				}
				for _, nm := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[nm].(*types.Var); ok {
						out[v] = guard{mutex: mu, name: m[1]}
					}
				}
			}
			return true
		})
	}
	return out
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[*types.Var]guard) {
	if fn.Doc != nil && holdDocRe.MatchString(fn.Doc.Text()) {
		return // documented precondition: caller provides the lock
	}
	held := heldMutexes(pass, fn.Body)
	constructed := constructedLocals(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[fieldVar]
		if !guarded || held[g.mutex] {
			return true
		}
		if base, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[base]; obj != nil && constructed[obj] {
				return true // freshly built value, not yet shared
			}
		}
		pass.Reportf(sel.Pos(), "access to field %s (guarded by %s) in a function that never locks %s; lock it or document the precondition (\"caller holds %s\")",
			fieldVar.Name(), g.name, g.name, g.name)
		return true
	})
}

// heldMutexes returns the mutex field objects this function acquires
// anywhere in its body (Lock, RLock, TryLock, RTryLock).
func heldMutexes(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	held := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[inner]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if v, ok := selection.Obj().(*types.Var); ok && isMutex(v.Type()) {
			held[v] = true
		}
		return true
	})
	return held
}

// constructedLocals returns the objects of local variables assigned
// from a composite literal (possibly &-taken) in this function: values
// the function built itself and that cannot be shared with other
// goroutines yet.
func constructedLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := rhs
			if u, ok := e.(*ast.UnaryExpr); ok {
				e = u.X
			}
			if _, ok := e.(*ast.CompositeLit); !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
