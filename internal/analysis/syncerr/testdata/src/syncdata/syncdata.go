// Package syncdata exercises the syncerr analyzer: discarded Sync and
// Close errors on durability-critical values, in every discard shape.
package syncdata

import "os"

// Log is durability-critical: its Sync result must not be discarded.
//
//kjoinlint:durable
type Log struct{}

func (l *Log) Sync() error  { return nil }
func (l *Log) Close() error { return nil }

// Durable is an annotated interface: implementations inherit the
// obligation at call sites typed as the interface.
//
//kjoinlint:durable
type Durable interface {
	Close() error
}

// Plain is not durability-critical; its Close may be dropped.
type Plain struct{}

func (p *Plain) Close() error { return nil }

func uses(f *os.File, l *Log, p *Plain, d Durable) error {
	f.Sync()  // want `discarded error from Sync on durability-critical os\.File`
	f.Close() // want `discarded error from Close on durability-critical os\.File`
	l.Sync()  // want `discarded error from Sync on durability-critical syncdata\.Log`
	d.Close() // want `discarded error from Close on durability-critical syncdata\.Durable`
	p.Close() // ok: not durability-critical

	_ = f.Close() // ok: explicit discard of Close is a visible decision
	_ = f.Sync()  // want `explicitly discarded error from Sync on durability-critical os\.File`

	go l.Sync() // want `error dropped on spawned goroutine from Sync on durability-critical syncdata\.Log`

	if err := f.Sync(); err != nil { // ok: error checked
		return err
	}
	defer f.Close() // want `error dropped through defer from Close on durability-critical os\.File`
	return nil
}
