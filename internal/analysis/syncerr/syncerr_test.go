package syncerr_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/syncerr"
)

func TestSyncerr(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "syncdata"), syncerr.Analyzer)
}
