// Package syncerr flags discarded errors from Sync, Close, and Flush on
// durability-critical values. A failed fsync or close on a write path
// is a lost-data event: the kernel reported that bytes believed durable
// may not be, and the only correct reactions are propagating the error
// or consciously suppressing it.
//
// Durability-critical types are *os.File (always) plus any type whose
// declaration carries a //kjoinlint:durable annotation — the WAL, the
// fault-injection file interface, the atomic-write helpers. The
// annotation is exported as a fact, so a package calling Close on a
// durable type from a dependency is checked without seeing the
// annotation.
//
// Reported forms:
//
//	f.Sync()          // bare call, error discarded
//	defer f.Close()   // error dropped when the frame unwinds
//	go f.Sync()       // error dropped on another goroutine
//	_ = f.Sync()      // explicit discard of a sync/flush
//
// One deliberate asymmetry: `_ = f.Close()` is accepted. Explicitly
// blanking a Close error is a visible decision (read-only files,
// best-effort cleanup); blanking a Sync error never is — a sync exists
// only to report durability.
package syncerr

import (
	"go/ast"
	"go/types"
	"strings"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  "flag discarded errors from Sync/Close/Flush on durability-critical values",
	Run:  run,
}

// Durable is the object fact placed on the types.TypeName of an
// annotated durability-critical type.
type Durable struct{}

func (*Durable) AFact() {}

func run(pass *analysis.Pass) error {
	local := collectDurable(pass)
	for tn := range local {
		pass.ExportObjectFact(tn, &Durable{})
	}
	isDurable := func(t types.Type) bool {
		named := namedOf(t)
		if named == nil {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		if obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return true
		}
		if obj.Pkg() == pass.Pkg {
			return local[obj]
		}
		var f Durable
		return pass.ImportObjectFact(obj, &f)
	}

	check := func(call *ast.CallExpr, how string) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		method := sel.Sel.Name
		if method != "Sync" && method != "Close" && method != "Flush" {
			return
		}
		// Only methods that actually return an error can have it
		// discarded.
		sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return
		}
		if !returnsError(sig) {
			return
		}
		if !isDurable(pass.TypeOf(sel.X)) {
			return
		}
		if how == "blank" && method == "Close" {
			return // explicit discard of Close is a visible decision
		}
		pass.Reportf(call.Pos(), "%s from %s on durability-critical %s", how2msg(how), method, typeLabel(pass.TypeOf(sel.X)))
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "bare")
				}
			case *ast.DeferStmt:
				check(s.Call, "defer")
			case *ast.GoStmt:
				check(s.Call, "go")
			case *ast.AssignStmt:
				// _ = f.Sync() — every LHS blank, a single call RHS.
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				allBlank := true
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					check(call, "blank")
				}
			}
			return true
		})
	}
	return nil
}

func how2msg(how string) string {
	switch how {
	case "bare":
		return "discarded error"
	case "defer":
		return "error dropped through defer"
	case "go":
		return "error dropped on spawned goroutine"
	case "blank":
		return "explicitly discarded error"
	}
	return "discarded error"
}

// collectDurable finds //kjoinlint:durable annotations on type
// declarations in this package.
func collectDurable(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDurableComment(gd.Doc) && !hasDurableComment(ts.Doc) && !hasDurableComment(ts.Comment) {
					continue
				}
				if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func hasDurableComment(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "kjoinlint:durable") {
			return true
		}
	}
	return false
}

func returnsError(sig *types.Signature) bool {
	last := sig.Results().At(sig.Results().Len() - 1)
	named, ok := last.Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// namedOf unwraps pointers to the named type, looking through neither
// interfaces nor aliases beyond what go/types resolves itself.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeLabel(t types.Type) string {
	if named := namedOf(t); named != nil && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}
