// Package ackdata exercises the ackorder analyzer: the ack-before-fsync
// regression (mirroring TestWalAppendFailurePoisonsSnapshot's protocol),
// nil-correlated conditional syncs, derived roles, and commit barriers.
package ackdata

type WAL struct{}

//kjoinlint:ackorder append
func (w *WAL) Append(rec []byte) (uint64, error) { return 0, nil }

//kjoinlint:ackorder barrier
func (w *WAL) Sync(seq uint64) error { return nil }

type Gens struct{}

//kjoinlint:ackorder commit
func (g *Gens) Save(seq uint64) error { return nil }

//kjoinlint:ackorder ack
func writeJSON(v any) {}

// GoodHandler is the correct protocol: append, sync, then ack.
func GoodHandler(w *WAL) {
	seq, err := w.Append(nil)
	if err != nil {
		return
	}
	if err := w.Sync(seq); err != nil {
		return
	}
	writeJSON(seq)
}

// BadHandler reintroduces the regression: the ack is written before the
// record is fsynced.
func BadHandler(w *WAL) {
	seq, err := w.Append(nil)
	if err != nil {
		return
	}
	writeJSON(seq) // want `success response written on a path where the WAL append is not synced \(ack before fsync\)`
	_ = w.Sync(seq)
}

// NilCorrelated is the handleAdd shape: append and sync both guarded by
// the same nil check. Every path that appended also synced; the atoms
// correlate the two conditions, so no report.
func NilCorrelated(w *WAL, on bool) {
	var seq uint64
	var err error
	if on && w != nil {
		seq, err = w.Append(nil)
	}
	if err != nil {
		return
	}
	if w != nil {
		if serr := w.Sync(seq); serr != nil {
			return
		}
	}
	writeJSON(seq)
}

// MissedSyncPath syncs on the slow path only; the fast path acks an
// unsynced append.
func MissedSyncPath(w *WAL, fast bool) {
	seq, _ := w.Append(nil)
	if fast {
		writeJSON(seq) // want `success response written on a path where the WAL append is not synced \(ack before fsync\)`
		return
	}
	if err := w.Sync(seq); err != nil {
		return
	}
	writeJSON(seq)
}

// AppendSync derives both roles — append (pending on the error return)
// and barrier (unconditional top-level Sync) — so callers net a synced
// append.
func AppendSync(w *WAL, rec []byte) error {
	seq, err := w.Append(rec)
	if err != nil {
		return err
	}
	return w.Sync(seq)
}

// UsesDerivedBarrier acks after AppendSync: fine, the derived barrier
// role covers the append.
func UsesDerivedBarrier(w *WAL) {
	if err := AppendSync(w, nil); err != nil {
		return
	}
	writeJSON(1)
}

// appendOnly derives the append role: it can return with the record
// unsynced.
func appendOnly(w *WAL) error {
	_, err := w.Append(nil)
	return err
}

// UsesAppendOnly acks behind a helper that never synced.
func UsesAppendOnly(w *WAL) {
	if err := appendOnly(w); err != nil {
		return
	}
	writeJSON(1) // want `success response written on a path where the WAL append is not synced \(ack before fsync\)`
}

// GoodSnapshot is the SnapshotGeneration shape: the sync is conditional
// on the WAL existing, and the commit is exempt on the known-nil path.
func GoodSnapshot(w *WAL, g *Gens) {
	if w != nil {
		if err := w.Sync(0); err != nil {
			return
		}
	}
	_ = g.Save(1)
}

// BadSnapshot commits before the barrier.
func BadSnapshot(w *WAL, g *Gens) {
	_ = g.Save(1) // want `commit on a path not dominated by a WAL sync barrier`
	_ = w.Sync(0)
}
