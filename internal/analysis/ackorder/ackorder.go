// Package ackorder proves, at compile time, the durability ordering the
// crash-smoke matrix probes dynamically: a success response (ack) is
// written only on paths where the WAL append that recorded the request
// has been fsynced, and snapshot-generation commits happen only after a
// WAL sync barrier.
//
// Functions participating in the protocol are annotated at their
// declaration:
//
//	//kjoinlint:ackorder append    — records a durable intent (wal.Append)
//	//kjoinlint:ackorder barrier   — makes prior appends durable (wal.Sync)
//	//kjoinlint:ackorder ack       — writes the success response
//	//kjoinlint:ackorder commit    — publishes state that must not
//	                                 outrun the WAL (GenStore.Save)
//
// Roles also derive automatically and propagate as facts along the
// dependency order: a function that calls a barrier unconditionally at
// the top level of its body is itself a barrier (wal.AppendSync), and a
// function that can return with an unsynced append pending is itself an
// append. The checker then walks every function path-sensitively —
// tracking nil-ness and boolean atoms from if conditions, invalidating
// them on assignment, and pruning infeasible branches — and reports
//
//   - an ack call reachable with an append pending (appended on this
//     path, no barrier since), and
//   - a commit call on a path with no barrier, unless every value the
//     function syncs through is known nil on that path (the "no WAL
//     configured" escape used by snapshot paths).
//
// Calls through func values propagate nothing; interface method calls
// resolve roles via the interface method's annotation.
package ackorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ackorder",
	Doc:  "prove WAL append+sync dominates success acks and generation commits",
	Run:  run,
}

// Roles is the object fact carrying a function's protocol roles, in
// application order (an append+barrier function nets to "synced").
type Roles struct {
	List []string
}

func (*Roles) AFact() {}

var roleRe = regexp.MustCompile(`kjoinlint:ackorder\s+(append|barrier|ack|commit)`)

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		roles: make(map[*types.Func][]string),
	}
	c.collectAnnotations()

	// Derive roles to fixpoint within the package: derivation of one
	// function can make a call in another one role-bearing. Bounded
	// iteration — the role lattice has two derivable bits per function.
	for range 4 {
		if !c.derive() {
			break
		}
	}

	c.reported = make(map[token.Pos]bool)
	for _, fb := range c.bodies() {
		c.check(fb)
	}

	for fn, roles := range c.roles {
		if fn.Pkg() == pass.Pkg && len(roles) > 0 {
			pass.ExportObjectFact(fn, &Roles{List: roles})
		}
	}
	return nil
}

type funcBody struct {
	fn   *types.Func // nil for function literals
	body *ast.BlockStmt
}

type checker struct {
	pass     *analysis.Pass
	roles    map[*types.Func][]string
	reported map[token.Pos]bool

	// per-function walk state
	providers map[string]bool // expr strings of barrier receivers in the current function
	pending   bool            // some path returns with an unsynced append
	reporting bool
}

func (c *checker) bodies() []funcBody {
	var out []funcBody
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			out = append(out, funcBody{fn: fn, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{body: lit.Body})
					return false
				}
				return true
			})
		}
	}
	return out
}

func (c *checker) collectAnnotations() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, cmt := range fd.Doc.List {
				if m := roleRe.FindStringSubmatch(cmt.Text); m != nil {
					c.addRole(fn, m[1])
				}
			}
		}
	}
	// Interface methods may carry annotations too (a barrier contract on
	// the interface, honored by implementations).
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				if m.Doc == nil || len(m.Names) == 0 {
					continue
				}
				fn, ok := c.pass.TypesInfo.Defs[m.Names[0]].(*types.Func)
				if !ok {
					continue
				}
				for _, cmt := range m.Doc.List {
					if mm := roleRe.FindStringSubmatch(cmt.Text); mm != nil {
						c.addRole(fn, mm[1])
					}
				}
			}
			return true
		})
	}
}

func (c *checker) addRole(fn *types.Func, role string) bool {
	for _, r := range c.roles[fn] {
		if r == role {
			return false
		}
	}
	c.roles[fn] = append(c.roles[fn], role)
	// Keep application order deterministic and semantically right:
	// append before barrier, protocol roles before checks.
	order := map[string]int{"append": 0, "barrier": 1, "ack": 2, "commit": 3}
	sort.Slice(c.roles[fn], func(i, j int) bool {
		return order[c.roles[fn][i]] < order[c.roles[fn][j]]
	})
	return true
}

// rolesOf resolves the protocol roles of a call: local map for this
// package's functions, imported facts for dependencies. Interface
// method calls use the interface method's own roles.
func (c *checker) rolesOf(call *ast.CallExpr) []string {
	fn, _ := analysis.StaticCallee(c.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if fn.Pkg() == c.pass.Pkg {
		return c.roles[fn]
	}
	var f Roles
	if c.pass.ImportObjectFact(fn, &f) {
		return f.List
	}
	return nil
}

// derive runs one derivation round over every declared function,
// returning whether any role was added.
func (c *checker) derive() bool {
	changed := false
	for _, fb := range c.bodies() {
		if fb.fn == nil {
			continue
		}
		// Barrier: an unconditional top-level call to a barrier.
		if c.hasTopLevelBarrier(fb.body) && c.addRole(fb.fn, "barrier") {
			changed = true
		}
		// Append: some path ends with an unsynced append pending.
		c.walkFunction(fb, false)
		if c.pending && c.addRole(fb.fn, "append") {
			changed = true
		}
	}
	return changed
}

func (c *checker) hasTopLevelBarrier(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch stmt.(type) {
		case *ast.ExprStmt, *ast.ReturnStmt, *ast.AssignStmt, *ast.DeclStmt:
			found := false
			ast.Inspect(stmt, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					for _, r := range c.rolesOf(call) {
						if r == "barrier" {
							found = true
						}
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

func (c *checker) check(fb funcBody) {
	c.walkFunction(fb, true)
}

// pstate is one abstract path: whether an append is pending, whether a
// barrier has executed since, and the condition atoms known on this
// path ("nn:<expr>" → expr != nil, "b:<expr>" → expr is true).
type pstate struct {
	appended  bool
	barriered bool
	conds     map[string]bool
}

func (s *pstate) clone() *pstate {
	n := &pstate{appended: s.appended, barriered: s.barriered, conds: make(map[string]bool, len(s.conds))}
	for k, v := range s.conds {
		n.conds[k] = v
	}
	return n
}

func (s *pstate) key() string {
	var b strings.Builder
	if s.appended {
		b.WriteByte('A')
	}
	if s.barriered {
		b.WriteByte('B')
	}
	keys := make([]string, 0, len(s.conds))
	for k := range s.conds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		if s.conds[k] {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

const maxStates = 64

func dedup(states []*pstate) []*pstate {
	seen := make(map[string]bool, len(states))
	out := states[:0]
	for _, s := range states {
		k := s.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	if len(out) > maxStates {
		// Coarsen rather than drop: forget the condition atoms, keep
		// the durability bits.
		for _, s := range out {
			s.conds = map[string]bool{}
		}
		return dedup(out[:maxStates])
	}
	return out
}

func (c *checker) walkFunction(fb funcBody, reporting bool) {
	c.reporting = reporting
	c.pending = false
	c.providers = make(map[string]bool)
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, r := range c.rolesOf(call) {
				if r == "barrier" {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						c.providers[types.ExprString(sel.X)] = true
					}
				}
			}
		}
		return true
	})
	out := c.walkStmts(fb.body.List, []*pstate{{conds: map[string]bool{}}})
	for _, s := range out {
		if s.appended && !s.barriered {
			c.pending = true
		}
	}
}

// walkStmts threads the state set through a statement list. An empty
// return means every path terminated.
func (c *checker) walkStmts(list []ast.Stmt, states []*pstate) []*pstate {
	for _, stmt := range list {
		states = c.walkStmt(stmt, states)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}

func (c *checker) walkStmt(stmt ast.Stmt, states []*pstate) []*pstate {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return c.applyExpr(s.X, states)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			states = c.applyExpr(rhs, states)
		}
		c.invalidate(states, s.Lhs)
		// Boolean-constant assignment keeps an atom alive: the
		// walFailed := true / if walFailed idiom.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if lit, ok := s.Rhs[0].(*ast.Ident); ok && (lit.Name == "true" || lit.Name == "false") {
					for _, st := range states {
						st.conds["b:"+id.Name] = lit.Name == "true"
					}
				}
			}
		}
		return states
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			states = c.applyExpr(r, states)
		}
		for _, st := range states {
			if st.appended && !st.barriered {
				c.pending = true
			}
		}
		return nil
	case *ast.BlockStmt:
		return c.walkStmts(s.List, states)
	case *ast.IfStmt:
		if s.Init != nil {
			states = c.walkStmt(s.Init, states)
		}
		states = c.applyExpr(s.Cond, states)
		thenAtoms, elseAtoms := condAtoms(s.Cond)
		var out []*pstate
		var thenStates, elseStates []*pstate
		for _, st := range states {
			if ts := applyAtoms(st, thenAtoms); ts != nil {
				thenStates = append(thenStates, ts)
			}
			if es := applyAtoms(st, elseAtoms); es != nil {
				elseStates = append(elseStates, es)
			}
		}
		if len(thenStates) > 0 {
			out = append(out, c.walkStmts(s.Body.List, thenStates)...)
		}
		if s.Else != nil {
			if len(elseStates) > 0 {
				out = append(out, c.walkStmt(s.Else, elseStates)...)
			}
		} else {
			out = append(out, elseStates...)
		}
		return dedup(out)
	case *ast.ForStmt:
		if s.Init != nil {
			states = c.walkStmt(s.Init, states)
		}
		if s.Cond != nil {
			states = c.applyExpr(s.Cond, states)
		}
		body := c.walkStmts(s.Body.List, clones(states))
		return dedup(append(body, states...))
	case *ast.RangeStmt:
		states = c.applyExpr(s.X, states)
		body := c.walkStmts(s.Body.List, clones(states))
		return dedup(append(body, states...))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkBranches(s, states)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, states)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						states = c.applyExpr(v, states)
					}
				}
			}
		}
		return states
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred and concurrent effects do not order this path;
		// literal bodies are walked as functions of their own.
		return states
	case *ast.BranchStmt:
		// break/continue/goto: end this path's linear view.
		return nil
	default:
		return states
	}
}

func (c *checker) walkBranches(stmt ast.Stmt, states []*pstate) []*pstate {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			states = c.walkStmt(s.Init, states)
		}
		if s.Tag != nil {
			states = c.applyExpr(s.Tag, states)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out []*pstate
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			stmts = cc.Body
		}
		out = append(out, c.walkStmts(stmts, clones(states))...)
	}
	if !hasDefault {
		out = append(out, states...)
	}
	return dedup(out)
}

// applyExpr applies role effects of calls inside expr to every state,
// in syntactic order, and performs the ack/commit checks.
func (c *checker) applyExpr(expr ast.Expr, states []*pstate) []*pstate {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, role := range c.rolesOf(call) {
			switch role {
			case "append":
				for _, s := range states {
					s.appended = true
					s.barriered = false
				}
			case "barrier":
				for _, s := range states {
					s.barriered = true
				}
			case "ack":
				c.checkAck(call, states)
			case "commit":
				c.checkCommit(call, states)
			}
		}
		return true
	})
	return states
}

func (c *checker) checkAck(call *ast.CallExpr, states []*pstate) {
	if !c.reporting || c.reported[call.Pos()] {
		return
	}
	for _, s := range states {
		if s.appended && !s.barriered {
			c.reported[call.Pos()] = true
			c.pass.Reportf(call.Pos(), "success response written on a path where the WAL append is not synced (ack before fsync)")
			return
		}
	}
}

func (c *checker) checkCommit(call *ast.CallExpr, states []*pstate) {
	if !c.reporting || c.reported[call.Pos()] {
		return
	}
	for _, s := range states {
		if s.barriered {
			continue
		}
		// The nil escape: if every value this function syncs through is
		// known nil on this path, there is no WAL to order against.
		if len(c.providers) > 0 {
			allNil := true
			for p := range c.providers {
				if v, ok := s.conds["nn:"+p]; !ok || v {
					allNil = false
					break
				}
			}
			if allNil {
				continue
			}
		}
		c.reported[call.Pos()] = true
		c.pass.Reportf(call.Pos(), "commit on a path not dominated by a WAL sync barrier")
		return
	}
}

// invalidate drops condition atoms that mention any assigned identifier.
func (c *checker) invalidate(states []*pstate, lhs []ast.Expr) {
	var bases []string
	for _, l := range lhs {
		switch x := ast.Unparen(l).(type) {
		case *ast.Ident:
			bases = append(bases, x.Name)
		case *ast.SelectorExpr:
			bases = append(bases, types.ExprString(x))
		}
	}
	for _, s := range states {
		for k := range s.conds {
			expr := k[strings.Index(k, ":")+1:]
			base := expr
			if i := strings.Index(expr, "."); i >= 0 {
				base = expr[:i]
			}
			for _, b := range bases {
				if expr == b || base == b || strings.HasPrefix(b+".", expr+".") || strings.HasPrefix(expr, b+".") {
					delete(s.conds, k)
					break
				}
			}
		}
	}
}

type atom struct {
	key string
	val bool
}

// condAtoms extracts the atoms known true in the then and else branches
// of a condition. Atoms from one conjunct of && hold only in then;
// atoms from || only in else.
func condAtoms(cond ast.Expr) (then, els []atom) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			lt, _ := condAtoms(e.X)
			rt, _ := condAtoms(e.Y)
			return append(lt, rt...), nil
		case token.LOR:
			_, le := condAtoms(e.X)
			_, re := condAtoms(e.Y)
			return nil, append(le, re...)
		case token.NEQ:
			if k, ok := nilCompare(e); ok {
				return []atom{{k, true}}, []atom{{k, false}}
			}
		case token.EQL:
			if k, ok := nilCompare(e); ok {
				return []atom{{k, false}}, []atom{{k, true}}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			t, f := condAtoms(e.X)
			return f, t
		}
	case *ast.Ident:
		if e.Name != "true" && e.Name != "false" && e.Name != "_" {
			k := "b:" + e.Name
			return []atom{{k, true}}, []atom{{k, false}}
		}
	}
	return nil, nil
}

// nilCompare returns the "nn:<expr>" atom key for X != nil / X == nil
// comparisons over identifiers and field selections.
func nilCompare(e *ast.BinaryExpr) (string, bool) {
	operand := func(x ast.Expr) (string, bool) {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			if v.Name == "nil" {
				return "", false
			}
			return v.Name, true
		case *ast.SelectorExpr:
			return types.ExprString(v), true
		}
		return "", false
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(e.Y) {
		if s, ok := operand(e.X); ok {
			return "nn:" + s, true
		}
	}
	if isNil(e.X) {
		if s, ok := operand(e.Y); ok {
			return "nn:" + s, true
		}
	}
	return "", false
}

// applyAtoms returns st extended with the atoms, or nil if an atom
// contradicts what the path already knows (branch infeasible).
func applyAtoms(st *pstate, atoms []atom) *pstate {
	out := st.clone()
	for _, a := range atoms {
		if v, ok := out.conds[a.key]; ok && v != a.val {
			return nil
		}
		out.conds[a.key] = a.val
	}
	return out
}

func clones(states []*pstate) []*pstate {
	out := make([]*pstate, len(states))
	for i, s := range states {
		out[i] = s.clone()
	}
	return out
}
