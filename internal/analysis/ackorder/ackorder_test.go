package ackorder_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/ackorder"
	"kjoin/internal/analysis/analysistest"
)

func TestAckorder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "ackdata"), ackorder.Analyzer)
}
