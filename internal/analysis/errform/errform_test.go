package errform_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/errform"
)

func TestErrform(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "errdata"), errform.Analyzer)
}
