// Package errdata is errform's testdata: handlers that stringify
// errors with and without classifying them first.
package errdata

import (
	"errors"
	"net/http"
)

// inputError mirrors core.InputError's shape.
type inputError struct{ Detail string }

func (e *inputError) Error() string { return e.Detail }

// writeError stands in for serverutil.WriteError.
func writeError(w http.ResponseWriter, status int, code, detail string) {}

// BadHTTPError uses the plain-text helper; both the call and the
// unclassified stringification are flagged.
func BadHTTPError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest) // want `http.Error writes a plain-text body` `without errors.As/errors.Is classification`
}

// BadStringify dumps an unclassified error into the response body.
func BadStringify(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, "bad", err.Error()) // want `without errors.As/errors.Is classification`
}

// GoodMapper peels the typed input error first; the residual
// stringification is the sanctioned 500 path.
func GoodMapper(w http.ResponseWriter, err error) {
	var ie *inputError
	if errors.As(err, &ie) {
		writeError(w, http.StatusBadRequest, "invalid_input", ie.Detail)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err.Error())
}

// NotAHandler takes no ResponseWriter: out of scope.
func NotAHandler(err error) string {
	return err.Error()
}

// notAnError has an Error method that is not the error interface's.
type notAnError struct{}

func (notAnError) Error(n int) string { return "" }

// WrongError calls an unrelated method named Error: exempt.
func WrongError(w http.ResponseWriter, x notAnError) {
	_ = x.Error(1)
}
