// Package errform keeps HTTP error responses structured. The server's
// contract (PR 1) is that invalid input surfaces as *core.InputError
// and is mapped to the structured 400 JSON body; dumping err.Error()
// straight into a response both leaks internals and silently bypasses
// that mapping. The analyzer checks every function that takes an
// http.ResponseWriter:
//
//   - calls to http.Error are always flagged — the structured path is
//     serverutil.WriteError (or the server's error mapper);
//   - stringifying an error (err.Error()) is only allowed in functions
//     that first classify the error with errors.As or errors.Is — the
//     shape of the InputError-aware mapper. A handler that stringifies
//     an unclassified error would send input errors down the 500 path.
package errform

import (
	"go/ast"
	"go/types"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errform",
	Doc:  "HTTP handlers must route errors through the structured JSON path, not err.Error() into the body",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasResponseWriterParam(pass, fn) {
				continue
			}
			checkHandler(pass, fn)
		}
	}
	return nil
}

func hasResponseWriterParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, p := range fn.Type.Params.List {
		t := pass.TypeOf(p.Type)
		n, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter" {
			return true
		}
	}
	return false
}

func checkHandler(pass *analysis.Pass, fn *ast.FuncDecl) {
	classifies := classifiesErrors(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass, sel, "net/http", "Error") {
			pass.Reportf(call.Pos(), "http.Error writes a plain-text body; use the structured JSON error path (serverutil.WriteError or the *core.InputError-aware mapper)")
			return true
		}
		if sel.Sel.Name == "Error" && len(call.Args) == 0 && isErrorValue(pass, sel.X) && !classifies {
			pass.Reportf(call.Pos(), "err.Error() in HTTP handler %s without errors.As/errors.Is classification; route through the *core.InputError-aware mapper so invalid input gets the structured 400", fn.Name.Name)
		}
		return true
	})
}

// classifiesErrors reports whether the body calls errors.As or
// errors.Is — the marker of an error-mapping function that has peeled
// typed errors (in particular *core.InputError) before stringifying the
// remainder.
func classifiesErrors(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isPkgFunc(pass, sel, "errors", "As") || isPkgFunc(pass, sel, "errors", "Is") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isPkgFunc(pass *analysis.Pass, sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// isErrorValue reports whether e's type is (or implements) the error
// interface — i.e. e.Error() stringifies an error, as opposed to an
// unrelated method that happens to be named Error.
func isErrorValue(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}
