package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallEdge is one call site: Caller's body contains a call that may
// reach Callee. Static edges come from direct function and concrete-
// method calls and are exact. Dynamic edges are the conservative
// closure of an interface method call: one edge to the interface
// method itself plus one to every method in the module whose receiver
// type implements the interface. Calls through plain func values
// produce no edges at all — analyzers relying on the graph must treat
// them as unknown (the same altitude of conservatism go vet accepts).
type CallEdge struct {
	Caller  *types.Func
	Callee  *types.Func
	Site    token.Pos
	Dynamic bool
}

// CallGraph is the module-wide static call graph, built once from the
// type-checked packages before any analyzer runs and exposed to every
// pass via Pass.Graph.
type CallGraph struct {
	out map[*types.Func][]CallEdge
	in  map[*types.Func][]CallEdge
}

// Callees returns the edges leaving fn (calls fn's body may make).
func (g *CallGraph) Callees(fn *types.Func) []CallEdge { return g.out[fn] }

// Callers returns the edges entering fn (sites that may call fn).
func (g *CallGraph) Callers(fn *types.Func) []CallEdge { return g.in[fn] }

// Reachable returns the set of functions reachable from roots along
// the graph's edges (roots included). includeDynamic selects whether
// conservative interface edges are followed.
func (g *CallGraph) Reachable(roots []*types.Func, includeDynamic bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[fn] {
			if e.Dynamic && !includeDynamic {
				continue
			}
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// StaticCallee resolves the *types.Func a call expression dispatches to
// when that is statically known: a direct function call, a method call
// on a concrete receiver, or a method expression. It returns nil (with
// dynamic=false) for calls through func values and conversions, and
// the interface method (with dynamic=true) for interface method calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, dynamic bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f, false
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			if types.IsInterface(sel.Recv()) {
				return f, true
			}
			return f, false
		}
		// Qualified identifier (pkg.Fn) has no Selection entry.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f, false
		}
	}
	return nil, false
}

// buildCallGraph walks every function body in the packages and records
// the edges. Call sites inside function literals are attributed to the
// enclosing declared function.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		out: make(map[*types.Func][]CallEdge),
		in:  make(map[*types.Func][]CallEdge),
	}
	impl := newImplCache(pkgs)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee, dynamic := StaticCallee(pkg.TypesInfo, call)
					if callee == nil {
						return true
					}
					g.addEdge(CallEdge{Caller: caller, Callee: callee, Site: call.Pos(), Dynamic: dynamic})
					if dynamic {
						// Conservative closure: the interface call may land on
						// any module method implementing it.
						for _, m := range impl.implementers(callee) {
							g.addEdge(CallEdge{Caller: caller, Callee: m, Site: call.Pos(), Dynamic: true})
						}
					}
					return true
				})
			}
		}
	}
	return g
}

func (g *CallGraph) addEdge(e CallEdge) {
	g.out[e.Caller] = append(g.out[e.Caller], e)
	g.in[e.Callee] = append(g.in[e.Callee], e)
}

// implCache resolves interface methods to the module's concrete
// implementations. Only named types declared in the analyzed packages
// are candidates — the module cannot call methods it cannot name.
type implCache struct {
	named []*types.Named
	memo  map[*types.Func][]*types.Func
}

func newImplCache(pkgs []*Package) *implCache {
	c := &implCache{memo: make(map[*types.Func][]*types.Func)}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				c.named = append(c.named, named)
			}
		}
	}
	return c
}

// implementers returns the concrete methods an interface method call
// may dispatch to within the module.
func (c *implCache) implementers(ifaceMethod *types.Func) []*types.Func {
	if ms, ok := c.memo[ifaceMethod]; ok {
		return ms
	}
	var out []*types.Func
	sig, ok := ifaceMethod.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, named := range c.named {
				if types.IsInterface(named) {
					continue
				}
				var recv types.Type = named
				if !types.Implements(recv, iface) {
					recv = types.NewPointer(named)
					if !types.Implements(recv, iface) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, ifaceMethod.Pkg(), ifaceMethod.Name())
				if m, ok := obj.(*types.Func); ok {
					out = append(out, m)
				}
			}
		}
	}
	c.memo[ifaceMethod] = out
	return out
}
