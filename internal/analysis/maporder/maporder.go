// Package maporder guards the repo's determinism invariant: join
// results, JSON responses and snapshot bytes must not depend on Go's
// randomized map iteration order. It flags two shapes of `range` over a
// map:
//
//  1. The loop body appends to a slice declared outside the loop and no
//     sort call over that slice follows the loop in the same function.
//     The classic fix — collect, then sort — is recognized and passes.
//
//  2. The loop body writes output directly (io.Writer-style Write*
//     methods, an encoder's Encode, or fmt.Fprint*): no later sort can
//     fix the order of bytes already written, so this is flagged
//     unconditionally.
//
// Deliberately order-insensitive loops (counting, summing into a
// scalar, building another map) are untouched. A genuinely benign case
// can be suppressed with //kjoinlint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/types"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "range over a map feeding an output slice or writer must be sorted; map order is nondeterministic",
	Run:  run,
}

// writerMethods are method names that emit output whose order matters.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"EncodeToken": true,
}

// sortFuncs are package-level sorting entry points, keyed by package
// path then function name.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		if w := directWrite(pass, rng.Body); w != nil {
			pass.Reportf(rng.For, "range over a map writes output inside the loop; map iteration order is nondeterministic — collect entries, sort, then write")
			return true
		}
		for _, target := range appendTargets(pass, rng) {
			if !sortedAfter(pass, fn, rng, target) {
				pass.Reportf(rng.For, "range over a map appends to %s with no sort after the loop; map iteration order is nondeterministic — sort the slice before it is returned or encoded", target.Name())
			}
		}
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// directWrite returns a node performing ordered output inside the loop
// body, or nil.
func directWrite(pass *analysis.Pass, body *ast.BlockStmt) ast.Node {
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// fmt.Fprint* — selector on the fmt package.
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" && (sel.Sel.Name == "Fprint" || sel.Sel.Name == "Fprintf" || sel.Sel.Name == "Fprintln") {
					found = call
					return false
				}
				return true // other package-level call, not a method
			}
		}
		// Method call named like a writer primitive on a non-basic type.
		if writerMethods[sel.Sel.Name] {
			if selection, ok := pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.MethodVal {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

// appendTargets returns slice variables declared outside the range
// statement that the loop body appends to (x = append(x, ...)).
func appendTargets(pass *analysis.Pass, rng *ast.RangeStmt) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsBuiltin() {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				obj = pass.TypesInfo.Defs[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || seen[v] {
				continue
			}
			// Declared outside the loop: the collected slice outlives the
			// iteration and carries its order out.
			if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
				continue
			}
			if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// sortedAfter reports whether a recognized sort call mentioning v
// appears after the range statement in the enclosing function.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	names := sortFuncs[pn.Imported().Path()]
	return names != nil && names[sel.Sel.Name]
}

func mentions(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
