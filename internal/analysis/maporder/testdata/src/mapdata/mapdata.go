// Package mapdata is maporder's testdata: map iteration feeding
// ordered outputs, with and without the collect-then-sort fix.
package mapdata

import (
	"fmt"
	"io"
	"sort"

	"slices"
)

// BadCollect returns keys in map order.
func BadCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `no sort after the loop`
		keys = append(keys, k)
	}
	return keys
}

// GoodCollect sorts before returning: the canonical fix.
func GoodCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSlices recognizes the slices package too.
func GoodSlices(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// GoodSortSlice covers sort.Slice with a comparator.
func GoodSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// BadWrite emits bytes in map order; no later sort can fix it.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want `writes output inside the loop`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Count is order-insensitive: exempt.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// LocalScratch appends to a slice that lives and dies inside the loop
// body: its order never escapes an iteration.
func LocalScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// Rebuild fills another map: no ordered output.
func Rebuild(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Suppressed demonstrates the escape hatch.
func Suppressed(m map[string]int) []string {
	var keys []string
	//kjoinlint:ignore maporder order is checked by the caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
