package maporder_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "mapdata"), maporder.Analyzer)
}
