// Package leakdata exercises the goleak analyzer: goroutines with and
// without shutdown edges, joinability through wrappers and signatures,
// and spawner helpers checked at their call sites.
package leakdata

import (
	"context"
	"sync"
)

func worker(ctx context.Context) { <-ctx.Done() }

func forever() {
	for {
	}
}

// GoodCtxWrapper: the literal reaches a context.
func GoodCtxWrapper(ctx context.Context) {
	go func() { worker(ctx) }()
}

// GoodChan: the literal ranges over a channel.
func GoodChan(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// GoodWG: the literal signals a WaitGroup.
func GoodWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// GoodNamed: the callee's signature accepts a context.
func GoodNamed(ctx context.Context) {
	go worker(ctx)
}

// BadLit spawns a literal no shutdown signal can reach.
func BadLit() {
	go func() { // want `goroutine has no shutdown edge \(no context, channel, or WaitGroup reaches it\)`
		forever()
	}()
}

// BadNamed spawns a named function with no shutdown edge.
func BadNamed() {
	go forever() // want `goroutine runs forever, which has no shutdown edge \(no context, channel, or WaitGroup reaches it\)`
}

// spawner starts its argument as a goroutine; the spawns-param fact
// moves the check to call sites.
func spawner(fn func()) {
	go fn()
}

// BadViaSpawner hands the spawner an unjoinable task.
func BadViaSpawner() {
	spawner(func() { forever() }) // want `goroutine has no shutdown edge \(no context, channel, or WaitGroup reaches it\)`
}

// GoodViaSpawner hands the spawner a channel-blocked task.
func GoodViaSpawner(ch chan struct{}) {
	spawner(func() { <-ch })
}
