// Package goleak flags goroutines spawned with no reachable shutdown
// edge: no context, channel, or WaitGroup flows into the goroutine, so
// nothing can ever tell it to stop or wait for it to finish. Such a
// goroutine outlives every test that starts it and leaks under -race
// accumulation, and in a server it is work that cannot be drained.
//
// A goroutine is considered joinable when any of these holds:
//
//   - its body (for `go func() {...}()`) uses a context.Context value,
//     performs a channel operation (send, receive, select, range), or
//     calls Done/Wait on a sync.WaitGroup;
//   - it calls, anywhere in its body, a function known joinable — a
//     fact exported for every function whose own body has one of the
//     edges above, so wrappers like `go func() { worker(ctx) }()` and
//     cross-package helpers are credited;
//   - for `go f(...)`, the callee f is known joinable, or its
//     signature accepts a context.Context, a channel, or a
//     *sync.WaitGroup (the caller handed it a shutdown handle).
//
// Helpers that spawn a parameter (func(fn func()) { go fn() }) export a
// spawns-its-argument fact; their call sites are then checked as if the
// argument were the `go` operand.
package goleak

import (
	"go/ast"
	"go/types"

	"kjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "flag goroutines spawned without a reachable shutdown edge (context, channel, or WaitGroup)",
	Run:  run,
}

// Joinable marks a function whose body contains a shutdown edge.
type Joinable struct{}

func (*Joinable) AFact() {}

// SpawnsParam marks a function that starts one of its parameters as a
// goroutine; Indices are the positions of those parameters.
type SpawnsParam struct {
	Indices []int
}

func (*SpawnsParam) AFact() {}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, joinable: make(map[*types.Func]bool)}

	// Round 1: syntactic joinability of every declared function, to
	// fixpoint over in-package calls (a wrapper calling a joinable
	// function is joinable).
	decls := c.funcDecls()
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if c.joinable[fn] {
				continue
			}
			if c.bodyJoinable(fd.Body) {
				c.joinable[fn] = true
				changed = true
			}
		}
	}
	for fn := range c.joinable {
		pass.ExportObjectFact(fn, &Joinable{})
	}

	// Round 2: spawns-param facts.
	spawns := make(map[*types.Func][]int)
	for fn, fd := range decls {
		if idx := c.spawnedParams(fn, fd); len(idx) > 0 {
			spawns[fn] = idx
			pass.ExportObjectFact(fn, &SpawnsParam{Indices: idx})
		}
	}

	// Round 3: check every go statement and every call into a
	// spawns-param function.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				c.checkSpawn(s.Call.Fun, s.Call)
			case *ast.CallExpr:
				callee, _ := analysis.StaticCallee(pass.TypesInfo, s)
				if callee == nil {
					return true
				}
				var idx []int
				if callee.Pkg() == pass.Pkg {
					idx = spawns[callee]
				} else {
					var sp SpawnsParam
					if pass.ImportObjectFact(callee, &sp) {
						idx = sp.Indices
					}
				}
				for _, i := range idx {
					if i < len(s.Args) {
						c.checkSpawn(s.Args[i], s)
					}
				}
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	joinable map[*types.Func]bool
}

func (c *checker) funcDecls() map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// checkSpawn validates one spawned entity: the operand of a go
// statement or the argument passed into a spawns-param helper.
func (c *checker) checkSpawn(fun ast.Expr, at *ast.CallExpr) {
	switch f := ast.Unparen(fun).(type) {
	case *ast.FuncLit:
		if c.bodyJoinable(f.Body) {
			return
		}
		c.pass.Reportf(at.Pos(), "goroutine has no shutdown edge (no context, channel, or WaitGroup reaches it)")
	default:
		fn := c.resolveFunc(fun)
		if fn == nil {
			// Func values we cannot name: give the benefit of the doubt
			// rather than flag every callback.
			return
		}
		if c.fnJoinable(fn) || signatureJoinable(fn) {
			return
		}
		c.pass.Reportf(at.Pos(), "goroutine runs %s, which has no shutdown edge (no context, channel, or WaitGroup reaches it)", fn.Name())
	}
}

func (c *checker) resolveFunc(fun ast.Expr) *types.Func {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[f]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := c.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (c *checker) fnJoinable(fn *types.Func) bool {
	if fn.Pkg() == c.pass.Pkg {
		return c.joinable[fn]
	}
	var j Joinable
	return c.pass.ImportObjectFact(fn, &j)
}

// bodyJoinable reports whether the body contains a shutdown edge
// directly or calls a known-joinable function. Nested function literals
// are included: the edge is reachable from the goroutine.
func (c *checker) bodyJoinable(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := c.pass.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if obj, ok := c.pass.TypesInfo.Uses[x]; ok && isContext(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") && isWaitGroup(c.pass.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
			if fn, _ := analysis.StaticCallee(c.pass.TypesInfo, x); fn != nil && c.fnJoinable(fn) {
				found = true
			}
		}
		return !found
	})
	return found
}

// spawnedParams returns the indices of parameters of fn that its body
// starts as goroutines. Only the direct form `go p(...)` counts: a
// parameter merely called inside a joinable goroutine literal (the
// worker-pool shape) is not the goroutine body and must not move the
// check to call sites.
func (c *checker) spawnedParams(fn *types.Func, fd *ast.FuncDecl) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	paramIndex := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		paramIndex[sig.Params().At(i)] = i
	}
	var out []int
	seen := make(map[int]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(gs.Call.Fun).(*ast.Ident); ok {
			if obj, ok := c.pass.TypesInfo.Uses[id]; ok {
				if i, isParam := paramIndex[obj]; isParam && !seen[i] {
					seen[i] = true
					out = append(out, i)
				}
			}
		}
		return true
	})
	return out
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// signatureJoinable reports whether the function's signature accepts a
// shutdown handle: a context, a channel, or a *sync.WaitGroup.
func signatureJoinable(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isContext(t) || isWaitGroup(t) {
			return true
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
	}
	return false
}
