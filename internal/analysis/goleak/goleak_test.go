package goleak_test

import (
	"path/filepath"
	"testing"

	"kjoin/internal/analysis/analysistest"
	"kjoin/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "leakdata"), goleak.Analyzer)
}
