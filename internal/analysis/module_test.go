package analysis_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"kjoin/internal/analysis"
	"kjoin/internal/analysis/load"
)

// writeModule materializes a throwaway module on disk so the loader can
// type-check real cross-package imports.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadModule(t *testing.T, root string, patterns ...string) []*analysis.Package {
	t.Helper()
	loader, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

type markFact struct{ Label string }

func (*markFact) AFact() {}

// TestObjectFactPropagation analyzes a two-package module with an
// analyzer that tags exported functions of package a and, when it later
// sees package b, looks the tag up at the call site. The fact must
// survive the package boundary.
func TestObjectFactPropagation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Tagged() {}\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nfunc Use() { a.Tagged() }\n",
	})
	pkgs := loadModule(t, root, "a", "b")
	mod := analysis.NewModule(pkgs)

	var sawFact string
	az := &analysis.Analyzer{
		Name: "mark",
		Doc:  "test",
		Run: func(pass *analysis.Pass) error {
			switch pass.Pkg.Path() {
			case "tmpmod/a":
				obj := pass.Pkg.Scope().Lookup("Tagged")
				pass.ExportObjectFact(obj, &markFact{Label: "durable"})
			case "tmpmod/b":
				for ident, obj := range pass.TypesInfo.Uses {
					if ident.Name != "Tagged" {
						continue
					}
					var f markFact
					if pass.ImportObjectFact(obj, &f) {
						sawFact = f.Label
					}
				}
			}
			return nil
		},
	}
	for _, pkg := range mod.Pkgs {
		if _, err := mod.Run(pkg, []*analysis.Analyzer{az}); err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
	}
	if sawFact != "durable" {
		t.Fatalf("fact did not propagate from a to b: got %q, want %q", sawFact, "durable")
	}
}

type badFact struct{ Fn func() } // funcs do not gob-encode

func (*badFact) AFact() {}

// TestNonSerializableFactRejected checks that the store's gob
// round-trip enforcement turns a non-serializable fact into a Run
// error (not a silent acceptance, not a process crash).
func TestNonSerializableFactRejected(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc F() {}\n",
	})
	pkgs := loadModule(t, root, "a")
	mod := analysis.NewModule(pkgs)
	az := &analysis.Analyzer{
		Name: "bad",
		Doc:  "test",
		Run: func(pass *analysis.Pass) error {
			pass.ExportObjectFact(pass.Pkg.Scope().Lookup("F"), &badFact{})
			return nil
		},
	}
	if _, err := mod.Run(pkgs[0], []*analysis.Analyzer{az}); err == nil {
		t.Fatal("exporting a non-serializable fact should fail the run")
	}
}

// TestFactCopiedOnExport ensures mutating the exported fact after the
// ExportObjectFact call does not alter what importers observe.
func TestFactCopiedOnExport(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc F() {}\n",
	})
	pkgs := loadModule(t, root, "a")
	mod := analysis.NewModule(pkgs)
	var got markFact
	az := &analysis.Analyzer{
		Name: "copy",
		Doc:  "test",
		Run: func(pass *analysis.Pass) error {
			obj := pass.Pkg.Scope().Lookup("F")
			f := &markFact{Label: "before"}
			pass.ExportObjectFact(obj, f)
			f.Label = "after"
			pass.ImportObjectFact(obj, &got)
			return nil
		},
	}
	if _, err := mod.Run(pkgs[0], []*analysis.Analyzer{az}); err != nil {
		t.Fatal(err)
	}
	if got.Label != "before" {
		t.Fatalf("store returned mutated fact: got %q, want %q", got.Label, "before")
	}
}

type pkgFact struct{ N int }

func (*pkgFact) AFact() {}

func TestPackageFactPropagation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() {}\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nfunc B() { a.A() }\n",
	})
	pkgs := loadModule(t, root, "a", "b")
	mod := analysis.NewModule(pkgs)
	var got pkgFact
	az := &analysis.Analyzer{
		Name: "pkgfact",
		Doc:  "test",
		Run: func(pass *analysis.Pass) error {
			if pass.Pkg.Path() == "tmpmod/a" {
				pass.ExportPackageFact(&pkgFact{N: 42})
				return nil
			}
			for _, imp := range pass.Pkg.Imports() {
				pass.ImportPackageFact(imp, &got)
			}
			return nil
		},
	}
	for _, pkg := range mod.Pkgs {
		if _, err := mod.Run(pkg, []*analysis.Analyzer{az}); err != nil {
			t.Fatal(err)
		}
	}
	if got.N != 42 {
		t.Fatalf("package fact did not propagate: got %d, want 42", got.N)
	}
}

// TestModuleDependencyOrder checks NewModule sorts dependents after
// their imports regardless of input order.
func TestModuleDependencyOrder(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() {}\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nfunc B() { a.A() }\n",
		"c/c.go": "package c\n\nimport \"tmpmod/b\"\n\nfunc C() { b.B() }\n",
	})
	pkgs := loadModule(t, root, "c", "b", "a")
	mod := analysis.NewModule(pkgs)
	rank := make(map[string]int)
	for i, p := range mod.Pkgs {
		rank[p.Path] = i
	}
	if !(rank["tmpmod/a"] < rank["tmpmod/b"] && rank["tmpmod/b"] < rank["tmpmod/c"]) {
		t.Fatalf("module order is not dependencies-first: %v", rank)
	}
}

// TestCallGraph covers the three edge classes: static cross-package
// call, dynamic interface dispatch expanded to the concrete
// implementation, and the absence of edges for func-value calls.
func TestCallGraph(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

type Doer interface{ Do() }

type Impl struct{}

func (Impl) Do() {}

func Direct() {}
`,
		"b/b.go": `package b

import "tmpmod/a"

func Static() { a.Direct() }

func Dynamic(d a.Doer) { d.Do() }

func FuncValue(f func()) { f() }
`,
	})
	pkgs := loadModule(t, root, "a", "b")
	mod := analysis.NewModule(pkgs)

	fn := func(pkgPath, name string) *types.Func {
		for _, p := range pkgs {
			if p.Path != pkgPath {
				continue
			}
			if f, ok := p.Types.Scope().Lookup(name).(*types.Func); ok {
				return f
			}
		}
		t.Fatalf("function %s.%s not found", pkgPath, name)
		return nil
	}

	edges := mod.Graph.Callees(fn("tmpmod/b", "Static"))
	if len(edges) != 1 || edges[0].Callee.Name() != "Direct" || edges[0].Dynamic {
		t.Fatalf("Static should have one static edge to Direct, got %+v", edges)
	}

	var sawIface, sawConcrete bool
	for _, e := range mod.Graph.Callees(fn("tmpmod/b", "Dynamic")) {
		if !e.Dynamic {
			t.Fatalf("interface dispatch produced a static edge: %+v", e)
		}
		if e.Callee.Name() == "Do" {
			if _, isIface := e.Callee.Type().(*types.Signature); isIface {
				recv := e.Callee.Type().(*types.Signature).Recv()
				if recv != nil && types.IsInterface(recv.Type()) {
					sawIface = true
				} else {
					sawConcrete = true
				}
			}
		}
	}
	if !sawIface || !sawConcrete {
		t.Fatalf("interface call should yield both the interface method and the Impl expansion (iface=%v concrete=%v)", sawIface, sawConcrete)
	}

	if edges := mod.Graph.Callees(fn("tmpmod/b", "FuncValue")); len(edges) != 0 {
		t.Fatalf("func-value call should produce no edges, got %+v", edges)
	}
}

// TestSuppressedMarking verifies Module.Run marks ignored findings
// rather than dropping them, and the single-package Run drops them.
func TestSuppressedMarking(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\n//kjoinlint:ignore always\nfunc F() {}\n\nfunc G() {}\n",
	})
	pkgs := loadModule(t, root, "a")
	mod := analysis.NewModule(pkgs)
	az := &analysis.Analyzer{
		Name: "always",
		Doc:  "test",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := mod.Run(pkgs[0], []*analysis.Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want both findings retained, got %d", len(diags))
	}
	var suppressed, live int
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		} else {
			live++
		}
	}
	if suppressed != 1 || live != 1 {
		t.Fatalf("want 1 suppressed + 1 live, got %d suppressed %d live", suppressed, live)
	}

	kept, err := analysis.Run(pkgs[0], []*analysis.Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || kept[0].Suppressed {
		t.Fatalf("single-package Run should drop suppressed findings, got %+v", kept)
	}
}

// TestMultiFileSuppression runs two analyzers over a two-file package
// where one line in each file draws findings from both. A single
// comma-list ignore comment must suppress both analyzers on its line,
// a one-name ignore must leave the other analyzer's finding live, and
// suppression in one file must not bleed into the same line number of
// the other file.
func TestMultiFileSuppression(t *testing.T) {
	// Line 4 of each file declares a function; both analyzers report
	// every FuncDecl. first.go suppresses both, second.go only "alpha".
	root := writeModule(t, map[string]string{
		"go.mod":      "module tmpmod\n\ngo 1.22\n",
		"p/first.go":  "package p\n\n//kjoinlint:ignore alpha,beta test fixture\nfunc F() {}\n",
		"p/second.go": "package p\n\n//kjoinlint:ignore alpha test fixture\nfunc G() {}\n",
	})
	pkgs := loadModule(t, root, "p")
	report := func(name string) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name: name,
			Doc:  "test",
			Run: func(pass *analysis.Pass) error {
				for _, f := range pass.Files {
					for _, d := range f.Decls {
						if fd, ok := d.(*ast.FuncDecl); ok {
							pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
						}
					}
				}
				return nil
			},
		}
	}
	mod := analysis.NewModule(pkgs)
	diags, err := mod.Run(pkgs[0], []*analysis.Analyzer{report("alpha"), report("beta")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("want all 4 findings retained, got %d", len(diags))
	}
	state := make(map[string]bool) // "analyzer/func" -> suppressed
	for _, d := range diags {
		file := filepath.Base(pkgs[0].Fset.Position(d.Pos).Filename)
		state[d.Analyzer+"/"+file] = d.Suppressed
	}
	want := map[string]bool{
		"alpha/first.go":  true,
		"beta/first.go":   true,
		"alpha/second.go": true,
		"beta/second.go":  false, // second.go names only alpha
	}
	for k, w := range want {
		if state[k] != w {
			t.Errorf("%s: suppressed = %v, want %v", k, state[k], w)
		}
	}
}
