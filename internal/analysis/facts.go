package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// Fact is a datum one analyzer attaches to a types.Object or a package
// while analyzing the package that declares it, for its own later
// passes over dependent packages to read. Facts are the module-wide
// memory of an analyzer: the loader feeds packages to Module.Run in
// dependency order, so by the time a pass sees a call into another
// package, the facts for that package's objects are already in place.
//
// A fact type must be a pointer to a struct, and the struct must be
// gob-serializable — the store round-trips every exported fact through
// encoding/gob to enforce it, exactly so facts stay plain data and a
// future driver can cache them per package on disk (the x/tools
// drivers do; we keep the door open).
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// factKey identifies one fact slot: which analyzer wrote it, about
// which object, and which concrete fact type (an analyzer may export
// several fact types).
type factKey struct {
	analyzer string
	typ      reflect.Type
}

// factStore holds the module's facts. It is safe for concurrent use:
// the lint driver runs independent packages of one dependency wave in
// parallel.
type factStore struct {
	mu  sync.RWMutex
	obj map[types.Object]map[factKey]Fact
	pkg map[*types.Package]map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[types.Object]map[factKey]Fact),
		pkg: make(map[*types.Package]map[factKey]Fact),
	}
}

// checkFact validates the fact's shape and round-trips it through gob,
// returning the decoded copy. The copy (not the caller's pointer) is
// what the store keeps, so a caller mutating its fact after export
// cannot corrupt the store.
func checkFact(f Fact) (Fact, error) {
	v := reflect.ValueOf(f)
	if !v.IsValid() || v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("analysis: fact %T must be a non-nil pointer to a struct", f)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(v.Elem()); err != nil {
		return nil, fmt.Errorf("analysis: fact %T is not gob-serializable: %v", f, err)
	}
	out := reflect.New(v.Elem().Type())
	if err := gob.NewDecoder(&buf).DecodeValue(out.Elem()); err != nil {
		return nil, fmt.Errorf("analysis: fact %T does not round-trip through gob: %v", f, err)
	}
	return out.Interface().(Fact), nil
}

func (s *factStore) exportObject(an string, obj types.Object, f Fact) error {
	if obj == nil {
		return fmt.Errorf("analysis: ExportObjectFact with nil object")
	}
	stored, err := checkFact(f)
	if err != nil {
		return err
	}
	key := factKey{an, reflect.TypeOf(f)}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.obj[obj]
	if m == nil {
		m = make(map[factKey]Fact)
		s.obj[obj] = m
	}
	m[key] = stored
	return nil
}

func (s *factStore) importObject(an string, obj types.Object, f Fact) bool {
	key := factKey{an, reflect.TypeOf(f)}
	s.mu.RLock()
	stored, ok := s.obj[obj][key]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (s *factStore) exportPackage(an string, pkg *types.Package, f Fact) error {
	if pkg == nil {
		return fmt.Errorf("analysis: ExportPackageFact with nil package")
	}
	stored, err := checkFact(f)
	if err != nil {
		return err
	}
	key := factKey{an, reflect.TypeOf(f)}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.pkg[pkg]
	if m == nil {
		m = make(map[factKey]Fact)
		s.pkg[pkg] = m
	}
	m[key] = stored
	return nil
}

func (s *factStore) importPackage(an string, pkg *types.Package, f Fact) bool {
	key := factKey{an, reflect.TypeOf(f)}
	s.mu.RLock()
	stored, ok := s.pkg[pkg][key]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportObjectFact records a fact about obj (typically a *types.Func or
// *types.Var of the package being analyzed) for this analyzer's passes
// over dependent packages. The fact is copied; later mutation of f does
// not affect the store. A non-serializable fact is an internal error
// and aborts the pass.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if err := p.module.facts.exportObject(p.Analyzer.Name, obj, f); err != nil {
		panic(err)
	}
}

// ImportObjectFact copies the fact of f's type previously exported
// about obj by this analyzer into f, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	return p.module.facts.importObject(p.Analyzer.Name, obj, f)
}

// ExportPackageFact records a fact about the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	if err := p.module.facts.exportPackage(p.Analyzer.Name, p.Pkg, f); err != nil {
		panic(err)
	}
}

// ImportPackageFact copies the fact of f's type previously exported
// about pkg (one of this package's dependencies) into f, reporting
// whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	return p.module.facts.importPackage(p.Analyzer.Name, pkg, f)
}
