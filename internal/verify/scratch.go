// Per-worker scratch state for the verification hot path. The seed
// implementation built three maps per candidate pair in groups() and four
// more per group in groupWeightedUB(); at millions of candidates the
// allocator dominated wall clock. A Scratch replaces every per-pair map
// with an epoch-stamped dense table: a flat array indexed by elem.ID or
// sig.Sig plus a parallel epoch array. Bumping the epoch invalidates the
// whole table in O(1) — no clearing, no rehashing — and a slot is live
// only when its stamp equals the current epoch, which reproduces map
// "missing key reads as zero" semantics exactly.
package verify

import (
	"sort"

	"kjoin/internal/elem"
	"kjoin/internal/matching"
	"kjoin/internal/sig"
)

// sigTable is an epoch-stamped dense map from sig.Sig to int32 with
// presence semantics (lookup reports whether the key was set this epoch).
type sigTable struct {
	epoch []uint64
	val   []int32
}

func (t *sigTable) grow(n int) {
	if n <= len(t.epoch) {
		return
	}
	if n < 2*len(t.epoch) {
		n = 2 * len(t.epoch)
	}
	ne := make([]uint64, n)
	copy(ne, t.epoch)
	t.epoch = ne
	nv := make([]int32, n)
	copy(nv, t.val)
	t.val = nv
}

func (t *sigTable) lookup(s sig.Sig, ep uint64) (int32, bool) {
	if int(s) >= len(t.epoch) || t.epoch[s] != ep {
		return 0, false
	}
	return t.val[s], true
}

func (t *sigTable) set(s sig.Sig, v int32, ep uint64) {
	t.grow(int(s) + 1)
	t.epoch[s] = ep
	t.val[s] = v
}

// elemTable is an epoch-stamped dense map from elem.ID to int32 where a
// missing key reads as zero (multiset-counter semantics).
type elemTable struct {
	epoch []uint64
	val   []int32
}

func (t *elemTable) grow(n int) {
	if n <= len(t.epoch) {
		return
	}
	if n < 2*len(t.epoch) {
		n = 2 * len(t.epoch)
	}
	ne := make([]uint64, n)
	copy(ne, t.epoch)
	t.epoch = ne
	nv := make([]int32, n)
	copy(nv, t.val)
	t.val = nv
}

func (t *elemTable) get(e elem.ID, ep uint64) int32 {
	if int(e) >= len(t.epoch) || t.epoch[e] != ep {
		return 0
	}
	return t.val[e]
}

// incr adds one to the counter for e and returns the new value.
func (t *elemTable) incr(e elem.ID, ep uint64) int32 {
	t.grow(int(e) + 1)
	if t.epoch[e] != ep {
		t.epoch[e] = ep
		t.val[e] = 0
	}
	t.val[e]++
	return t.val[e]
}

// simCacheMinBits/simCacheMaxBits bound the element-pair similarity
// cache: it starts at 1<<simCacheMinBits slots (16 KiB of keys+values)
// and doubles as it fills, up to 1<<simCacheMaxBits (~512 KiB per
// worker) — so a one-shot Similarity call pays for a small cache while
// a long join grows to the full size.
const (
	simCacheMinBits = 10
	simCacheMaxBits = 15
)

// simCacheProbes is the linear-probe window before evicting.
const simCacheProbes = 4

// simCache is a bounded cache of element-pair similarities keyed by the
// packed (min ID, max ID) pair. The Resolver's Sim runs a
// mappings×mappings LCA loop per call; distinct element pairs recur
// across many candidate pairs, so caching turns that loop into a single
// probe. Eviction overwrites the home slot (deterministic), growth drops
// the contents (it is a cache), and a hit returns exactly the value Sim
// computed, so results are unaffected by cache policy. Key 0 marks an
// empty slot; packed keys are never 0 because the max ID occupies the
// low word and exceeds the min ID. Allocation is lazy (first put) and
// growth stops at the cap, so the steady state performs none.
type simCache struct {
	keys  []uint64
	vals  []float64
	shift uint // 64 - log2(len(keys))
	fills int  // occupied slots since last resize
}

func (sc *simCache) slot(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> sc.shift
}

func (sc *simCache) get(key uint64) (float64, bool) {
	if sc.keys == nil {
		return 0, false
	}
	mask := uint64(len(sc.keys) - 1)
	h := sc.slot(key)
	for i := uint64(0); i < simCacheProbes; i++ {
		j := (h + i) & mask
		if sc.keys[j] == key {
			return sc.vals[j], true
		}
		if sc.keys[j] == 0 {
			return 0, false
		}
	}
	return 0, false
}

func (sc *simCache) put(key uint64, v float64) {
	if sc.keys == nil {
		sc.keys = make([]uint64, 1<<simCacheMinBits)
		sc.vals = make([]float64, 1<<simCacheMinBits)
		sc.shift = 64 - simCacheMinBits
	} else if sc.fills > len(sc.keys)/2 && len(sc.keys) < 1<<simCacheMaxBits {
		sc.keys = make([]uint64, 2*len(sc.keys))
		sc.vals = make([]float64, len(sc.vals)*2)
		sc.shift--
		sc.fills = 0
	}
	mask := uint64(len(sc.keys) - 1)
	h := sc.slot(key)
	for i := uint64(0); i < simCacheProbes; i++ {
		j := (h + i) & mask
		if sc.keys[j] == 0 || sc.keys[j] == key {
			if sc.keys[j] == 0 {
				sc.fills++
			}
			sc.keys[j] = key
			sc.vals[j] = v
			return
		}
	}
	sc.keys[h&mask] = key // window full: evict the home slot
	sc.vals[h&mask] = v
}

// gb is one active group of the adaptive verifier: its index into the
// group list, its edge range in the scratch edge arena, and its bounds.
type gb struct {
	gi         int32
	start, end int32
	lo, up     float64
}

// gbSorter orders active groups loosest-first (§5.2.3: largest B^u − B^l
// gap). Addressed through the Scratch pointer so sort.Sort's interface
// conversion does not allocate.
type gbSorter struct {
	act []gb
}

func (s *gbSorter) Len() int           { return len(s.act) }
func (s *gbSorter) Less(i, j int) bool { return s.act[i].up-s.act[i].lo > s.act[j].up-s.act[j].lo }
func (s *gbSorter) Swap(i, j int)      { s.act[i], s.act[j] = s.act[j], s.act[i] }

// sortGBs sorts the active groups in place. The sorter is addressed
// through a pointer that already lives on the heap (inside Scratch), so
// this performs no interface-conversion allocation.
func sortGBs(s *gbSorter) { sort.Sort(s) }

// Scratch is the per-worker workspace of the verification hot path.
// All buffers grow monotonically toward the workload's steady-state
// sizes; after warm-up, verifying a candidate pair performs zero heap
// allocations. A Scratch (and therefore the Context holding it) is NOT
// safe for concurrent use — every worker goroutine needs its own, via
// Context.Clone.
type Scratch struct {
	// epoch is the current table generation. Bumping it invalidates
	// every epoch-stamped table at once; tables stamped in earlier
	// phases of the same logical operation share one epoch value.
	epoch uint64

	// groups() state: union-find parents and group indices keyed by
	// node signature, the insertion-ordered root list, and two group
	// buffer sets (build output and merge output — the merge step
	// appends element lists across groups, so it needs distinct
	// backing arrays).
	parent  sigTable
	gidx    sigTable
	merged  sigTable
	roots   []sig.Sig
	groups  []group
	mgroups []group

	// groupWeightedUB() multiset counters keyed by element.
	cnt    elemTable
	used   elemTable
	takenX elemTable
	takenY elemTable

	// Edge arena: groups hold [start, end) ranges into this flat slice
	// so growth never invalidates another group's edges.
	edges []matching.Edge

	// Adaptive verifier state.
	act    gbSorter
	solver matching.Solver

	sims simCache
}

// NewScratch returns an empty scratch workspace.
func NewScratch() *Scratch {
	return &Scratch{}
}

// find is the union-find lookup of groups(): path-halving iterative
// find over the epoch-stamped parent table. A signature missing from
// the table this epoch is its own parent (the seed's lazy insert).
func (s *Scratch) find(x sig.Sig) sig.Sig {
	ep := s.epoch
	r := x
	for {
		p, ok := s.parent.lookup(r, ep)
		if !ok {
			s.parent.set(r, int32(r), ep)
			break
		}
		if sig.Sig(p) == r {
			break
		}
		r = sig.Sig(p)
	}
	// Path compression: point every node on the walk at the root.
	for x != r {
		p, _ := s.parent.lookup(x, ep)
		s.parent.set(x, int32(r), ep)
		x = sig.Sig(p)
	}
	return r
}

// union merges the classes of a and b (a's root under b's, the seed's
// orientation — root identity is part of the deterministic output
// order).
func (s *Scratch) union(a, b sig.Sig) {
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.parent.set(ra, int32(rb), s.epoch)
	}
}

// appendGroup extends gs by one empty group, reusing the element
// buffers of a previously built group when the slice shrinks and
// regrows across pairs.
func appendGroup(gs []group) []group {
	if len(gs) < cap(gs) {
		gs = gs[:len(gs)+1]
		g := &gs[len(gs)-1]
		g.xe = g.xe[:0]
		g.ye = g.ye[:0]
		return gs
	}
	return append(gs, group{})
}
