package verify

import (
	"math"
	"testing"

	"kjoin/internal/elem"
	"kjoin/internal/paperdata"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// newCtx builds a verification context over the Table 1 objects.
func newCtx(t *testing.T, delta, tau float64, plus bool) (*Context, [][]elem.ID) {
	t.Helper()
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{Plus: plus, PhiMin: delta})
	var objs [][]elem.ID
	for _, toks := range paperdata.Table1() {
		var o []elem.ID
		for _, tok := range toks {
			o = append(o, r.ID(tok))
		}
		objs = append(objs, o)
	}
	sp := sig.NewSpace(r, elem.Standard, delta, sig.Deep)
	// Warm signature caches (single-threaded requirement).
	for _, o := range objs {
		for _, e := range o {
			sp.GroupKeys(e)
			sp.ElemSigs(e)
		}
	}
	return &Context{
		Res:    r,
		Space:  sp,
		Metric: elem.Standard,
		Set:    setmetric.Jaccard,
		Delta:  delta,
		Tau:    tau,
	}, objs
}

func TestSimilarityPaperS1S4(t *testing.T) {
	// §2.1.2: δ=0.5, SIMδ(S1, S4) = 27/73 (fuzzy overlap 27/20).
	c, objs := newCtx(t, 0.5, 0.6, false)
	if got := c.Overlap(objs[0], objs[3]); !almostEq(got, 27.0/20) {
		t.Errorf("Overlap(S1, S4) = %v, want 27/20", got)
	}
	if got := c.Similarity(objs[0], objs[3]); !almostEq(got, 27.0/73) {
		t.Errorf("SIM(S1, S4) = %v, want 27/73", got)
	}
}

func TestSimilarityPaperS1S3(t *testing.T) {
	// §2.2: δ=0.7, τ=0.6, SIMδ(S1, S3) = 19/29 > τ → answer.
	c, objs := newCtx(t, 0.7, 0.6, false)
	if got := c.Overlap(objs[0], objs[2]); !almostEq(got, 19.0/12) {
		t.Errorf("Overlap(S1, S3) = %v, want 19/12", got)
	}
	if got := c.Similarity(objs[0], objs[2]); !almostEq(got, 19.0/29) {
		t.Errorf("SIM(S1, S3) = %v, want 19/29", got)
	}
	var st Stats
	for _, k := range []Kind{Basic, SubGraph, Adaptive} {
		if !c.Verify(objs[0], objs[2], k, &st) {
			t.Errorf("Verify(S1, S3, %v) = false, want true", k)
		}
	}
	if st.Results != 3 {
		t.Errorf("Results = %d, want 3", st.Results)
	}
}

func TestCountPruningPaperS1S6(t *testing.T) {
	// §3.2: δ=0.7, τ=0.6: S1, S6 partitioned into groups gives
	// Σ min = 1 < τ/(1+τ)(2+2) = 3/2 → count-pruned.
	c, objs := newCtx(t, 0.7, 0.6, false)
	var st Stats
	if c.Verify(objs[0], objs[5], Adaptive, &st) {
		t.Error("S1, S6 must not verify")
	}
	if st.CountPruned != 1 {
		t.Errorf("CountPruned = %d, want 1", st.CountPruned)
	}
	if st.MatchingCalls != 0 {
		t.Errorf("MatchingCalls = %d, want 0 (pruned before matching)", st.MatchingCalls)
	}
}

func TestWeightedCountPruningPaperS1S4(t *testing.T) {
	// §3.2: δ=0.7, τ=0.6: count pruning keeps S1,S4 (Σ min = 2 ≥ 3/2) but
	// the weighted bound 3/4 + 4/5 = 31/20 < 15/8 prunes it.
	c, objs := newCtx(t, 0.7, 0.6, false)
	var st Stats
	if c.Verify(objs[0], objs[3], Adaptive, &st) {
		t.Error("S1, S4 must not verify")
	}
	if st.CountPruned != 0 {
		t.Errorf("CountPruned = %d, want 0", st.CountPruned)
	}
	if st.WeightedPruned != 1 {
		t.Errorf("WeightedPruned = %d, want 1", st.WeightedPruned)
	}
}

func TestAdaptivePaperS8S9(t *testing.T) {
	// §5.2: δ=0.6, τ=0.6 on S8, S9. With the Figure 1 structure the
	// group bounds are Bl = 13/6 + 8/5 = 113/30 (as in the paper) and
	// Bu = 9/4 + 47/20. Neither bound decides, the location group has
	// the loosest bounds and is solved first (exact 8/5), after which
	// Bu = 9/4 + 8/5 = 77/20 < 4.5 rejects with a single matching call.
	c, objs := newCtx(t, 0.6, 0.6, false)
	var st Stats
	if c.Verify(objs[7], objs[8], Adaptive, &st) {
		t.Error("S8, S9 must not verify")
	}
	if st.UBRejected != 1 {
		t.Errorf("UBRejected = %d, want 1", st.UBRejected)
	}
	if st.MatchingCalls != 1 {
		t.Errorf("MatchingCalls = %d, want 1 (early termination)", st.MatchingCalls)
	}
	// SubGraph needs both groups; Basic one big call.
	var st2 Stats
	if c.Verify(objs[7], objs[8], SubGraph, &st2) {
		t.Error("SubGraph must agree")
	}
	if st2.MatchingCalls != 2 {
		t.Errorf("SubGraph MatchingCalls = %d, want 2", st2.MatchingCalls)
	}
	// Exact overlap = 13/6 + 8/5 = 113/30.
	if got := c.Overlap(objs[7], objs[8]); !almostEq(got, 113.0/30) {
		t.Errorf("Overlap(S8, S9) = %v, want 113/30", got)
	}
}

// Basic is the naive verifier of §3.2: it count-prunes (framework level)
// but never applies the weighted pruning of Lemma 4 — it computes the
// matching directly instead.
func TestBasicSkipsWeightedPruning(t *testing.T) {
	c, objs := newCtx(t, 0.7, 0.6, false)
	var st Stats
	// S1, S4 is weighted-prunable (paper §3.2) but survives count pruning.
	if c.Verify(objs[0], objs[3], Basic, &st) {
		t.Error("S1, S4 must not verify")
	}
	if st.WeightedPruned != 0 {
		t.Errorf("Basic should not weighted-prune, got %d", st.WeightedPruned)
	}
	if st.MatchingCalls != 1 {
		t.Errorf("Basic should compute one whole-graph matching, got %d", st.MatchingCalls)
	}
	// The count-prunable pair S1, S6 is pruned even under Basic.
	var st2 Stats
	if c.Verify(objs[0], objs[5], Basic, &st2) {
		t.Error("S1, S6 must not verify")
	}
	if st2.CountPruned != 1 || st2.MatchingCalls != 0 {
		t.Errorf("Basic should count-prune S1,S6: %+v", st2)
	}
}

// Lemma 8: the subgraph decomposition computes the same overlap as the
// whole-graph matching, for every pair of Table 1 objects and several δ.
func TestSubgraphDecompositionExact(t *testing.T) {
	for _, delta := range []float64{0.5, 0.6, 0.7, 0.8} {
		c, objs := newCtx(t, delta, 0.6, false)
		for i := range objs {
			for j := range objs {
				a := c.Overlap(objs[i], objs[j])
				b := c.OverlapBasic(objs[i], objs[j])
				if !almostEq(a, b) {
					t.Errorf("δ=%v: Overlap(S%d,S%d) subgraph %v != basic %v", delta, i+1, j+1, a, b)
				}
			}
		}
	}
}

// All three verifiers agree with the ground-truth similarity on every
// Table 1 pair across a δ × τ grid, in both plain and Plus modes.
func TestVerifierAgreement(t *testing.T) {
	for _, plus := range []bool{false, true} {
		for _, delta := range []float64{0.5, 0.7, 0.8} {
			for _, tau := range []float64{0.3, 0.5, 0.6, 0.8} {
				c, objs := newCtx(t, delta, tau, plus)
				for i := range objs {
					for j := i + 1; j < len(objs); j++ {
						want := c.Similarity(objs[i], objs[j]) >= tau-1e-9
						for _, k := range []Kind{Basic, SubGraph, Adaptive} {
							var st Stats
							if got := c.Verify(objs[i], objs[j], k, &st); got != want {
								t.Errorf("plus=%v δ=%v τ=%v %v: Verify(S%d,S%d)=%v, want %v (sim=%v)",
									plus, delta, tau, k, i+1, j+1, got, want, c.Similarity(objs[i], objs[j]))
							}
						}
					}
				}
			}
		}
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	c, objs := newCtx(t, 0.7, 0.6, false)
	for i, o := range objs {
		if got := c.Similarity(o, o); !almostEq(got, 1) {
			t.Errorf("SIM(S%d, S%d) = %v, want 1", i+1, i+1, got)
		}
	}
}

func TestDiceAndCosineVerify(t *testing.T) {
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{})
	var objs [][]elem.ID
	for _, toks := range paperdata.Table1() {
		var o []elem.ID
		for _, tok := range toks {
			o = append(o, r.ID(tok))
		}
		objs = append(objs, o)
	}
	sp := sig.NewSpace(r, elem.Standard, 0.7, sig.Deep)
	for _, o := range objs {
		for _, e := range o {
			sp.GroupKeys(e)
		}
	}
	for _, set := range []setmetric.Kind{setmetric.Dice, setmetric.Cosine} {
		c := &Context{Res: r, Space: sp, Metric: elem.Standard, Set: set, Delta: 0.7, Tau: 0.7}
		for i := range objs {
			for j := i + 1; j < len(objs); j++ {
				want := c.Similarity(objs[i], objs[j]) >= 0.7-1e-9
				var st Stats
				if got := c.Verify(objs[i], objs[j], Adaptive, &st); got != want {
					t.Errorf("%v: Verify(S%d,S%d)=%v, want %v", set, i+1, j+1, got, want)
				}
			}
		}
	}
}

func TestEmptyObjects(t *testing.T) {
	c, objs := newCtx(t, 0.7, 0.6, false)
	var empty []elem.ID
	if got := c.Overlap(empty, objs[0]); got != 0 {
		t.Errorf("Overlap(∅, S1) = %v, want 0", got)
	}
	var st Stats
	if c.Verify(empty, objs[0], Adaptive, &st) {
		t.Error("empty object must not verify against S1")
	}
	if got := c.Similarity(empty, empty); got != 1 {
		t.Errorf("SIM(∅, ∅) = %v, want 1", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Pairs: 1, CountPruned: 2, WeightedPruned: 3, UBRejected: 4, LBAccepted: 5, MatchingCalls: 6, Results: 7}
	b := a
	a.Add(b)
	if a.Pairs != 2 || a.CountPruned != 4 || a.WeightedPruned != 6 || a.UBRejected != 8 ||
		a.LBAccepted != 10 || a.MatchingCalls != 12 || a.Results != 14 {
		t.Errorf("Add mismatch: %+v", a)
	}
}

func TestKindString(t *testing.T) {
	if Basic.String() != "basic" || SubGraph.String() != "subgraph" || Adaptive.String() != "adaptive" || Kind(9).String() != "unknown" {
		t.Error("Kind.String mismatch")
	}
}

// Plus-mode grouping merges groups through multi-mapped elements and the
// verifiers still agree (§6.4).
func TestPlusModeGroupMerging(t *testing.T) {
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{Plus: true, PhiMin: 0.6})
	// "pizzahat" maps approximately to PizzaHut; with low φ it may also
	// reach other nodes, exercising multi-key grouping.
	x := []elem.ID{r.ID("pizzahat"), r.ID("kfc")}
	y := []elem.ID{r.ID("pizzahut"), r.ID("burgerking")}
	sp := sig.NewSpace(r, elem.Standard, 0.6, sig.Deep)
	for _, e := range append(append([]elem.ID{}, x...), y...) {
		sp.GroupKeys(e)
	}
	c := &Context{Res: r, Space: sp, Metric: elem.Standard, Set: setmetric.Jaccard, Delta: 0.6, Tau: 0.5}
	want := c.Similarity(x, y) >= 0.5-1e-9
	for _, k := range []Kind{Basic, SubGraph, Adaptive} {
		var st Stats
		if got := c.Verify(x, y, k, &st); got != want {
			t.Errorf("%v: got %v, want %v", k, got, want)
		}
	}
	if got, want := c.Overlap(x, y), c.OverlapBasic(x, y); !almostEq(got, want) {
		t.Errorf("plus-mode decomposition %v != basic %v", got, want)
	}
}
