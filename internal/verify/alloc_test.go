package verify

import (
	"testing"

	"kjoin/internal/elem"
	"kjoin/internal/setmetric"
)

// TestSteadyStateVerifyZeroAlloc pins the allocation contract of the
// verification hot path: once a Context's scratch has grown to the
// workload's steady-state sizes, verifying a candidate pair (including
// the adaptive ladder, Hungarian solves and the similarity cache) must
// perform zero heap allocations. A regression here silently reintroduces
// the per-pair map/slice churn this scratch design removed.
func TestSteadyStateVerifyZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful in -short mode")
	}
	ctx, objs, keys := diffCtx(t, 200, 0.8, 0.8, elem.Standard, setmetric.Jaccard, false)

	kinds := []Kind{Basic, SubGraph, Adaptive}
	var st Stats
	// Warm-up: let every scratch buffer reach its steady-state capacity
	// across the whole pair stream.
	for i := 0; i < 4*len(objs); i++ {
		x, y := i%len(objs), (i*7+13)%len(objs)
		for _, k := range kinds {
			ctx.VerifyKeyed(objs[x], objs[y], keys[x], keys[y], k, &st)
		}
		ctx.Similarity(objs[x], objs[y])
	}

	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				x, y := i%len(objs), (i*7+13)%len(objs)
				i++
				ctx.VerifyKeyed(objs[x], objs[y], keys[x], keys[y], k, &st)
			})
			if allocs != 0 {
				t.Errorf("steady-state VerifyKeyed(%v): %v allocs/pair, want 0", k, allocs)
			}
		})
	}

	t.Run("similarity", func(t *testing.T) {
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			x, y := i%len(objs), (i*7+13)%len(objs)
			i++
			ctx.Similarity(objs[x], objs[y])
		})
		if allocs != 0 {
			t.Errorf("steady-state Similarity: %v allocs/pair, want 0", allocs)
		}
	})
}

// TestSolverReuseZeroAlloc pins the matching.Solver contract: repeat
// solves over already-grown workspace allocate nothing.
func TestSolverReuseZeroAlloc(t *testing.T) {
	ctx, objs, _ := diffCtx(t, 60, 0.8, 0.8, elem.Standard, setmetric.Jaccard, false)
	s := ctx.scratch()
	// Warm both the scratch and the solver.
	for i := 0; i < len(objs); i++ {
		ctx.Overlap(objs[i], objs[(i+1)%len(objs)])
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		x, y := objs[i%len(objs)], objs[(i*3+1)%len(objs)]
		i++
		s.edges = ctx.appendEdges(s, s.edges[:0], x, y)
		s.solver.MaxWeight(len(x), len(y), s.edges)
	})
	if allocs != 0 {
		t.Errorf("warmed Solver.MaxWeight: %v allocs/run, want 0", allocs)
	}
}
