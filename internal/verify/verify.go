// Package verify implements K-Join's verification ladder: the exact
// knowledge-aware object similarity (Definition 2), count pruning
// (Lemma 3), weighted count pruning (Lemma 4), subgraph-matching
// decomposition (Lemma 8), and the adaptive bound-driven verification of
// §5.2 (Algorithm 3).
package verify

import (
	"sort"

	"kjoin/internal/elem"
	"kjoin/internal/matching"
	"kjoin/internal/mathx"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
)

// Kind selects the verification algorithm compared in the paper's Fig 11.
type Kind int

const (
	// Basic computes the similarity with one Hungarian run over the whole
	// element bigraph (§3.2's "compute the real similarity").
	Basic Kind = iota
	// SubGraph decomposes the bigraph into per-node-signature groups and
	// solves each small matching independently (Lemma 8).
	SubGraph
	// Adaptive estimates per-group upper and lower bounds, accepts or
	// rejects early, and solves groups in descending looseness order
	// (Algorithm 3).
	Adaptive
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Basic:
		return "basic"
	case SubGraph:
		return "subgraph"
	case Adaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// Stats counts the work done and the pruning achieved by verification.
type Stats struct {
	Pairs          int64 // verified candidate pairs
	CountPruned    int64 // pruned by Lemma 3
	WeightedPruned int64 // pruned by Lemma 4
	UBRejected     int64 // adaptive: rejected via upper bound
	LBAccepted     int64 // adaptive: accepted via lower bound
	MatchingCalls  int64 // Hungarian invocations
	Results        int64 // pairs that verified similar
}

// Add accumulates other into s (for merging per-worker stats).
func (s *Stats) Add(other Stats) {
	s.Pairs += other.Pairs
	s.CountPruned += other.CountPruned
	s.WeightedPruned += other.WeightedPruned
	s.UBRejected += other.UBRejected
	s.LBAccepted += other.LBAccepted
	s.MatchingCalls += other.MatchingCalls
	s.Results += other.Results
}

// Context carries everything verification needs. It is immutable after
// construction and safe for concurrent use (provided all elements were
// resolved and their signatures generated beforehand; see elem.Resolver).
type Context struct {
	Res    *elem.Resolver
	Space  *sig.Space
	Metric elem.Metric
	Set    setmetric.Kind
	Delta  float64
	Tau    float64
}

// group is one node-signature group of a candidate pair: the element
// indices (into x and y) whose node signatures fall in the group.
type group struct {
	xe, ye []elem.ID
}

// groups partitions the elements of x and y by node signature (Lemma 1:
// elements in different groups cannot be similar). Elements with several
// node signatures (K-Join+, §6.4) merge their groups via union-find.
func (c *Context) groups(x, y []elem.ID) []group {
	parent := map[sig.Sig]sig.Sig{}
	var find func(s sig.Sig) sig.Sig
	find = func(s sig.Sig) sig.Sig {
		p, ok := parent[s]
		if !ok {
			parent[s] = s
			return s
		}
		if p == s {
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(a, b sig.Sig) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	keyOf := func(e elem.ID) sig.Sig {
		keys := c.Space.GroupKeys(e)
		for i := 1; i < len(keys); i++ {
			union(keys[0], keys[i])
		}
		return keys[0]
	}
	idx := map[sig.Sig]int{}
	var roots []sig.Sig // insertion order, for deterministic output
	var gs []group
	for _, e := range x {
		r := find(keyOf(e))
		i, ok := idx[r]
		if !ok {
			i = len(gs)
			idx[r] = i
			roots = append(roots, r)
			gs = append(gs, group{})
		}
		gs[i].xe = append(gs[i].xe, e)
	}
	for _, e := range y {
		r := find(keyOf(e))
		i, ok := idx[r]
		if !ok {
			i = len(gs)
			idx[r] = i
			roots = append(roots, r)
			gs = append(gs, group{})
		}
		gs[i].ye = append(gs[i].ye, e)
	}
	// Union-find may have merged two roots after their groups were
	// created; merge such groups, preserving first-seen order so that
	// downstream floating-point sums are deterministic.
	merged := map[sig.Sig]int{}
	var out []group
	for _, r := range roots {
		i := idx[r]
		root := find(r)
		if j, ok := merged[root]; ok {
			out[j].xe = append(out[j].xe, gs[i].xe...)
			out[j].ye = append(out[j].ye, gs[i].ye...)
		} else {
			merged[root] = len(out)
			out = append(out, gs[i])
		}
	}
	return out
}

// edges returns the δ-thresholded similarity edges between xe and ye
// (paper §2.1.2: edges below δ are removed from the bigraph).
func (c *Context) edges(xe, ye []elem.ID) []matching.Edge {
	var es []matching.Edge
	for i, a := range xe {
		for j, b := range ye {
			if s := c.Res.Sim(a, b, c.Metric); mathx.GE(s, c.Delta) {
				es = append(es, matching.Edge{X: i, Y: j, W: s})
			}
		}
	}
	return es
}

// Overlap computes the exact fuzzy overlap ||x ∩̃δ y|| using the subgraph
// decomposition (Lemma 8 guarantees it equals the whole-graph matching).
func (c *Context) Overlap(x, y []elem.ID) float64 {
	total := 0.0
	for _, g := range c.groups(x, y) {
		if len(g.xe) == 0 || len(g.ye) == 0 {
			continue
		}
		es := c.edges(g.xe, g.ye)
		if len(es) == 0 {
			continue
		}
		o, _ := matching.MaxWeight(len(g.xe), len(g.ye), es)
		total += o
	}
	return total
}

// OverlapBasic computes the fuzzy overlap with a single Hungarian run on
// the whole bigraph (the Basic verifier's work).
func (c *Context) OverlapBasic(x, y []elem.ID) float64 {
	es := c.edges(x, y)
	if len(es) == 0 {
		return 0
	}
	o, _ := matching.MaxWeight(len(x), len(y), es)
	return o
}

// Similarity returns SIMδ(x, y) under the context's set metric, computed
// exactly.
func (c *Context) Similarity(x, y []elem.ID) float64 {
	return c.Set.Sim(c.Overlap(x, y), len(x), len(y))
}

// SortedKeys returns the multiset of node-signature group keys of an
// object, sorted — one key per (element, key) pair. Precompute it once
// per object and pass it to VerifyKeyed for a fast count-pruning path.
func (c *Context) SortedKeys(elems []elem.ID) []sig.Sig {
	var keys []sig.Sig
	for _, e := range elems {
		keys = append(keys, c.Space.GroupKeys(e)...)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// countBound returns Σ_k min(count_x(k), count_y(k)) over the sorted key
// multisets — an upper bound on the number of similar element pairs
// (each matched pair shares a key and consumes one x- and one y-element
// counted under it), and therefore on the fuzzy overlap (edge weights
// are ≤ 1). This is Lemma 3 computed without building groups.
func countBound(xk, yk []sig.Sig) int {
	i, j, total := 0, 0, 0
	for i < len(xk) && j < len(yk) {
		switch {
		case xk[i] < yk[j]:
			i++
		case xk[i] > yk[j]:
			j++
		default:
			k := xk[i]
			ci, cj := 0, 0
			for i < len(xk) && xk[i] == k {
				i++
				ci++
			}
			for j < len(yk) && yk[j] == k {
				j++
				cj++
			}
			if cj < ci {
				ci = cj
			}
			total += ci
		}
	}
	return total
}

// VerifyKeyed is Verify with precomputed sorted key multisets (see
// SortedKeys): candidates failing count pruning are rejected without
// building the per-pair group structure, which is where the bulk of
// filter-generated candidates die.
func (c *Context) VerifyKeyed(x, y []elem.ID, xKeys, yKeys []sig.Sig, kind Kind, st *Stats) bool {
	need := c.Set.PairOverlap(c.Tau, len(x), len(y))
	if mathx.LT(float64(countBound(xKeys, yKeys)), need) {
		st.Pairs++
		st.CountPruned++
		return false
	}
	return c.Verify(x, y, kind, st)
}

// Verify reports whether SIMδ(x, y) ≥ τ using the given verification
// algorithm, updating st. Count pruning (Lemma 3, part of the base
// framework §3.2) runs for every Kind; the weighted count pruning of
// Lemma 4 belongs to the improved verifiers (SubGraph, Adaptive), while
// Basic then computes the similarity directly with one whole-bigraph
// matching — the naive method the paper's Figure 11 compares against.
func (c *Context) Verify(x, y []elem.ID, kind Kind, st *Stats) bool {
	st.Pairs++
	need := c.Set.PairOverlap(c.Tau, len(x), len(y))
	gs := c.groups(x, y)

	// Count pruning (Lemma 3): Σ min(|Six|, |Siy|) bounds the overlap.
	countUB := 0
	for _, g := range gs {
		m := len(g.xe)
		if len(g.ye) < m {
			m = len(g.ye)
		}
		countUB += m
	}
	if mathx.LT(float64(countUB), need) {
		st.CountPruned++
		return false
	}

	if kind == Basic {
		st.MatchingCalls++
		ok := mathx.GE(c.OverlapBasic(x, y), need)
		if ok {
			st.Results++
		}
		return ok
	}

	// Weighted count pruning (Lemma 4): exact matches count 1, the rest
	// at most their MaxDiffSim.
	wUB := 0.0
	for _, g := range gs {
		wUB += c.groupWeightedUB(g)
	}
	if mathx.LT(wUB, need) {
		st.WeightedPruned++
		return false
	}

	var ok bool
	switch kind {
	case SubGraph:
		total := 0.0
		for _, g := range gs {
			if len(g.xe) == 0 || len(g.ye) == 0 {
				continue
			}
			es := c.edges(g.xe, g.ye)
			if len(es) == 0 {
				continue
			}
			st.MatchingCalls++
			o, _ := matching.MaxWeight(len(g.xe), len(g.ye), es)
			total += o
		}
		ok = mathx.GE(total, need)
	default: // Adaptive
		ok = c.adaptive(gs, need, st)
	}
	if ok {
		st.Results++
	}
	return ok
}

// groupWeightedUB computes the per-group term of Lemma 4:
// |Six ∩ Siy| + min(Σ MaxDiffSim over Six−∩, Σ MaxDiffSim over Siy−∩).
// The intersection is a multiset intersection on element identity.
func (c *Context) groupWeightedUB(g group) float64 {
	if len(g.xe) == 0 || len(g.ye) == 0 {
		return 0
	}
	cnt := map[elem.ID]int{}
	for _, e := range g.xe {
		cnt[e]++
	}
	inter := 0
	used := map[elem.ID]int{}
	for _, e := range g.ye {
		if used[e] < cnt[e] {
			used[e]++
			inter++
		}
	}
	sx, sy := 0.0, 0.0
	takenX := map[elem.ID]int{}
	for _, e := range g.xe {
		takenX[e]++
		if takenX[e] <= used[e] {
			continue // part of the intersection
		}
		sx += c.Res.MaxDiffSim(e, c.Metric)
	}
	takenY := map[elem.ID]int{}
	for _, e := range g.ye {
		takenY[e]++
		if takenY[e] <= used[e] {
			continue
		}
		sy += c.Res.MaxDiffSim(e, c.Metric)
	}
	m := sx
	if sy < m {
		m = sy
	}
	return float64(inter) + m
}

// adaptive is Algorithm 3: per-group bounds with early accept/reject and
// loosest-groups-first exact matching.
func (c *Context) adaptive(gs []group, need float64, st *Stats) bool {
	type gb struct {
		g      group
		es     []matching.Edge
		lo, up float64
	}
	var act []gb
	bl, bu := 0.0, 0.0
	for _, g := range gs {
		if len(g.xe) == 0 || len(g.ye) == 0 {
			continue
		}
		es := c.edges(g.xe, g.ye)
		if len(es) == 0 {
			continue
		}
		lo := matching.LowerBound(len(g.xe), len(g.ye), es)
		up := matching.UpperBound(len(g.xe), len(g.ye), es)
		act = append(act, gb{g: g, es: es, lo: lo, up: up})
		bl += lo
		bu += up
	}
	if mathx.GE(bl, need) {
		st.LBAccepted++
		return true
	}
	if mathx.LT(bu, need) {
		st.UBRejected++
		return false
	}
	// Loosest groups first (§5.2.3): largest B^u − B^l gap.
	sort.Slice(act, func(i, j int) bool {
		return act[i].up-act[i].lo > act[j].up-act[j].lo
	})
	for _, a := range act {
		st.MatchingCalls++
		s, _ := matching.MaxWeight(len(a.g.xe), len(a.g.ye), a.es)
		bu += s - a.up
		if mathx.LT(bu, need) {
			st.UBRejected++
			return false
		}
		bl += s - a.lo
		if mathx.GE(bl, need) {
			st.LBAccepted++
			return true
		}
	}
	return mathx.GE(bl, need)
}
