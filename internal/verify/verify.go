// Package verify implements K-Join's verification ladder: the exact
// knowledge-aware object similarity (Definition 2), count pruning
// (Lemma 3), weighted count pruning (Lemma 4), subgraph-matching
// decomposition (Lemma 8), and the adaptive bound-driven verification of
// §5.2 (Algorithm 3).
package verify

import (
	"slices"

	"kjoin/internal/elem"
	"kjoin/internal/matching"
	"kjoin/internal/mathx"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
)

// Kind selects the verification algorithm compared in the paper's Fig 11.
type Kind int

const (
	// Basic computes the similarity with one Hungarian run over the whole
	// element bigraph (§3.2's "compute the real similarity").
	Basic Kind = iota
	// SubGraph decomposes the bigraph into per-node-signature groups and
	// solves each small matching independently (Lemma 8).
	SubGraph
	// Adaptive estimates per-group upper and lower bounds, accepts or
	// rejects early, and solves groups in descending looseness order
	// (Algorithm 3).
	Adaptive
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Basic:
		return "basic"
	case SubGraph:
		return "subgraph"
	case Adaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// Stats counts the work done and the pruning achieved by verification.
type Stats struct {
	Pairs          int64 // verified candidate pairs
	CountPruned    int64 // pruned by Lemma 3
	WeightedPruned int64 // pruned by Lemma 4
	UBRejected     int64 // adaptive: rejected via upper bound
	LBAccepted     int64 // adaptive: accepted via lower bound
	MatchingCalls  int64 // Hungarian invocations
	Results        int64 // pairs that verified similar
}

// Add accumulates other into s (for merging per-worker stats).
func (s *Stats) Add(other Stats) {
	s.Pairs += other.Pairs
	s.CountPruned += other.CountPruned
	s.WeightedPruned += other.WeightedPruned
	s.UBRejected += other.UBRejected
	s.LBAccepted += other.LBAccepted
	s.MatchingCalls += other.MatchingCalls
	s.Results += other.Results
}

// Context carries everything verification needs. The configuration
// fields are immutable after construction, but verification runs on a
// lazily created per-Context Scratch workspace, so a Context is NOT
// safe for concurrent use: give every worker goroutine its own via
// Clone. (All elements must be resolved and their signatures generated
// beforehand; see elem.Resolver.)
type Context struct {
	Res    *elem.Resolver
	Space  *sig.Space
	Metric elem.Metric
	Set    setmetric.Kind
	Delta  float64
	Tau    float64

	scr *Scratch
}

// Clone returns a copy of c with its own fresh Scratch, sharing the
// (read-only) resolver and signature space. Use one clone per worker
// goroutine.
func (c *Context) Clone() *Context {
	cp := *c
	cp.scr = NewScratch()
	return &cp
}

// Prime materializes the context's lazily created Scratch. Callers that
// later Clone the context from other goroutines (a sync.Pool New hook)
// must prime it first: Clone reads the scratch pointer, and a concurrent
// first verification on the original would otherwise write it.
func (c *Context) Prime() { c.scratch() }

// scratch returns the context's workspace, creating it on first use.
func (c *Context) scratch() *Scratch {
	if c.scr == nil {
		c.scr = NewScratch()
	}
	return c.scr
}

// sim returns the element similarity Res.Sim(a, b, Metric) through the
// scratch's bounded pair cache. The cache key is the packed unordered
// pair (Resolver.Sim is exactly symmetric: the metric formulas, φ
// products and LCA are all symmetric in their arguments), and a hit
// returns the identical float Sim computed, so caching never changes
// results.
func (c *Context) sim(s *Scratch, a, b elem.ID) float64 {
	if a == b {
		return 1
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	if v, ok := s.sims.get(key); ok {
		return v
	}
	v := c.Res.Sim(a, b, c.Metric)
	s.sims.put(key, v)
	return v
}

// group is one node-signature group of a candidate pair: the element
// indices (into x and y) whose node signatures fall in the group.
type group struct {
	xe, ye []elem.ID
}

// groups partitions the elements of x and y by node signature (Lemma 1:
// elements in different groups cannot be similar). Elements with several
// node signatures (K-Join+, §6.4) merge their groups via union-find.
//
// The returned slice and its element lists belong to the scratch and are
// valid until the next groups() call on this context.
func (c *Context) groups(x, y []elem.ID) []group {
	s := c.scratch()
	s.epoch++
	ep := s.epoch
	keyOf := func(e elem.ID) sig.Sig {
		keys := c.Space.GroupKeys(e)
		for i := 1; i < len(keys); i++ {
			s.union(keys[0], keys[i])
		}
		return keys[0]
	}
	s.roots = s.roots[:0]
	gs := s.groups[:0]
	for _, e := range x {
		r := s.find(keyOf(e))
		i, ok := s.gidx.lookup(r, ep)
		if !ok {
			i = int32(len(gs))
			s.gidx.set(r, i, ep)
			s.roots = append(s.roots, r)
			gs = appendGroup(gs)
		}
		gs[i].xe = append(gs[i].xe, e)
	}
	for _, e := range y {
		r := s.find(keyOf(e))
		i, ok := s.gidx.lookup(r, ep)
		if !ok {
			i = int32(len(gs))
			s.gidx.set(r, i, ep)
			s.roots = append(s.roots, r)
			gs = appendGroup(gs)
		}
		gs[i].ye = append(gs[i].ye, e)
	}
	s.groups = gs
	// Union-find may have merged two roots after their groups were
	// created; merge such groups, preserving first-seen order so that
	// downstream floating-point sums are deterministic. Without late
	// merges (the common case — multi-mapping elements only arise under
	// Plus resolution) the build order already is the output order.
	needMerge := false
	for _, r := range s.roots {
		if s.find(r) != r {
			needMerge = true
			break
		}
	}
	if !needMerge {
		return gs
	}
	out := s.mgroups[:0]
	for gi, r := range s.roots {
		root := s.find(r)
		if j, ok := s.merged.lookup(root, ep); ok {
			out[j].xe = append(out[j].xe, gs[gi].xe...)
			out[j].ye = append(out[j].ye, gs[gi].ye...)
		} else {
			s.merged.set(root, int32(len(out)), ep)
			out = appendGroup(out)
			out[len(out)-1].xe = append(out[len(out)-1].xe, gs[gi].xe...)
			out[len(out)-1].ye = append(out[len(out)-1].ye, gs[gi].ye...)
		}
	}
	s.mgroups = out
	return out
}

// appendEdges appends the δ-thresholded similarity edges between xe and
// ye to dst (paper §2.1.2: edges below δ are removed from the bigraph).
func (c *Context) appendEdges(s *Scratch, dst []matching.Edge, xe, ye []elem.ID) []matching.Edge {
	for i, a := range xe {
		for j, b := range ye {
			if w := c.sim(s, a, b); mathx.GE(w, c.Delta) {
				dst = append(dst, matching.Edge{X: i, Y: j, W: w})
			}
		}
	}
	return dst
}

// Overlap computes the exact fuzzy overlap ||x ∩̃δ y|| using the subgraph
// decomposition (Lemma 8 guarantees it equals the whole-graph matching).
func (c *Context) Overlap(x, y []elem.ID) float64 {
	s := c.scratch()
	total := 0.0
	for _, g := range c.groups(x, y) {
		if len(g.xe) == 0 || len(g.ye) == 0 {
			continue
		}
		s.edges = c.appendEdges(s, s.edges[:0], g.xe, g.ye)
		if len(s.edges) == 0 {
			continue
		}
		total += s.solver.MaxWeight(len(g.xe), len(g.ye), s.edges)
	}
	return total
}

// OverlapBasic computes the fuzzy overlap with a single Hungarian run on
// the whole bigraph (the Basic verifier's work).
func (c *Context) OverlapBasic(x, y []elem.ID) float64 {
	s := c.scratch()
	s.edges = c.appendEdges(s, s.edges[:0], x, y)
	if len(s.edges) == 0 {
		return 0
	}
	return s.solver.MaxWeight(len(x), len(y), s.edges)
}

// Similarity returns SIMδ(x, y) under the context's set metric, computed
// exactly.
func (c *Context) Similarity(x, y []elem.ID) float64 {
	return c.Set.Sim(c.Overlap(x, y), len(x), len(y))
}

// SortedKeys returns the multiset of node-signature group keys of an
// object, sorted — one key per (element, key) pair. Precompute it once
// per object and pass it to VerifyKeyed for a fast count-pruning path.
func (c *Context) SortedKeys(elems []elem.ID) []sig.Sig {
	n := 0
	for _, e := range elems {
		n += len(c.Space.GroupKeys(e))
	}
	return c.AppendSortedKeys(make([]sig.Sig, 0, n), elems)
}

// AppendSortedKeys appends the object's sorted group-key multiset to dst
// (sorting only the appended region) — the allocation-free form of
// SortedKeys for callers that manage their own key buffers or arenas.
func (c *Context) AppendSortedKeys(dst []sig.Sig, elems []elem.ID) []sig.Sig {
	start := len(dst)
	for _, e := range elems {
		dst = append(dst, c.Space.GroupKeys(e)...)
	}
	slices.Sort(dst[start:])
	return dst
}

// countBound returns Σ_k min(count_x(k), count_y(k)) over the sorted key
// multisets — an upper bound on the number of similar element pairs
// (each matched pair shares a key and consumes one x- and one y-element
// counted under it), and therefore on the fuzzy overlap (edge weights
// are ≤ 1). This is Lemma 3 computed without building groups.
func countBound(xk, yk []sig.Sig) int {
	i, j, total := 0, 0, 0
	for i < len(xk) && j < len(yk) {
		switch {
		case xk[i] < yk[j]:
			i++
		case xk[i] > yk[j]:
			j++
		default:
			k := xk[i]
			ci, cj := 0, 0
			for i < len(xk) && xk[i] == k {
				i++
				ci++
			}
			for j < len(yk) && yk[j] == k {
				j++
				cj++
			}
			if cj < ci {
				ci = cj
			}
			total += ci
		}
	}
	return total
}

// VerifyKeyed is Verify with precomputed sorted key multisets (see
// SortedKeys): candidates failing count pruning are rejected without
// building the per-pair group structure, which is where the bulk of
// filter-generated candidates die.
func (c *Context) VerifyKeyed(x, y []elem.ID, xKeys, yKeys []sig.Sig, kind Kind, st *Stats) bool {
	need := c.Set.PairOverlap(c.Tau, len(x), len(y))
	if mathx.LT(float64(countBound(xKeys, yKeys)), need) {
		st.Pairs++
		st.CountPruned++
		return false
	}
	return c.Verify(x, y, kind, st)
}

// Verify reports whether SIMδ(x, y) ≥ τ using the given verification
// algorithm, updating st. Count pruning (Lemma 3, part of the base
// framework §3.2) runs for every Kind; the weighted count pruning of
// Lemma 4 belongs to the improved verifiers (SubGraph, Adaptive), while
// Basic then computes the similarity directly with one whole-bigraph
// matching — the naive method the paper's Figure 11 compares against.
func (c *Context) Verify(x, y []elem.ID, kind Kind, st *Stats) bool {
	st.Pairs++
	need := c.Set.PairOverlap(c.Tau, len(x), len(y))
	s := c.scratch()
	gs := c.groups(x, y)

	// Count pruning (Lemma 3): Σ min(|Six|, |Siy|) bounds the overlap.
	countUB := 0
	for _, g := range gs {
		m := len(g.xe)
		if len(g.ye) < m {
			m = len(g.ye)
		}
		countUB += m
	}
	if mathx.LT(float64(countUB), need) {
		st.CountPruned++
		return false
	}

	if kind == Basic {
		st.MatchingCalls++
		ok := mathx.GE(c.OverlapBasic(x, y), need)
		if ok {
			st.Results++
		}
		return ok
	}

	// Weighted count pruning (Lemma 4): exact matches count 1, the rest
	// at most their MaxDiffSim.
	wUB := 0.0
	for _, g := range gs {
		wUB += c.groupWeightedUB(s, g)
	}
	if mathx.LT(wUB, need) {
		st.WeightedPruned++
		return false
	}

	var ok bool
	switch kind {
	case SubGraph:
		total := 0.0
		for _, g := range gs {
			if len(g.xe) == 0 || len(g.ye) == 0 {
				continue
			}
			s.edges = c.appendEdges(s, s.edges[:0], g.xe, g.ye)
			if len(s.edges) == 0 {
				continue
			}
			st.MatchingCalls++
			total += s.solver.MaxWeight(len(g.xe), len(g.ye), s.edges)
		}
		ok = mathx.GE(total, need)
	default: // Adaptive
		ok = c.adaptive(s, gs, need, st)
	}
	if ok {
		st.Results++
	}
	return ok
}

// groupWeightedUB computes the per-group term of Lemma 4:
// |Six ∩ Siy| + min(Σ MaxDiffSim over Six−∩, Σ MaxDiffSim over Siy−∩).
// The intersection is a multiset intersection on element identity,
// counted in the scratch's epoch-stamped element tables.
func (c *Context) groupWeightedUB(s *Scratch, g group) float64 {
	if len(g.xe) == 0 || len(g.ye) == 0 {
		return 0
	}
	s.epoch++
	ep := s.epoch
	for _, e := range g.xe {
		s.cnt.incr(e, ep)
	}
	inter := 0
	for _, e := range g.ye {
		if s.used.get(e, ep) < s.cnt.get(e, ep) {
			s.used.incr(e, ep)
			inter++
		}
	}
	sx, sy := 0.0, 0.0
	for _, e := range g.xe {
		if s.takenX.incr(e, ep) <= s.used.get(e, ep) {
			continue // part of the intersection
		}
		sx += c.Res.MaxDiffSim(e, c.Metric)
	}
	for _, e := range g.ye {
		if s.takenY.incr(e, ep) <= s.used.get(e, ep) {
			continue
		}
		sy += c.Res.MaxDiffSim(e, c.Metric)
	}
	m := sx
	if sy < m {
		m = sy
	}
	return float64(inter) + m
}

// adaptive is Algorithm 3: per-group bounds with early accept/reject and
// loosest-groups-first exact matching. Group edge lists live in the
// scratch edge arena as [start, end) ranges, so arena growth while later
// groups are built never invalidates earlier groups.
func (c *Context) adaptive(s *Scratch, gs []group, need float64, st *Stats) bool {
	act := s.act.act[:0]
	s.edges = s.edges[:0]
	bl, bu := 0.0, 0.0
	for gi, g := range gs {
		if len(g.xe) == 0 || len(g.ye) == 0 {
			continue
		}
		start := len(s.edges)
		s.edges = c.appendEdges(s, s.edges, g.xe, g.ye)
		if len(s.edges) == start {
			continue
		}
		es := s.edges[start:]
		lo := s.solver.LowerBound(len(g.xe), len(g.ye), es)
		up := s.solver.UpperBound(len(g.xe), len(g.ye), es)
		act = append(act, gb{gi: int32(gi), start: int32(start), end: int32(len(s.edges)), lo: lo, up: up})
		bl += lo
		bu += up
	}
	s.act.act = act
	if mathx.GE(bl, need) {
		st.LBAccepted++
		return true
	}
	if mathx.LT(bu, need) {
		st.UBRejected++
		return false
	}
	// Loosest groups first (§5.2.3): largest B^u − B^l gap.
	sortGBs(&s.act)
	for _, a := range act {
		st.MatchingCalls++
		g := gs[a.gi]
		w := s.solver.MaxWeight(len(g.xe), len(g.ye), s.edges[a.start:a.end])
		bu += w - a.up
		if mathx.LT(bu, need) {
			st.UBRejected++
			return false
		}
		bl += w - a.lo
		if mathx.GE(bl, need) {
			st.LBAccepted++
			return true
		}
	}
	return mathx.GE(bl, need)
}
