package verify

// Differential tests for the scratch-based verification hot path: the
// functions prefixed "seed" below are verbatim copies of the pre-scratch
// (map-allocating) implementation, kept as the behavioural oracle. The
// scratch path must produce bit-identical similarities and identical
// verification decisions across a randomized matrix of configurations,
// including under concurrent per-worker clones (run with -race).

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"kjoin/internal/dataset"
	"kjoin/internal/elem"
	"kjoin/internal/matching"
	"kjoin/internal/mathx"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
)

// seedMaxWeight is the seed Hungarian implementation (per-call dense
// matrix allocation), copied unchanged.
func seedMaxWeight(nx, ny int, edges []matching.Edge) (float64, []int) {
	if nx == 0 || ny == 0 || len(edges) == 0 {
		m := make([]int, nx)
		for i := range m {
			m[i] = -1
		}
		return 0, m
	}
	n := nx
	if ny > n {
		n = ny
	}
	cost := make([][]float64, n+1)
	flat := make([]float64, (n+1)*(n+1))
	for i := range cost {
		cost[i] = flat[i*(n+1) : (i+1)*(n+1)]
	}
	for _, e := range edges {
		if e.W > -cost[e.X+1][e.Y+1] {
			cost[e.X+1][e.Y+1] = -e.W
		}
	}

	const inf = 1e18
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	minv := make([]float64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	matchX := make([]int, nx)
	for i := range matchX {
		matchX[i] = -1
	}
	total := 0.0
	for j := 1; j <= n; j++ {
		i := p[j]
		if i == 0 || i > nx || j > ny {
			continue
		}
		w := -cost[i][j]
		if w > 0 {
			matchX[i-1] = j - 1
			total += w
		}
	}
	return total, matchX
}

// seedGroups is the seed map-and-closure union-find grouping.
func seedGroups(c *Context, x, y []elem.ID) []group {
	parent := map[sig.Sig]sig.Sig{}
	var find func(s sig.Sig) sig.Sig
	find = func(s sig.Sig) sig.Sig {
		p, ok := parent[s]
		if !ok {
			parent[s] = s
			return s
		}
		if p == s {
			return s
		}
		r := find(p)
		parent[s] = r
		return r
	}
	union := func(a, b sig.Sig) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	keyOf := func(e elem.ID) sig.Sig {
		keys := c.Space.GroupKeys(e)
		for i := 1; i < len(keys); i++ {
			union(keys[0], keys[i])
		}
		return keys[0]
	}
	idx := map[sig.Sig]int{}
	var roots []sig.Sig
	var gs []group
	for _, e := range x {
		r := find(keyOf(e))
		i, ok := idx[r]
		if !ok {
			i = len(gs)
			idx[r] = i
			roots = append(roots, r)
			gs = append(gs, group{})
		}
		gs[i].xe = append(gs[i].xe, e)
	}
	for _, e := range y {
		r := find(keyOf(e))
		i, ok := idx[r]
		if !ok {
			i = len(gs)
			idx[r] = i
			roots = append(roots, r)
			gs = append(gs, group{})
		}
		gs[i].ye = append(gs[i].ye, e)
	}
	merged := map[sig.Sig]int{}
	var out []group
	for _, r := range roots {
		i := idx[r]
		root := find(r)
		if j, ok := merged[root]; ok {
			out[j].xe = append(out[j].xe, gs[i].xe...)
			out[j].ye = append(out[j].ye, gs[i].ye...)
		} else {
			merged[root] = len(out)
			out = append(out, gs[i])
		}
	}
	return out
}

// seedEdges is the seed per-call edge builder (uncached Sim).
func seedEdges(c *Context, xe, ye []elem.ID) []matching.Edge {
	var es []matching.Edge
	for i, a := range xe {
		for j, b := range ye {
			if s := c.Res.Sim(a, b, c.Metric); mathx.GE(s, c.Delta) {
				es = append(es, matching.Edge{X: i, Y: j, W: s})
			}
		}
	}
	return es
}

func seedOverlap(c *Context, x, y []elem.ID) float64 {
	total := 0.0
	for _, g := range seedGroups(c, x, y) {
		if len(g.xe) == 0 || len(g.ye) == 0 {
			continue
		}
		es := seedEdges(c, g.xe, g.ye)
		if len(es) == 0 {
			continue
		}
		o, _ := seedMaxWeight(len(g.xe), len(g.ye), es)
		total += o
	}
	return total
}

func seedOverlapBasic(c *Context, x, y []elem.ID) float64 {
	es := seedEdges(c, x, y)
	if len(es) == 0 {
		return 0
	}
	o, _ := seedMaxWeight(len(x), len(y), es)
	return o
}

func seedSimilarity(c *Context, x, y []elem.ID) float64 {
	return c.Set.Sim(seedOverlap(c, x, y), len(x), len(y))
}

// seedGroupWeightedUB is the seed four-map multiset intersection.
func seedGroupWeightedUB(c *Context, g group) float64 {
	if len(g.xe) == 0 || len(g.ye) == 0 {
		return 0
	}
	cnt := map[elem.ID]int{}
	for _, e := range g.xe {
		cnt[e]++
	}
	inter := 0
	used := map[elem.ID]int{}
	for _, e := range g.ye {
		if used[e] < cnt[e] {
			used[e]++
			inter++
		}
	}
	sx, sy := 0.0, 0.0
	takenX := map[elem.ID]int{}
	for _, e := range g.xe {
		takenX[e]++
		if takenX[e] <= used[e] {
			continue
		}
		sx += c.Res.MaxDiffSim(e, c.Metric)
	}
	takenY := map[elem.ID]int{}
	for _, e := range g.ye {
		takenY[e]++
		if takenY[e] <= used[e] {
			continue
		}
		sy += c.Res.MaxDiffSim(e, c.Metric)
	}
	m := sx
	if sy < m {
		m = sy
	}
	return float64(inter) + m
}

func seedAdaptive(c *Context, gs []group, need float64, st *Stats) bool {
	type gbs struct {
		g      group
		es     []matching.Edge
		lo, up float64
	}
	var act []gbs
	bl, bu := 0.0, 0.0
	for _, g := range gs {
		if len(g.xe) == 0 || len(g.ye) == 0 {
			continue
		}
		es := seedEdges(c, g.xe, g.ye)
		if len(es) == 0 {
			continue
		}
		lo := matching.LowerBound(len(g.xe), len(g.ye), es)
		up := matching.UpperBound(len(g.xe), len(g.ye), es)
		act = append(act, gbs{g: g, es: es, lo: lo, up: up})
		bl += lo
		bu += up
	}
	if mathx.GE(bl, need) {
		st.LBAccepted++
		return true
	}
	if mathx.LT(bu, need) {
		st.UBRejected++
		return false
	}
	sort.Slice(act, func(i, j int) bool {
		return act[i].up-act[i].lo > act[j].up-act[j].lo
	})
	for _, a := range act {
		st.MatchingCalls++
		s, _ := seedMaxWeight(len(a.g.xe), len(a.g.ye), a.es)
		bu += s - a.up
		if mathx.LT(bu, need) {
			st.UBRejected++
			return false
		}
		bl += s - a.lo
		if mathx.GE(bl, need) {
			st.LBAccepted++
			return true
		}
	}
	return mathx.GE(bl, need)
}

func seedVerify(c *Context, x, y []elem.ID, kind Kind, st *Stats) bool {
	st.Pairs++
	need := c.Set.PairOverlap(c.Tau, len(x), len(y))
	gs := seedGroups(c, x, y)

	countUB := 0
	for _, g := range gs {
		m := len(g.xe)
		if len(g.ye) < m {
			m = len(g.ye)
		}
		countUB += m
	}
	if mathx.LT(float64(countUB), need) {
		st.CountPruned++
		return false
	}

	if kind == Basic {
		st.MatchingCalls++
		ok := mathx.GE(seedOverlapBasic(c, x, y), need)
		if ok {
			st.Results++
		}
		return ok
	}

	wUB := 0.0
	for _, g := range gs {
		wUB += seedGroupWeightedUB(c, g)
	}
	if mathx.LT(wUB, need) {
		st.WeightedPruned++
		return false
	}

	var ok bool
	switch kind {
	case SubGraph:
		total := 0.0
		for _, g := range gs {
			if len(g.xe) == 0 || len(g.ye) == 0 {
				continue
			}
			es := seedEdges(c, g.xe, g.ye)
			if len(es) == 0 {
				continue
			}
			st.MatchingCalls++
			o, _ := seedMaxWeight(len(g.xe), len(g.ye), es)
			total += o
		}
		ok = mathx.GE(total, need)
	default:
		ok = seedAdaptive(c, gs, need, st)
	}
	if ok {
		st.Results++
	}
	return ok
}

// diffCtx builds a resolved context plus objects for one configuration.
func diffCtx(tb testing.TB, n int, delta, tau float64, metric elem.Metric, set setmetric.Kind, plus bool) (*Context, [][]elem.ID, [][]sig.Sig) {
	tb.Helper()
	hr := dataset.GenHierarchy(dataset.HierarchyConfig{Seed: 7, Nodes: 1200, Height: 6, MaxFanout: 20})
	c := dataset.GenRecords(hr, dataset.POIConfig(n))
	opts := elem.Options{}
	if plus {
		opts = elem.Options{Plus: true, PhiMin: 0.85, MaxMappings: 4}
	}
	r := elem.NewResolver(hr.H, opts)
	sp := sig.NewSpace(r, metric, delta, sig.Deep)
	ctx := &Context{Res: r, Space: sp, Metric: metric, Set: set, Delta: delta, Tau: tau}
	objs := make([][]elem.ID, len(c.Records))
	keys := make([][]sig.Sig, len(c.Records))
	for i, rec := range c.Records {
		seen := map[elem.ID]bool{}
		for _, t := range rec {
			id := r.ID(t)
			if !seen[id] {
				seen[id] = true
				objs[i] = append(objs[i], id)
			}
		}
	}
	r.ResolveAll(0)
	sp.Warm(r.Len(), 0)
	for i := range objs {
		keys[i] = ctx.SortedKeys(objs[i])
	}
	return ctx, objs, keys
}

// TestScratchMatchesSeed drives random candidate pairs through both the
// scratch-based path and the copied seed implementation across a matrix
// of δ/τ/metric/set/verifier/Plus configurations: decisions, stats and
// similarities must match bit for bit.
func TestScratchMatchesSeed(t *testing.T) {
	type cfg struct {
		delta, tau float64
		metric     elem.Metric
		set        setmetric.Kind
		plus       bool
	}
	cfgs := []cfg{
		{0.8, 0.85, elem.Standard, setmetric.Jaccard, false},
		{0.6, 0.5, elem.Standard, setmetric.Dice, false},
		{0.7, 0.6, elem.WuPalmer, setmetric.Cosine, false},
		{0.8, 0.7, elem.Standard, setmetric.Jaccard, true},
		{0.6, 0.6, elem.WuPalmer, setmetric.Jaccard, true},
	}
	kinds := []Kind{Basic, SubGraph, Adaptive}
	for ci, cf := range cfgs {
		cf := cf
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			ctx, objs, keys := diffCtx(t, 120, cf.delta, cf.tau, cf.metric, cf.set, cf.plus)
			oracle := &Context{Res: ctx.Res, Space: ctx.Space, Metric: cf.metric, Set: cf.set, Delta: cf.delta, Tau: cf.tau}
			r := rand.New(rand.NewSource(int64(ci)))
			for trial := 0; trial < 400; trial++ {
				x := r.Intn(len(objs))
				y := r.Intn(len(objs))
				kind := kinds[trial%len(kinds)]
				var gotSt, wantSt Stats
				got := ctx.VerifyKeyed(objs[x], objs[y], keys[x], keys[y], kind, &gotSt)
				// Seed VerifyKeyed == count pruning + seedVerify.
				need := oracle.Set.PairOverlap(oracle.Tau, len(objs[x]), len(objs[y]))
				var want bool
				if mathx.LT(float64(countBound(keys[x], keys[y])), need) {
					wantSt.Pairs++
					wantSt.CountPruned++
					want = false
				} else {
					want = seedVerify(oracle, objs[x], objs[y], kind, &wantSt)
				}
				if got != want {
					t.Fatalf("cfg %d trial %d kind %v: Verify=%v, seed=%v", ci, trial, kind, got, want)
				}
				if gotSt != wantSt {
					t.Fatalf("cfg %d trial %d kind %v: stats %+v, seed %+v", ci, trial, kind, gotSt, wantSt)
				}
				gs := ctx.Similarity(objs[x], objs[y])
				ws := seedSimilarity(oracle, objs[x], objs[y])
				if math.Float64bits(gs) != math.Float64bits(ws) {
					t.Fatalf("cfg %d trial %d: Similarity=%v, seed=%v (not bit-identical)", ci, trial, gs, ws)
				}
				go_, wo := ctx.Overlap(objs[x], objs[y]), seedOverlap(oracle, objs[x], objs[y])
				if math.Float64bits(go_) != math.Float64bits(wo) {
					t.Fatalf("cfg %d trial %d: Overlap=%v, seed=%v", ci, trial, go_, wo)
				}
			}
		})
	}
}

// TestScratchCloneIsolation runs the same verification workload from
// several goroutines, each on its own Context clone, and checks every
// worker against the sequential seed answers. Under -race this proves
// per-worker scratch isolation.
func TestScratchCloneIsolation(t *testing.T) {
	ctx, objs, keys := diffCtx(t, 100, 0.8, 0.7, elem.Standard, setmetric.Jaccard, true)
	oracle := &Context{Res: ctx.Res, Space: ctx.Space, Metric: elem.Standard, Set: setmetric.Jaccard, Delta: 0.8, Tau: 0.7}

	type pair struct{ x, y int }
	r := rand.New(rand.NewSource(42))
	var pairs []pair
	for i := 0; i < 300; i++ {
		pairs = append(pairs, pair{r.Intn(len(objs)), r.Intn(len(objs))})
	}
	want := make([]bool, len(pairs))
	wantSim := make([]float64, len(pairs))
	for i, p := range pairs {
		var st Stats
		want[i] = seedVerify(oracle, objs[p.x], objs[p.y], Adaptive, &st)
		wantSim[i] = seedSimilarity(oracle, objs[p.x], objs[p.y])
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vctx := ctx.Clone()
			for i, p := range pairs {
				var st Stats
				got := vctx.VerifyKeyed(objs[p.x], objs[p.y], keys[p.x], keys[p.y], Adaptive, &st)
				if got != want[i] {
					errs[w] = fmt.Errorf("worker %d pair %d: got %v, want %v", w, i, got, want[i])
					return
				}
				if s := vctx.Similarity(objs[p.x], objs[p.y]); math.Float64bits(s) != math.Float64bits(wantSim[i]) {
					errs[w] = fmt.Errorf("worker %d pair %d: sim %v, want %v", w, i, s, wantSim[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
