package verify

import (
	"testing"

	"kjoin/internal/dataset"
	"kjoin/internal/elem"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
)

// benchCtx builds a verification context over generated POI records.
func benchCtx(b *testing.B) (*Context, [][]elem.ID, [][]sig.Sig) {
	b.Helper()
	hr := dataset.GenHierarchy(dataset.DefaultHierarchy())
	c := dataset.GenRecords(hr, dataset.POIConfig(400))
	r := elem.NewResolver(hr.H, elem.Options{})
	sp := sig.NewSpace(r, elem.Standard, 0.8, sig.Deep)
	ctx := &Context{Res: r, Space: sp, Metric: elem.Standard, Set: setmetric.Jaccard, Delta: 0.8, Tau: 0.8}
	objs := make([][]elem.ID, len(c.Records))
	keys := make([][]sig.Sig, len(c.Records))
	for i, rec := range c.Records {
		seen := map[elem.ID]bool{}
		for _, t := range rec {
			id := r.ID(t)
			if !seen[id] {
				seen[id] = true
				objs[i] = append(objs[i], id)
			}
		}
		keys[i] = ctx.SortedKeys(objs[i])
	}
	return ctx, objs, keys
}

func BenchmarkVerifyKeyedFastPath(b *testing.B) {
	b.ReportAllocs()
	ctx, objs, keys := benchCtx(b)
	var st Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := i % len(objs)
		y := (i*7 + 13) % len(objs)
		ctx.VerifyKeyed(objs[x], objs[y], keys[x], keys[y], Adaptive, &st)
	}
}

func BenchmarkVerifyLadder(b *testing.B) {
	b.ReportAllocs()
	ctx, objs, _ := benchCtx(b)
	kinds := []Kind{Basic, SubGraph, Adaptive}
	for _, k := range kinds {
		b.Run(k.String(), func(b *testing.B) {
			b.ReportAllocs()
			var st Stats
			for i := 0; i < b.N; i++ {
				x := i % len(objs)
				y := (i*7 + 13) % len(objs)
				ctx.Verify(objs[x], objs[y], k, &st)
			}
		})
	}
}

func BenchmarkOverlapExact(b *testing.B) {
	b.ReportAllocs()
	ctx, objs, _ := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := i % len(objs)
		y := (i*7 + 13) % len(objs)
		ctx.Overlap(objs[x], objs[y])
	}
}
