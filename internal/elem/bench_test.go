package elem

import (
	"testing"

	"kjoin/internal/dataset"
)

func benchResolver(b *testing.B, plus bool) (*Resolver, []ID) {
	b.Helper()
	hr := dataset.GenHierarchy(dataset.DefaultHierarchy())
	c := dataset.GenRecords(hr, dataset.POIConfig(300))
	r := NewResolver(hr.H, Options{Plus: plus, PhiMin: 0.8, MaxMappings: 4})
	var ids []ID
	for _, rec := range c.Records {
		for _, t := range rec {
			ids = append(ids, r.ID(t))
		}
	}
	r.ResolveAll(1)
	return r, ids
}

func BenchmarkSimStandard(b *testing.B) {
	r, ids := benchResolver(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sim(ids[i%len(ids)], ids[(i*31+7)%len(ids)], Standard)
	}
}

func BenchmarkSimPlus(b *testing.B) {
	r, ids := benchResolver(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sim(ids[i%len(ids)], ids[(i*31+7)%len(ids)], Standard)
	}
}

// BenchmarkResolvePlus measures typo-tolerant resolution of fresh tokens
// against the full hierarchy name set (bigram-index candidates + banded
// edit distance).
func BenchmarkResolvePlus(b *testing.B) {
	hr := dataset.GenHierarchy(dataset.DefaultHierarchy())
	r := NewResolver(hr.H, Options{Plus: true, PhiMin: 0.8, MaxMappings: 4})
	names := hr.H.Names()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A corrupted hierarchy name: unique per iteration so the
		// resolution cache never hits.
		name := names[i%len(names)]
		tok := name + string(rune('a'+i%26))
		id := r.ID(tok)
		r.Info(id)
	}
}

// BenchmarkNewResolverPlus measures index construction (bigram postings
// over all hierarchy names).
func BenchmarkNewResolverPlus(b *testing.B) {
	hr := dataset.GenHierarchy(dataset.DefaultHierarchy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewResolver(hr.H, Options{Plus: true, PhiMin: 0.8, MaxMappings: 4})
	}
}
