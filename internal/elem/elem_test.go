package elem

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kjoin/internal/hierarchy"
	"kjoin/internal/paperdata"
	"kjoin/internal/strutil"
	"kjoin/internal/synonym"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func newBase(t *testing.T) *Resolver {
	t.Helper()
	h, _ := paperdata.Fig1()
	return NewResolver(h, Options{})
}

func newPlus(t *testing.T, phiMin float64, d *synonym.Dict) *Resolver {
	t.Helper()
	h, _ := paperdata.Fig1()
	return NewResolver(h, Options{Plus: true, PhiMin: phiMin, Synonyms: d})
}

func TestSimPaperExamples(t *testing.T) {
	r := newBase(t)
	cases := []struct {
		a, b string
		want float64
	}{
		{"BurgerKing", "KFC", 3.0 / 4},                  // §2.1.1
		{"MountainView", "GoogleHeadquarters", 5.0 / 6}, // §2.2
		{"BurgerKing", "Fastfood", 3.0 / 4},             // §2.2
		{"BurgerKing", "Dominos", 2.0 / 4},              // §4
		{"BurgerKing", "Manhattan", 0},                  // different domains → LCA root
		{"KFC", "KFC", 1},                               // identity
		{"PizzaHut", "Dominos", 3.0 / 4},                // both under Pizza (depth 3)
		{"SanFrancisco", "PaloAlto", 3.0 / 4},           // LCA CA depth 3, depths 4,4
		{"Manhattan", "Brooklyn", 4.0 / 5},              // LCA NewYork depth 4
	}
	for _, c := range cases {
		a, b := r.ID(c.a), r.ID(c.b)
		if got := r.Sim(a, b, Standard); !almostEq(got, c.want) {
			t.Errorf("Sim(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := r.Sim(b, a, Standard); !almostEq(got, c.want) {
			t.Errorf("Sim(%s, %s) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestSimNonEntityTokens(t *testing.T) {
	r := newBase(t)
	a := r.ID("ellis")
	b := r.ID("fillmore")
	if got := r.Sim(a, b, Standard); got != 0 {
		t.Errorf("two different non-entity tokens should have sim 0, got %v", got)
	}
	if got := r.Sim(a, r.ID("ELLIS"), Standard); got != 1 {
		t.Errorf("case-insensitive identity should be 1, got %v", got)
	}
	if got := r.Sim(a, r.ID("KFC"), Standard); got != 0 {
		t.Errorf("non-entity vs entity should be 0, got %v", got)
	}
}

func TestSimWuPalmer(t *testing.T) {
	r := newBase(t)
	a, b := r.ID("BurgerKing"), r.ID("KFC")
	// 2*3/(4+4) = 3/4.
	if got := r.Sim(a, b, WuPalmer); !almostEq(got, 3.0/4) {
		t.Errorf("WuPalmer(BurgerKing, KFC) = %v, want 3/4", got)
	}
	c := r.ID("MountainView")
	d := r.ID("GoogleHeadquarters")
	// 2*5/(5+6) = 10/11.
	if got := r.Sim(c, d, WuPalmer); !almostEq(got, 10.0/11) {
		t.Errorf("WuPalmer(MV, GHQ) = %v, want 10/11", got)
	}
}

func TestPlusTypoTolerance(t *testing.T) {
	r := newPlus(t, 0.8, nil)
	typo := r.ID("PizzaHat")
	info := r.Info(typo)
	if info.Entity() {
		// PizzaHat should approximately match PizzaHut with φ = 7/8.
		found := false
		for _, m := range info.Mappings {
			if r.Hierarchy().Name(m.Node) == "PizzaHut" && almostEq(m.Phi, 7.0/8) {
				found = true
			}
		}
		if !found {
			t.Errorf("PizzaHat should map to PizzaHut with φ=7/8, got %+v", info.Mappings)
		}
	} else {
		t.Fatalf("PizzaHat should be resolved approximately in Plus mode")
	}
	// SIM(PizzaHat, PizzaHut) = (4/4)·(7/8)·1 = 7/8.
	real := r.ID("PizzaHut")
	if got := r.Sim(typo, real, Standard); !almostEq(got, 7.0/8) {
		t.Errorf("Sim(PizzaHat, PizzaHut) = %v, want 7/8", got)
	}
	// SIM(PizzaHat, Dominos) = (3/4)·(7/8) = 21/32.
	dom := r.ID("Dominos")
	if got := r.Sim(typo, dom, Standard); !almostEq(got, 21.0/32) {
		t.Errorf("Sim(PizzaHat, Dominos) = %v, want 21/32", got)
	}
}

func TestBaseModeIgnoresTypos(t *testing.T) {
	r := newBase(t)
	typo := r.ID("PizzaHat")
	if r.Info(typo).Entity() {
		t.Errorf("plain K-Join must not resolve typos")
	}
	if got := r.Sim(typo, r.ID("PizzaHut"), Standard); got != 0 {
		t.Errorf("plain K-Join Sim with typo = %v, want 0", got)
	}
}

func TestPlusSynonyms(t *testing.T) {
	d := synonym.New()
	d.Add("kfc", "kentuckyfriedchicken")
	d.Add("st", "street")
	r := newPlus(t, 1, d) // PhiMin=1 disables typo matching; synonyms only
	a := r.ID("kentuckyfriedchicken")
	if !r.Info(a).Entity() {
		t.Fatalf("synonym of an entity should resolve to its node")
	}
	if got := r.Sim(a, r.ID("kfc"), Standard); got != 1 {
		t.Errorf("Sim(synonym, entity) = %v, want 1", got)
	}
	if got := r.Sim(a, r.ID("burgerking"), Standard); !almostEq(got, 3.0/4) {
		t.Errorf("Sim(kentuckyfriedchicken, burgerking) = %v, want 3/4", got)
	}
	// Non-entity synonyms: st ~ street.
	x, y := r.ID("st"), r.ID("street")
	if got := r.Sim(x, y, Standard); got != 1 {
		t.Errorf("Sim(st, street) = %v, want 1", got)
	}
	if got := r.Sim(x, r.ID("dr"), Standard); got != 0 {
		t.Errorf("Sim(st, dr) = %v, want 0", got)
	}
}

func TestMinLCADepth(t *testing.T) {
	// Paper §3.1: δ = 0.7 → d_δ = ⌈0.7/0.3⌉ = 3.
	if got := Standard.MinLCADepth(0.7); got != 3 {
		t.Errorf("MinLCADepth(0.7) = %d, want 3", got)
	}
	// §4: δ = 0.6 → level ⌈0.6/0.4⌉ = 2.
	if got := Standard.MinLCADepth(0.6); got != 2 {
		t.Errorf("MinLCADepth(0.6) = %d, want 2", got)
	}
	if got := Standard.MinLCADepth(0.8); got != 4 {
		t.Errorf("MinLCADepth(0.8) = %d, want 4", got)
	}
	// δ ≥ 1: effectively infinite.
	if got := Standard.MinLCADepth(1.0); got < 1<<20 {
		t.Errorf("MinLCADepth(1.0) = %d, want huge", got)
	}
	if got := Standard.MinLCADepth(0); got != 0 {
		t.Errorf("MinLCADepth(0) = %d, want 0", got)
	}
	// Wu&Palmer §6.2: d ≥ δ/(2(1−δ)); δ=0.8 → ⌈2⌉ = 2.
	if got := WuPalmer.MinLCADepth(0.8); got != 2 {
		t.Errorf("WuPalmer MinLCADepth(0.8) = %d, want 2", got)
	}
}

func TestDeepLowAndShallowRange(t *testing.T) {
	// §4.1 example: δ=0.6, de=4 (BurgerKing): ⌈δ·de⌉ = 3, ⌈δ·3⌉ = 2.
	if got := Standard.DeepLow(4, 0.6); got != 3 {
		t.Errorf("DeepLow(4, 0.6) = %d, want 3", got)
	}
	lo, hi := Standard.ShallowRange(4, 0.6)
	if lo != 2 || hi != 3 {
		t.Errorf("ShallowRange(4, 0.6) = [%d, %d], want [2, 3]", lo, hi)
	}
	if got := Standard.DeepLow(0, 0.6); got != 0 {
		t.Errorf("DeepLow(0) = %d, want 0", got)
	}
	if got := Standard.DeepLow(5, 1.0); got != 5 {
		t.Errorf("DeepLow(5, 1.0) = %d, want 5", got)
	}
}

// Property: if two entity elements are similar (sim ≥ δ) and different,
// the depth of their LCA is at least MinLCADepth(δ) — the foundation of
// the node-signature scheme (Lemma 1's precondition).
func TestMinLCADepthSound(t *testing.T) {
	h, m := paperdata.Fig1()
	r := NewResolver(h, Options{})
	var names []string
	for n := range m {
		names = append(names, n)
	}
	for _, metric := range []Metric{Standard, WuPalmer} {
		for _, delta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			dd := metric.MinLCADepth(delta)
			for _, a := range names {
				for _, b := range names {
					if a == b {
						continue
					}
					ia, ib := r.ID(a), r.ID(b)
					if r.Sim(ia, ib, metric) >= delta {
						if got := h.LCADepth(m[a], m[b]); got < dd {
							t.Errorf("metric %v δ=%v: %s~%s similar but LCA depth %d < d_δ %d",
								metric, delta, a, b, got, dd)
						}
					}
				}
			}
		}
	}
}

func TestMaxDiffSim(t *testing.T) {
	r := newBase(t)
	bk := r.ID("BurgerKing") // depth 4
	if got := r.MaxDiffSim(bk, Standard); !almostEq(got, 4.0/5) {
		t.Errorf("MaxDiffSim(BurgerKing) = %v, want 4/5", got)
	}
	free := r.ID("ellis")
	if got := r.MaxDiffSim(free, Standard); got != 0 {
		t.Errorf("MaxDiffSim(non-entity) = %v, want 0", got)
	}
	// Plus mode: a typo element's bound is its best φ.
	rp := newPlus(t, 0.8, nil)
	typo := rp.ID("PizzaHat")
	if got := rp.MaxDiffSim(typo, Standard); !almostEq(got, 7.0/8) {
		t.Errorf("MaxDiffSim(PizzaHat) = %v, want 7/8", got)
	}
	exact := rp.ID("KFC")
	if got := rp.MaxDiffSim(exact, Standard); got != 1 {
		t.Errorf("Plus MaxDiffSim(KFC) = %v, want 1 (synonyms may map to the same node)", got)
	}
	// Plus mode, non-entity with synonyms.
	d := synonym.New()
	d.Add("st", "street")
	rs := newPlus(t, 1, d)
	if got := rs.MaxDiffSim(rs.ID("st"), Standard); got != 1 {
		t.Errorf("MaxDiffSim(st with synonyms) = %v, want 1", got)
	}
	if got := rs.MaxDiffSim(rs.ID("lonely"), Standard); got != 0 {
		t.Errorf("MaxDiffSim(lonely) = %v, want 0", got)
	}
}

// Property: MaxDiffSim really bounds Sim for any pair of different
// elements drawn from the Fig-1 vocabulary plus some free tokens.
func TestMaxDiffSimSoundProperty(t *testing.T) {
	h, m := paperdata.Fig1()
	d := synonym.New()
	d.Add("kfc", "kentuckyfriedchicken")
	var vocab []string
	for n := range m {
		vocab = append(vocab, n)
	}
	vocab = append(vocab, "pizzahat", "kentuckyfriedchicken", "ellis", "fillmore")
	for _, plus := range []bool{false, true} {
		r := NewResolver(h, Options{Plus: plus, PhiMin: 0.8, Synonyms: d})
		ids := make([]ID, len(vocab))
		for i, v := range vocab {
			ids[i] = r.ID(v)
		}
		for _, metric := range []Metric{Standard, WuPalmer} {
			for i, a := range ids {
				bound := r.MaxDiffSim(a, metric)
				for j, b := range ids {
					if a == b {
						continue
					}
					if s := r.Sim(a, b, metric); s > bound+1e-9 {
						t.Errorf("plus=%v metric=%v: Sim(%s,%s)=%v exceeds MaxDiffSim=%v",
							plus, metric, vocab[i], vocab[j], s, bound)
					}
				}
			}
		}
	}
}

// The bigram-index candidate generation must find exactly the matches a
// brute-force scan over all names finds, for random tokens and a range
// of φ thresholds.
func TestApproxMatchAgainstBruteForce(t *testing.T) {
	h, _ := paperdata.Fig1()
	names := h.Names()
	gen := func(r *rand.Rand) string {
		// Random tokens plus corrupted hierarchy names.
		if r.Intn(2) == 0 {
			n := names[r.Intn(len(names))]
			b := []byte(strings.ToLower(n))
			for e := 0; e <= r.Intn(3); e++ {
				if len(b) > 0 {
					b[r.Intn(len(b))] = byte('a' + r.Intn(26))
				}
			}
			return string(b)
		}
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(6))
		}
		return string(b)
	}
	for _, phi := range []float64{0.3, 0.5, 0.7, 0.8, 0.9} {
		r := NewResolver(h, Options{Plus: true, PhiMin: phi})
		rnd := rand.New(rand.NewSource(int64(phi * 100)))
		for trial := 0; trial < 200; trial++ {
			tok := gen(rnd)
			got := map[hierarchy.NodeID]float64{}
			r.approxMatch(tok, func(n hierarchy.NodeID, sim float64) {
				if sim > got[n] {
					got[n] = sim
				}
			})
			want := map[hierarchy.NodeID]float64{}
			for _, name := range names {
				ln := strings.ToLower(name)
				if ln == tok {
					continue
				}
				if sim, ok := strutil.EditSimAtLeast(tok, ln, phi); ok && sim >= phi {
					for _, n := range h.Lookup(name) {
						if sim > want[n] {
							want[n] = sim
						}
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("phi=%v token %q: got %v, want %v", phi, tok, got, want)
			}
			for n, s := range want {
				if got[n] != s {
					t.Fatalf("phi=%v token %q node %v: got %v, want %v", phi, tok, got[n], n, s)
				}
			}
		}
	}
}

func TestMetricSimProperties(t *testing.T) {
	f := func(dl, dx, dy uint8) bool {
		dlca := int(dl % 10)
		a := int(dx%10) + dlca // depths at least dlca
		b := int(dy%10) + dlca
		for _, m := range []Metric{Standard, WuPalmer} {
			s := m.Sim(dlca, a, b)
			if s < 0 || s > 1+1e-12 {
				return false
			}
			if s != m.Sim(dlca, b, a) {
				return false
			}
			if m.Sim(a, a, a) != 1 { // identical nodes
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetricString(t *testing.T) {
	if Standard.String() != "standard" || WuPalmer.String() != "wupalmer" || Metric(99).String() != "unknown" {
		t.Error("Metric.String mismatch")
	}
}

func TestInterning(t *testing.T) {
	r := newBase(t)
	a := r.ID("KFC")
	b := r.ID("kfc")
	c := r.ID("Kfc")
	if a != b || b != c {
		t.Errorf("interning should be case-insensitive: %v %v %v", a, b, c)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if r.Info(a).Token != "kfc" {
		t.Errorf("Token = %q", r.Info(a).Token)
	}
}

// ResolveAll must be race-free: each worker touches disjoint info slots
// and only reads shared immutable state. Run with -race.
func TestResolveAllParallel(t *testing.T) {
	h, _ := paperdata.Fig1()
	for _, workers := range []int{1, 2, 8} {
		r := NewResolver(h, Options{Plus: true, PhiMin: 0.8, MaxMappings: 4})
		var ids []ID
		for _, name := range h.Names() {
			ids = append(ids, r.ID(name))
			ids = append(ids, r.ID(name+"x")) // typo'd variants
		}
		r.ResolveAll(workers)
		// Everything must be resolved and stable.
		for _, id := range ids {
			info := r.Info(id)
			if info.Token == "" {
				t.Fatalf("workers=%d: unresolved element %d", workers, id)
			}
		}
		// Cross-check against a sequential resolver.
		r2 := NewResolver(h, Options{Plus: true, PhiMin: 0.8, MaxMappings: 4})
		for _, name := range h.Names() {
			r2.ID(name)
			r2.ID(name + "x")
		}
		r2.ResolveAll(1)
		for _, id := range ids {
			a, b := r.Info(id), r2.Info(id)
			if a.Token != b.Token || len(a.Mappings) != len(b.Mappings) || a.MaxDepth != b.MaxDepth {
				t.Fatalf("workers=%d: element %d resolved differently: %+v vs %+v", workers, id, a, b)
			}
		}
	}
}
