// Package elem resolves object elements (tokens) against the knowledge
// hierarchy and computes the knowledge-aware element similarity of paper
// §2.1.1: Definition 1 for single-node mappings (K-Join), Equation 2 for
// multi-node mappings with synonyms and typo tolerance (K-Join+), and the
// Wu & Palmer variant of §6.2.
package elem

import (
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"kjoin/internal/hierarchy"
	"kjoin/internal/mathx"
	"kjoin/internal/strutil"
	"kjoin/internal/synonym"
)

// ID is an interned element (distinct lowercase token) within a Resolver.
type ID int32

// Mapping is one hierarchy node an element maps to, with the mapping
// quality φ(e, e') of Equation 2: 1 for exact or synonym matches, the
// normalized edit similarity for approximate (typo-tolerant) matches.
type Mapping struct {
	Node  hierarchy.NodeID
	Depth int32
	Phi   float64
}

// Info is the resolved state of one element.
type Info struct {
	Token    string    // lowercase token
	Canon    string    // canonical synonym representative (== Token without synonyms)
	Mappings []Mapping // hierarchy nodes the element maps to; empty for non-entity tokens
	MaxDepth int       // maximum mapped node depth; 0 for non-entity tokens
	HasSyns  bool      // the token belongs to a synonym group with >1 member
}

// Entity reports whether the element maps to at least one hierarchy node.
func (in *Info) Entity() bool { return len(in.Mappings) > 0 }

// Options configures a Resolver.
type Options struct {
	// Plus enables K-Join+ resolution (§6.4): an element maps to every
	// node with its name, to nodes named by its synonyms (φ=1), and to
	// nodes within edit-similarity PhiMin (φ = edit similarity). When
	// false, an element maps to at most one node by exact name.
	Plus bool
	// PhiMin is the minimum φ for approximate node matching; Equation 2
	// multiplies φ into the similarity, so φ < δ can never produce a
	// similar pair and δ is a lower bound on useful settings. Small
	// PhiMin values make every token match large swaths of the
	// hierarchy; realistic typo tolerance uses PhiMin ≈ 0.8.
	PhiMin float64
	// MaxMappings caps the nodes an element may map to (0 = unlimited).
	// The best-φ mappings are kept. The cap defines the element
	// similarity consistently across resolution, filtering and
	// verification.
	MaxMappings int
	// Synonyms is the optional synonym dictionary (used only when Plus).
	Synonyms *synonym.Dict
}

// Resolver interns element tokens and resolves them against a hierarchy.
//
// Resolution (ID) mutates internal state and is not safe for concurrent
// use; reads (Info, Sim) are safe to share across goroutines once all
// tokens have been resolved. The K-Join driver resolves every token in a
// sequential preprocessing pass for exactly this reason.
//
// The streaming Indexer cannot wait for "all tokens resolved" — adds keep
// interning forever while queries read concurrently. For that shape a
// single writer calls Publish after each batch of interning+resolution:
// reads of published ids then go through an atomic snapshot of the info
// table and never touch the mutable tail.
type Resolver struct {
	h    *hierarchy.Hierarchy
	opts Options

	ids      map[string]ID
	infos    []Info
	resolved []bool

	// pub is the atomically published resolved prefix of infos: Info (and
	// through it Sim and MaxDiffSim) serves ids below the published length
	// from this immutable snapshot, so readers in other goroutines never
	// race the writer's interning appends. Nil until the first Publish —
	// the batch-join path never publishes and keeps its single-writer
	// contract instead.
	pub atomic.Pointer[[]Info]

	// rs is the mapping scratch of the lazy (single-threaded) resolution
	// path; ResolveAll workers carry their own.
	rs resolveScratch

	// nameIdx maps lowercase node names to nodes (tokens are lowercased,
	// hierarchy names may be CamelCase). names lists the distinct
	// lowercase names for approximate matching with a length filter.
	nameIdx map[string][]hierarchy.NodeID
	names   []string

	// Approximate-matching index: bigram → indices into names, plus the
	// name indices bucketed by length. A name within edit distance k of
	// a token shares a bigram whenever max(len) − 1 − 2k ≥ 1 (q-gram
	// count filtering); length classes where that bound fails are scanned
	// exhaustively.
	grams map[string][]int32
	byLen [][]int32
}

// NewResolver returns a resolver over h with the given options.
func NewResolver(h *hierarchy.Hierarchy, opts Options) *Resolver {
	r := &Resolver{h: h, opts: opts, ids: make(map[string]ID), nameIdx: make(map[string][]hierarchy.NodeID)}
	for _, name := range h.Names() {
		ln := strings.ToLower(name)
		r.nameIdx[ln] = append(r.nameIdx[ln], h.Lookup(name)...)
	}
	if opts.Plus && opts.PhiMin < 1 {
		r.names = make([]string, 0, len(r.nameIdx))
		for ln := range r.nameIdx {
			r.names = append(r.names, ln)
		}
		sort.Strings(r.names)
		r.grams = make(map[string][]int32)
		for i, n := range r.names {
			for _, g := range strutil.QGrams(n, 2) {
				r.grams[g] = append(r.grams[g], int32(i))
			}
			for len(r.byLen) <= len(n) {
				r.byLen = append(r.byLen, nil)
			}
			r.byLen[len(n)] = append(r.byLen[len(n)], int32(i))
		}
	}
	return r
}

// lookup returns the nodes whose lowercase name equals the lowercase
// token t.
func (r *Resolver) lookup(t string) []hierarchy.NodeID { return r.nameIdx[t] }

// Hierarchy returns the hierarchy the resolver operates on.
func (r *Resolver) Hierarchy() *hierarchy.Hierarchy { return r.h }

// Options returns the resolver's options.
func (r *Resolver) Options() Options { return r.opts }

// Len returns the number of interned elements.
func (r *Resolver) Len() int { return len(r.infos) }

// ID interns token (lowercased); resolution against the hierarchy is
// lazy — it happens on first Info/Sim access, or in bulk (and in
// parallel) via ResolveAll.
func (r *Resolver) ID(token string) ID {
	t := strings.ToLower(token)
	if id, ok := r.ids[t]; ok {
		return id
	}
	id := ID(len(r.infos))
	r.ids[t] = id
	r.infos = append(r.infos, Info{Token: t, Canon: t})
	r.resolved = append(r.resolved, false)
	return id
}

// Info returns the resolved information for id, resolving lazily. The
// result must not be modified.
//
// Ids covered by a Publish snapshot are served from it, making Info (and
// Sim/MaxDiffSim) safe to call concurrently with the writer for any id
// published before the caller learned of it. Unpublished ids fall back to
// the lazy single-writer path.
func (r *Resolver) Info(id ID) *Info {
	if p := r.pub.Load(); p != nil && int(id) < len(*p) {
		return &(*p)[id]
	}
	if !r.resolved[id] {
		r.infos[id] = r.resolve(&r.rs, r.infos[id].Token)
		r.resolved[id] = true
	}
	return &r.infos[id]
}

// Publish atomically snapshots the current info table for concurrent
// readers. Every interned id must already be resolved — the caller (the
// streaming Indexer's preprocessing, which resolves everything it
// interns) guarantees it; published slots are never written again, so
// the snapshot stays valid even as the writer keeps appending.
func (r *Resolver) Publish() {
	s := r.infos[:len(r.infos):len(r.infos)]
	r.pub.Store(&s)
}

// ResolveAll resolves every interned token that is still unresolved,
// sharding the work across workers goroutines (0 = GOMAXPROCS). Each
// worker writes only its own infos slots and reads only immutable
// resolver state, so this is safe despite Resolver being otherwise
// single-threaded. Resolution — in K-Join+ mode the typo-tolerant scan
// over hierarchy names — dominates preprocessing, so this is the main
// parallel lever of the preprocessing phase.
func (r *Resolver) ResolveAll(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(r.infos)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r.Info(ID(i))
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker mapping scratch: arena chunks stay referenced by
			// the Mappings they back, so dropping the scratch is safe.
			var rs resolveScratch
			for i := w; i < n; i += workers {
				if !r.resolved[i] {
					r.infos[i] = r.resolve(&rs, r.infos[i].Token)
					r.resolved[i] = true
				}
			}
		}(w)
	}
	wg.Wait()
}

// resolveScratch is per-goroutine resolution state: the mapping build
// buffer (reused across elements) and the arena the retained Mappings
// slices are carved from. Arena chunks are never regrown in place — a
// full chunk is replaced by a fresh one, and earlier slices keep the old
// chunk alive — so cached Mappings stay valid forever.
type resolveScratch struct {
	buf   []Mapping
	arena []Mapping
}

// intern copies the build buffer into the arena and returns the carved
// slice (nil for an empty buffer: non-entity tokens keep nil Mappings).
func (rs *resolveScratch) intern() []Mapping {
	if len(rs.buf) == 0 {
		return nil
	}
	if len(rs.arena)+len(rs.buf) > cap(rs.arena) {
		n := 2 * cap(rs.arena)
		if n < 256 {
			n = 256
		}
		if n < len(rs.buf) {
			n = len(rs.buf)
		}
		rs.arena = make([]Mapping, 0, n)
	}
	start := len(rs.arena)
	rs.arena = append(rs.arena, rs.buf...)
	return rs.arena[start:len(rs.arena):len(rs.arena)]
}

// resolve computes the Info for a lowercase token, building the mapping
// list in rs.
func (r *Resolver) resolve(rs *resolveScratch, t string) Info {
	info := Info{Token: t, Canon: t}
	rs.buf = rs.buf[:0]
	add := func(n hierarchy.NodeID, phi float64) {
		for i := range rs.buf {
			if rs.buf[i].Node == n {
				if phi > rs.buf[i].Phi {
					rs.buf[i].Phi = phi
				}
				return
			}
		}
		rs.buf = append(rs.buf, Mapping{Node: n, Depth: int32(r.h.Depth(n)), Phi: phi})
	}
	if !r.opts.Plus {
		// Plain K-Join: a single node by exact name (paper §2.1.1
		// "we assume that each element matches a single node").
		if ns := r.lookup(t); len(ns) > 0 {
			add(ns[0], 1)
		}
	} else {
		for _, n := range r.lookup(t) {
			add(n, 1)
		}
		if d := r.opts.Synonyms; d != nil {
			info.Canon = d.Canonical(t)
			syns := d.Expand(t)
			info.HasSyns = len(syns) > 1
			for _, s := range syns {
				if s == t {
					continue
				}
				for _, n := range r.lookup(s) {
					add(n, 1)
				}
			}
		}
		if r.opts.PhiMin < 1 && r.opts.PhiMin > 0 {
			r.approxMatch(t, add)
		}
	}
	if max := r.opts.MaxMappings; max > 0 && len(rs.buf) > max {
		// slices.SortFunc over a total order (Node breaks every tie):
		// same permutation as any comparison sort, no reflection and no
		// per-call allocation.
		slices.SortFunc(rs.buf, func(a, b Mapping) int {
			if c := mathx.Cmp(a.Phi, b.Phi); c != 0 {
				return -c
			}
			if a.Depth != b.Depth {
				return int(b.Depth - a.Depth)
			}
			return int(a.Node - b.Node)
		})
		rs.buf = rs.buf[:max]
	}
	info.Mappings = rs.intern()
	for _, m := range info.Mappings {
		if int(m.Depth) > info.MaxDepth {
			info.MaxDepth = int(m.Depth)
		}
	}
	return info
}

// approxMatch finds nodes whose name is within edit similarity PhiMin of
// t and adds them with φ = the edit similarity (Eq. 2 typo tolerance,
// "PizzaHut" vs "PizzaHat"). Candidates come from the bigram index —
// sound whenever the q-gram count bound max(len) − 1 − 2k ≥ 1 holds —
// with an exhaustive fallback for the length classes where it does not.
// Only per-call state is mutated, so concurrent resolution (ResolveAll)
// can call this from several goroutines.
func (r *Resolver) approxMatch(t string, add func(hierarchy.NodeID, float64)) {
	phi := r.opts.PhiMin
	seen := make(map[int32]bool)
	consider := func(i int32) {
		if seen[i] {
			return
		}
		seen[i] = true
		ln := r.names[i]
		if ln == t {
			return // exact matches handled by the caller
		}
		max := len(ln)
		if len(t) > max {
			max = len(t)
		}
		if max == 0 {
			return
		}
		// Length filter: the length difference alone exceeds the budget.
		diff := len(ln) - len(t)
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > (1-phi)*float64(max) {
			return
		}
		if sim, ok := strutil.EditSimAtLeast(t, ln, phi); ok && sim >= phi {
			for _, n := range r.nameIdx[ln] {
				add(n, sim)
			}
		}
	}
	for _, g := range strutil.QGrams(t, 2) {
		for _, i := range r.grams[g] {
			consider(i)
		}
	}
	// Length classes where a match may share no bigram: scan them all.
	for l := range r.byLen {
		if len(r.byLen[l]) == 0 {
			continue
		}
		max := l
		if len(t) > max {
			max = len(t)
		}
		k := int((1 - phi) * float64(max) * (1 + 1e-12))
		if max-1-2*k < 1 {
			for _, i := range r.byLen[l] {
				consider(i)
			}
		}
	}
}

// Sim returns the knowledge-aware similarity of two resolved elements
// under the metric (Equation 2; Definition 1 when each element maps to a
// single node with φ=1). Identical elements have similarity 1. Two
// different non-entity tokens are similar (1) only if they are synonyms
// and Plus resolution is on; otherwise 0.
func (r *Resolver) Sim(a, b ID, metric Metric) float64 {
	if a == b {
		return 1
	}
	ia, ib := r.Info(a), r.Info(b)
	if !ia.Entity() || !ib.Entity() {
		if r.opts.Plus && ia.Canon == ib.Canon {
			return 1
		}
		return 0
	}
	best := 0.0
	for _, ma := range ia.Mappings {
		for _, mb := range ib.Mappings {
			f := ma.Phi * mb.Phi
			if f <= best {
				continue // even a perfect LCA cannot beat the best
			}
			dl := r.h.LCADepth(ma.Node, mb.Node)
			s := metric.Sim(dl, int(ma.Depth), int(mb.Depth)) * f
			if s > best {
				best = s
			}
		}
	}
	return best
}

// MaxDiffSim returns an upper bound on the similarity of element id to
// any *different* element (the weight of Lemma 4). Non-entity tokens can
// only match a different token through a synonym (bound 1) or not at all
// (bound 0).
//
// Under plain K-Join resolution different elements map to different nodes
// and the bound is the paper's d_e/(d_e+1). Under Plus resolution a
// different token may map to the *same* node (synonym or typo), so the
// similarity is bounded only by the element's best mapping quality
// max φ ≥ metric bound; using max φ keeps the pruning sound.
func (r *Resolver) MaxDiffSim(id ID, metric Metric) float64 {
	in := r.Info(id)
	if !in.Entity() {
		if r.opts.Plus && in.HasSyns {
			return 1
		}
		return 0
	}
	if r.opts.Plus {
		maxPhi := 0.0
		for _, m := range in.Mappings {
			if m.Phi > maxPhi {
				maxPhi = m.Phi
			}
		}
		return maxPhi
	}
	return metric.MaxDiffSim(in.MaxDepth)
}
