package elem

import (
	"math"

	"kjoin/internal/mathx"
)

// Metric selects the element-similarity formula on hierarchy depths.
type Metric int

const (
	// Standard is the paper's Definition 1:
	// SIM(ex, ey) = d_LCA / max(d_ex, d_ey).
	Standard Metric = iota
	// WuPalmer is the Wu & Palmer metric of §6.2:
	// SIM(ex, ey) = 2·d_LCA / (d_ex + d_ey).
	WuPalmer
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Standard:
		return "standard"
	case WuPalmer:
		return "wupalmer"
	default:
		return "unknown"
	}
}

// Sim evaluates the metric given the LCA depth and the two node depths.
// Two root-depth nodes (necessarily the same node) have similarity 1.
func (m Metric) Sim(dlca, dx, dy int) float64 {
	switch m {
	case WuPalmer:
		if dx+dy == 0 {
			return 1
		}
		return 2 * float64(dlca) / float64(dx+dy)
	default:
		max := dx
		if dy > max {
			max = dy
		}
		if max == 0 {
			return 1
		}
		return float64(dlca) / float64(max)
	}
}

// MinLCADepth returns d_δ, the minimum LCA depth of two *different*
// similar elements (paper §3.1 for Standard, §6.2 for WuPalmer). Node
// signatures are generated at this depth. For δ ≥ 1 only identical
// elements are similar and the result is a depth larger than any tree.
func (m Metric) MinLCADepth(delta float64) int {
	if delta >= 1 {
		return math.MaxInt32 / 2
	}
	if delta <= 0 {
		return 0
	}
	switch m {
	case WuPalmer:
		return mathx.CeilInt(delta / (2 * (1 - delta)))
	default:
		return mathx.CeilInt(delta / (1 - delta))
	}
}

// DeepLow returns the lowest (shallowest) depth of the deep path
// signatures of an element at depth de (Definition 7 for Standard). For
// WuPalmer the bound follows from 2·d_LCA/(d_x+d_y) ≥ δ and d_x ≥ d_LCA,
// giving d_LCA ≥ δ·d_e/(2−δ).
func (m Metric) DeepLow(de int, delta float64) int {
	if de <= 0 {
		return 0
	}
	var low int
	switch m {
	case WuPalmer:
		low = mathx.CeilInt(delta * float64(de) / (2 - delta))
	default:
		low = mathx.CeilInt(delta * float64(de))
	}
	if low > de {
		low = de
	}
	if low < 0 {
		low = 0
	}
	return low
}

// ShallowRange returns the depth range [lo, hi] of the shallow path
// signatures of an element at depth de (Definition 6): hi = DeepLow(de)
// and lo = DeepLow(hi).
func (m Metric) ShallowRange(de int, delta float64) (lo, hi int) {
	hi = m.DeepLow(de, delta)
	lo = m.DeepLow(hi, delta)
	return lo, hi
}

// MaxSimAtDepth returns the maximum similarity an element at depth de can
// have to any other element, given that the LCA of the pair is at depth d
// (d ≤ de). Used as the per-signature weight of the weighted path prefix
// (§4.2.2: d/d_e for Standard).
func (m Metric) MaxSimAtDepth(d, de int) float64 {
	if de <= 0 {
		return 1
	}
	switch m {
	case WuPalmer:
		// max over partner depth dy ≥ d of 2d/(de+dy), attained at dy = d.
		return 2 * float64(d) / float64(de+d)
	default:
		return float64(d) / float64(de)
	}
}

// MaxDiffSim returns the maximum similarity between two *different*
// elements where one has depth de: the partner then shares an LCA of
// depth at most de while having depth at least de+1 below... For the
// standard metric the paper uses d_e/(d_e+1) (Lemma 4): the best case is
// a sibling one level below a common ancestor at depth d_e.
func (m Metric) MaxDiffSim(de int) float64 {
	switch m {
	case WuPalmer:
		return 2 * float64(de) / float64(2*de+1)
	default:
		return float64(de) / float64(de+1)
	}
}
