package core

import (
	"bufio"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"kjoin/internal/hierarchy"
)

// snapshotMagic heads every Indexer snapshot.
const snapshotMagic = "kjoin-indexer-snapshot"

// snapshotVersion is the current snapshot format version. Version 2
// added the walseq header field (the last write-ahead-log sequence the
// snapshot covers), a CRC32C trailer over everything before it, and a
// record count — so a truncated or bit-flipped snapshot is detected at
// load instead of silently serving a shorter index. Version 3 added the
// segments line recording the engine's sealed-segment layout, so a load
// reproduces the exact segment structure the snapshot pinned. Versions
// 1 and 2 still load (their layout is rebuilt by the deterministic
// count-based seal policy).
const snapshotVersion = 3

// snapshotTrailer heads the final line of a v2+ snapshot.
const snapshotTrailer = "kjoin-snapshot-trailer"

// snapshotSegments heads the v3 segment-layout line.
const snapshotSegments = "kjoin-snapshot-segments"

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotMeta is what a snapshot says about itself beyond the objects.
type SnapshotMeta struct {
	// Objects is the object count declared (and verified) by the snapshot.
	Objects int
	// WALSeq is the last write-ahead-log sequence applied to the
	// Indexer when the snapshot was taken: recovery replays only WAL
	// records with larger sequences over it. Zero for v1 snapshots and
	// indexes that never saw a WAL.
	WALSeq uint64
}

// crcLineWriter mirrors every byte into a CRC32C alongside the
// destination, so the trailer can vouch for exactly the bytes written.
type crcLineWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
}

func (cw *crcLineWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p) // hash.Hash never errors
	return cw.w.Write(p)
}

func (cw *crcLineWriter) WriteString(s string) (int, error) {
	cw.crc.Write([]byte(s))
	return cw.w.WriteString(s)
}

func (cw *crcLineWriter) WriteByte(b byte) error {
	var one = [1]byte{b}
	cw.crc.Write(one[:])
	return cw.w.WriteByte(b)
}

// PinnedView is one immutable epoch of the Indexer, pinned by Pin: the
// segment layout, object count and WAL position it reports all belong
// to the same atomically published engine state, and WriteSnapshot
// serializes exactly that state no matter how many adds land after the
// pin. All methods are safe from any goroutine.
type PinnedView struct {
	ix *Indexer
	v  *view
}

// Pin captures the current engine epoch with one atomic load.
func (ix *Indexer) Pin() *PinnedView {
	return &PinnedView{ix: ix, v: ix.view.Load()}
}

// Objects returns the pinned object count.
func (pv *PinnedView) Objects() int { return pv.v.total }

// WALSeq returns the last write-ahead-log sequence the pinned state
// reflects.
func (pv *PinnedView) WALSeq() uint64 { return pv.v.walSeq }

// ObjectTokens returns the normalized token list of one indexed object,
// or ok=false when the id is outside the pinned view. The tokens are
// exactly what WriteSnapshot would emit for the object — re-adding them
// to a fresh index reproduces the object bit-identically — which is what
// lets a cluster reshard stream an object from one shard to another.
func (pv *PinnedView) ObjectTokens(id int) ([]string, bool) {
	if id < 0 || id >= pv.v.total {
		return nil, false
	}
	o := pv.v.objAt(id)
	out := make([]string, len(o.elems))
	for i, e := range o.elems {
		out[i] = pv.ix.j.res.Info(e).Token
	}
	return out, true
}

// SegmentSizes returns the pinned sealed-segment layout (object count
// per segment, in order).
func (pv *PinnedView) SegmentSizes() []int {
	out := make([]int, len(pv.v.segs))
	for i, s := range pv.v.segs {
		out[i] = len(s.objs)
	}
	return out
}

// WriteSnapshot persists the pinned state: a header recording the
// configuration fingerprint, object count and covered WAL sequence, the
// sealed-segment layout, the tokenized objects in insertion order (one
// per line, tab-separated tokens), and a trailer carrying the record
// count and a CRC32C of everything before it. The format is plain text
// — derived state (signatures, prefixes, inverted lists) is cheap to
// rebuild deterministically and would multiply the format surface.
func (pv *PinnedView) WriteSnapshot(w io.Writer) error {
	ix, v := pv.ix, pv.v
	bw := bufio.NewWriter(w)
	cw := &crcLineWriter{w: bw, crc: crc32.New(snapCastagnoli)}
	opt := ix.j.opt
	if _, err := fmt.Fprintf(cw, "%s %d\n", snapshotMagic, snapshotVersion); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cw, "delta=%g tau=%g metric=%v set=%v scheme=%v weighted=%v verifier=%v plus=%v objects=%d walseq=%d\n",
		opt.Delta, opt.Tau, opt.Metric, opt.Set, opt.Scheme, opt.Weighted, opt.Verifier, opt.Plus, v.total, v.walSeq); err != nil {
		return err
	}
	if _, err := cw.WriteString(segmentsLine(pv.SegmentSizes())); err != nil {
		return err
	}
	if err := cw.WriteByte('\n'); err != nil {
		return err
	}
	writeObj := func(o *prepped) error {
		for i, e := range o.elems {
			if i > 0 {
				if err := cw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := cw.WriteString(ix.j.res.Info(e).Token); err != nil {
				return err
			}
		}
		return cw.WriteByte('\n')
	}
	for _, seg := range v.segs {
		for i := range seg.objs {
			if err := writeObj(&seg.objs[i]); err != nil {
				return err
			}
		}
	}
	for i := range v.memObjs {
		if err := writeObj(&v.memObjs[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "%s crc32c=%08x records=%d\n", snapshotTrailer, cw.crc.Sum32(), v.total); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSnapshot persists the Indexer's contents as of the current
// engine epoch — Pin().WriteSnapshot(w). Callers that need the pinned
// WAL sequence or layout alongside the bytes use Pin directly.
func (ix *Indexer) WriteSnapshot(w io.Writer) error {
	return ix.Pin().WriteSnapshot(w)
}

// segmentsLine renders the segment-layout line: comma-separated sizes,
// or "-" for an empty layout.
func segmentsLine(sizes []int) string {
	var sb strings.Builder
	sb.WriteString(snapshotSegments)
	sb.WriteByte(' ')
	if len(sizes) == 0 {
		sb.WriteByte('-')
		return sb.String()
	}
	for i, n := range sizes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(n))
	}
	return sb.String()
}

// parseSegmentsLine decodes the v3 segment-layout line and validates it
// against the declared object count: sizes are positive and their sum
// cannot exceed the objects the snapshot holds (the remainder is the
// memtable).
func parseSegmentsLine(line string, declared int) ([]int, error) {
	rest, ok := strings.CutPrefix(line, snapshotSegments+" ")
	if !ok {
		return nil, fmt.Errorf("kjoin: snapshot: bad segments line %q", line)
	}
	if rest == "-" {
		return nil, nil
	}
	parts := strings.Split(rest, ",")
	sizes := make([]int, len(parts))
	sum := 0
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("kjoin: snapshot: bad segment size %q", p)
		}
		sizes[i] = n
		sum += n
	}
	if declared >= 0 && sum > declared {
		return nil, fmt.Errorf("kjoin: snapshot: segment sizes sum to %d but header declares %d objects", sum, declared)
	}
	return sizes, nil
}

// LoadIndexer rebuilds an Indexer from a snapshot written by
// WriteSnapshot; see LoadIndexerMeta for the full contract.
func LoadIndexer(h *hierarchy.Hierarchy, opt Options, r io.Reader) (*Indexer, error) {
	ix, _, err := LoadIndexerMeta(h, opt, r)
	return ix, err
}

// snapshotHeader is the parsed magic + config lines of a snapshot.
type snapshotHeader struct {
	version  int
	cfg      string // config line with the objects/walseq suffix stripped
	declared int    // declared object count; -1 when absent (legacy v1)
	meta     SnapshotMeta
}

// parseSnapshotHeader decodes the two header lines shared by every
// snapshot version.
func parseSnapshotHeader(magicLine, cfgLine string) (snapshotHeader, error) {
	hdr := snapshotHeader{declared: -1}
	if _, err := fmt.Sscanf(magicLine, snapshotMagic+" %d", &hdr.version); err != nil {
		return hdr, fmt.Errorf("kjoin: snapshot: bad magic line %q", magicLine)
	}
	if hdr.version < 1 || hdr.version > snapshotVersion {
		return hdr, fmt.Errorf("kjoin: snapshot: unsupported version %d", hdr.version)
	}
	hdr.cfg = cfgLine
	if idx := strings.Index(hdr.cfg, " objects="); idx >= 0 {
		suffix := hdr.cfg[idx+1:]
		hdr.cfg = hdr.cfg[:idx]
		switch hdr.version {
		case 1:
			if _, err := fmt.Sscanf(suffix, "objects=%d", &hdr.declared); err != nil || hdr.declared < 0 {
				return hdr, fmt.Errorf("kjoin: snapshot: bad object count %q", suffix)
			}
		default:
			if _, err := fmt.Sscanf(suffix, "objects=%d walseq=%d", &hdr.declared, &hdr.meta.WALSeq); err != nil || hdr.declared < 0 {
				return hdr, fmt.Errorf("kjoin: snapshot: bad objects/walseq header %q", suffix)
			}
		}
	} else if hdr.version != 1 {
		return hdr, fmt.Errorf("kjoin: snapshot: v%d header missing objects count", hdr.version)
	}
	hdr.meta.Objects = hdr.declared
	return hdr, nil
}

// PeekSnapshotMeta reads only a snapshot's header and reports what it
// claims to cover (object count, WAL sequence) without rebuilding the
// index or verifying the body checksum. Recovery uses it to learn the
// WAL position of every retained generation — including the ones it did
// not load — so compaction can be floored below all of them. A
// v1 header without a declared count reports Objects = -1.
func PeekSnapshotMeta(r io.Reader) (SnapshotMeta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	if !sc.Scan() {
		return SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: missing header: %w", sc.Err())
	}
	magicLine := sc.Text()
	if !sc.Scan() {
		return SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: missing config line")
	}
	hdr, err := parseSnapshotHeader(magicLine, sc.Text())
	if err != nil {
		return SnapshotMeta{}, err
	}
	return hdr.meta, nil
}

// LoadIndexerMeta rebuilds an Indexer from a snapshot and reports the
// snapshot's metadata. The caller supplies the hierarchy and options
// (they are not serialized — the snapshot carries a fingerprint and
// loading fails on a mismatch, preventing silent semantic drift).
// Rebuilding skips the probe phase: objects are re-indexed without
// re-reporting pairs. A v3 snapshot's recorded segment layout is
// reproduced verbatim (seals at exactly the recorded boundaries, no
// merging); older snapshots rebuild their layout through the
// deterministic count-based seal policy.
//
// Loading is strict about integrity: the declared object count must
// match the lines actually read (a snapshot truncated on a line
// boundary fails instead of loading short), and a v2+ snapshot must end
// with a trailer whose CRC32C matches the bytes read and whose record
// count agrees with the header.
func LoadIndexerMeta(h *hierarchy.Hierarchy, opt Options, r io.Reader) (*Indexer, SnapshotMeta, error) {
	ix, err := NewIndexer(h, opt)
	if err != nil {
		return nil, SnapshotMeta{}, err
	}
	crc := crc32.New(snapCastagnoli)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: missing header: %w", sc.Err())
	}
	magicLine := sc.Text()
	hashLine(crc, magicLine)
	if !sc.Scan() {
		return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: missing config line")
	}
	cfgLine := sc.Text()
	hashLine(crc, cfgLine)
	hdr, err := parseSnapshotHeader(magicLine, cfgLine)
	if err != nil {
		return nil, SnapshotMeta{}, err
	}
	version, declared, meta := hdr.version, hdr.declared, hdr.meta
	wantCfg := fmt.Sprintf("delta=%g tau=%g metric=%v set=%v scheme=%v weighted=%v verifier=%v plus=%v",
		opt.Delta, opt.Tau, opt.Metric, opt.Set, opt.Scheme, opt.Weighted, opt.Verifier, opt.Plus)
	if hdr.cfg != wantCfg {
		return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: configuration mismatch:\n snapshot: %s\n  options: %s", hdr.cfg, wantCfg)
	}
	// A recorded layout overrides the count-based seal policy: seal at
	// exactly the recorded cumulative boundaries and nowhere else.
	var boundaries []int // cumulative object counts at which to seal
	if version >= 3 {
		if !sc.Scan() {
			return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: missing segments line")
		}
		segLine := sc.Text()
		hashLine(crc, segLine)
		sizes, err := parseSegmentsLine(segLine, declared)
		if err != nil {
			return nil, SnapshotMeta{}, err
		}
		cum := 0
		for _, n := range sizes {
			cum += n
			boundaries = append(boundaries, cum)
		}
		ix.loadLayout = true
		defer func() { ix.loadLayout = false }()
	}
	sawTrailer := false
	for sc.Scan() {
		line := sc.Text()
		if version >= 2 && strings.HasPrefix(line, snapshotTrailer+" ") {
			var wantCRC uint32
			var wantRecords int
			if _, err := fmt.Sscanf(line, snapshotTrailer+" crc32c=%x records=%d", &wantCRC, &wantRecords); err != nil {
				return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: bad trailer %q", line)
			}
			if got := crc.Sum32(); got != wantCRC {
				return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: checksum mismatch: crc32c %08x, trailer says %08x", got, wantCRC)
			}
			if wantRecords != ix.Len() {
				return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: trailer records=%d but %d objects read", wantRecords, ix.Len())
			}
			sawTrailer = true
			continue
		}
		if sawTrailer {
			return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: data after trailer")
		}
		hashLine(crc, line)
		var tokens []string
		if line != "" {
			tokens = strings.Split(line, "\t")
		}
		if err := ix.addNoProbe(tokens); err != nil {
			return nil, SnapshotMeta{}, err
		}
		if len(boundaries) > 0 && ix.Len() == boundaries[0] {
			ix.sealBoundary()
			boundaries = boundaries[1:]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, SnapshotMeta{}, err
	}
	if version >= 2 && !sawTrailer {
		return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: truncated: missing trailer")
	}
	if declared >= 0 && ix.Len() != declared {
		return nil, SnapshotMeta{}, fmt.Errorf("kjoin: snapshot: header says objects=%d but %d object lines read (truncated?)", declared, ix.Len())
	}
	meta.Objects = ix.Len()
	ix.mu.Lock()
	ix.walSeq = meta.WALSeq
	ix.publishLocked()
	ix.mu.Unlock()
	return ix, meta, nil
}

// hashLine feeds one scanned line (with the newline the scanner
// stripped) into the snapshot checksum.
func hashLine(crc hash.Hash32, line string) {
	crc.Write([]byte(line))
	crc.Write([]byte{'\n'})
}

// WALSeq returns the last write-ahead-log sequence applied to this
// Indexer (via ApplyLogged, SetWALSeq, or the snapshot it was loaded
// from). Zero when no WAL is involved. Safe to call concurrently with
// anything (it reads the published view).
func (ix *Indexer) WALSeq() uint64 { return ix.view.Load().walSeq }

// SetWALSeq records that every WAL record up to and including seq is
// reflected in the Indexer. The server calls it under the same lock
// that ordered the corresponding Add.
func (ix *Indexer) SetWALSeq(seq uint64) {
	ix.mu.Lock()
	ix.walSeq = seq
	ix.publishLocked()
	ix.mu.Unlock()
}

// ApplyLogged replays one write-ahead-log add record: the object is
// indexed without probing for pairs (they were already reported when
// the add was acknowledged) and the Indexer's WAL position advances.
// Records must arrive in contiguous sequence order — a gap means log
// segments were lost and the recovered index would silently diverge, so
// it is an error rather than a skip.
func (ix *Indexer) ApplyLogged(seq uint64, tokens []string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if seq != ix.walSeq+1 {
		return fmt.Errorf("kjoin: WAL gap: record seq %d after applied seq %d", seq, ix.walSeq)
	}
	if err := ix.insertNoProbeLocked(tokens); err != nil {
		return err
	}
	ix.walSeq = seq
	ix.publishLocked()
	return nil
}

// ApplySealLogged replays one write-ahead-log seal record: the memtable
// is sealed (a no-op when it is already empty — logs written before
// seal records existed replay through the count-based policy instead,
// and the two stay idempotent), merged to the layout fixpoint, and the
// WAL position advances. The same contiguity contract as ApplyLogged
// applies.
func (ix *Indexer) ApplySealLogged(seq uint64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if seq != ix.walSeq+1 {
		return fmt.Errorf("kjoin: WAL gap: seal record seq %d after applied seq %d", seq, ix.walSeq)
	}
	ix.sealLocked()
	ix.mergeToFixpointLocked()
	ix.walSeq = seq
	ix.publishLocked()
	return nil
}

// addNoProbe indexes an object without searching for its pairs — the
// replay path of LoadIndexer.
func (ix *Indexer) addNoProbe(tokens []string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.insertNoProbeLocked(tokens); err != nil {
		return err
	}
	ix.publishLocked()
	return nil
}

// sealBoundary seals the memtable at a snapshot-recorded segment
// boundary — the v3 load path, which reproduces the recorded layout
// verbatim and therefore never merges.
func (ix *Indexer) sealBoundary() {
	ix.mu.Lock()
	ix.sealLocked()
	ix.publishLocked()
	ix.mu.Unlock()
}

// insertNoProbeLocked preps and commits one object without probing for
// pairs — shared by snapshot loading and WAL replay. Replay never logs
// seals: count-based seals here reproduce the layout of logs written
// before seal records existed, and are suppressed while a recorded v3
// layout is being reproduced. It stays lenient about structurally odd
// objects (empty lines) so snapshots written before input validation
// existed still load. Caller holds mu.
func (ix *Indexer) insertNoProbeLocked(tokens []string) error {
	id := ix.mem.base + len(ix.mem.objs)
	if id > (1<<31)-2 {
		return fmt.Errorf("kjoin: indexer is full")
	}
	p, entries := ix.prep(tokens)
	if !ix.loadLayout && len(ix.mem.objs) >= ix.sealCap() {
		ix.sealLocked()
		ix.mergeToFixpointLocked()
	}
	ix.insertLocked(p)
	ix.j.st.SigEntries += int64(entries)
	return nil
}
