package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"kjoin/internal/hierarchy"
)

// snapshotMagic heads every Indexer snapshot.
const snapshotMagic = "kjoin-indexer-snapshot"

// snapshotVersion is the current snapshot format version.
const snapshotVersion = 1

// WriteSnapshot persists the Indexer's contents: a header recording the
// configuration fingerprint and the tokenized objects in insertion
// order, one per line (tab-separated tokens). The format is plain text
// — derived state (signatures, prefixes, inverted lists) is cheap to
// rebuild deterministically and would multiply the format surface.
func (ix *Indexer) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	opt := ix.j.opt
	if _, err := fmt.Fprintf(bw, "%s %d\n", snapshotMagic, snapshotVersion); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "delta=%g tau=%g metric=%v set=%v scheme=%v weighted=%v verifier=%v plus=%v objects=%d\n",
		opt.Delta, opt.Tau, opt.Metric, opt.Set, opt.Scheme, opt.Weighted, opt.Verifier, opt.Plus, len(ix.objs)); err != nil {
		return err
	}
	for _, o := range ix.objs {
		for i, e := range o.elems {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(ix.j.res.Info(e).Token); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIndexer rebuilds an Indexer from a snapshot written by
// WriteSnapshot. The caller supplies the hierarchy and options (they are
// not serialized — the snapshot carries a fingerprint and loading fails
// on a mismatch, preventing silent semantic drift). Rebuilding skips the
// probe phase: objects are re-indexed without re-reporting pairs.
func LoadIndexer(h *hierarchy.Hierarchy, opt Options, r io.Reader) (*Indexer, error) {
	ix, err := NewIndexer(h, opt)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("kjoin: snapshot: missing header: %w", sc.Err())
	}
	var version int
	if _, err := fmt.Sscanf(sc.Text(), snapshotMagic+" %d", &version); err != nil {
		return nil, fmt.Errorf("kjoin: snapshot: bad magic line %q", sc.Text())
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("kjoin: snapshot: unsupported version %d", version)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("kjoin: snapshot: missing config line")
	}
	wantCfg := fmt.Sprintf("delta=%g tau=%g metric=%v set=%v scheme=%v weighted=%v verifier=%v plus=%v",
		opt.Delta, opt.Tau, opt.Metric, opt.Set, opt.Scheme, opt.Weighted, opt.Verifier, opt.Plus)
	gotCfg := sc.Text()
	if idx := strings.Index(gotCfg, " objects="); idx >= 0 {
		gotCfg = gotCfg[:idx]
	}
	if gotCfg != wantCfg {
		return nil, fmt.Errorf("kjoin: snapshot: configuration mismatch:\n snapshot: %s\n  options: %s", gotCfg, wantCfg)
	}
	for sc.Scan() {
		line := sc.Text()
		var tokens []string
		if line != "" {
			tokens = strings.Split(line, "\t")
		}
		if err := ix.addNoProbe(tokens); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ix, nil
}

// addNoProbe indexes an object without searching for its pairs — the
// replay path of LoadIndexer. It stays lenient about structurally odd
// objects (empty lines) so snapshots written before input validation
// existed still load.
func (ix *Indexer) addNoProbe(tokens []string) error {
	j := ix.j
	id := len(ix.objs)
	if id > (1<<31)-2 {
		return fmt.Errorf("kjoin: indexer is full")
	}
	p, entries := ix.prepObject(tokens)
	j.st.SigEntries += int64(entries)
	ix.seen = append(ix.seen, 0)
	ix.ix.AddAll(p.prefix, int32(id))
	ix.objs = append(ix.objs, p)
	j.st.Objects = len(ix.objs)
	return nil
}
