package core

import (
	"time"

	"kjoin/internal/index"
)

// defaultSealEvery is the memtable capacity when Options.SealEvery is 0.
const defaultSealEvery = 256

// memtable is the mutable tail of the segmented engine: the objects
// added since the last seal, absorbing inserts under ix.mu until the
// seal threshold freezes them into an immutable segment. Its inverted
// index lives separately on the Indexer (memInv) because it is
// writer-private — lock-free readers probe the memtable by scanning
// the published object prefix instead.
type memtable struct {
	base int       // global id of objs[0]
	objs []prepped // appended under the Indexer's mu; published prefixes are immutable
}

// sealCap returns the memtable capacity in objects.
func (ix *Indexer) sealCap() int {
	if n := ix.j.opt.SealEvery; n > 0 {
		return n
	}
	return defaultSealEvery
}

// sealDueLocked reports whether the next insert must first seal the
// memtable: it is at capacity, or SealAge is set and it has been open
// too long. Caller holds mu.
func (ix *Indexer) sealDueLocked() bool {
	n := len(ix.mem.objs)
	if n == 0 {
		return false
	}
	if n >= ix.sealCap() {
		return true
	}
	return ix.j.opt.SealAge > 0 && time.Since(ix.memBirth) >= ix.j.opt.SealAge
}

// sealLocked freezes the memtable into an immutable segment and starts
// a fresh one. The memtable's writer-private inverted index already
// holds exactly the segment's postings (global ids, ascending), so the
// seal adopts it instead of rebuilding. No-op on an empty memtable —
// replayed seal records stay idempotent against the defensive
// count-based seals of pre-seal-record logs. Caller holds mu.
func (ix *Indexer) sealLocked() {
	if len(ix.mem.objs) == 0 {
		return
	}
	objs := ix.mem.objs[:len(ix.mem.objs):len(ix.mem.objs)]
	seg := &segment{base: ix.mem.base, objs: objs, inv: ix.memInv}
	ix.segs = append(ix.segs, seg)
	ix.mem = &memtable{base: seg.base + len(seg.objs)}
	ix.memInv = index.New()
	ix.sealTotal++
}

// insertLocked appends a prepped object to the memtable and returns its
// global id. Caller holds mu and has already handled sealing.
func (ix *Indexer) insertLocked(p prepped) int {
	id := ix.mem.base + len(ix.mem.objs)
	if len(ix.mem.objs) == 0 {
		ix.memBirth = time.Now()
	}
	ix.memInv.AddAll(p.prefix, int32(id))
	ix.mem.objs = append(ix.mem.objs, p)
	ix.seen = append(ix.seen, 0)
	ix.j.st.Objects = id + 1
	return id
}

// logSealLocked appends a seal record through the installed seal logger
// (if any) and advances the engine's WAL position to it. It must run
// before the seal mutates anything: if the append fails the add that
// triggered the seal is aborted and the engine is unchanged. Caller
// holds mu.
func (ix *Indexer) logSealLocked() error {
	if ix.sealLog == nil {
		return nil
	}
	seq, err := ix.sealLog()
	if err != nil {
		return err
	}
	ix.walSeq = seq
	return nil
}

// SetSealLogger installs the hook the engine calls immediately before
// sealing the memtable on a live add: it must append a seal record to
// the write-ahead log and return its sequence, so recovery can replay
// the exact segment layout. The server installs it once at recovery,
// after replay (replayed seals must not be re-logged).
func (ix *Indexer) SetSealLogger(fn func() (uint64, error)) {
	ix.mu.Lock()
	ix.sealLog = fn
	ix.mu.Unlock()
}

// Seal forces the current memtable into a segment regardless of the
// thresholds — a no-op (and nothing is logged) when it is empty. Used
// by tests and benchmarks to pin a segment layout.
func (ix *Indexer) Seal() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.mem.objs) == 0 {
		return nil
	}
	if err := ix.logSealLocked(); err != nil {
		return err
	}
	ix.sealLocked()
	if ch := ix.maybeMergeLocked(); ch != nil {
		go ix.mergeLoop(ch)
	}
	ix.publishLocked()
	return nil
}

// SegmentSizes returns the object count of each sealed segment in
// order — the engine's layout, as pinned by the current view. Safe to
// call concurrently with anything.
func (ix *Indexer) SegmentSizes() []int {
	v := ix.view.Load()
	out := make([]int, len(v.segs))
	for i, s := range v.segs {
		out[i] = len(s.objs)
	}
	return out
}
