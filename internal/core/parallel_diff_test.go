package core

// Differential tests for the per-worker scratch refactor at the join
// level: the parallel probe loop (per-worker verify.Context clones with
// their own scratch arenas and similarity caches) must return
// byte-identical results — same pairs, same order, same Sim bits — as
// the single-worker run, across a randomized configuration matrix.
// Run with -race to also prove the clones share no mutable state.

import (
	"math"
	"math/rand"
	"testing"

	"kjoin/internal/elem"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
	"kjoin/internal/verify"
)

// samePairs reports whether two join results are byte-identical:
// identical length, order, indices, and Sim bit patterns.
func samePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].X != b[i].X || a[i].Y != b[i].Y {
			return false
		}
		if math.Float64bits(a[i].Sim) != math.Float64bits(b[i].Sim) {
			return false
		}
	}
	return true
}

// TestParallelJoinBitIdentical: SelfJoin and Join with Workers=4 equal
// Workers=1 bit for bit across random δ/τ/scheme/verifier/Plus settings.
func TestParallelJoinBitIdentical(t *testing.T) {
	schemes := []sig.Scheme{sig.Node, sig.Shallow, sig.Deep}
	verifiers := []verify.Kind{verify.Basic, verify.SubGraph, verify.Adaptive}
	metrics := []elem.Metric{elem.Standard, elem.WuPalmer}
	sets := []setmetric.Kind{setmetric.Jaccard, setmetric.Dice, setmetric.Cosine}
	iterations := 40
	if testing.Short() {
		iterations = 8
	}
	for seed := 0; seed < iterations; seed++ {
		r := rand.New(rand.NewSource(int64(1000 + seed)))
		h := randHierarchy(r, 15+r.Intn(60))
		objs := randObjects(r, h, 12+r.Intn(24))
		opt := Options{
			Delta:       0.3 + 0.6*r.Float64(),
			Tau:         0.3 + 0.6*r.Float64(),
			Metric:      metrics[r.Intn(len(metrics))],
			Set:         sets[r.Intn(len(sets))],
			Scheme:      schemes[r.Intn(len(schemes))],
			Weighted:    r.Intn(2) == 0,
			Verifier:    verifiers[r.Intn(len(verifiers))],
			Plus:        r.Intn(2) == 0,
			PhiMin:      0.7 + 0.3*r.Float64(),
			ComputeSims: true,
		}

		opt.Workers = 1
		serial, _, err := SelfJoin(h, objs, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt.Workers = 4
		parallel, _, err := SelfJoin(h, objs, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !samePairs(serial, parallel) {
			t.Errorf("seed %d (%+v): SelfJoin workers=4 diverges from workers=1\n serial  %v\n parallel %v",
				seed, opt, serial, parallel)
		}

		cut := len(objs) / 2
		opt.Workers = 1
		serialRS, _, err := Join(h, objs[:cut], objs[cut:], opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt.Workers = 4
		parallelRS, _, err := Join(h, objs[:cut], objs[cut:], opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !samePairs(serialRS, parallelRS) {
			t.Errorf("seed %d (%+v): Join workers=4 diverges from workers=1", seed, opt)
		}
	}
}

// TestParallelJoinMatchesNaiveSims: beyond pair sets, the scratch-backed
// join's similarities must equal the naive all-pairs similarities bit
// for bit (the sim cache and solver reuse may not perturb a single ulp).
func TestParallelJoinMatchesNaiveSims(t *testing.T) {
	iterations := 20
	if testing.Short() {
		iterations = 5
	}
	for seed := 0; seed < iterations; seed++ {
		r := rand.New(rand.NewSource(int64(2000 + seed)))
		h := randHierarchy(r, 15+r.Intn(40))
		objs := randObjects(r, h, 10+r.Intn(14))
		opt := Defaults(0.3+0.6*r.Float64(), 0.3+0.6*r.Float64())
		opt.Plus = r.Intn(2) == 0
		opt.Workers = 4
		got, _, err := SelfJoin(h, objs, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := NaiveSelfJoin(h, objs, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !samePairs(got, want) {
			t.Errorf("seed %d: filtered join sims diverge from naive\n got  %v\n want %v", seed, got, want)
		}
	}
}
