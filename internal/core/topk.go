package core

import (
	"sort"

	"kjoin/internal/hierarchy"
	"kjoin/internal/mathx"
)

// TopKSelfJoin returns the k most similar object pairs (ties broken by
// pair indices) with similarity at least opt.Tau, which acts as a floor:
// the search never reports pairs below it, and if fewer than k pairs
// reach the floor, fewer are returned.
//
// The algorithm runs the threshold join with a descending threshold
// schedule starting near 1; as soon as a run yields at least k pairs,
// the k best are exact — a τ-threshold join returns *every* pair with
// similarity ≥ τ, so nothing above the k-th similarity can be missing.
// High-threshold probes are cheap (prefixes are long, candidates few),
// which makes the schedule far cheaper than one low-threshold join when
// the top pairs are similar.
func TopKSelfJoin(h *hierarchy.Hierarchy, objects [][]string, k int, opt Options) ([]Pair, *Stats, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if k <= 0 {
		return nil, &Stats{Objects: len(objects)}, nil
	}
	floor := opt.Tau
	opt.ComputeSims = true
	total := &Stats{}

	schedule := []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	var pairs []Pair
	for _, tau := range schedule {
		if tau < floor {
			break
		}
		opt.Tau = tau
		var st *Stats
		var err error
		pairs, st, err = SelfJoin(h, objects, opt)
		if err != nil {
			return nil, nil, err
		}
		accumulate(total, st)
		if len(pairs) >= k || tau <= floor {
			break
		}
	}
	if opt.Tau > floor && len(pairs) < k {
		opt.Tau = floor
		var st *Stats
		var err error
		pairs, st, err = SelfJoin(h, objects, opt)
		if err != nil {
			return nil, nil, err
		}
		accumulate(total, st)
	}

	sort.Slice(pairs, func(i, j int) bool {
		if c := mathx.Cmp(pairs[i].Sim, pairs[j].Sim); c != 0 {
			return c > 0
		}
		if pairs[i].X != pairs[j].X {
			return pairs[i].X < pairs[j].X
		}
		return pairs[i].Y < pairs[j].Y
	})
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs, total, nil
}

// accumulate folds one run's stats into the total.
func accumulate(total, st *Stats) {
	total.Objects = st.Objects
	total.Candidates += st.Candidates
	total.Preprocess += st.Preprocess
	total.BuildIndex += st.BuildIndex
	total.Probe += st.Probe
	total.VerifyTime += st.VerifyTime
	total.Verify.Add(st.Verify)
	total.SigEntries += st.SigEntries
	total.AvgPrefix = st.AvgPrefix
}
