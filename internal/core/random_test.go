package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"kjoin/internal/elem"
	"kjoin/internal/hierarchy"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
	"kjoin/internal/synonym"
	"kjoin/internal/verify"
)

// randHierarchy builds a random tree with occasional duplicate names
// (multi-node mappings) for adversarial completeness testing.
func randHierarchy(r *rand.Rand, nodes int) *hierarchy.Hierarchy {
	h := hierarchy.New("root")
	for i := 1; i < nodes; i++ {
		parent := hierarchy.NodeID(r.Intn(h.Len()))
		name := fmt.Sprintf("n%d", i)
		if r.Intn(8) == 0 && i > 2 {
			// Duplicate an existing name: the element maps to several
			// nodes (§6.4).
			name = h.Name(hierarchy.NodeID(1 + r.Intn(h.Len()-1)))
		}
		h.Add(parent, name)
	}
	return h
}

// randObjects samples token sets over hierarchy names, free tokens and
// typo'd variants.
func randObjects(r *rand.Rand, h *hierarchy.Hierarchy, count int) [][]string {
	names := h.Names()
	free := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var objs [][]string
	for i := 0; i < count; i++ {
		n := 1 + r.Intn(6)
		var o []string
		for j := 0; j < n; j++ {
			switch r.Intn(10) {
			case 0, 1:
				o = append(o, free[r.Intn(len(free))])
			case 2:
				// Typo'd hierarchy name.
				name := names[r.Intn(len(names))]
				b := []byte(name)
				if len(b) > 1 {
					b[r.Intn(len(b))] = byte('a' + r.Intn(26))
				}
				o = append(o, string(b))
			default:
				o = append(o, names[r.Intn(len(names))])
			}
		}
		objs = append(objs, o)
	}
	return objs
}

// TestRandomizedCompleteness is the adversarial version of
// TestJoinMatchesNaive: random hierarchies (with duplicate names),
// random objects (with typos and free tokens), random configurations —
// the filtered join must always equal the naive all-pairs join.
func TestRandomizedCompleteness(t *testing.T) {
	schemes := []sig.Scheme{sig.Node, sig.Shallow, sig.Deep}
	verifiers := []verify.Kind{verify.Basic, verify.SubGraph, verify.Adaptive}
	metrics := []elem.Metric{elem.Standard, elem.WuPalmer}
	sets := []setmetric.Kind{setmetric.Jaccard, setmetric.Dice, setmetric.Cosine}
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	for seed := 0; seed < iterations; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		h := randHierarchy(r, 10+r.Intn(60))
		objs := randObjects(r, h, 8+r.Intn(20))
		d := synonym.New()
		if r.Intn(2) == 0 {
			names := h.Names()
			d.Add(names[r.Intn(len(names))], "aliasword")
			d.Add("alpha", "beta")
		}
		opt := Options{
			Delta:    0.3 + 0.6*r.Float64(),
			Tau:      0.3 + 0.6*r.Float64(),
			Metric:   metrics[r.Intn(len(metrics))],
			Set:      sets[r.Intn(len(sets))],
			Scheme:   schemes[r.Intn(len(schemes))],
			Weighted: r.Intn(2) == 0,
			Verifier: verifiers[r.Intn(len(verifiers))],
			Plus:     r.Intn(2) == 0,
			Synonyms: d,
			PhiMin:   0.7 + 0.3*r.Float64(),
		}
		got, _, err := SelfJoin(h, objs, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := NaiveSelfJoin(h, objs, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(pairKeys(got), pairKeys(want)) {
			t.Errorf("seed %d (%+v):\n got %v\nwant %v", seed, opt, pairKeys(got), pairKeys(want))
		}
	}
}

// TestRandomizedIndexerCompleteness: the online Indexer agrees with the
// naive join on random inputs too.
func TestRandomizedIndexerCompleteness(t *testing.T) {
	iterations := 25
	if testing.Short() {
		iterations = 5
	}
	for seed := 100; seed < 100+iterations; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		h := randHierarchy(r, 10+r.Intn(40))
		objs := randObjects(r, h, 6+r.Intn(14))
		opt := Defaults(0.3+0.6*r.Float64(), 0.3+0.6*r.Float64())
		opt.Weighted = r.Intn(2) == 0
		ix, err := NewIndexer(h, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got []Pair
		for _, o := range objs {
			pairs, err := ix.Add(o)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, pairs...)
		}
		want, err := NaiveSelfJoin(h, objs, opt)
		if err != nil {
			t.Fatal(err)
		}
		// The indexer reports pairs in insertion order; normalize.
		gk, wk := pairKeys(got), pairKeys(want)
		sortKeys(gk)
		sortKeys(wk)
		if !reflect.DeepEqual(gk, wk) {
			t.Errorf("seed %d: indexer %v, naive %v", seed, gk, wk)
		}
	}
}

func sortKeys(ks [][2]int) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i][0] != ks[j][0] {
			return ks[i][0] < ks[j][0]
		}
		return ks[i][1] < ks[j][1]
	})
}

// TestRandomizedRSJoin: the R-S join equals the filtered self join
// restricted to cross pairs.
func TestRandomizedRSJoin(t *testing.T) {
	iterations := 25
	if testing.Short() {
		iterations = 5
	}
	for seed := 200; seed < 200+iterations; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		h := randHierarchy(r, 10+r.Intn(40))
		objs := randObjects(r, h, 10+r.Intn(10))
		cut := 2 + r.Intn(len(objs)-4)
		opt := Defaults(0.3+0.6*r.Float64(), 0.3+0.6*r.Float64())
		opt.ComputeSims = false
		got, _, err := Join(h, objs[:cut], objs[cut:], opt)
		if err != nil {
			t.Fatal(err)
		}
		all, err := NaiveSelfJoin(h, objs, opt)
		if err != nil {
			t.Fatal(err)
		}
		var want [][2]int
		for _, p := range all {
			if p.X < cut && p.Y >= cut {
				want = append(want, [2]int{p.X, p.Y - cut})
			}
		}
		gk := pairKeys(got)
		if !reflect.DeepEqual(gk, want) && !(len(gk) == 0 && len(want) == 0) {
			t.Errorf("seed %d cut %d: got %v, want %v", seed, cut, gk, want)
		}
	}
}
