// Package core implements the K-Join driver: preprocessing (tokenized
// objects → resolved elements → signatures → prefixes), the prefix-filter
// candidate generation of Algorithm 1 / Algorithm 2, the verification
// dispatch, and both self-join and R-S join (§6.1).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"kjoin/internal/elem"
	"kjoin/internal/hierarchy"
	"kjoin/internal/index"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
	"kjoin/internal/synonym"
	"kjoin/internal/verify"
)

// Options configures a join. The zero value is not valid; use Defaults
// and override.
type Options struct {
	// Delta is the element similarity threshold δ ∈ (0, 1].
	Delta float64
	// Tau is the object similarity threshold τ ∈ (0, 1].
	Tau float64
	// Metric is the element similarity metric (Definition 1 or §6.2).
	Metric elem.Metric
	// Set is the object-level set similarity (Definition 2 or §6.3).
	Set setmetric.Kind
	// Scheme selects node, shallow or deep signatures (§3.1, §4).
	Scheme sig.Scheme
	// Weighted uses the weighted path prefix (Definition 9) instead of
	// the distinct-element prefix (Definitions 5/8).
	Weighted bool
	// Verifier selects the verification algorithm (§3.2, §5).
	Verifier verify.Kind
	// Plus enables K-Join+ element resolution: multi-node mappings,
	// synonyms and typo tolerance (§6.4, Equation 2).
	Plus bool
	// Synonyms is the synonym dictionary used when Plus is set.
	Synonyms *synonym.Dict
	// PhiMin is the minimum edit similarity for typo-tolerant node
	// matching under Plus. Zero selects max(Delta, 0.8): tolerating a
	// few character edits without letting every token match half the
	// hierarchy.
	PhiMin float64
	// MaxMappings caps the hierarchy nodes one element can map to under
	// Plus (0 selects 4). The cap consistently defines the element
	// similarity used by resolution, filtering and verification.
	MaxMappings int
	// Workers bounds probe-loop parallelism; 0 means GOMAXPROCS,
	// 1 runs the exact sequential algorithm. Candidates and results are
	// identical regardless.
	Workers int
	// ComputeSims fills Pair.Sim with the exact similarity of each
	// result pair (a little extra work after verification).
	ComputeSims bool
	// SealEvery is the streaming Indexer's memtable capacity in objects:
	// when an add would grow the memtable past it, the memtable is first
	// sealed into an immutable segment (0 selects 256). Batch joins
	// ignore it. It is an engine tuning knob, not part of the join
	// semantics — query results are identical for any value.
	SealEvery int
	// SealAge, when positive, additionally seals a non-empty memtable at
	// the first add after it has been open this long, bounding how stale
	// the segmented read path's freshest segment can get under slow
	// write rates. Zero disables age-based sealing. Age seals make the
	// segment layout timing-dependent; layout-deterministic tests and
	// replay leave it zero.
	SealAge time.Duration
	// Progress, when set, receives coarse phase notifications:
	// ("resolve", 0, n), ("signatures", 0, n), ("index", 0, n), then
	// ("probe", done, n) roughly every probeProgressStep objects per
	// worker, and a final ("done", n, n). It must be safe for concurrent
	// calls. Useful for long joins behind a UI or a log.
	Progress func(phase string, done, total int)
}

// probeProgressStep is how many probe objects a worker processes between
// Progress callbacks.
const probeProgressStep = 4096

// cancelCheckEvery is how many candidate verifications a probe worker
// performs between context cancellation checks. Together with the
// per-probe-object check it bounds the latency of a cancellation to one
// filter/verify batch.
const cancelCheckEvery = 256

func (o *Options) progress(phase string, done, total int) {
	if o.Progress != nil {
		o.Progress(phase, done, total)
	}
}

// Defaults returns the options used throughout the paper's evaluation
// unless stated otherwise: deep signatures, weighted prefix, adaptive
// verification, Jaccard, standard element metric.
func Defaults(delta, tau float64) Options {
	return Options{
		Delta:       delta,
		Tau:         tau,
		Metric:      elem.Standard,
		Set:         setmetric.Jaccard,
		Scheme:      sig.Deep,
		Weighted:    true,
		Verifier:    verify.Adaptive,
		ComputeSims: true,
	}
}

func (o *Options) validate() error {
	if o.Delta <= 0 || o.Delta > 1 {
		return fmt.Errorf("kjoin: Delta must be in (0, 1], got %v", o.Delta)
	}
	if o.Tau <= 0 || o.Tau > 1 {
		return fmt.Errorf("kjoin: Tau must be in (0, 1], got %v", o.Tau)
	}
	return nil
}

// Pair is one join result. For a self join X < Y index the object slice;
// for an R-S join X indexes R and Y indexes S. Sim is filled when
// Options.ComputeSims is set.
type Pair struct {
	X, Y int
	Sim  float64
}

// Stats reports the work a join did.
type Stats struct {
	Objects    int           // total objects joined (|R| + |S| for R-S)
	Candidates int64         // candidate pairs after prefix filtering
	Preprocess time.Duration // resolution, signatures, order, prefixes
	BuildIndex time.Duration // inverted index construction
	Probe      time.Duration // candidate generation + verification
	VerifyTime time.Duration // portion of Probe spent verifying
	Verify     verify.Stats  // verification counters
	AvgPrefix  float64       // mean prefix length per object
	SigEntries int64         // total signature entries generated
}

// prepped is one preprocessed object.
type prepped struct {
	elems  []elem.ID
	keys   []sig.Sig // sorted group-key multiset for fast count pruning
	prefix []int32   // deduplicated prefix signature ids
}

// joiner holds the shared preprocessing state of a join.
type joiner struct {
	opt Options
	res *elem.Resolver
	sp  *sig.Space
	ctx *verify.Context
	st  Stats
	// cc is the cancellation context of the running join; loops check it
	// periodically and abandon their work when it is done. Defaults to
	// context.Background() (never cancelled).
	cc context.Context
	// elemSeen stamps the last object (by elemStamp value) that contained
	// each element — the epoch-table form of the per-object dedup map of
	// resolveAll. Indexed by elem.ID; grown as tokens are interned.
	elemSeen  []int64
	elemStamp int64
	// Arenas backing the retained per-object slices (elems, sorted keys)
	// and the transient per-object entry lists: chunks are replaced, not
	// regrown, so carved slices stay valid. One chunk allocation serves
	// hundreds of objects where the seed allocated per object.
	elemArena  []elem.ID
	elemBuf    []elem.ID
	keyArena   []sig.Sig
	entryArena []sig.Entry
}

// carveElems copies buf into the element arena and returns the carved
// slice (capacity-clamped so appends can never cross object boundaries).
func (j *joiner) carveElems(buf []elem.ID) []elem.ID {
	if len(buf) == 0 {
		return nil
	}
	if len(j.elemArena)+len(buf) > cap(j.elemArena) {
		n := 2 * cap(j.elemArena)
		if n < 256 {
			n = 256
		}
		if n < len(buf) {
			n = len(buf)
		}
		j.elemArena = make([]elem.ID, 0, n)
	}
	start := len(j.elemArena)
	j.elemArena = append(j.elemArena, buf...)
	return j.elemArena[start:len(j.elemArena):len(j.elemArena)]
}

func newJoiner(h *hierarchy.Hierarchy, opt Options) *joiner {
	phiMin := opt.PhiMin
	if phiMin == 0 {
		phiMin = opt.Delta
		if phiMin < 0.8 {
			phiMin = 0.8
		}
	}
	maxMap := opt.MaxMappings
	if maxMap == 0 {
		maxMap = 4
	}
	res := elem.NewResolver(h, elem.Options{
		Plus:        opt.Plus,
		PhiMin:      phiMin,
		MaxMappings: maxMap,
		Synonyms:    opt.Synonyms,
	})
	sp := sig.NewSpace(res, opt.Metric, opt.Delta, opt.Scheme)
	j := &joiner{opt: opt, res: res, sp: sp, cc: context.Background()}
	j.ctx = &verify.Context{
		Res:    res,
		Space:  sp,
		Metric: opt.Metric,
		Set:    opt.Set,
		Delta:  opt.Delta,
		Tau:    opt.Tau,
	}
	return j
}

// resolveAll interns and resolves the token objects, deduplicating tokens
// within each object (objects are sets of elements, §2.1). Dedup uses the
// joiner's element stamp table instead of a per-object map: marking an
// element with the current object's stamp makes every earlier mark stale
// at once.
func (j *joiner) resolveAll(objects [][]string) []prepped {
	out := make([]prepped, len(objects))
	for i, toks := range objects {
		if i&1023 == 1023 && j.cc.Err() != nil {
			return out // caller surfaces j.cc.Err()
		}
		j.elemStamp++
		stamp := j.elemStamp
		j.elemBuf = j.elemBuf[:0]
		for _, t := range toks {
			id := j.res.ID(t)
			if n := j.res.Len(); n > len(j.elemSeen) {
				j.elemSeen = append(j.elemSeen, make([]int64, n-len(j.elemSeen))...)
			}
			if j.elemSeen[id] != stamp {
				j.elemSeen[id] = stamp
				j.elemBuf = append(j.elemBuf, id)
			}
		}
		out[i].elems = j.carveElems(j.elemBuf)
	}
	return out
}

// entriesFor generates and returns the signature entries of every
// object. Entry lists and sorted key multisets are carved from the
// joiner's arenas: each object's exact size is known from the warmed
// signature caches, so the arena appends below never regrow a chunk
// mid-object.
func (j *joiner) entriesFor(objs []prepped) [][]sig.Entry {
	all := make([][]sig.Entry, len(objs))
	for i := range objs {
		if i&1023 == 1023 && j.cc.Err() != nil {
			return all // caller surfaces j.cc.Err()
		}
		elems := objs[i].elems
		ne, nk := 0, 0
		for _, e := range elems {
			ne += j.sp.ElemSigCount(e)
			nk += len(j.sp.GroupKeys(e))
		}
		if len(j.entryArena)+ne > cap(j.entryArena) {
			n := 2 * cap(j.entryArena)
			if n < 256 {
				n = 256
			}
			if n < ne {
				n = ne
			}
			j.entryArena = make([]sig.Entry, 0, n)
		}
		start := len(j.entryArena)
		j.entryArena = j.sp.AppendObjectSigs(j.entryArena, elems)
		all[i] = j.entryArena[start:len(j.entryArena):len(j.entryArena)]
		j.st.SigEntries += int64(ne)

		// Precompute the sorted key multiset for fast count pruning.
		if len(j.keyArena)+nk > cap(j.keyArena) {
			n := 2 * cap(j.keyArena)
			if n < 256 {
				n = 256
			}
			if n < nk {
				n = nk
			}
			j.keyArena = make([]sig.Sig, 0, n)
		}
		kstart := len(j.keyArena)
		j.keyArena = j.ctx.AppendSortedKeys(j.keyArena, elems)
		objs[i].keys = j.keyArena[kstart:len(j.keyArena):len(j.keyArena)]
	}
	return all
}

// prefixes sorts each object's entries in the global order and computes
// its prefix signature list. Objects are independent, so the work is
// sharded across the configured workers (all shared state — the order,
// the signature caches — is read-only here; each worker writes only its
// own objects' slots).
func (j *joiner) prefixes(objs []prepped, entries [][]sig.Entry, order *sig.Order) {
	workers := j.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(objs) {
		workers = len(objs)
	}
	if workers < 1 {
		workers = 1
	}
	totals := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			total := 0
			// Per-worker signature stamp table: one allocation replaces a
			// dedup map per object. Every signature in the entries was
			// interned before this phase, so NumSigs bounds the ids.
			seen := make([]int32, j.sp.NumSigs())
			var stamp int32
			// Per-worker prefix scratch and output arena: prefixes build
			// into pbuf and are carved out of chunks this worker owns, so
			// workers never contend and per-object allocation disappears.
			var ps sig.PrefixScratch
			var pbuf, arena []int32
			for i := w; i < len(objs); i += workers {
				if i&511 == 511 && j.cc.Err() != nil {
					break // caller surfaces j.cc.Err()
				}
				en := entries[i]
				order.Sort(en)
				n := len(objs[i].elems)
				var p int
				if j.opt.Weighted {
					p = sig.WeightedPrefixS(en, j.opt.Set.MinOverlap(j.opt.Tau, n), &ps)
				} else {
					p = sig.DistElePrefixS(en, j.opt.Set.TauS(j.opt.Tau, n), &ps)
				}
				stamp++
				pbuf = pbuf[:0]
				for _, e := range en[:p] {
					if seen[e.Sig] != stamp {
						seen[e.Sig] = stamp
						pbuf = append(pbuf, int32(e.Sig))
					}
				}
				if len(pbuf) > 0 {
					if len(arena)+len(pbuf) > cap(arena) {
						na := 2 * cap(arena)
						if na < 256 {
							na = 256
						}
						if na < len(pbuf) {
							na = len(pbuf)
						}
						arena = make([]int32, 0, na)
					}
					s := len(arena)
					arena = append(arena, pbuf...)
					objs[i].prefix = arena[s:len(arena):len(arena)]
				}
				total += len(pbuf)
			}
			totals[w] = total
		}(w)
	}
	wg.Wait()
	totalPrefix := 0
	for _, t := range totals {
		totalPrefix += t
	}
	if len(objs) > 0 {
		j.st.AvgPrefix = float64(totalPrefix) / float64(len(objs))
	}
}

// SelfJoin finds all pairs (x, y), x < y, with SIMδ(x, y) ≥ τ within
// objects (tokenized). It implements Algorithms 1/2 with the options'
// signature scheme and verifier.
func SelfJoin(h *hierarchy.Hierarchy, objects [][]string, opt Options) ([]Pair, *Stats, error) {
	return SelfJoinCtx(context.Background(), h, objects, opt)
}

// SelfJoinCtx is SelfJoin under a cancellation context: when ctx is
// cancelled or its deadline passes, the join aborts within one
// filter/verify batch and returns ctx.Err(). All worker goroutines have
// exited by the time it returns.
func SelfJoinCtx(ctx context.Context, h *hierarchy.Hierarchy, objects [][]string, opt Options) ([]Pair, *Stats, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	j := newJoiner(h, opt)
	j.cc = ctx
	t0 := time.Now()
	objs := j.resolveAll(objects)
	opt.progress("resolve", 0, len(objs))
	j.res.ResolveAll(opt.Workers)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	opt.progress("signatures", 0, len(objs))
	j.sp.Warm(j.res.Len(), opt.Workers)
	entries := j.entriesFor(objs)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	order := sig.BuildOrder(entries)
	j.prefixes(objs, entries, order)
	j.st.Preprocess = time.Since(t0)
	j.st.Objects = len(objs)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	t1 := time.Now()
	opt.progress("index", 0, len(objs))
	ix := index.New()
	for i := range objs {
		if i&1023 == 1023 && ctx.Err() != nil {
			break // surfaced by the ctx.Err() check below
		}
		ix.AddAll(objs[i].prefix, int32(i))
	}
	j.st.BuildIndex = time.Since(t1)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	pairs := j.probe(objs, objs, ix, true)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	opt.progress("done", len(objs), len(objs))
	return pairs, &j.st, nil
}

// Join finds all pairs (r, s) ∈ R × S with SIMδ(r, s) ≥ τ (§6.1). The
// larger collection is indexed, the smaller probes it.
func Join(h *hierarchy.Hierarchy, r, s [][]string, opt Options) ([]Pair, *Stats, error) {
	return JoinCtx(context.Background(), h, r, s, opt)
}

// JoinCtx is Join under a cancellation context; see SelfJoinCtx for the
// cancellation semantics.
func JoinCtx(ctx context.Context, h *hierarchy.Hierarchy, r, s [][]string, opt Options) ([]Pair, *Stats, error) {
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	j := newJoiner(h, opt)
	j.cc = ctx
	t0 := time.Now()
	robjs := j.resolveAll(r)
	sobjs := j.resolveAll(s)
	j.res.ResolveAll(opt.Workers)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	j.sp.Warm(j.res.Len(), opt.Workers)
	rentries := j.entriesFor(robjs)
	sentries := j.entriesFor(sobjs)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	order := sig.BuildOrder(append(append([][]sig.Entry{}, rentries...), sentries...))
	j.prefixes(robjs, rentries, order)
	j.prefixes(sobjs, sentries, order)
	j.st.Preprocess = time.Since(t0)
	j.st.Objects = len(robjs) + len(sobjs)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Index the larger set, probe with the smaller (§6.1).
	big, small := robjs, sobjs
	swapped := false
	if len(sobjs) > len(robjs) {
		big, small = sobjs, robjs
		swapped = true
	}
	t1 := time.Now()
	ix := index.New()
	for i := range big {
		if i&1023 == 1023 && ctx.Err() != nil {
			break // surfaced by the ctx.Err() check below
		}
		ix.AddAll(big[i].prefix, int32(i))
	}
	j.st.BuildIndex = time.Since(t1)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	pairs := j.probeRS(small, big, ix, swapped)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return pairs, &j.st, nil
}

// result accumulates one probe worker's output: pairs plus counters,
// published once when the worker exits (per-candidate writes into a
// shared slice would false-share cache lines between workers).
type result struct {
	pairs      []Pair
	candidates int64
	vst        verify.Stats
	vtime      time.Duration
}

// probe runs the candidate-generation + verification loop for a self
// join: object x is a candidate with every smaller-id object sharing a
// prefix signature.
func (j *joiner) probe(probes, indexed []prepped, ix *index.Inverted, self bool) []Pair {
	t0 := time.Now()
	workers := j.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(probes) {
		workers = len(probes)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Work on stack-local state and publish once at the end:
			// per-candidate writes into the shared results slice would
			// false-share cache lines between workers.
			var local result
			// Each worker verifies on its own Context clone: the clone's
			// Scratch (epoch tables, solver, sim cache) makes the
			// steady-state verify path allocation-free, and per-worker
			// ownership keeps it race-free.
			vctx := j.ctx.Clone()
			seen := make([]int32, len(indexed))
			for i := range seen {
				seen[i] = -1
			}
			processed := 0
			for x := w; x < len(probes); x += workers {
				processed++
				if processed%probeProgressStep == 0 {
					j.opt.progress("probe", processed*workers, len(probes))
				}
				if j.cc.Err() != nil {
					break // join is cancelled; caller surfaces j.cc.Err()
				}
				px := &probes[x]
				for _, s := range px.prefix {
					for _, y := range ix.Postings(s) {
						if int(y) >= x {
							// Postings are ascending; later ids cannot
							// qualify either.
							break
						}
						if seen[y] == int32(x) {
							continue
						}
						seen[y] = int32(x)
						local.candidates++
						if local.candidates%cancelCheckEvery == 0 && j.cc.Err() != nil {
							break
						}
						tv := time.Now()
						ok := vctx.VerifyKeyed(px.elems, indexed[y].elems, px.keys, indexed[y].keys, j.opt.Verifier, &local.vst)
						local.vtime += time.Since(tv)
						if ok {
							p := Pair{X: int(y), Y: x}
							if j.opt.ComputeSims {
								p.Sim = vctx.Similarity(px.elems, indexed[y].elems)
							}
							local.pairs = append(local.pairs, p)
						}
					}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	out := j.mergeResults(results)
	j.st.Probe = time.Since(t0)
	return out
}

// mergeResults concatenates the per-worker probe results into one
// pre-sized, deterministically ordered pair list and folds the worker
// counters into the join statistics.
func (j *joiner) mergeResults(results []result) []Pair {
	total := 0
	for i := range results {
		total += len(results[i].pairs)
	}
	out := make([]Pair, 0, total)
	for i := range results {
		out = append(out, results[i].pairs...)
		j.st.Candidates += results[i].candidates
		j.st.Verify.Add(results[i].vst)
		j.st.VerifyTime += results[i].vtime
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].X != out[k].X {
			return out[i].X < out[k].X
		}
		return out[i].Y < out[k].Y
	})
	return out
}

// probeRS runs the probe loop for an R-S join. probes is the smaller
// collection, indexed the larger; swapped records whether probes is R.
func (j *joiner) probeRS(probes, indexed []prepped, ix *index.Inverted, swapped bool) []Pair {
	t0 := time.Now()
	workers := j.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(probes) {
		workers = len(probes)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local result      // see probe: avoid false sharing
			vctx := j.ctx.Clone() // see probe: per-worker scratch
			seen := make([]int32, len(indexed))
			for i := range seen {
				seen[i] = -1
			}
			for x := w; x < len(probes); x += workers {
				if j.cc.Err() != nil {
					break // join is cancelled; caller surfaces j.cc.Err()
				}
				px := &probes[x]
				for _, s := range px.prefix {
					for _, y := range ix.Postings(s) {
						if seen[y] == int32(x) {
							continue
						}
						seen[y] = int32(x)
						local.candidates++
						if local.candidates%cancelCheckEvery == 0 && j.cc.Err() != nil {
							break
						}
						tv := time.Now()
						ok := vctx.VerifyKeyed(px.elems, indexed[y].elems, px.keys, indexed[y].keys, j.opt.Verifier, &local.vst)
						local.vtime += time.Since(tv)
						if ok {
							var p Pair
							if swapped {
								// probes are R, indexed are S.
								p = Pair{X: x, Y: int(y)}
							} else {
								p = Pair{X: int(y), Y: x}
							}
							if j.opt.ComputeSims {
								p.Sim = vctx.Similarity(px.elems, indexed[y].elems)
							}
							local.pairs = append(local.pairs, p)
						}
					}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	out := j.mergeResults(results)
	j.st.Probe = time.Since(t0)
	return out
}

// Similarity computes SIMδ(x, y) exactly for a single pair of tokenized
// objects (Definition 2 under the configured metrics and resolution).
func Similarity(h *hierarchy.Hierarchy, x, y []string, opt Options) (float64, error) {
	return SimilarityCtx(context.Background(), h, x, y, opt)
}

// SimilarityCtx is Similarity under a cancellation context. Both objects
// must be structurally valid (non-empty token lists, no empty tokens);
// violations return an *InputError.
func SimilarityCtx(ctx context.Context, h *hierarchy.Hierarchy, x, y []string, opt Options) (float64, error) {
	if err := opt.validate(); err != nil {
		return 0, err
	}
	if err := validateTokens(x); err != nil {
		return 0, err
	}
	if err := validateTokens(y); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	j := newJoiner(h, opt)
	j.cc = ctx
	objs := j.resolveAll([][]string{x, y})
	for i := range objs {
		if ctx.Err() != nil {
			break // surfaced by the ctx.Err() check below
		}
		for _, e := range objs[i].elems {
			j.sp.GroupKeys(e)
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return j.ctx.Similarity(objs[0].elems, objs[1].elems), nil
}

// NaiveSelfJoin computes the exact answer with no filtering: every pair
// is verified with the exact similarity. It is the correctness oracle for
// tests and the quality reference for effectiveness experiments.
func NaiveSelfJoin(h *hierarchy.Hierarchy, objects [][]string, opt Options) ([]Pair, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	j := newJoiner(h, opt)
	objs := j.resolveAll(objects)
	// Warm caches for the verification context.
	for i := range objs {
		for _, e := range objs[i].elems {
			j.sp.GroupKeys(e)
		}
	}
	var out []Pair
	for x := 1; x < len(objs); x++ {
		for y := 0; y < x; y++ {
			s := j.ctx.Similarity(objs[x].elems, objs[y].elems)
			if s >= opt.Tau-1e-9 {
				out = append(out, Pair{X: y, Y: x, Sim: s})
			}
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].X != out[k].X {
			return out[i].X < out[k].X
		}
		return out[i].Y < out[k].Y
	})
	return out, nil
}
