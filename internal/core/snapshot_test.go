package core

import (
	"bytes"
	"strings"
	"testing"

	"kjoin/internal/paperdata"
)

func TestSnapshotRoundTrip(t *testing.T) {
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	ix, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range paperdata.Table1() {
		if _, err := ix.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	ix2, err := LoadIndexer(h, opt, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != ix.Len() {
		t.Fatalf("Len after load = %d, want %d", ix2.Len(), ix.Len())
	}
	// Behavioral equivalence: the same query gives the same matches.
	for _, q := range paperdata.Table1() {
		m1, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := ix2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(m1) != len(m2) {
			t.Fatalf("query %v: %d vs %d matches", q, len(m1), len(m2))
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("query %v: match %d differs: %v vs %v", q, i, m1[i], m2[i])
			}
		}
	}
	// Adding continues from where the snapshot left off.
	p1, err := ix.Add([]string{"Fastfood", "GoogleHeadquarters"})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ix2.Add([]string{"Fastfood", "GoogleHeadquarters"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("post-load Add: %d vs %d pairs", len(p1), len(p2))
	}
	k1, k2 := pairKeys(p1), pairKeys(p2)
	sortKeys(k1)
	sortKeys(k2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("post-load Add keys differ: %v vs %v", k1, k2)
		}
	}
}

func TestSnapshotConfigMismatch(t *testing.T) {
	h, _ := paperdata.Fig1()
	ix, err := NewIndexer(h, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add([]string{"KFC"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Different τ must be rejected.
	if _, err := LoadIndexer(h, Defaults(0.7, 0.8), bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched options should fail to load")
	}
	// Same options load fine.
	if _, err := LoadIndexer(h, Defaults(0.7, 0.6), bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("matching options should load: %v", err)
	}
}

func TestSnapshotBadInput(t *testing.T) {
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	cases := []string{
		"",
		"not a snapshot\n",
		"kjoin-indexer-snapshot 99\nwhatever\n",
		"kjoin-indexer-snapshot 1\n", // missing config line
	}
	for _, c := range cases {
		if _, err := LoadIndexer(h, opt, strings.NewReader(c)); err == nil {
			t.Errorf("LoadIndexer(%q) should fail", c)
		}
	}
}

func TestSnapshotEmptyIndexer(t *testing.T) {
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	ix, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndexer(h, opt, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 0 {
		t.Errorf("empty snapshot loaded %d objects", ix2.Len())
	}
}
