package core

import "fmt"

// InputError reports a structurally invalid input object (as opposed to
// invalid Options or an internal failure). Servers map it to a client
// error (HTTP 400); detect it with errors.As.
type InputError struct {
	// Reason is a short machine-readable slug ("empty_object",
	// "empty_token").
	Reason string
	// Detail is the human-readable explanation.
	Detail string
}

// Error implements the error interface.
func (e *InputError) Error() string { return fmt.Sprintf("kjoin: invalid input: %s", e.Detail) }

// validateTokens rejects structurally invalid objects: empty token lists
// and empty-string tokens. Both would previously be indexed silently —
// an empty object can never be similar to anything (its similarity is
// undefined under Jaccard), and an empty token resolves to a phantom
// element that matches every other empty token with similarity 1.
func validateTokens(tokens []string) error {
	if len(tokens) == 0 {
		return &InputError{Reason: "empty_object", Detail: "object has no tokens"}
	}
	for i, t := range tokens {
		if t == "" {
			return &InputError{Reason: "empty_token", Detail: fmt.Sprintf("token %d is empty", i)}
		}
	}
	return nil
}
