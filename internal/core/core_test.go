package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"kjoin/internal/elem"
	"kjoin/internal/paperdata"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
	"kjoin/internal/synonym"
	"kjoin/internal/verify"
)

func pairKeys(ps []Pair) [][2]int {
	out := make([][2]int, len(ps))
	for i, p := range ps {
		out[i] = [2]int{p.X, p.Y}
	}
	return out
}

func TestPaperExampleJoin(t *testing.T) {
	// δ=0.7, τ=0.6 on Table 1: the paper's single answer is ⟨S1, S3⟩
	// with SIMδ = 19/29.
	h, _ := paperdata.Fig1()
	pairs, st, err := SelfJoin(h, paperdata.Table1(), Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].X != 0 || pairs[0].Y != 2 {
		t.Fatalf("pairs = %+v, want exactly ⟨S1, S3⟩", pairs)
	}
	if math.Abs(pairs[0].Sim-19.0/29) > 1e-9 {
		t.Errorf("sim = %v, want 19/29", pairs[0].Sim)
	}
	if st.Objects != 9 {
		t.Errorf("Objects = %d, want 9", st.Objects)
	}
	if st.Candidates == 0 || st.Candidates > 36 {
		t.Errorf("Candidates = %d, want within (0, 36]", st.Candidates)
	}
}

// Regression: candidate counts on the Table 1 example under each scheme
// (δ=0.7, τ=0.6, df order over Table 1 with the Figure 1 structure).
// The paper reports 22 (node prefix) and 15 (path prefix) under its own
// df order / hierarchy reading; the relative shape — deep < shallow <
// node, all ≪ 36 total pairs — is the reproduced claim.
func TestCandidateCountsTable1(t *testing.T) {
	h, _ := paperdata.Fig1()
	want := map[string]int64{"node": 18, "shallow": 17, "deep": 14, "deepw": 14}
	run := func(scheme sig.Scheme, weighted bool) int64 {
		opt := Defaults(0.7, 0.6)
		opt.Scheme = scheme
		opt.Weighted = weighted
		_, st, err := SelfJoin(h, paperdata.Table1(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return st.Candidates
	}
	if got := run(sig.Node, false); got != want["node"] {
		t.Errorf("node candidates = %d, want %d", got, want["node"])
	}
	if got := run(sig.Shallow, false); got != want["shallow"] {
		t.Errorf("shallow candidates = %d, want %d", got, want["shallow"])
	}
	if got := run(sig.Deep, false); got != want["deep"] {
		t.Errorf("deep candidates = %d, want %d", got, want["deep"])
	}
	if got := run(sig.Deep, true); got != want["deepw"] {
		t.Errorf("deep weighted candidates = %d, want %d", got, want["deepw"])
	}
}

// The central correctness property: for every configuration, the filtered
// join returns exactly the naive all-pairs answer (filters are complete,
// verifiers are exact).
func TestJoinMatchesNaive(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	for _, metric := range []elem.Metric{elem.Standard, elem.WuPalmer} {
		for _, set := range []setmetric.Kind{setmetric.Jaccard, setmetric.Dice, setmetric.Cosine} {
			for _, scheme := range []sig.Scheme{sig.Node, sig.Shallow, sig.Deep} {
				for _, weighted := range []bool{false, true} {
					for _, ver := range []verify.Kind{verify.Basic, verify.SubGraph, verify.Adaptive} {
						for _, delta := range []float64{0.5, 0.7, 0.8} {
							for _, tau := range []float64{0.4, 0.6, 0.8} {
								opt := Options{
									Delta: delta, Tau: tau,
									Metric: metric, Set: set,
									Scheme: scheme, Weighted: weighted,
									Verifier: ver, ComputeSims: false,
								}
								got, _, err := SelfJoin(h, objs, opt)
								if err != nil {
									t.Fatal(err)
								}
								want, err := NaiveSelfJoin(h, objs, opt)
								if err != nil {
									t.Fatal(err)
								}
								if !reflect.DeepEqual(pairKeys(got), pairKeys(want)) {
									t.Errorf("%v/%v/%v/w=%v/%v δ=%v τ=%v: got %v, want %v",
										metric, set, scheme, weighted, ver, delta, tau,
										pairKeys(got), pairKeys(want))
								}
							}
						}
					}
				}
			}
		}
	}
}

// Plus-mode completeness: with typos and synonyms in the data, the
// filtered join still returns exactly the naive answer for every scheme
// and verifier.
func TestJoinMatchesNaivePlus(t *testing.T) {
	h, _ := paperdata.Fig1()
	d := synonym.New()
	d.Add("kfc", "kentuckyfriedchicken")
	d.Add("st", "street")
	objs := append([][]string{}, paperdata.Table1()...)
	objs = append(objs,
		[]string{"PizzaHat", "KFC", "CA"},               // typo'd S4
		[]string{"KentuckyFriedChicken", "MountainVew"}, // synonym + typo'd S1-ish
		[]string{"BurgerKing", "Mountainview"},
		[]string{"Fillmore", "st"},
		[]string{"Fillmore", "street"},
	)
	for _, scheme := range []sig.Scheme{sig.Node, sig.Shallow, sig.Deep} {
		for _, weighted := range []bool{false, true} {
			for _, ver := range []verify.Kind{verify.Basic, verify.SubGraph, verify.Adaptive} {
				for _, delta := range []float64{0.6, 0.8} {
					for _, tau := range []float64{0.4, 0.7} {
						opt := Options{
							Delta: delta, Tau: tau,
							Scheme: scheme, Weighted: weighted,
							Verifier: ver, Plus: true, Synonyms: d,
						}
						got, _, err := SelfJoin(h, objs, opt)
						if err != nil {
							t.Fatal(err)
						}
						want, err := NaiveSelfJoin(h, objs, opt)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(pairKeys(got), pairKeys(want)) {
							t.Errorf("plus %v/w=%v/%v δ=%v τ=%v: got %v, want %v",
								scheme, weighted, ver, delta, tau, pairKeys(got), pairKeys(want))
						}
					}
				}
			}
		}
	}
}

func TestPlusModeFindsTypoPairs(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := [][]string{
		{"PizzaHut", "Brooklyn"},
		{"PizzaHat", "Brooklyn"}, // typo'd duplicate
	}
	base := Defaults(0.7, 0.7)
	pairs, _, err := SelfJoin(h, objs, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("plain K-Join should miss the typo pair, got %v", pairs)
	}
	plus := base
	plus.Plus = true
	pairs, _, err = SelfJoin(h, objs, plus)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("K-Join+ should find the typo pair, got %v", pairs)
	}
	// SIM: PizzaHut~PizzaHat = 7/8, Brooklyn = 1 → overlap 15/8, Jaccard
	// = (15/8)/(4 − 15/8) = 15/17.
	if math.Abs(pairs[0].Sim-15.0/17) > 1e-9 {
		t.Errorf("sim = %v, want 15/17", pairs[0].Sim)
	}
}

func TestPlusModeSynonyms(t *testing.T) {
	h, _ := paperdata.Fig1()
	d := synonym.New()
	d.Add("kfc", "kentuckyfriedchicken")
	objs := [][]string{
		{"KFC", "MountainView"},
		{"KentuckyFriedChicken", "MountainView"},
	}
	opt := Defaults(0.8, 0.9)
	opt.Plus = true
	opt.Synonyms = d
	pairs, _, err := SelfJoin(h, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Sim < 0.999 {
		t.Fatalf("synonym pair should join with sim 1, got %v", pairs)
	}
}

func TestRSJoin(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	r := objs[:4]
	s := objs[4:]
	opt := Defaults(0.7, 0.5)
	pairs, st, err := Join(h, r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: naive cross product.
	var want []Pair
	naiveOpt := opt
	all, err := NaiveSelfJoin(h, objs, naiveOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		if p.X < 4 && p.Y >= 4 {
			want = append(want, Pair{X: p.X, Y: p.Y - 4, Sim: p.Sim})
		}
	}
	if !reflect.DeepEqual(pairKeys(pairs), pairKeys(want)) {
		t.Errorf("RS join = %v, want %v", pairKeys(pairs), pairKeys(want))
	}
	if st.Objects != 9 {
		t.Errorf("Objects = %d, want 9", st.Objects)
	}
	// Swap R and S: results transpose.
	pairsSwap, _, err := Join(h, s, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairsSwap) != len(pairs) {
		t.Fatalf("swapped join size %d != %d", len(pairsSwap), len(pairs))
	}
	m := map[[2]int]bool{}
	for _, p := range pairsSwap {
		m[[2]int{p.Y, p.X}] = true
	}
	for _, p := range pairs {
		if !m[[2]int{p.X, p.Y}] {
			t.Errorf("pair %v missing from swapped join", p)
		}
	}
}

func TestWorkersDeterminism(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	opt := Defaults(0.5, 0.4)
	opt.Workers = 1
	p1, st1, err := SelfJoin(h, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	p4, st4, err := SelfJoin(h, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p4) {
		t.Errorf("results differ between 1 and 4 workers:\n%v\n%v", p1, p4)
	}
	if st1.Candidates != st4.Candidates {
		t.Errorf("candidates differ: %d vs %d", st1.Candidates, st4.Candidates)
	}
}

func TestOptionValidation(t *testing.T) {
	h, _ := paperdata.Fig1()
	for _, opt := range []Options{
		{Delta: 0, Tau: 0.5},
		{Delta: 0.5, Tau: 0},
		{Delta: 1.5, Tau: 0.5},
		{Delta: 0.5, Tau: 1.5},
		{Delta: -0.1, Tau: 0.5},
	} {
		if _, _, err := SelfJoin(h, nil, opt); err == nil {
			t.Errorf("options %+v should be rejected", opt)
		}
		if _, _, err := Join(h, nil, nil, opt); err == nil {
			t.Errorf("Join with options %+v should be rejected", opt)
		}
		if _, err := NaiveSelfJoin(h, nil, opt); err == nil {
			t.Errorf("NaiveSelfJoin with options %+v should be rejected", opt)
		}
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	pairs, st, err := SelfJoin(h, nil, opt)
	if err != nil || len(pairs) != 0 || st.Objects != 0 {
		t.Errorf("empty input: pairs=%v st=%v err=%v", pairs, st, err)
	}
	// Objects with no tokens and duplicate tokens.
	objs := [][]string{{}, {"KFC", "KFC", "kfc"}, {"KFC"}}
	pairs, _, err = SelfJoin(h, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Object 1 (deduped to {kfc}) and object 2 are identical → sim 1.
	if len(pairs) != 1 || pairs[0].X != 1 || pairs[0].Y != 2 || pairs[0].Sim != 1 {
		t.Errorf("pairs = %v, want ⟨1,2⟩ sim 1", pairs)
	}
}

func TestDefaults(t *testing.T) {
	opt := Defaults(0.8, 0.9)
	if opt.Delta != 0.8 || opt.Tau != 0.9 {
		t.Error("Defaults thresholds mismatch")
	}
	if opt.Scheme != sig.Deep || !opt.Weighted || opt.Verifier != verify.Adaptive {
		t.Error("Defaults should use deep weighted prefix with adaptive verification")
	}
	if opt.Set != setmetric.Jaccard || opt.Metric != elem.Standard {
		t.Error("Defaults should use Jaccard and the standard element metric")
	}
}

func TestProgressCallback(t *testing.T) {
	h, _ := paperdata.Fig1()
	var mu sync.Mutex
	phases := map[string]bool{}
	opt := Defaults(0.7, 0.6)
	opt.Progress = func(phase string, done, total int) {
		mu.Lock()
		phases[phase] = true
		mu.Unlock()
		if total != 9 {
			t.Errorf("progress total = %d, want 9", total)
		}
	}
	if _, _, err := SelfJoin(h, paperdata.Table1(), opt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resolve", "signatures", "index", "done"} {
		if !phases[want] {
			t.Errorf("missing progress phase %q (got %v)", want, phases)
		}
	}
}
