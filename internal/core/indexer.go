package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kjoin/internal/hierarchy"
	"kjoin/internal/index"
	"kjoin/internal/sig"
	"kjoin/internal/verify"
)

// Indexer is the online form of the K-Join framework (Algorithm 1's loop
// exposed as an API): objects are added one at a time, and each Add
// reports the similar pairs between the new object and everything added
// before it. This is the streaming-deduplication shape of the paper's
// motivating Factual use case — new crawled POIs arrive continuously and
// must be checked against the accumulated collection.
//
// The global signature order of the offline algorithm (ascending df,
// §3.1) cannot be known up front in a streaming setting; the Indexer
// instead fixes the order by signature id. Prefix-filter correctness
// (Lemmas 2, 6, 7) only requires *some* global order, so results are
// exactly the same join result — candidate counts are merely less
// optimized than the offline df order.
//
// An Indexer is not safe for unsynchronized concurrent use. Mutating
// calls (Add, AddCtx, PrepareQuery, Query, QueryCtx) require exclusive
// access; the read-only calls RunQuery, WriteSnapshot, Len and Stats may
// run concurrently with each other provided no mutating call is in
// flight — the split that lets a server run queries under a shared
// (read) lock.
type Indexer struct {
	j     *joiner
	order *sig.Order
	ix    *index.Inverted
	objs  []prepped
	// seen stamps the last probe (by stamp value) that visited each
	// indexed object, deduplicating candidates across an object's prefix
	// signatures. Stamps are drawn from a monotonic counter rather than
	// the object id so that a cancelled Add can never leave stamps a
	// later Add would mistake for its own.
	seen  []int64
	stamp int64
	// sigSeen stamps prefix signatures during prepObject (the epoch-table
	// form of the per-Add dedup map), keyed by signature id.
	sigSeen  []int64
	sigStamp int64
	// entryBuf is the reusable signature-entry buffer of prepObject
	// (entries are transient — only the derived prefix is retained), and
	// ps the matching prefix-computation scratch. Both rely on the
	// exclusive access prepObject already requires.
	entryBuf []sig.Entry
	ps       sig.PrefixScratch
	// walSeq is the last write-ahead-log sequence reflected in the
	// index (see SetWALSeq/ApplyLogged); it travels inside snapshots so
	// recovery knows where replay resumes. Mutated only by the
	// exclusive-access calls, like everything above.
	walSeq uint64
	// vpool holds per-query verify.Context clones: RunQuery may run from
	// many goroutines at once, and each clone owns the mutable Scratch
	// that makes steady-state verification allocation-free.
	vpool sync.Pool
}

// NewIndexer returns an empty Indexer over the hierarchy with the given
// options. Workers and ComputeSims are honored per Add; the signature
// scheme, thresholds, metrics and resolution mode are fixed for the
// Indexer's lifetime.
func NewIndexer(h *hierarchy.Hierarchy, opt Options) (*Indexer, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	j := newJoiner(h, opt)
	ix := &Indexer{
		j:     j,
		order: sig.BuildOrder(nil), // empty df: order degrades to signature id
		ix:    index.New(),
	}
	ix.vpool.New = func() any { return j.ctx.Clone() }
	return ix, nil
}

// Len returns the number of indexed objects.
func (ix *Indexer) Len() int { return len(ix.objs) }

// Stats returns the accumulated statistics.
func (ix *Indexer) Stats() Stats { return ix.j.st }

// prepObject computes the preprocessed form of one tokenized object:
// interned elements, sorted group keys and the deduplicated prefix under
// the Indexer's fixed signature order. It mutates the shared resolution
// and signature caches and therefore requires exclusive access. The
// returned entry count feeds the SigEntries statistic (queries do not
// count).
func (ix *Indexer) prepObject(tokens []string) (prepped, int) {
	j := ix.j
	p := j.resolveAll([][]string{tokens})[0]
	entries := j.sp.AppendObjectSigs(ix.entryBuf[:0], p.elems)
	ix.entryBuf = entries
	p.keys = j.ctx.SortedKeys(p.elems)
	ix.order.Sort(entries)
	n := len(p.elems)
	var plen int
	if j.opt.Weighted {
		plen = sig.WeightedPrefixS(entries, j.opt.Set.MinOverlap(j.opt.Tau, n), &ix.ps)
	} else {
		plen = sig.DistElePrefixS(entries, j.opt.Set.TauS(j.opt.Tau, n), &ix.ps)
	}
	if n := j.sp.NumSigs(); n > len(ix.sigSeen) {
		ix.sigSeen = append(ix.sigSeen, make([]int64, n-len(ix.sigSeen))...)
	}
	ix.sigStamp++
	for _, e := range entries[:plen] {
		if ix.sigSeen[e.Sig] != ix.sigStamp {
			ix.sigSeen[e.Sig] = ix.sigStamp
			p.prefix = append(p.prefix, int32(e.Sig))
		}
	}
	return p, len(entries)
}

// Add indexes the tokenized object and returns the pairs (i, Len()-1)
// for every previously added object i similar to it. The returned pair
// indices refer to insertion order.
func (ix *Indexer) Add(tokens []string) ([]Pair, error) {
	_, pairs, err := ix.AddCtx(context.Background(), tokens)
	return pairs, err
}

// AddCtx is Add under a cancellation context, returning the id assigned
// to the object (its insertion index). A cancelled context aborts the
// probe within one verification batch and leaves the Indexer exactly as
// it was — the object is not indexed. Structurally invalid objects
// (empty token list, empty-string token) return an *InputError.
func (ix *Indexer) AddCtx(ctx context.Context, tokens []string) (int, []Pair, error) {
	if err := validateTokens(tokens); err != nil {
		return 0, nil, err
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	t0 := time.Now()
	j := ix.j
	id := len(ix.objs)
	if id > (1<<31)-2 {
		return 0, nil, fmt.Errorf("kjoin: indexer is full")
	}
	p, entries := ix.prepObject(tokens)
	j.st.SigEntries += int64(entries)
	j.st.Preprocess += time.Since(t0)

	// Probe: all prior objects sharing a prefix signature, deduplicated
	// by stamping them with this probe's stamp value.
	t1 := time.Now()
	ix.stamp++
	stamp := ix.stamp
	var out []Pair
	for _, s := range p.prefix {
		for _, y := range ix.ix.Postings(s) {
			if ix.seen[y] == stamp {
				continue
			}
			ix.seen[y] = stamp
			j.st.Candidates++
			if j.st.Candidates%cancelCheckEvery == 0 && ctx.Err() != nil {
				j.st.Probe += time.Since(t1)
				return 0, nil, ctx.Err()
			}
			tv := time.Now()
			ok := j.ctx.VerifyKeyed(p.elems, ix.objs[y].elems, p.keys, ix.objs[y].keys, j.opt.Verifier, &j.st.Verify)
			j.st.VerifyTime += time.Since(tv)
			if ok {
				pair := Pair{X: int(y), Y: id}
				if j.opt.ComputeSims {
					pair.Sim = j.ctx.Similarity(p.elems, ix.objs[y].elems)
				}
				out = append(out, pair)
			}
		}
	}
	ix.ix.AddAll(p.prefix, int32(id))
	ix.objs = append(ix.objs, p)
	ix.seen = append(ix.seen, 0)
	j.st.Objects = len(ix.objs)
	j.st.Probe += time.Since(t1)
	return id, out, nil
}

// Match is one similarity-search result: the insertion index of a
// matching object and its similarity (when ComputeSims is set).
type Match struct {
	Index int
	Sim   float64
}

// PreparedQuery is the preprocessed form of a query object, produced by
// PrepareQuery and consumed by RunQuery.
type PreparedQuery struct {
	p prepped
}

// PrepareQuery resolves and preprocesses a query object without probing
// the index. It mutates the Indexer's shared caches (token interning,
// lazy resolution, signature generation) and therefore requires the same
// exclusive access as Add — but it is cheap (proportional to the query's
// tokens), whereas the probe it prepares for is the expensive part and
// runs read-only in RunQuery.
func (ix *Indexer) PrepareQuery(tokens []string) (*PreparedQuery, error) {
	if err := validateTokens(tokens); err != nil {
		return nil, err
	}
	p, _ := ix.prepObject(tokens)
	return &PreparedQuery{p: p}, nil
}

// RunQuery probes the index with a prepared query and reports the
// indexed objects similar to it. It reads only state that PrepareQuery
// and earlier Adds fully materialized, so any number of RunQuery calls
// (and WriteSnapshot, Len, Stats) may run concurrently — only mutating
// calls must be excluded. A cancelled context aborts the probe within
// one verification batch.
func (ix *Indexer) RunQuery(ctx context.Context, q *PreparedQuery) ([]Match, error) {
	j := ix.j
	// Borrow a verify context: its scratch makes per-candidate
	// verification allocation-free, and pooling amortizes the scratch
	// (and its warmed tables) across queries.
	vctx := ix.vpool.Get().(*verify.Context)
	defer ix.vpool.Put(vctx)
	seen := make(map[int32]bool)
	var out []Match
	var st Stats
	var checked int64
	for _, s := range q.p.prefix {
		for _, y := range ix.ix.Postings(s) {
			if seen[y] {
				continue
			}
			seen[y] = true
			checked++
			if checked%cancelCheckEvery == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if vctx.VerifyKeyed(q.p.elems, ix.objs[y].elems, q.p.keys, ix.objs[y].keys, j.opt.Verifier, &st.Verify) {
				m := Match{Index: int(y)}
				if j.opt.ComputeSims {
					m.Sim = vctx.Similarity(q.p.elems, ix.objs[y].elems)
				}
				out = append(out, m)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Query reports the indexed objects similar to the tokenized object
// without adding it to the index — knowledge-aware similarity search
// over the accumulated collection.
func (ix *Indexer) Query(tokens []string) ([]Match, error) {
	return ix.QueryCtx(context.Background(), tokens)
}

// QueryCtx is Query under a cancellation context: PrepareQuery followed
// by RunQuery. Callers that hold their own locks (like the HTTP server)
// call the two phases directly so the probe runs under a shared lock.
func (ix *Indexer) QueryCtx(ctx context.Context, tokens []string) ([]Match, error) {
	q, err := ix.PrepareQuery(tokens)
	if err != nil {
		return nil, err
	}
	return ix.RunQuery(ctx, q)
}
