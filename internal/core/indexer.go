package core

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/hierarchy"
	"kjoin/internal/index"
	"kjoin/internal/sig"
	"kjoin/internal/verify"
)

// Indexer is the online form of the K-Join framework (Algorithm 1's loop
// exposed as an API): objects are added one at a time, and each Add
// reports the similar pairs between the new object and everything added
// before it. This is the streaming-deduplication shape of the paper's
// motivating Factual use case — new crawled POIs arrive continuously and
// must be checked against the accumulated collection.
//
// The global signature order of the offline algorithm (ascending df,
// §3.1) cannot be known up front in a streaming setting; the Indexer
// instead fixes the order by signature id. Prefix-filter correctness
// (Lemmas 2, 6, 7) only requires *some* global order, so results are
// exactly the same join result — candidate counts are merely less
// optimized than the offline df order.
//
// Internally the Indexer is an LSM-style segmented engine: adds land in
// a small mutable memtable (under mu), which is sealed into an immutable
// segment at Options.SealEvery objects, and a background merger compacts
// segments toward a strictly-decreasing-size layout. Readers never take
// mu: every mutation publishes an immutable view (segment list, memtable
// prefix, counters) through an atomic pointer, and RunQuery, Len, Stats,
// WALSeq, SegmentSizes, SegmentStats and Pin work entirely off a loaded
// view. PrepareQuery synchronizes internally (prepMu). The segment
// layout never influences results: candidate sets are unions over
// disjoint id ranges and are verified in ascending id order regardless
// of which segment supplied them.
//
// Concurrency contract: Add/AddCtx/Query/QueryCtx serialize internally
// on mu and may be called concurrently with everything; PrepareQuery and
// all read-only calls are safe from any number of goroutines at once.
type Indexer struct {
	// j holds the shared preprocessing and verification state. It is
	// dual-protected: the resolution/signature caches and arenas are
	// mutated only under prepMu, while the statistics (j.st) and
	// verification context scratch (j.ctx) are mutated only under mu.
	// (Annotating a single guard here would be wrong, so the split is
	// enforced by review rather than kjoinlint.)
	j     *joiner
	order *sig.Order

	// prepMu guards object preprocessing: token interning, lazy
	// resolution, signature generation, and the prep scratch below.
	// Preprocessed state becomes visible to lock-free readers through
	// the published cache snapshots (elem.Resolver.Publish,
	// sig.Space.Publish) stored before prepMu is released.
	//kjoinlint:lockorder rank=26
	prepMu sync.Mutex
	// sigSeen stamps prefix signatures during prepObject (the epoch-table
	// form of the per-Add dedup map), keyed by signature id.
	sigSeen  []int64 // guarded by prepMu
	sigStamp int64   // guarded by prepMu
	// entryBuf is the reusable signature-entry buffer of prepObject
	// (entries are transient — only the derived prefix is retained), and
	// ps the matching prefix-computation scratch.
	entryBuf []sig.Entry       // guarded by prepMu
	ps       sig.PrefixScratch // guarded by prepMu

	// mu guards the engine: the segment list, the memtable, the merger
	// handle, the WAL position and the statistics. Writers hold it for
	// the probe+commit of an add; readers never take it.
	//kjoinlint:lockorder rank=24
	mu   sync.Mutex
	segs []*segment // guarded by mu; elements immutable once listed
	mem  *memtable  // guarded by mu
	// memInv is the writer-private inverted index over the memtable
	// (global ids): the add probe uses it, and a seal adopts it as the
	// new segment's index. Lock-free readers scan the published memtable
	// prefix instead.
	memInv   *index.Inverted // guarded by mu
	memBirth time.Time       // guarded by mu: first insert into current memtable
	// seen stamps the last probe (by stamp value) that visited each
	// object (global id), deduplicating candidates across an object's
	// prefix signatures and across segments. Stamps are drawn from a
	// monotonic counter rather than the object id so that a cancelled
	// Add can never leave stamps a later Add would mistake for its own.
	seen    []int64 // guarded by mu
	stamp   int64   // guarded by mu
	candBuf []int32 // guarded by mu: reusable candidate id buffer
	// walSeq is the last write-ahead-log sequence reflected in the
	// index (see SetWALSeq/ApplyLogged); it travels inside snapshots so
	// recovery knows where replay resumes.
	walSeq uint64 // guarded by mu
	// sealLog, when installed, appends a seal record to the WAL right
	// before a live seal mutates the engine (see SetSealLogger).
	sealLog    func() (uint64, error) // guarded by mu
	sealTotal  uint64                 // guarded by mu
	mergeTotal uint64                 // guarded by mu
	// mergeCh is non-nil while a background merger goroutine runs; it is
	// closed when the merger exits (WaitMerges blocks on it).
	mergeCh chan struct{} // guarded by mu

	// loadLayout suppresses count-based auto-seals while a v3 snapshot
	// load reproduces a recorded segment layout. Set only during the
	// single-threaded load, before any concurrent use.
	loadLayout bool

	// view is the atomically published engine epoch lock-free readers
	// pin. Stored only by publishLocked (under mu); loaded anywhere.
	view atomic.Pointer[view]

	// vpool holds per-query verify.Context clones: RunQuery may run from
	// many goroutines at once, and each clone owns the mutable Scratch
	// that makes steady-state verification allocation-free.
	vpool sync.Pool
}

// NewIndexer returns an empty Indexer over the hierarchy with the given
// options. Workers and ComputeSims are honored per Add; the signature
// scheme, thresholds, metrics and resolution mode are fixed for the
// Indexer's lifetime.
func NewIndexer(h *hierarchy.Hierarchy, opt Options) (*Indexer, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	j := newJoiner(h, opt)
	// Materialize j.ctx's scratch now: vpool.New clones the context from
	// query goroutines, and Clone must never race a lazy first-use
	// scratch write on the original.
	j.ctx.Prime()
	ix := &Indexer{
		j:      j,
		order:  sig.BuildOrder(nil), // empty df: order degrades to signature id
		mem:    &memtable{},
		memInv: index.New(),
	}
	ix.vpool.New = func() any { return j.ctx.Clone() }
	ix.mu.Lock()
	ix.publishLocked()
	ix.mu.Unlock()
	return ix, nil
}

// publishLocked stores a fresh view of the engine for lock-free
// readers. Caller holds mu and calls it after every mutation batch.
func (ix *Indexer) publishLocked() {
	v := &view{
		segs:       ix.segs,
		memBase:    ix.mem.base,
		memObjs:    ix.mem.objs[:len(ix.mem.objs):len(ix.mem.objs)],
		total:      ix.mem.base + len(ix.mem.objs),
		walSeq:     ix.walSeq,
		stats:      ix.j.st,
		sealTotal:  ix.sealTotal,
		mergeTotal: ix.mergeTotal,
	}
	ix.view.Store(v)
}

// publishPrepLocked publishes the resolution and signature cache
// snapshots for lock-free readers; the caller holds prepMu and has
// fully preprocessed (resolved, signature-generated, group-keyed) every
// element the snapshots cover.
func (ix *Indexer) publishPrepLocked() {
	ix.j.res.Publish()
	ix.j.sp.Publish()
}

// Len returns the number of indexed objects. Safe to call concurrently
// with anything.
func (ix *Indexer) Len() int { return ix.view.Load().total }

// Stats returns the accumulated statistics as of the last published
// engine epoch. Safe to call concurrently with anything; counters
// mutated by an add in flight (or a cancelled add) appear at the next
// publish.
func (ix *Indexer) Stats() Stats { return ix.view.Load().stats }

// prepObject computes the preprocessed form of one tokenized object:
// interned elements, sorted group keys and the deduplicated prefix under
// the Indexer's fixed signature order. It mutates the shared resolution
// and signature caches: caller holds prepMu for the whole call. The
// returned entry count feeds the SigEntries statistic (queries do not
// count).
func (ix *Indexer) prepObject(tokens []string) (prepped, int) {
	j := ix.j
	p := j.resolveAll([][]string{tokens})[0]
	entries := j.sp.AppendObjectSigs(ix.entryBuf[:0], p.elems)
	ix.entryBuf = entries
	p.keys = j.ctx.SortedKeys(p.elems)
	ix.order.Sort(entries)
	n := len(p.elems)
	var plen int
	if j.opt.Weighted {
		plen = sig.WeightedPrefixS(entries, j.opt.Set.MinOverlap(j.opt.Tau, n), &ix.ps)
	} else {
		plen = sig.DistElePrefixS(entries, j.opt.Set.TauS(j.opt.Tau, n), &ix.ps)
	}
	if n := j.sp.NumSigs(); n > len(ix.sigSeen) {
		ix.sigSeen = append(ix.sigSeen, make([]int64, n-len(ix.sigSeen))...)
	}
	ix.sigStamp++
	for _, e := range entries[:plen] {
		if ix.sigSeen[e.Sig] != ix.sigStamp {
			ix.sigSeen[e.Sig] = ix.sigStamp
			p.prefix = append(p.prefix, int32(e.Sig))
		}
	}
	return p, len(entries)
}

// prep preprocesses one object under prepMu and publishes the cache
// snapshots before releasing it, so the returned prepped object is
// fully servable to lock-free readers.
func (ix *Indexer) prep(tokens []string) (prepped, int) {
	ix.prepMu.Lock()
	defer ix.prepMu.Unlock()
	p, n := ix.prepObject(tokens)
	ix.publishPrepLocked()
	return p, n
}

// Add indexes the tokenized object and returns the pairs (i, Len()-1)
// for every previously added object i similar to it. The returned pair
// indices refer to insertion order.
func (ix *Indexer) Add(tokens []string) ([]Pair, error) {
	_, pairs, err := ix.AddCtx(context.Background(), tokens)
	return pairs, err
}

// AddCtx is Add under a cancellation context, returning the id assigned
// to the object (its insertion index). A cancelled context aborts the
// probe within one verification batch and leaves the index exactly as
// it was — the object is not indexed. Structurally invalid objects
// (empty token list, empty-string token) return an *InputError.
func (ix *Indexer) AddCtx(ctx context.Context, tokens []string) (int, []Pair, error) {
	if err := validateTokens(tokens); err != nil {
		return 0, nil, err
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	t0 := time.Now()
	p, entries := ix.prep(tokens)
	prepTime := time.Since(t0)

	j := ix.j
	ix.mu.Lock()
	defer ix.mu.Unlock()
	j.st.SigEntries += int64(entries)
	j.st.Preprocess += prepTime
	id := ix.mem.base + len(ix.mem.objs)
	if id > (1<<31)-2 {
		return 0, nil, fmt.Errorf("kjoin: indexer is full")
	}

	// Probe: all prior objects sharing a prefix signature, gathered from
	// every segment plus the memtable's private index, deduplicated by
	// stamping, then verified in ascending id order — the candidate set
	// and the verification of each pair are independent of the segment
	// layout, so results are bit-identical for any seal/merge schedule.
	t1 := time.Now()
	ix.stamp++
	stamp := ix.stamp
	cands := ix.candBuf[:0]
	for _, seg := range ix.segs {
		if err := ctx.Err(); err != nil {
			j.st.Probe += time.Since(t1)
			return 0, nil, err
		}
		for _, s := range p.prefix {
			for _, y := range seg.inv.Postings(s) {
				if ix.seen[y] != stamp {
					ix.seen[y] = stamp
					cands = append(cands, y)
				}
			}
		}
	}
	for _, s := range p.prefix {
		if err := ctx.Err(); err != nil {
			j.st.Probe += time.Since(t1)
			return 0, nil, err
		}
		for _, y := range ix.memInv.Postings(s) {
			if ix.seen[y] != stamp {
				ix.seen[y] = stamp
				cands = append(cands, y)
			}
		}
	}
	slices.Sort(cands)
	ix.candBuf = cands
	var out []Pair
	for _, y := range cands {
		j.st.Candidates++
		if j.st.Candidates%cancelCheckEvery == 0 && ctx.Err() != nil {
			j.st.Probe += time.Since(t1)
			return 0, nil, ctx.Err()
		}
		oy := ix.objLocked(int(y))
		tv := time.Now()
		ok := j.ctx.VerifyKeyed(p.elems, oy.elems, p.keys, oy.keys, j.opt.Verifier, &j.st.Verify)
		j.st.VerifyTime += time.Since(tv)
		if ok {
			pair := Pair{X: int(y), Y: id}
			if j.opt.ComputeSims {
				pair.Sim = j.ctx.Similarity(p.elems, oy.elems)
			}
			out = append(out, pair)
		}
	}

	// Commit: seal first if this insert would overflow the memtable (the
	// seal record must hit the WAL before the layout changes — a failed
	// append aborts the add with the engine untouched), then insert and
	// publish the new epoch.
	if ix.sealDueLocked() {
		if err := ix.logSealLocked(); err != nil {
			j.st.Probe += time.Since(t1)
			return 0, nil, err
		}
		ix.sealLocked()
		if ch := ix.maybeMergeLocked(); ch != nil {
			go ix.mergeLoop(ch)
		}
	}
	ix.insertLocked(p)
	j.st.Probe += time.Since(t1)
	ix.publishLocked()
	return id, out, nil
}

// objLocked returns the object with the given global id; ids must be
// in range. Caller holds mu.
func (ix *Indexer) objLocked(id int) *prepped {
	if id >= ix.mem.base {
		return &ix.mem.objs[id-ix.mem.base]
	}
	for _, s := range ix.segs {
		if id < s.base+len(s.objs) {
			return &s.objs[id-s.base]
		}
	}
	panic("kjoin: object id outside engine")
}

// Match is one similarity-search result: the insertion index of a
// matching object and its similarity (when ComputeSims is set).
type Match struct {
	Index int
	Sim   float64
}

// PreparedQuery is the preprocessed form of a query object, produced by
// PrepareQuery and consumed by RunQuery.
type PreparedQuery struct {
	p prepped
}

// PrepareQuery resolves and preprocesses a query object without probing
// the index. It synchronizes internally (the shared token-interning,
// resolution and signature caches are guarded by their own short lock),
// so any number of PrepareQuery calls may run concurrently with each
// other, with adds, and with queries — the server's query path takes no
// lock at all. It is cheap (proportional to the query's tokens); the
// probe it prepares for is the expensive part and runs lock-free in
// RunQuery.
func (ix *Indexer) PrepareQuery(tokens []string) (*PreparedQuery, error) {
	if err := validateTokens(tokens); err != nil {
		return nil, err
	}
	p, _ := ix.prep(tokens)
	return &PreparedQuery{p: p}, nil
}

// RunQuery probes the index with a prepared query and reports the
// indexed objects similar to it, in ascending index order. It pins the
// current engine epoch with one atomic load and takes no locks: any
// number of RunQuery calls may run concurrently with each other and
// with adds, seals and merges. A cancelled context aborts the probe
// within one verification batch.
func (ix *Indexer) RunQuery(ctx context.Context, q *PreparedQuery) ([]Match, error) {
	j := ix.j
	v := ix.view.Load()
	// Borrow a verify context: its scratch makes per-candidate
	// verification allocation-free, and pooling amortizes the scratch
	// (and its warmed tables) across queries.
	vctx := ix.vpool.Get().(*verify.Context)
	defer ix.vpool.Put(vctx)

	// Gather candidates from the immutable segments' inverted indexes,
	// then scan the memtable prefix for shared prefix signatures (the
	// memtable's index is writer-private). Ids are disjoint across
	// segments and the memtable; the map dedups within a segment across
	// the query's prefix signatures.
	var cands []int32
	seen := make(map[int32]bool)
	for _, seg := range v.segs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, s := range q.p.prefix {
			for _, y := range seg.inv.Postings(s) {
				if !seen[y] {
					seen[y] = true
					cands = append(cands, y)
				}
			}
		}
	}
	if len(v.memObjs) > 0 {
		qsig := make(map[int32]bool, len(q.p.prefix))
		for _, s := range q.p.prefix {
			qsig[s] = true
		}
		for i := range v.memObjs {
			for _, s := range v.memObjs[i].prefix {
				if qsig[s] {
					cands = append(cands, int32(v.memBase+i))
					break
				}
			}
		}
	}
	slices.Sort(cands)

	var out []Match
	var st Stats
	var checked int64
	for _, y := range cands {
		checked++
		if checked%cancelCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		oy := v.objAt(int(y))
		if vctx.VerifyKeyed(q.p.elems, oy.elems, q.p.keys, oy.keys, j.opt.Verifier, &st.Verify) {
			m := Match{Index: int(y)}
			if j.opt.ComputeSims {
				m.Sim = vctx.Similarity(q.p.elems, oy.elems)
			}
			out = append(out, m)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Query reports the indexed objects similar to the tokenized object
// without adding it to the index — knowledge-aware similarity search
// over the accumulated collection.
func (ix *Indexer) Query(tokens []string) ([]Match, error) {
	return ix.QueryCtx(context.Background(), tokens)
}

// QueryCtx is Query under a cancellation context: PrepareQuery followed
// by RunQuery. Both phases synchronize internally, so QueryCtx is safe
// from any goroutine without external locking.
func (ix *Indexer) QueryCtx(ctx context.Context, tokens []string) ([]Match, error) {
	q, err := ix.PrepareQuery(tokens)
	if err != nil {
		return nil, err
	}
	return ix.RunQuery(ctx, q)
}
