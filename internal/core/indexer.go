package core

import (
	"fmt"
	"time"

	"kjoin/internal/hierarchy"
	"kjoin/internal/index"
	"kjoin/internal/sig"
)

// Indexer is the online form of the K-Join framework (Algorithm 1's loop
// exposed as an API): objects are added one at a time, and each Add
// reports the similar pairs between the new object and everything added
// before it. This is the streaming-deduplication shape of the paper's
// motivating Factual use case — new crawled POIs arrive continuously and
// must be checked against the accumulated collection.
//
// The global signature order of the offline algorithm (ascending df,
// §3.1) cannot be known up front in a streaming setting; the Indexer
// instead fixes the order by signature id. Prefix-filter correctness
// (Lemmas 2, 6, 7) only requires *some* global order, so results are
// exactly the same join result — candidate counts are merely less
// optimized than the offline df order.
//
// An Indexer is not safe for concurrent use.
type Indexer struct {
	j     *joiner
	order *sig.Order
	ix    *index.Inverted
	objs  []prepped
	seen  []int32
}

// NewIndexer returns an empty Indexer over the hierarchy with the given
// options. Workers and ComputeSims are honored per Add; the signature
// scheme, thresholds, metrics and resolution mode are fixed for the
// Indexer's lifetime.
func NewIndexer(h *hierarchy.Hierarchy, opt Options) (*Indexer, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	j := newJoiner(h, opt)
	return &Indexer{
		j:     j,
		order: sig.BuildOrder(nil), // empty df: order degrades to signature id
		ix:    index.New(),
	}, nil
}

// Len returns the number of indexed objects.
func (ix *Indexer) Len() int { return len(ix.objs) }

// Stats returns the accumulated statistics.
func (ix *Indexer) Stats() Stats { return ix.j.st }

// Add indexes the tokenized object and returns the pairs (i, Len()-1)
// for every previously added object i similar to it. The returned pair
// indices refer to insertion order.
func (ix *Indexer) Add(tokens []string) ([]Pair, error) {
	t0 := time.Now()
	j := ix.j
	id := len(ix.objs)
	if id > (1<<31)-2 {
		return nil, fmt.Errorf("kjoin: indexer is full")
	}
	p := j.resolveAll([][]string{tokens})[0]
	entries := j.sp.ObjectSigs(p.elems)
	j.st.SigEntries += int64(len(entries))
	p.keys = j.ctx.SortedKeys(p.elems)
	ix.order.Sort(entries)
	n := len(p.elems)
	var plen int
	if j.opt.Weighted {
		plen = sig.WeightedPrefix(entries, j.opt.Set.MinOverlap(j.opt.Tau, n))
	} else {
		plen = sig.DistElePrefix(entries, j.opt.Set.TauS(j.opt.Tau, n))
	}
	seenSig := make(map[sig.Sig]bool, plen)
	for _, e := range entries[:plen] {
		if !seenSig[e.Sig] {
			seenSig[e.Sig] = true
			p.prefix = append(p.prefix, int32(e.Sig))
		}
	}
	j.st.Preprocess += time.Since(t0)

	// Probe: all prior objects sharing a prefix signature. The stamp
	// array marks visited candidates; stamps from previous Adds hold
	// strictly smaller ids, so no reset is needed.
	t1 := time.Now()
	ix.seen = append(ix.seen, -1)
	var out []Pair
	for _, s := range p.prefix {
		for _, y := range ix.ix.Postings(s) {
			if ix.seen[y] == int32(id) {
				continue
			}
			ix.seen[y] = int32(id)
			j.st.Candidates++
			tv := time.Now()
			ok := j.ctx.VerifyKeyed(p.elems, ix.objs[y].elems, p.keys, ix.objs[y].keys, j.opt.Verifier, &j.st.Verify)
			j.st.VerifyTime += time.Since(tv)
			if ok {
				pair := Pair{X: int(y), Y: id}
				if j.opt.ComputeSims {
					pair.Sim = j.ctx.Similarity(p.elems, ix.objs[y].elems)
				}
				out = append(out, pair)
			}
		}
	}
	ix.ix.AddAll(p.prefix, int32(id))
	ix.objs = append(ix.objs, p)
	j.st.Objects = len(ix.objs)
	j.st.Probe += time.Since(t1)
	return out, nil
}

// Match is one similarity-search result: the insertion index of a
// matching object and its similarity (when ComputeSims is set).
type Match struct {
	Index int
	Sim   float64
}

// Query reports the indexed objects similar to the tokenized object
// without adding it to the index — knowledge-aware similarity search
// over the accumulated collection.
func (ix *Indexer) Query(tokens []string) ([]Match, error) {
	j := ix.j
	p := j.resolveAll([][]string{tokens})[0]
	entries := j.sp.ObjectSigs(p.elems)
	p.keys = j.ctx.SortedKeys(p.elems)
	ix.order.Sort(entries)
	n := len(p.elems)
	var plen int
	if j.opt.Weighted {
		plen = sig.WeightedPrefix(entries, j.opt.Set.MinOverlap(j.opt.Tau, n))
	} else {
		plen = sig.DistElePrefix(entries, j.opt.Set.TauS(j.opt.Tau, n))
	}
	seenSig := make(map[sig.Sig]bool, plen)
	var prefix []int32
	for _, e := range entries[:plen] {
		if !seenSig[e.Sig] {
			seenSig[e.Sig] = true
			prefix = append(prefix, int32(e.Sig))
		}
	}
	seen := make(map[int32]bool)
	var out []Match
	var st Stats
	for _, s := range prefix {
		for _, y := range ix.ix.Postings(s) {
			if seen[y] {
				continue
			}
			seen[y] = true
			if j.ctx.VerifyKeyed(p.elems, ix.objs[y].elems, p.keys, ix.objs[y].keys, j.opt.Verifier, &st.Verify) {
				m := Match{Index: int(y)}
				if j.opt.ComputeSims {
					m.Sim = j.ctx.Similarity(p.elems, ix.objs[y].elems)
				}
				out = append(out, m)
			}
		}
	}
	return out, nil
}
