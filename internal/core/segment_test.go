package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"kjoin/internal/hierarchy"
)

// segDiffCorpus builds a hierarchy and object stream sized so a small
// SealEvery produces several seals and merges.
func segDiffCorpus(seed int64, count int) (*hierarchy.Hierarchy, [][]string) {
	r := rand.New(rand.NewSource(seed))
	h := randHierarchy(r, 40)
	return h, randObjects(r, h, count)
}

// addAll streams objs into ix, collecting every emitted pair in
// insertion order.
func addAll(t *testing.T, ix *Indexer, objs [][]string) []Pair {
	t.Helper()
	var out []Pair
	for _, o := range objs {
		pairs, err := ix.Add(o)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pairs...)
	}
	return out
}

// pairBits renders pairs with the exact bit pattern of their
// similarities, so a comparison is bit-identity, not tolerance.
func pairBits(pairs []Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = fmt.Sprintf("%d-%d:%016x", p.X, p.Y, math.Float64bits(p.Sim))
	}
	return out
}

func matchBits(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = fmt.Sprintf("%d:%016x", m.Index, math.Float64bits(m.Sim))
	}
	return out
}

// TestSegmentedDifferentialBitIdentical pins the tentpole invariant:
// the segmented engine (small memtable, background merges racing the
// adds) must produce bit-for-bit the same pairs, query answers and
// logical statistics as the single-structure path (memtable so large it
// never seals), for both worker settings.
func TestSegmentedDifferentialBitIdentical(t *testing.T) {
	h, objs := segDiffCorpus(7, 120)
	for _, workers := range []int{1, 4} {
		for _, weighted := range []bool{false, true} {
			opt := Defaults(0.7, 0.5)
			opt.Weighted = weighted
			opt.ComputeSims = true
			opt.Workers = workers

			single := opt
			single.SealEvery = len(objs) + 1
			sIx, err := NewIndexer(h, single)
			if err != nil {
				t.Fatal(err)
			}
			wantPairs := addAll(t, sIx, objs)

			segmented := opt
			segmented.SealEvery = 7
			gIx, err := NewIndexer(h, segmented)
			if err != nil {
				t.Fatal(err)
			}
			gotPairs := addAll(t, gIx, objs)
			gIx.WaitMerges()

			name := fmt.Sprintf("workers=%d weighted=%v", workers, weighted)
			if !reflect.DeepEqual(pairBits(gotPairs), pairBits(wantPairs)) {
				t.Fatalf("%s: pair streams diverge:\nsegmented %v\nsingle    %v",
					name, pairBits(gotPairs), pairBits(wantPairs))
			}
			if gIx.Len() != sIx.Len() {
				t.Fatalf("%s: Len %d vs %d", name, gIx.Len(), sIx.Len())
			}
			gs, ss := gIx.Stats(), sIx.Stats()
			if gs.Objects != ss.Objects || gs.Candidates != ss.Candidates ||
				gs.SigEntries != ss.SigEntries || gs.Verify != ss.Verify {
				t.Fatalf("%s: logical stats diverge: %+v vs %+v", name, gs, ss)
			}

			// Query both engines with every object's tokens: the
			// answers (and similarity bits) must match.
			for i := 0; i < len(objs); i += 13 {
				gm, err := gIx.Query(objs[i])
				if err != nil {
					t.Fatal(err)
				}
				sm, err := sIx.Query(objs[i])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(matchBits(gm), matchBits(sm)) {
					t.Fatalf("%s: query %d diverges: %v vs %v",
						name, i, matchBits(gm), matchBits(sm))
				}
			}

			if st := gIx.SegmentStats(); st.SealTotal == 0 {
				t.Fatalf("%s: segmented run never sealed (SegmentStats %+v)", name, st)
			}
		}
	}
}

// TestSegmentedConcurrentStress races adders, forced seals, background
// merges, lock-free queries and WaitMerges against each other; run
// under -race it is the engine's memory-model check. Every query must
// see a consistent epoch: answers drawn from a prefix of the insertion
// order, each with a valid similarity.
func TestSegmentedConcurrentStress(t *testing.T) {
	h, objs := segDiffCorpus(11, 200)
	opt := Defaults(0.7, 0.5)
	opt.ComputeSims = true
	opt.SealEvery = 5
	ix, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-prepare queries once so queriers exercise RunQuery, the
	// lock-free path, rather than re-prepping.
	var queries []*PreparedQuery
	for i := 0; i < 8; i++ {
		q, err := ix.PrepareQuery(objs[i*7])
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	done := make(chan struct{})

	// One writer: the engine serializes adds internally; a single
	// streaming writer matches the production shape (server handleAdd).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, o := range objs {
			if _, err := ix.Add(o); err != nil {
				errc <- err
				return
			}
		}
	}()

	// A sealer forcing extra seals mid-stream, and a merger-waiter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := ix.Seal(); err != nil {
				errc <- err
				return
			}
			ix.WaitMerges()
		}
	}()

	// Queriers hammer the lock-free read path.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				n := ix.Len()
				ms, err := ix.RunQuery(ctx, queries[(g+i)%len(queries)])
				if err != nil {
					errc <- err
					return
				}
				for _, m := range ms {
					// The pinned epoch may be newer than the Len read
					// above, never older — and never beyond the corpus.
					if m.Index < 0 || m.Index >= len(objs) {
						errc <- fmt.Errorf("match index %d outside corpus", m.Index)
						return
					}
					if m.Index < n && (m.Sim < 0 || m.Sim > 1.0000001) {
						errc <- fmt.Errorf("similarity %v out of range", m.Sim)
						return
					}
				}
				_ = ix.Stats()
				_ = ix.SegmentStats()
			}
		}(g)
	}

	writerDone := make(chan struct{})
	go func() { wg.Wait(); close(writerDone) }()
	// Let the writer finish, then stop the loops.
	for {
		if ix.Len() == len(objs) {
			break
		}
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-time.After(time.Millisecond):
		}
	}
	close(done)
	<-writerDone
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	ix.WaitMerges()

	// The quiesced engine must answer exactly like a fresh rebuild.
	want, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, want, objs)
	want.WaitMerges()
	for i := 0; i < len(objs); i += 31 {
		gm, err := ix.Query(objs[i])
		if err != nil {
			t.Fatal(err)
		}
		wm, err := want.Query(objs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(matchBits(gm), matchBits(wm)) {
			t.Fatalf("post-stress query %d diverges: %v vs %v", i, matchBits(gm), matchBits(wm))
		}
	}
}

// TestSnapshotV3SegmentLayoutRoundTrip proves a v3 snapshot carries the
// segment layout: loading must reproduce the exact pre-snapshot
// SegmentSizes (not re-derive a fresh layout) plus identical answers.
func TestSnapshotV3SegmentLayoutRoundTrip(t *testing.T) {
	h, objs := segDiffCorpus(23, 90)
	opt := Defaults(0.7, 0.5)
	opt.ComputeSims = true
	opt.SealEvery = 8
	ix, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, ix, objs)
	// Snapshot mid-merge-schedule: seal the tail but do NOT wait for
	// merges first, so the recorded layout is a genuinely intermediate
	// one a naive reload would not land on.
	if err := ix.Seal(); err != nil {
		t.Fatal(err)
	}
	wantSizes := append([]int(nil), ix.SegmentSizes()...)
	if len(wantSizes) < 2 {
		t.Fatalf("corpus too small to exercise layout: %v", wantSizes)
	}

	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ix.WaitMerges()

	got, err := LoadIndexer(h, opt, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sizes := got.SegmentSizes(); !reflect.DeepEqual(sizes, wantSizes) {
		t.Fatalf("loaded layout %v, snapshot recorded %v", sizes, wantSizes)
	}
	if got.Len() != len(objs) {
		t.Fatalf("loaded Len %d, want %d", got.Len(), len(objs))
	}
	for i := 0; i < len(objs); i += 17 {
		gm, err := got.Query(objs[i])
		if err != nil {
			t.Fatal(err)
		}
		wm, err := ix.Query(objs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(matchBits(gm), matchBits(wm)) {
			t.Fatalf("loaded query %d diverges: %v vs %v", i, matchBits(gm), matchBits(wm))
		}
	}
	got.WaitMerges()
}

// TestMergePlanPolicy pins the leftmost-adjacent policy and its
// confluence measure: mergePlan picks the leftmost adjacent pair whose
// left size does not exceed its right, and mergeBacklog counts the
// steps to fixpoint.
func TestMergePlanPolicy(t *testing.T) {
	seg := func(n int) *segment {
		return &segment{objs: make([]prepped, n)}
	}
	segs := func(sizes ...int) []*segment {
		out := make([]*segment, len(sizes))
		for i, n := range sizes {
			out[i] = seg(n)
		}
		return out
	}
	cases := []struct {
		sizes   []int
		plan    int
		backlog int
	}{
		{nil, -1, 0},
		{[]int{5}, -1, 0},
		{[]int{9, 5}, -1, 0},                // strictly descending: fixpoint
		{[]int{5, 9}, 0, 1},                 // ascending pair merges once
		{[]int{256, 256, 300}, 0, 1},        // 256+256=512 > 300: one step to fixpoint
		{[]int{4, 4, 4, 4}, 0, 3},           // equal run collapses fully
		{[]int{100, 20, 20, 5}, 1, 1},       // leftmost violation is interior
		{[]int{1, 2, 3}, 0, 2},              // ascending chain collapses fully
		{[]int{50, 10, 60, 10, 70, 10}, 1, 3},
	}
	for _, c := range cases {
		if got := mergePlan(segs(c.sizes...)); got != c.plan {
			t.Errorf("mergePlan(%v) = %d, want %d", c.sizes, got, c.plan)
		}
		if got := mergeBacklog(c.sizes); got != c.backlog {
			t.Errorf("mergeBacklog(%v) = %d, want %d", c.sizes, got, c.backlog)
		}
	}
}

// TestMergeConfluence checks that the synchronous fixpoint (replay
// paths) and the background merger converge on the same layout for the
// same insertion stream — the property that makes recovery layouts
// reproducible.
func TestMergeConfluence(t *testing.T) {
	h, objs := segDiffCorpus(31, 100)
	opt := Defaults(0.7, 0.5)
	opt.SealEvery = 6

	bg, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, bg, objs)
	bg.WaitMerges()

	sync_, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := sync_.addNoProbe(o); err != nil {
			t.Fatal(err)
		}
	}
	sync_.WaitMerges()

	if !reflect.DeepEqual(bg.SegmentSizes(), sync_.SegmentSizes()) {
		t.Fatalf("background layout %v, synchronous replay layout %v",
			bg.SegmentSizes(), sync_.SegmentSizes())
	}
}
