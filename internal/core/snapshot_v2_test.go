package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"kjoin/internal/paperdata"
)

func table1Indexer(t *testing.T) *Indexer {
	t.Helper()
	h, _ := paperdata.Fig1()
	ix, err := NewIndexer(h, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range paperdata.Table1() {
		if _, err := ix.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func snapshotOf(t *testing.T, ix *Indexer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotV1TruncatedOnLineBoundary is the regression test for the
// count check: a v1 snapshot missing its last object line — truncation
// that still parses cleanly line-by-line — must fail to load instead of
// silently serving a shorter index.
func TestSnapshotV1TruncatedOnLineBoundary(t *testing.T) {
	ix := table1Indexer(t)
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)

	// Reconstruct the v1 serialization by hand (v1 had no trailer).
	var v1 bytes.Buffer
	fmt.Fprintf(&v1, "%s 1\n", snapshotMagic)
	fmt.Fprintf(&v1, "delta=%g tau=%g metric=%v set=%v scheme=%v weighted=%v verifier=%v plus=%v objects=%d\n",
		opt.Delta, opt.Tau, opt.Metric, opt.Set, opt.Scheme, opt.Weighted, opt.Verifier, opt.Plus, ix.Len())
	lines := objectLines(t, ix)
	for _, l := range lines {
		v1.WriteString(l + "\n")
	}
	if _, err := LoadIndexer(h, opt, bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatalf("intact v1 snapshot should load: %v", err)
	}

	truncated := v1.String()
	truncated = truncated[:len(truncated)-len(lines[len(lines)-1])-1]
	if _, err := LoadIndexer(h, opt, strings.NewReader(truncated)); err == nil {
		t.Fatal("v1 snapshot truncated on a line boundary loaded silently short")
	} else if !strings.Contains(err.Error(), "objects=") {
		t.Errorf("error should name the count mismatch: %v", err)
	}
}

// objectLines extracts the object lines from the current (v3) snapshot.
func objectLines(t *testing.T, ix *Indexer) []string {
	t.Helper()
	all := strings.Split(strings.TrimSuffix(string(snapshotOf(t, ix)), "\n"), "\n")
	if len(all) < 4 {
		t.Fatalf("unexpected snapshot shape: %d lines", len(all))
	}
	return all[3 : len(all)-1] // strip magic, config, segments, trailer
}

func TestSnapshotV2RejectsTruncation(t *testing.T) {
	ix := table1Indexer(t)
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	snap := snapshotOf(t, ix)

	// Missing trailer (cut after the last object line).
	idx := bytes.LastIndex(snap, []byte(snapshotTrailer))
	if _, err := LoadIndexer(h, opt, bytes.NewReader(snap[:idx])); err == nil {
		t.Error("snapshot without trailer loaded")
	}
	// Cut an object line out (line-boundary truncation mid-file).
	lines := bytes.SplitAfter(snap, []byte("\n"))
	short := bytes.Join(append(append([][]byte{}, lines[:3]...), lines[4:]...), nil)
	if _, err := LoadIndexer(h, opt, bytes.NewReader(short)); err == nil {
		t.Error("snapshot with a missing object line loaded")
	}
}

func TestSnapshotV2RejectsBitFlip(t *testing.T) {
	ix := table1Indexer(t)
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	snap := snapshotOf(t, ix)
	for _, pos := range []int{len(snap) / 3, len(snap) / 2} {
		mut := append([]byte(nil), snap...)
		if mut[pos] == '\n' || mut[pos] == '\t' {
			pos++ // keep the line structure; hit a content byte
		}
		mut[pos] ^= 0x20
		if _, err := LoadIndexer(h, opt, bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d loaded silently", pos)
		}
	}
}

func TestSnapshotV2RejectsDataAfterTrailer(t *testing.T) {
	ix := table1Indexer(t)
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	snap := append(snapshotOf(t, ix), []byte("KFC\n")...)
	if _, err := LoadIndexer(h, opt, bytes.NewReader(snap)); err == nil {
		t.Error("data after trailer loaded")
	}
}

func TestSnapshotWALSeqRoundTrip(t *testing.T) {
	ix := table1Indexer(t)
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	ix.SetWALSeq(42)
	loaded, meta, err := LoadIndexerMeta(h, opt, bytes.NewReader(snapshotOf(t, ix)))
	if err != nil {
		t.Fatal(err)
	}
	if meta.WALSeq != 42 || loaded.WALSeq() != 42 {
		t.Fatalf("walseq after round trip: meta=%d ix=%d, want 42", meta.WALSeq, loaded.WALSeq())
	}
	if meta.Objects != ix.Len() {
		t.Fatalf("meta.Objects = %d, want %d", meta.Objects, ix.Len())
	}
}

func TestApplyLoggedReplaysAndEnforcesContiguity(t *testing.T) {
	h, _ := paperdata.Fig1()
	opt := Defaults(0.7, 0.6)
	ix, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range paperdata.Table1() {
		if err := ix.ApplyLogged(uint64(i+1), o); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if _, err := oracle.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	if ix.WALSeq() != uint64(len(paperdata.Table1())) {
		t.Fatalf("walseq = %d", ix.WALSeq())
	}
	// The replayed index answers queries exactly like the directly
	// built one.
	for _, q := range paperdata.Table1() {
		m1, err := oracle.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(m1) != len(m2) {
			t.Fatalf("query %v: %d vs %d matches", q, len(m1), len(m2))
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("query %v: match %d differs", q, i)
			}
		}
	}
	// A gap is an error, not a skip.
	if err := ix.ApplyLogged(ix.WALSeq()+2, []string{"KFC"}); err == nil {
		t.Fatal("sequence gap accepted")
	}
}
