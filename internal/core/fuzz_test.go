package core

import (
	"bytes"
	"strings"
	"testing"

	"kjoin/internal/hierarchy"
)

// fuzzHierarchy builds the small taxonomy the snapshot fuzz corpus is
// written against.
func fuzzHierarchy(tb testing.TB) *hierarchy.Hierarchy {
	tb.Helper()
	h, err := hierarchy.FromPaths(strings.NewReader(
		"food/western/pizza\nfood/western/burger\nfood/asian/sushi\nplace/us/sf\nplace/us/nyc\n"), '/', "root")
	if err != nil {
		tb.Fatalf("building fuzz hierarchy: %v", err)
	}
	return h
}

// FuzzLoadIndexer checks that snapshot decoding never panics on
// arbitrary bytes, and that every snapshot it accepts round-trips:
// rewriting the loaded Indexer and loading it again must reproduce the
// same object count and stable snapshot bytes.
func FuzzLoadIndexer(f *testing.F) {
	h := fuzzHierarchy(f)
	opt := Defaults(0.8, 0.6)

	// Seed with a real snapshot so the fuzzer starts from the accepted
	// grammar, plus targeted corruptions of every header component.
	ix, err := NewIndexer(h, opt)
	if err != nil {
		f.Fatal(err)
	}
	for _, obj := range [][]string{{"pizza", "sf"}, {"burger", "sf"}, {"sushi", "nyc"}} {
		if _, err := ix.Add(obj); err != nil {
			f.Fatal(err)
		}
	}
	var seed bytes.Buffer
	if err := ix.WriteSnapshot(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	lines := strings.SplitN(seed.String(), "\n", 3)
	if len(lines) == 3 {
		f.Add("wrong-magic 1\n" + lines[1] + "\n" + lines[2])
		f.Add(lines[0] + "\ndelta=0.9 tau=0.1\n" + lines[2])
		f.Add(lines[0] + "\n" + lines[1] + "\n\t\t\n")
	}
	f.Add("")
	f.Add("kjoin-indexer-snapshot 99\n")

	f.Fuzz(func(t *testing.T, input string) {
		loaded, err := LoadIndexer(h, opt, strings.NewReader(input))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var first bytes.Buffer
		if err := loaded.WriteSnapshot(&first); err != nil {
			t.Fatalf("WriteSnapshot after successful load: %v", err)
		}
		again, err := LoadIndexer(h, opt, bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reloading our own snapshot: %v", err)
		}
		if again.Len() != loaded.Len() {
			t.Fatalf("round trip changed object count: %d != %d", again.Len(), loaded.Len())
		}
		var second bytes.Buffer
		if err := again.WriteSnapshot(&second); err != nil {
			t.Fatalf("second WriteSnapshot: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("snapshot bytes are not stable across a reload")
		}
	})
}
