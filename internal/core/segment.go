package core

import "kjoin/internal/index"

// segment is one immutable unit of the segmented index engine: a
// contiguous run of objects (global ids [base, base+len(objs))) with
// their inverted prefix index prebuilt. Once constructed a segment is
// never mutated — readers probe it without synchronization, and the
// merger replaces pairs of segments with freshly built ones instead of
// editing them in place.
type segment struct {
	base int       // global id of objs[0]
	objs []prepped // the segment's objects, in insertion order
	inv  *index.Inverted
}

// newSegment builds a segment over objs starting at global id base,
// constructing its inverted index (postings carry global object ids,
// ascending — objs are added in insertion order).
func newSegment(base int, objs []prepped) *segment {
	inv := index.New()
	for i := range objs {
		inv.AddAll(objs[i].prefix, int32(base+i))
	}
	return &segment{base: base, objs: objs, inv: inv}
}

// mergeSegments combines two adjacent segments (b immediately follows
// a) into one. Merging rebuilds the inverted index from the
// concatenated object runs rather than splicing posting lists: the
// result is byte-for-byte the segment a single seal over the combined
// run would have produced, so segment layout can never influence
// candidate sets or map iteration order.
func mergeSegments(a, b *segment) *segment {
	objs := make([]prepped, 0, len(a.objs)+len(b.objs))
	objs = append(objs, a.objs...)
	objs = append(objs, b.objs...)
	return newSegment(a.base, objs)
}

// view is one epoch of the engine: an immutable snapshot of the segment
// list, the memtable's published prefix, and the scalar state a reader
// may need, published as a unit through Indexer.view. Readers load the
// pointer once and work off the copy; writers build a new view under
// ix.mu and store it (copy-on-write). The slices alias the writer's —
// safe because the writer only ever appends past the published length
// (seals append segments on the right, adds append memtable objects)
// and the merger splices into a freshly allocated segs slice.
type view struct {
	segs       []*segment
	memBase    int       // global id of memObjs[0]
	memObjs    []prepped // published prefix of the memtable
	total      int       // total objects: memBase + len(memObjs)
	walSeq     uint64
	stats      Stats
	sealTotal  uint64
	mergeTotal uint64
}

// objAt returns the object with the given global id within this view.
// Ids must come from the view itself (its postings or its total);
// anything else is a bug in the engine, not a caller error.
func (v *view) objAt(id int) *prepped {
	if id >= v.memBase {
		return &v.memObjs[id-v.memBase]
	}
	for _, s := range v.segs {
		if id < s.base+len(s.objs) {
			return &s.objs[id-s.base]
		}
	}
	panic("kjoin: object id outside pinned view")
}
