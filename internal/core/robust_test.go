package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"kjoin/internal/hierarchy"
	"kjoin/internal/paperdata"
)

// cancelWorkload builds a join input dense enough that the probe phase
// has real work to abort: a flat hierarchy (every token is a node under
// the root) and objects drawing from a small token pool, so prefix
// filtering passes nearly every pair through to verification.
func cancelWorkload(nTokens, nObjs, perObj int) (*hierarchy.Hierarchy, [][]string) {
	h := hierarchy.New("Root")
	names := make([]string, nTokens)
	for i := range names {
		names[i] = fmt.Sprintf("tok%03d", i)
		h.Add(h.Root(), names[i])
	}
	r := rand.New(rand.NewSource(7))
	objs := make([][]string, nObjs)
	for i := range objs {
		for j := 0; j < perObj; j++ {
			objs[i] = append(objs[i], names[r.Intn(len(names))])
		}
	}
	return h, objs
}

func TestSelfJoinCtxCancelledUpFront(t *testing.T) {
	h, objs := cancelWorkload(50, 200, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs, st, err := SelfJoinCtx(ctx, h, objs, Defaults(0.7, 0.5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pairs != nil || st != nil {
		t.Errorf("cancelled join returned results: pairs=%v st=%v", pairs, st)
	}
}

// TestJoinCtxCancelAborts cancels a large in-flight join and asserts it
// returns context.Canceled promptly with all worker goroutines gone.
func TestJoinCtxCancelAborts(t *testing.T) {
	h, objs := cancelWorkload(60, 4000, 8)
	opt := Defaults(0.5, 0.2) // low thresholds: huge candidate volume
	opt.Workers = 2

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan res, 1)
	go func() {
		t0 := time.Now()
		_, _, err := SelfJoinCtx(ctx, h, objs, opt)
		done <- res{err: err, elapsed: time.Since(t0)}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join did not return within 10s of cancellation")
	}

	// Worker goroutines must have exited with the join (no leak). Allow
	// the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d (leak?)", before, runtime.NumGoroutine())
}

func TestJoinCtxRSCancelled(t *testing.T) {
	h, objs := cancelWorkload(40, 300, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := JoinCtx(ctx, h, objs[:150], objs[150:], Defaults(0.7, 0.5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSelfJoinCtxUncancelledMatchesSelfJoin(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	want, _, err := SelfJoin(h, objs, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := SelfJoinCtx(context.Background(), h, objs, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ctx join = %v, plain join = %v", got, want)
	}
	for i := range got {
		if got[i].X != want[i].X || got[i].Y != want[i].Y {
			t.Errorf("pair %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestIndexerAddCtxReturnsID(t *testing.T) {
	h, _ := paperdata.Fig1()
	ix, err := NewIndexer(h, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range paperdata.Table1() {
		id, _, err := ix.AddCtx(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Errorf("AddCtx id = %d, want %d", id, i)
		}
	}
	if ix.Len() != len(paperdata.Table1()) {
		t.Errorf("Len = %d", ix.Len())
	}
}

// TestIndexerAddCtxCancelledLeavesStateIntact checks that an Add aborted
// by cancellation neither indexes the object nor poisons the candidate
// dedup stamps of the next Add.
func TestIndexerAddCtxCancelledLeavesStateIntact(t *testing.T) {
	h, _ := paperdata.Fig1()
	ix, err := NewIndexer(h, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range paperdata.Table1() {
		if _, err := ix.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	n := ix.Len()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.AddCtx(ctx, []string{"BurgerKing", "MountainView"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ix.Len() != n {
		t.Fatalf("cancelled Add changed Len: %d -> %d", n, ix.Len())
	}
	// The same object added for real must still report its pairs.
	id, pairs, err := ix.AddCtx(context.Background(), []string{"BurgerKing", "MountainView"})
	if err != nil {
		t.Fatal(err)
	}
	if id != n {
		t.Errorf("id = %d, want %d", id, n)
	}
	if len(pairs) == 0 {
		t.Error("re-added object reported no pairs; stamps poisoned by cancelled Add?")
	}
}

func TestIndexerValidation(t *testing.T) {
	h, _ := paperdata.Fig1()
	ix, err := NewIndexer(h, Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	var ie *InputError
	if _, err := ix.Add(nil); !errors.As(err, &ie) {
		t.Errorf("Add(nil) err = %v, want *InputError", err)
	} else if ie.Reason != "empty_object" {
		t.Errorf("reason = %q", ie.Reason)
	}
	if _, err := ix.Add([]string{"KFC", ""}); !errors.As(err, &ie) {
		t.Errorf("Add with empty token err = %v, want *InputError", err)
	} else if ie.Reason != "empty_token" {
		t.Errorf("reason = %q", ie.Reason)
	}
	if _, err := ix.Query([]string{}); !errors.As(err, &ie) {
		t.Errorf("Query(empty) err = %v, want *InputError", err)
	}
	if ix.Len() != 0 {
		t.Errorf("rejected objects were indexed: Len = %d", ix.Len())
	}
}

func TestSimilarityValidation(t *testing.T) {
	h, _ := paperdata.Fig1()
	var ie *InputError
	if _, err := Similarity(h, nil, []string{"KFC"}, Defaults(0.7, 0.6)); !errors.As(err, &ie) {
		t.Errorf("empty x err = %v, want *InputError", err)
	}
	if _, err := Similarity(h, []string{"KFC"}, []string{""}, Defaults(0.7, 0.6)); !errors.As(err, &ie) {
		t.Errorf("empty token in y err = %v, want *InputError", err)
	}
}

// TestQueryPreparedConcurrent exercises the PrepareQuery/RunQuery split:
// many RunQuery calls racing against each other (reads only) must agree
// with the serial Query result. Run with -race to make this meaningful.
func TestQueryPreparedConcurrent(t *testing.T) {
	h, objs := cancelWorkload(30, 200, 5)
	ix, err := NewIndexer(h, Defaults(0.7, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := ix.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	query := objs[17]
	want, err := ix.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ix.PrepareQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			got, err := ix.RunQuery(context.Background(), q)
			if err == nil && len(got) != len(want) {
				err = fmt.Errorf("RunQuery found %d matches, want %d", len(got), len(want))
			}
			errs <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
