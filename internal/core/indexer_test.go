package core

import (
	"math"
	"reflect"
	"testing"

	"kjoin/internal/paperdata"
)

func TestIndexerMatchesBatchJoin(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	for _, weighted := range []bool{false, true} {
		opt := Defaults(0.7, 0.6)
		opt.Weighted = weighted
		ix, err := NewIndexer(h, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got []Pair
		for _, o := range objs {
			pairs, err := ix.Add(o)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, pairs...)
		}
		want, err := NaiveSelfJoin(h, objs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pairKeys(got), pairKeys(want)) {
			t.Errorf("weighted=%v: indexer %v, naive %v", weighted, pairKeys(got), pairKeys(want))
		}
		if ix.Len() != len(objs) {
			t.Errorf("Len = %d", ix.Len())
		}
		if ix.Stats().Objects != len(objs) {
			t.Errorf("Stats.Objects = %d", ix.Stats().Objects)
		}
	}
}

func TestIndexerQuery(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	opt := Defaults(0.7, 0.6)
	ix, err := NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := ix.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	// Query with S3's tokens (without inserting): S1 and S3 must match
	// (S3 matches itself with sim 1, S1 with 19/29).
	matches, err := ix.Query(objs[2])
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]float64{}
	for _, m := range matches {
		found[m.Index] = m.Sim
	}
	if s, ok := found[2]; !ok || math.Abs(s-1) > 1e-9 {
		t.Errorf("query should match S3 itself with sim 1, got %v", found)
	}
	if s, ok := found[0]; !ok || math.Abs(s-19.0/29) > 1e-9 {
		t.Errorf("query should match S1 with 19/29, got %v", found)
	}
	if ix.Len() != len(objs) {
		t.Error("Query must not grow the index")
	}
}

func TestIndexerRejectsBadOptions(t *testing.T) {
	h, _ := paperdata.Fig1()
	if _, err := NewIndexer(h, Options{}); err == nil {
		t.Error("zero options should be rejected")
	}
}

func TestTopKSelfJoin(t *testing.T) {
	h, _ := paperdata.Fig1()
	objs := paperdata.Table1()
	opt := Defaults(0.7, 0.1)
	// Oracle: all pairs sorted by similarity.
	naive, err := NaiveSelfJoin(h, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// NaiveSelfJoin returns index-ordered; sort by sim desc like TopK.
	oracle := append([]Pair(nil), naive...)
	sortPairsBySim(oracle)
	for _, k := range []int{1, 3, 5, len(oracle), len(oracle) + 10} {
		got, st, err := TopKSelfJoin(h, objs, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle
		if k < len(oracle) {
			want = oracle[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Sim-want[i].Sim) > 1e-9 {
				t.Errorf("k=%d rank %d: sim %v, want %v", k, i, got[i].Sim, want[i].Sim)
			}
		}
		if st.Candidates == 0 {
			t.Errorf("k=%d: no candidates recorded", k)
		}
	}
	// k <= 0 returns nothing.
	got, _, err := TopKSelfJoin(h, objs, 0, opt)
	if err != nil || len(got) != 0 {
		t.Errorf("k=0: got %v, %v", got, err)
	}
	// Floor above every similarity returns nothing.
	opt.Tau = 0.99
	got, _, err = TopKSelfJoin(h, objs, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.Sim < 0.99-1e-9 {
			t.Errorf("pair %v below the floor", p)
		}
	}
	// Invalid options are rejected.
	if _, _, err := TopKSelfJoin(h, objs, 5, Options{}); err == nil {
		t.Error("zero options should be rejected")
	}
}

func sortPairsBySim(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			a, b := ps[j-1], ps[j]
			worse := a.Sim < b.Sim || (a.Sim == b.Sim && (a.X > b.X || (a.X == b.X && a.Y > b.Y)))
			if worse {
				ps[j-1], ps[j] = b, a
			} else {
				break
			}
		}
	}
}
