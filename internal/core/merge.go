package core

// The merge policy must be confluent: background merging is delayed
// arbitrarily relative to seals, yet a quiesced engine (WaitMerges) has
// to reach the same layout as replay, which merges to fixpoint at every
// seal record. Merging the *leftmost* adjacent pair that violates the
// strictly-decreasing-size invariant has that property: new segments
// only ever appear on the right (seals), and appending on the right
// cannot change which violation is leftmost, so the rewrite order of
// delayed steps commutes with appends and every schedule reaches the
// same fixpoint. (Merging an arbitrary violating pair does not —
// [256,256,300] merges to [512,300] or [256,556]→[812] depending on
// which pair goes first.)

// mergePlan returns the leftmost index i such that segs[i] should merge
// with segs[i+1] (its size is not strictly greater), or -1 when the
// layout is at fixpoint (sizes strictly decreasing left to right).
func mergePlan(segs []*segment) int {
	for i := 0; i+1 < len(segs); i++ {
		if len(segs[i].objs) <= len(segs[i+1].objs) {
			return i
		}
	}
	return -1
}

// maybeMergeLocked registers a background merger if there is work and
// none is already running, returning the non-nil done channel the
// caller must hand to a new mergeLoop goroutine (the spawn itself is
// left to the caller: the goroutine's lock use is its own, not part of
// this function's acquire set). Caller holds mu.
func (ix *Indexer) maybeMergeLocked() chan struct{} {
	if ix.mergeCh != nil || mergePlan(ix.segs) < 0 {
		return nil
	}
	ch := make(chan struct{})
	ix.mergeCh = ch
	return ch
}

// mergeLoop is the background merger: it repeatedly takes the planned
// pair, builds the merged segment outside the lock (queries and adds
// proceed meanwhile), and splices it into a freshly allocated segment
// list under the lock. It exits — closing done, on which WaitMerges
// blocks — when the layout reaches fixpoint; the next seal that creates
// work starts a new one.
func (ix *Indexer) mergeLoop(done chan struct{}) {
	for {
		ix.mu.Lock()
		i := mergePlan(ix.segs)
		if i < 0 {
			ix.mergeCh = nil
			ix.mu.Unlock()
			close(done)
			return
		}
		a, b := ix.segs[i], ix.segs[i+1]
		ix.mu.Unlock()

		merged := mergeSegments(a, b)

		ix.mu.Lock()
		// Revalidate: a concurrent synchronous merge (replay paths) may
		// have rewritten the layout while we built. If the pair moved,
		// drop the work and re-plan.
		if i+1 < len(ix.segs) && ix.segs[i] == a && ix.segs[i+1] == b {
			segs := make([]*segment, 0, len(ix.segs)-1)
			segs = append(segs, ix.segs[:i]...)
			segs = append(segs, merged)
			segs = append(segs, ix.segs[i+2:]...)
			ix.segs = segs
			ix.mergeTotal++
			ix.publishLocked()
		}
		ix.mu.Unlock()
	}
}

// mergeToFixpointLocked merges synchronously until the layout is at
// fixpoint — the replay paths (WAL recovery, replicas, snapshot loads
// of pre-layout versions) use it so a rebuilt engine lands on the
// deterministic layout directly. Caller holds mu and publishes after.
func (ix *Indexer) mergeToFixpointLocked() {
	for {
		i := mergePlan(ix.segs)
		if i < 0 {
			return
		}
		merged := mergeSegments(ix.segs[i], ix.segs[i+1])
		segs := make([]*segment, 0, len(ix.segs)-1)
		segs = append(segs, ix.segs[:i]...)
		segs = append(segs, merged)
		segs = append(segs, ix.segs[i+2:]...)
		ix.segs = segs
		ix.mergeTotal++
	}
}

// WaitMerges blocks until no background merger is running and the
// segment layout is at fixpoint. Tests and layout-sensitive callers
// (pre-crash layout capture) use it to quiesce the engine.
func (ix *Indexer) WaitMerges() {
	for {
		ix.mu.Lock()
		ch := ix.mergeCh
		ix.mu.Unlock()
		if ch == nil {
			return
		}
		<-ch
	}
}

// mergeBacklog simulates the merge policy over a size layout and
// returns how many merge steps separate it from fixpoint — the
// /stats merge_backlog gauge.
func mergeBacklog(sizes []int) int {
	s := append([]int(nil), sizes...)
	steps := 0
	for {
		i := -1
		for k := 0; k+1 < len(s); k++ {
			if s[k] <= s[k+1] {
				i = k
				break
			}
		}
		if i < 0 {
			return steps
		}
		s[i] += s[i+1]
		s = append(s[:i+1], s[i+2:]...)
		steps++
	}
}

// SegmentStats is the engine observability snapshot exported through
// the server's /stats endpoint.
type SegmentStats struct {
	Segments     int    // sealed segments in the current view
	MemObjects   int    // objects in the mutable memtable
	SealTotal    uint64 // seals since the engine was created/loaded
	MergeTotal   uint64 // merges since the engine was created/loaded
	MergeBacklog int    // merge steps between the current layout and fixpoint
}

// SegmentStats reports the engine's segment observability counters from
// the current view. Safe to call concurrently with anything.
func (ix *Indexer) SegmentStats() SegmentStats {
	v := ix.view.Load()
	sizes := make([]int, len(v.segs))
	for i, s := range v.segs {
		sizes[i] = len(s.objs)
	}
	return SegmentStats{
		Segments:     len(v.segs),
		MemObjects:   len(v.memObjs),
		SealTotal:    v.sealTotal,
		MergeTotal:   v.mergeTotal,
		MergeBacklog: mergeBacklog(sizes),
	}
}
