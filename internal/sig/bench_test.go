package sig

import (
	"testing"

	"kjoin/internal/dataset"
	"kjoin/internal/elem"
	"kjoin/internal/setmetric"
)

// benchSetup builds a space over the generated hierarchy with a sample
// of POI records resolved.
func benchSetup(b *testing.B, scheme Scheme) (*Space, [][]elem.ID) {
	b.Helper()
	hr := dataset.GenHierarchy(dataset.DefaultHierarchy())
	c := dataset.GenRecords(hr, dataset.POIConfig(500))
	r := elem.NewResolver(hr.H, elem.Options{})
	sp := NewSpace(r, elem.Standard, 0.8, scheme)
	objs := make([][]elem.ID, len(c.Records))
	for i, rec := range c.Records {
		for _, t := range rec {
			objs[i] = append(objs[i], r.ID(t))
		}
	}
	return sp, objs
}

func BenchmarkObjectSigsDeep(b *testing.B) {
	b.ReportAllocs()
	sp, objs := benchSetup(b, Deep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.ObjectSigs(objs[i%len(objs)])
	}
}

func BenchmarkObjectSigsNode(b *testing.B) {
	b.ReportAllocs()
	sp, objs := benchSetup(b, Node)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.ObjectSigs(objs[i%len(objs)])
	}
}

func BenchmarkPrefixComputation(b *testing.B) {
	b.ReportAllocs()
	sp, objs := benchSetup(b, Deep)
	all := make([][]Entry, len(objs))
	for i := range objs {
		all[i] = sp.ObjectSigs(objs[i])
	}
	order := BuildOrder(all)
	for i := range all {
		order.Sort(all[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := all[i%len(all)]
		n := len(objs[i%len(objs)])
		DistElePrefix(en, setmetric.Jaccard.TauS(0.85, n))
		WeightedPrefix(en, setmetric.Jaccard.MinOverlap(0.85, n))
	}
}

func BenchmarkBuildOrder(b *testing.B) {
	b.ReportAllocs()
	sp, objs := benchSetup(b, Deep)
	all := make([][]Entry, len(objs))
	for i := range objs {
		all[i] = sp.ObjectSigs(objs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildOrder(all)
	}
}
