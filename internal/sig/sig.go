// Package sig implements K-Join's signature schemes and prefixes:
// node signatures (Definition 4) with the node prefix (Definition 5),
// shallow and deep path signatures (Definitions 6–7) with the path prefix
// (Definition 8) and the weighted path prefix (Definition 9), plus the
// document-frequency global order all prefixes are computed against.
//
// A signature is identified by a Sig: hierarchy node ids for signatures
// that are tree nodes, and interned token ids beyond the node space for
// elements that match no hierarchy node (the paper keeps unmatched tokens
// as elements; two such tokens can only be similar if equal, or synonyms
// under K-Join+ resolution, so their canonical token is the signature).
package sig

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"kjoin/internal/elem"
	"kjoin/internal/hierarchy"
)

// Sig identifies a signature within a Space.
type Sig int32

// Scheme selects the signature scheme used for filtering.
type Scheme int

const (
	// Node uses the single node signature at depth d_δ (§3.1).
	Node Scheme = iota
	// Shallow uses the shallow path signatures (Definition 6).
	Shallow
	// Deep uses the deep path signatures (Definition 7).
	Deep
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Node:
		return "node"
	case Shallow:
		return "shallow"
	case Deep:
		return "deep"
	default:
		return "unknown"
	}
}

// Entry is one signature occurrence of one element of an object.
type Entry struct {
	Sig  Sig     // the signature
	W    float64 // maximum element similarity given this signature matches (§4.2.2)
	Elem int32   // index of the generating element within the object
}

// Space generates signatures for resolved elements. It caches per-element
// signature lists, so each distinct token pays the generation cost once.
//
// Like elem.Resolver, a Space is built single-threaded (ElemSigs and
// GroupKeys mutate the cache) and is safe for concurrent reads afterwards.
type Space struct {
	res    *elem.Resolver
	h      *hierarchy.Hierarchy
	metric elem.Metric
	delta  float64
	dDelta int
	scheme Scheme

	tokSigs map[string]Sig
	next    Sig

	sigCache   [][]sigW // per elem.ID signatures under scheme
	groupCache [][]Sig  // per elem.ID node signatures (grouping keys for verification)

	// pub is an atomically published snapshot of groupCache, for the
	// streaming Indexer: the owner fills the cache for every element of
	// an object under its build lock, then calls Publish; lock-free
	// query goroutines served from the snapshot never touch the mutable
	// cache. Ids beyond the snapshot (or unfilled slots) fall back to
	// the single-threaded lazy path, which remains owner-only.
	pub atomic.Pointer[[][]Sig]

	// gen is the generation scratch of the single-threaded cache-fill
	// path; Warm workers carry their own.
	gen genState
}

// genState is per-goroutine signature-generation state: reusable build
// buffers plus the arenas the cached per-element slices are carved from.
// Arena chunks are never regrown in place (a full chunk is replaced and
// kept alive by the slices pointing into it), so cache entries stay
// valid forever.
type genState struct {
	buf    []sigW
	kbuf   []Sig
	arena  []sigW
	karena []Sig
}

func (g *genState) internSigs() []sigW {
	if len(g.buf) == 0 {
		return []sigW{}
	}
	if len(g.arena)+len(g.buf) > cap(g.arena) {
		n := 2 * cap(g.arena)
		if n < 256 {
			n = 256
		}
		if n < len(g.buf) {
			n = len(g.buf)
		}
		g.arena = make([]sigW, 0, n)
	}
	start := len(g.arena)
	g.arena = append(g.arena, g.buf...)
	return g.arena[start:len(g.arena):len(g.arena)]
}

func (g *genState) internKeys() []Sig {
	if len(g.kbuf) == 0 {
		return []Sig{}
	}
	if len(g.karena)+len(g.kbuf) > cap(g.karena) {
		n := 2 * cap(g.karena)
		if n < 256 {
			n = 256
		}
		if n < len(g.kbuf) {
			n = len(g.kbuf)
		}
		g.karena = make([]Sig, 0, n)
	}
	start := len(g.karena)
	g.karena = append(g.karena, g.kbuf...)
	return g.karena[start:len(g.karena):len(g.karena)]
}

type sigW struct {
	s Sig
	w float64
}

// NewSpace returns a signature space for the resolver under the given
// element metric, element threshold δ and scheme.
func NewSpace(res *elem.Resolver, metric elem.Metric, delta float64, scheme Scheme) *Space {
	return &Space{
		res:     res,
		h:       res.Hierarchy(),
		metric:  metric,
		delta:   delta,
		dDelta:  metric.MinLCADepth(delta),
		scheme:  scheme,
		tokSigs: make(map[string]Sig),
		next:    Sig(res.Hierarchy().Len()),
	}
}

// Scheme returns the space's signature scheme.
func (sp *Space) Scheme() Scheme { return sp.scheme }

// NumSigs returns an exclusive upper bound on every signature id the
// space has handed out so far (hierarchy nodes plus interned token
// signatures). Dense signature-keyed tables are sized with it.
func (sp *Space) NumSigs() int { return int(sp.next) }

// DDelta returns d_δ, the node-signature depth.
func (sp *Space) DDelta() int { return sp.dDelta }

// tokenSig interns the canonical token of a non-entity element.
func (sp *Space) tokenSig(canon string) Sig {
	if s, ok := sp.tokSigs[canon]; ok {
		return s
	}
	s := sp.next
	sp.next++
	sp.tokSigs[canon] = s
	return s
}

// nodeSig returns the node signature of a mapping node per Definition 4:
// the node itself if shallower than d_δ, else its ancestor at depth d_δ.
func (sp *Space) nodeSig(n hierarchy.NodeID) Sig {
	if sp.h.Depth(n) < sp.dDelta {
		return Sig(n)
	}
	return Sig(sp.h.Ancestor(n, sp.dDelta))
}

// ElemSigs returns the signatures of element e under the space's scheme,
// deduplicated with maximum weight. The result is cached and must not be
// modified.
func (sp *Space) ElemSigs(e elem.ID) []Entry {
	sigs := sp.elemSigs(e)
	out := make([]Entry, len(sigs))
	for i, sw := range sigs {
		out[i] = Entry{Sig: sw.s, W: sw.w}
	}
	return out
}

// elemSigs returns e's cached signature list, generating it on a miss.
func (sp *Space) elemSigs(e elem.ID) []sigW {
	for int(e) >= len(sp.sigCache) {
		sp.sigCache = append(sp.sigCache, nil)
	}
	if sp.sigCache[e] == nil {
		sp.sigCache[e] = sp.genSigs(&sp.gen, e)
	}
	return sp.sigCache[e]
}

// ElemSigCount returns the number of signatures of element e — the size
// AppendObjectSigs contributes for it, for pre-sizing entry buffers.
func (sp *Space) ElemSigCount(e elem.ID) int { return len(sp.elemSigs(e)) }

// appendElemSigs appends e's signatures to dst tagged with element index
// idx, avoiding the copy in ElemSigs.
func (sp *Space) appendElemSigs(dst []Entry, e elem.ID, idx int32) []Entry {
	for _, sw := range sp.elemSigs(e) {
		dst = append(dst, Entry{Sig: sw.s, W: sw.w, Elem: idx})
	}
	return dst
}

// genSigs computes the signature list of one element into st's build
// buffer and interns it in st's arena.
func (sp *Space) genSigs(st *genState, e elem.ID) []sigW {
	info := sp.res.Info(e)
	if !info.Entity() {
		// Unmatched token: its canonical token is its only signature and a
		// match means equality (or synonymy), maximum similarity 1.
		return []sigW{{s: sp.tokenSig(info.Canon), w: 1}}
	}
	st.buf = st.buf[:0]
	deepest, deepestIdx := -1, -1
	add := func(s Sig, w float64) int {
		out := st.buf
		for i := range out {
			if out[i].s == s {
				if w > out[i].w {
					out[i].w = w
				}
				return i
			}
		}
		st.buf = append(out, sigW{s: s, w: w})
		return len(st.buf) - 1
	}
	for _, m := range info.Mappings {
		d := int(m.Depth)
		switch sp.scheme {
		case Node:
			// A shared node signature only tells us the elements are in
			// the same group; the sound per-signature weight is the
			// element's bound against any different element.
			i := add(sp.nodeSig(m.Node), sp.res.MaxDiffSim(e, sp.metric))
			if d > deepest {
				deepest, deepestIdx = d, i
			}
		case Shallow:
			// Matching a shallow signature at depth t does not cap the
			// LCA at t (the LCA may be deeper), so t-based weights would
			// be unsound; use the different-element bound here too.
			w := sp.res.MaxDiffSim(e, sp.metric)
			lo, hi := sp.metric.ShallowRange(d, sp.delta)
			for t := lo; t <= hi; t++ {
				i := add(Sig(sp.h.Ancestor(m.Node, t)), w)
				if t == hi && d > deepest {
					deepest, deepestIdx = d, i
				}
			}
		case Deep:
			// Deep signatures cover every depth up to the node itself, so
			// for any similar pair the signature at the LCA depth is
			// shared and its weight t/d_e (×φ) bounds the pair similarity
			// (§4.2.2).
			lo := sp.metric.DeepLow(d, sp.delta)
			for t := lo; t <= d; t++ {
				i := add(Sig(sp.h.Ancestor(m.Node, t)), sp.metric.MaxSimAtDepth(t, d)*m.Phi)
				if t == d && d > deepest {
					deepest, deepestIdx = d, i
				}
			}
		}
	}
	// Identical elements in two objects match with similarity 1 and share
	// all signatures; make one signature carry that weight so the
	// weighted prefix (Definition 9) stays sound under Plus resolution
	// where φ < 1 would otherwise under-weight the self-match.
	if deepestIdx >= 0 && st.buf[deepestIdx].w < 1 {
		st.buf[deepestIdx].w = 1
	}
	return st.internSigs()
}

// Warm precomputes the signature and group-key caches for every element
// id in [0, n), sharding entity elements across workers goroutines
// (their generation only reads immutable resolver/hierarchy state and
// writes exclusive cache slots); non-entity elements intern token
// signatures through a map and run sequentially afterwards.
func (sp *Space) Warm(n, workers int) {
	for len(sp.sigCache) < n {
		sp.sigCache = append(sp.sigCache, nil)
	}
	for len(sp.groupCache) < n {
		sp.groupCache = append(sp.groupCache, nil)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Per-worker generation scratch: its arena chunks stay
				// alive through the cache slices carved from them.
				var st genState
				for i := w; i < n; i += workers {
					e := elem.ID(i)
					if !sp.res.Info(e).Entity() {
						continue
					}
					if sp.sigCache[i] == nil {
						sp.sigCache[i] = sp.genSigs(&st, e)
					}
					if sp.groupCache[i] == nil {
						sp.groupCache[i] = sp.genGroupKeys(&st, e)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	// Sequential pass covers non-entity elements (token-signature
	// interning mutates a shared map) and anything a single worker run
	// would have handled.
	for i := 0; i < n; i++ {
		e := elem.ID(i)
		if sp.sigCache[i] == nil {
			sp.sigCache[i] = sp.genSigs(&sp.gen, e)
		}
		if sp.groupCache[i] == nil {
			sp.groupCache[i] = sp.genGroupKeys(&sp.gen, e)
		}
	}
}

// GroupKeys returns the node signatures of element e regardless of the
// space's filtering scheme. These are the verification grouping keys of
// Lemmas 1, 3 and 8: elements in different groups cannot be similar.
// The result is cached and must not be modified.
func (sp *Space) GroupKeys(e elem.ID) []Sig {
	if p := sp.pub.Load(); p != nil && int(e) < len(*p) && (*p)[e] != nil {
		return (*p)[e]
	}
	for int(e) >= len(sp.groupCache) {
		sp.groupCache = append(sp.groupCache, nil)
	}
	if sp.groupCache[e] == nil {
		sp.groupCache[e] = sp.genGroupKeys(&sp.gen, e)
	}
	return sp.groupCache[e]
}

// Publish snapshots the group-key cache for lock-free readers. The
// caller (the cache owner) must have filled every slot it wants readers
// to see — genGroupKeys never stores nil, so a filled slot is exactly a
// non-nil one — and must establish a happens-before edge between
// Publish and those readers (the Indexer does so via its view pointer).
func (sp *Space) Publish() {
	s := sp.groupCache[:len(sp.groupCache):len(sp.groupCache)]
	sp.pub.Store(&s)
}

// genGroupKeys computes the node-signature grouping keys of one element
// into st's build buffer and interns them in st's arena.
func (sp *Space) genGroupKeys(st *genState, e elem.ID) []Sig {
	info := sp.res.Info(e)
	if !info.Entity() {
		return []Sig{sp.tokenSig(info.Canon)}
	}
	st.kbuf = st.kbuf[:0]
	for _, m := range info.Mappings {
		s := sp.nodeSig(m.Node)
		dup := false
		for _, k := range st.kbuf {
			if k == s {
				dup = true
				break
			}
		}
		if !dup {
			st.kbuf = append(st.kbuf, s)
		}
	}
	return st.internKeys()
}

// ObjectSigs returns the (unsorted) signature entries of an object: the
// union of its elements' signatures, tagged with element indices. The
// same signature may appear once per generating element (the paper's G_S
// is a multiset).
func (sp *Space) ObjectSigs(elems []elem.ID) []Entry {
	n := 0
	for _, e := range elems {
		n += sp.ElemSigCount(e)
	}
	return sp.AppendObjectSigs(make([]Entry, 0, n), elems)
}

// AppendObjectSigs appends the object's signature entries to dst — the
// allocation-free form of ObjectSigs for callers that manage their own
// entry buffers or arenas.
func (sp *Space) AppendObjectSigs(dst []Entry, elems []elem.ID) []Entry {
	for i, e := range elems {
		dst = sp.appendElemSigs(dst, e, int32(i))
	}
	return dst
}

// Order is the global signature order: ascending document frequency with
// signature id as tie-break (§3.1 "fix a global order for the node
// signatures ... by document frequency in an ascending order"). The df
// table is dense (indexed by Sig); ids beyond it have frequency zero.
type Order struct {
	df []int32
}

// BuildOrder counts, for every signature, the number of objects whose
// signature set contains it (each object counts once per signature), over
// all the given objects — for an R-S join pass both collections. The
// count runs over a stamp table instead of per-object maps, so building
// the order costs two allocations regardless of collection size.
func BuildOrder(objects [][]Entry) *Order {
	maxSig := Sig(-1)
	for _, entries := range objects {
		for _, en := range entries {
			if en.Sig > maxSig {
				maxSig = en.Sig
			}
		}
	}
	df := make([]int32, maxSig+1)
	seen := make([]int32, maxSig+1)
	for oi, entries := range objects {
		stamp := int32(oi + 1)
		for _, en := range entries {
			if seen[en.Sig] != stamp {
				seen[en.Sig] = stamp
				df[en.Sig]++
			}
		}
	}
	return &Order{df: df}
}

// freq returns the document frequency of s (zero beyond the built range
// — signatures first seen after BuildOrder, or an empty order).
func (o *Order) freq(s Sig) int32 {
	if int(s) < len(o.df) {
		return o.df[s]
	}
	return 0
}

// Less reports whether signature a precedes b in the global order.
func (o *Order) Less(a, b Sig) bool {
	da, db := o.freq(a), o.freq(b)
	if da != db {
		return da < db
	}
	return a < b
}

// Sort sorts entries by the global order (rarest signatures first).
// Entries of the same signature stay adjacent; ties break on element
// index for determinism. The (Sig, Elem) pairs of an object's entry
// list are unique, so the order is total and the permutation is the
// same under any sorting algorithm; slices.SortFunc avoids both the
// reflection-based swapper of sort.Slice and the interface-escape
// allocation of sort.Sort in the prefix-build hot loop.
func (o *Order) Sort(entries []Entry) {
	slices.SortFunc(entries, func(a, b Entry) int {
		if a.Sig != b.Sig {
			da, db := o.freq(a.Sig), o.freq(b.Sig)
			if da != db {
				return int(da - db)
			}
			return int(a.Sig - b.Sig)
		}
		return int(a.Elem - b.Elem)
	})
}

// DF returns the document frequency of s under the order.
func (o *Order) DF(s Sig) int { return int(o.freq(s)) }

// DistElePrefix returns the prefix length p of entries (sorted by the
// global order) such that entries[:p] is the (node or path) prefix of
// Definitions 5/8: the suffix beyond the prefix covers at most τ_S − 1
// distinct elements, and shrinking the prefix further would let the
// suffix cover τ_S. If the object has fewer than τ_S distinct elements,
// the whole list is the prefix.
func DistElePrefix(entries []Entry, tauS int) int {
	var ps PrefixScratch
	return DistElePrefixS(entries, tauS, &ps)
}

// DistElePrefixS is DistElePrefix over a caller-owned scratch — the
// allocation-free form for prefix-building loops.
func DistElePrefixS(entries []Entry, tauS int, ps *PrefixScratch) int {
	if tauS <= 0 {
		return 0
	}
	ps.stamp++
	distinct := 0
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i].Elem
		ps.grow(int(e) + 1)
		if ps.seen[e] != ps.stamp {
			ps.seen[e] = ps.stamp
			distinct++
			if distinct == tauS {
				return i + 1
			}
		}
	}
	return len(entries)
}

// WeightedPrefix returns the prefix length p of entries (sorted by the
// global order) per Definition 9: the suffix beyond the prefix has
// MSIM < minOverlap, where MSIM sums, per distinct element, the maximum
// signature weight in the suffix. minOverlap is τ·|S| for Jaccard
// (setmetric.Kind.MinOverlap in general).
func WeightedPrefix(entries []Entry, minOverlap float64) int {
	var ps PrefixScratch
	return WeightedPrefixS(entries, minOverlap, &ps)
}

// WeightedPrefixS is WeightedPrefix over a caller-owned scratch — the
// allocation-free form for prefix-building loops.
func WeightedPrefixS(entries []Entry, minOverlap float64, ps *PrefixScratch) int {
	if minOverlap <= 0 {
		return 0
	}
	ps.stamp++
	msim := 0.0
	for i := len(entries) - 1; i >= 0; i-- {
		en := entries[i]
		ps.grow(int(en.Elem) + 1)
		w := 0.0
		if ps.seen[en.Elem] == ps.stamp {
			w = ps.best[en.Elem]
		}
		if en.W > w {
			msim += en.W - w
			ps.seen[en.Elem] = ps.stamp
			ps.best[en.Elem] = en.W
		}
		if msim >= minOverlap-1e-9 {
			return i + 1
		}
	}
	return len(entries)
}

// PrefixScratch is the reusable state of the prefix-length computations:
// an epoch-stamped dense table keyed by element index within the object.
// Bumping the stamp invalidates the whole table; a slot is live only when
// its stamp matches, reproducing the seed's per-call map semantics.
type PrefixScratch struct {
	stamp int32
	seen  []int32
	best  []float64
}

func (ps *PrefixScratch) grow(n int) {
	if n <= len(ps.seen) {
		return
	}
	if n < 2*len(ps.seen) {
		n = 2 * len(ps.seen)
	}
	ns := make([]int32, n)
	copy(ns, ps.seen)
	ps.seen = ns
	nb := make([]float64, n)
	copy(nb, ps.best)
	ps.best = nb
}
