// Package sig implements K-Join's signature schemes and prefixes:
// node signatures (Definition 4) with the node prefix (Definition 5),
// shallow and deep path signatures (Definitions 6–7) with the path prefix
// (Definition 8) and the weighted path prefix (Definition 9), plus the
// document-frequency global order all prefixes are computed against.
//
// A signature is identified by a Sig: hierarchy node ids for signatures
// that are tree nodes, and interned token ids beyond the node space for
// elements that match no hierarchy node (the paper keeps unmatched tokens
// as elements; two such tokens can only be similar if equal, or synonyms
// under K-Join+ resolution, so their canonical token is the signature).
package sig

import (
	"runtime"
	"sort"
	"sync"

	"kjoin/internal/elem"
	"kjoin/internal/hierarchy"
)

// Sig identifies a signature within a Space.
type Sig int32

// Scheme selects the signature scheme used for filtering.
type Scheme int

const (
	// Node uses the single node signature at depth d_δ (§3.1).
	Node Scheme = iota
	// Shallow uses the shallow path signatures (Definition 6).
	Shallow
	// Deep uses the deep path signatures (Definition 7).
	Deep
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Node:
		return "node"
	case Shallow:
		return "shallow"
	case Deep:
		return "deep"
	default:
		return "unknown"
	}
}

// Entry is one signature occurrence of one element of an object.
type Entry struct {
	Sig  Sig     // the signature
	W    float64 // maximum element similarity given this signature matches (§4.2.2)
	Elem int32   // index of the generating element within the object
}

// Space generates signatures for resolved elements. It caches per-element
// signature lists, so each distinct token pays the generation cost once.
//
// Like elem.Resolver, a Space is built single-threaded (ElemSigs and
// GroupKeys mutate the cache) and is safe for concurrent reads afterwards.
type Space struct {
	res    *elem.Resolver
	h      *hierarchy.Hierarchy
	metric elem.Metric
	delta  float64
	dDelta int
	scheme Scheme

	tokSigs map[string]Sig
	next    Sig

	sigCache   [][]sigW // per elem.ID signatures under scheme
	groupCache [][]Sig  // per elem.ID node signatures (grouping keys for verification)
}

type sigW struct {
	s Sig
	w float64
}

// NewSpace returns a signature space for the resolver under the given
// element metric, element threshold δ and scheme.
func NewSpace(res *elem.Resolver, metric elem.Metric, delta float64, scheme Scheme) *Space {
	return &Space{
		res:     res,
		h:       res.Hierarchy(),
		metric:  metric,
		delta:   delta,
		dDelta:  metric.MinLCADepth(delta),
		scheme:  scheme,
		tokSigs: make(map[string]Sig),
		next:    Sig(res.Hierarchy().Len()),
	}
}

// Scheme returns the space's signature scheme.
func (sp *Space) Scheme() Scheme { return sp.scheme }

// DDelta returns d_δ, the node-signature depth.
func (sp *Space) DDelta() int { return sp.dDelta }

// tokenSig interns the canonical token of a non-entity element.
func (sp *Space) tokenSig(canon string) Sig {
	if s, ok := sp.tokSigs[canon]; ok {
		return s
	}
	s := sp.next
	sp.next++
	sp.tokSigs[canon] = s
	return s
}

// nodeSig returns the node signature of a mapping node per Definition 4:
// the node itself if shallower than d_δ, else its ancestor at depth d_δ.
func (sp *Space) nodeSig(n hierarchy.NodeID) Sig {
	if sp.h.Depth(n) < sp.dDelta {
		return Sig(n)
	}
	return Sig(sp.h.Ancestor(n, sp.dDelta))
}

// ElemSigs returns the signatures of element e under the space's scheme,
// deduplicated with maximum weight. The result is cached and must not be
// modified.
func (sp *Space) ElemSigs(e elem.ID) []Entry {
	for int(e) >= len(sp.sigCache) {
		sp.sigCache = append(sp.sigCache, nil)
	}
	if sp.sigCache[e] == nil {
		sp.sigCache[e] = sp.genSigs(e)
	}
	out := make([]Entry, len(sp.sigCache[e]))
	for i, sw := range sp.sigCache[e] {
		out[i] = Entry{Sig: sw.s, W: sw.w}
	}
	return out
}

// appendElemSigs appends e's signatures to dst tagged with element index
// idx, avoiding the copy in ElemSigs.
func (sp *Space) appendElemSigs(dst []Entry, e elem.ID, idx int32) []Entry {
	for int(e) >= len(sp.sigCache) {
		sp.sigCache = append(sp.sigCache, nil)
	}
	if sp.sigCache[e] == nil {
		sp.sigCache[e] = sp.genSigs(e)
	}
	for _, sw := range sp.sigCache[e] {
		dst = append(dst, Entry{Sig: sw.s, W: sw.w, Elem: idx})
	}
	return dst
}

// genSigs computes the signature list of one element.
func (sp *Space) genSigs(e elem.ID) []sigW {
	info := sp.res.Info(e)
	if !info.Entity() {
		// Unmatched token: its canonical token is its only signature and a
		// match means equality (or synonymy), maximum similarity 1.
		return []sigW{{s: sp.tokenSig(info.Canon), w: 1}}
	}
	var out []sigW
	deepest, deepestIdx := -1, -1
	add := func(s Sig, w float64) int {
		for i := range out {
			if out[i].s == s {
				if w > out[i].w {
					out[i].w = w
				}
				return i
			}
		}
		out = append(out, sigW{s: s, w: w})
		return len(out) - 1
	}
	for _, m := range info.Mappings {
		d := int(m.Depth)
		switch sp.scheme {
		case Node:
			// A shared node signature only tells us the elements are in
			// the same group; the sound per-signature weight is the
			// element's bound against any different element.
			i := add(sp.nodeSig(m.Node), sp.res.MaxDiffSim(e, sp.metric))
			if d > deepest {
				deepest, deepestIdx = d, i
			}
		case Shallow:
			// Matching a shallow signature at depth t does not cap the
			// LCA at t (the LCA may be deeper), so t-based weights would
			// be unsound; use the different-element bound here too.
			w := sp.res.MaxDiffSim(e, sp.metric)
			lo, hi := sp.metric.ShallowRange(d, sp.delta)
			for t := lo; t <= hi; t++ {
				i := add(Sig(sp.h.Ancestor(m.Node, t)), w)
				if t == hi && d > deepest {
					deepest, deepestIdx = d, i
				}
			}
		case Deep:
			// Deep signatures cover every depth up to the node itself, so
			// for any similar pair the signature at the LCA depth is
			// shared and its weight t/d_e (×φ) bounds the pair similarity
			// (§4.2.2).
			lo := sp.metric.DeepLow(d, sp.delta)
			for t := lo; t <= d; t++ {
				i := add(Sig(sp.h.Ancestor(m.Node, t)), sp.metric.MaxSimAtDepth(t, d)*m.Phi)
				if t == d && d > deepest {
					deepest, deepestIdx = d, i
				}
			}
		}
	}
	// Identical elements in two objects match with similarity 1 and share
	// all signatures; make one signature carry that weight so the
	// weighted prefix (Definition 9) stays sound under Plus resolution
	// where φ < 1 would otherwise under-weight the self-match.
	if deepestIdx >= 0 && out[deepestIdx].w < 1 {
		out[deepestIdx].w = 1
	}
	return out
}

// Warm precomputes the signature and group-key caches for every element
// id in [0, n), sharding entity elements across workers goroutines
// (their generation only reads immutable resolver/hierarchy state and
// writes exclusive cache slots); non-entity elements intern token
// signatures through a map and run sequentially afterwards.
func (sp *Space) Warm(n, workers int) {
	for len(sp.sigCache) < n {
		sp.sigCache = append(sp.sigCache, nil)
	}
	for len(sp.groupCache) < n {
		sp.groupCache = append(sp.groupCache, nil)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					e := elem.ID(i)
					if !sp.res.Info(e).Entity() {
						continue
					}
					if sp.sigCache[i] == nil {
						sp.sigCache[i] = sp.genSigs(e)
					}
					if sp.groupCache[i] == nil {
						sp.groupCache[i] = sp.genGroupKeys(e)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	// Sequential pass covers non-entity elements (token-signature
	// interning mutates a shared map) and anything a single worker run
	// would have handled.
	for i := 0; i < n; i++ {
		e := elem.ID(i)
		if sp.sigCache[i] == nil {
			sp.sigCache[i] = sp.genSigs(e)
		}
		if sp.groupCache[i] == nil {
			sp.groupCache[i] = sp.genGroupKeys(e)
		}
	}
}

// GroupKeys returns the node signatures of element e regardless of the
// space's filtering scheme. These are the verification grouping keys of
// Lemmas 1, 3 and 8: elements in different groups cannot be similar.
// The result is cached and must not be modified.
func (sp *Space) GroupKeys(e elem.ID) []Sig {
	for int(e) >= len(sp.groupCache) {
		sp.groupCache = append(sp.groupCache, nil)
	}
	if sp.groupCache[e] == nil {
		sp.groupCache[e] = sp.genGroupKeys(e)
	}
	return sp.groupCache[e]
}

// genGroupKeys computes the node-signature grouping keys of one element.
func (sp *Space) genGroupKeys(e elem.ID) []Sig {
	info := sp.res.Info(e)
	if !info.Entity() {
		return []Sig{sp.tokenSig(info.Canon)}
	}
	var keys []Sig
	for _, m := range info.Mappings {
		s := sp.nodeSig(m.Node)
		dup := false
		for _, k := range keys {
			if k == s {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, s)
		}
	}
	return keys
}

// ObjectSigs returns the (unsorted) signature entries of an object: the
// union of its elements' signatures, tagged with element indices. The
// same signature may appear once per generating element (the paper's G_S
// is a multiset).
func (sp *Space) ObjectSigs(elems []elem.ID) []Entry {
	var out []Entry
	for i, e := range elems {
		out = sp.appendElemSigs(out, e, int32(i))
	}
	return out
}

// Order is the global signature order: ascending document frequency with
// signature id as tie-break (§3.1 "fix a global order for the node
// signatures ... by document frequency in an ascending order").
type Order struct {
	df map[Sig]int32
}

// BuildOrder counts, for every signature, the number of objects whose
// signature set contains it (each object counts once per signature), over
// all the given objects — for an R-S join pass both collections.
func BuildOrder(objects [][]Entry) *Order {
	df := make(map[Sig]int32)
	var seen map[Sig]bool
	for _, entries := range objects {
		seen = make(map[Sig]bool, len(entries))
		for _, en := range entries {
			if !seen[en.Sig] {
				seen[en.Sig] = true
				df[en.Sig]++
			}
		}
	}
	return &Order{df: df}
}

// Less reports whether signature a precedes b in the global order.
func (o *Order) Less(a, b Sig) bool {
	da, db := o.df[a], o.df[b]
	if da != db {
		return da < db
	}
	return a < b
}

// Sort sorts entries by the global order (rarest signatures first).
// Entries of the same signature stay adjacent; ties break on element
// index for determinism.
func (o *Order) Sort(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Sig != b.Sig {
			return o.Less(a.Sig, b.Sig)
		}
		return a.Elem < b.Elem
	})
}

// DF returns the document frequency of s under the order.
func (o *Order) DF(s Sig) int { return int(o.df[s]) }

// DistElePrefix returns the prefix length p of entries (sorted by the
// global order) such that entries[:p] is the (node or path) prefix of
// Definitions 5/8: the suffix beyond the prefix covers at most τ_S − 1
// distinct elements, and shrinking the prefix further would let the
// suffix cover τ_S. If the object has fewer than τ_S distinct elements,
// the whole list is the prefix.
func DistElePrefix(entries []Entry, tauS int) int {
	if tauS <= 0 {
		return 0
	}
	seen := make(map[int32]bool)
	for i := len(entries) - 1; i >= 0; i-- {
		if !seen[entries[i].Elem] {
			seen[entries[i].Elem] = true
			if len(seen) == tauS {
				return i + 1
			}
		}
	}
	return len(entries)
}

// WeightedPrefix returns the prefix length p of entries (sorted by the
// global order) per Definition 9: the suffix beyond the prefix has
// MSIM < minOverlap, where MSIM sums, per distinct element, the maximum
// signature weight in the suffix. minOverlap is τ·|S| for Jaccard
// (setmetric.Kind.MinOverlap in general).
func WeightedPrefix(entries []Entry, minOverlap float64) int {
	if minOverlap <= 0 {
		return 0
	}
	best := make(map[int32]float64)
	msim := 0.0
	for i := len(entries) - 1; i >= 0; i-- {
		en := entries[i]
		if w := best[en.Elem]; en.W > w {
			msim += en.W - w
			best[en.Elem] = en.W
		}
		if msim >= minOverlap-1e-9 {
			return i + 1
		}
	}
	return len(entries)
}
