package sig

import (
	"sort"
	"testing"

	"kjoin/internal/elem"
	"kjoin/internal/hierarchy"
	"kjoin/internal/paperdata"
)

// table1Space resolves the Table 1 objects and returns the space, the
// resolver, and the objects as element-id slices.
func table1Space(t *testing.T, delta float64, scheme Scheme) (*Space, *elem.Resolver, [][]elem.ID) {
	t.Helper()
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{})
	var objs [][]elem.ID
	for _, toks := range paperdata.Table1() {
		var o []elem.ID
		for _, tok := range toks {
			o = append(o, r.ID(tok))
		}
		objs = append(objs, o)
	}
	return NewSpace(r, elem.Standard, delta, scheme), r, objs
}

// sigNames maps entries to sorted signature names for comparison.
func sigNames(sp *Space, entries []Entry) []string {
	h := sp.h
	var out []string
	for _, e := range entries {
		if int(e.Sig) < h.Len() {
			out = append(out, h.Name(hierarchy.NodeID(e.Sig)))
		} else {
			out = append(out, "tok:"+itoa(int(e.Sig)))
		}
	}
	sort.Strings(out)
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNodeSignaturesTable1(t *testing.T) {
	// δ=0.7 → d_δ = 3 (§3.1). Node signature column of Table 1.
	sp, _, objs := table1Space(t, 0.7, Node)
	if sp.DDelta() != 3 {
		t.Fatalf("d_δ = %d, want 3", sp.DDelta())
	}
	want := [][]string{
		{"CA", "Fastfood"},          // S1
		{"CA", "NY", "Pizza"},       // S2
		{"CA", "Fastfood"},          // S3
		{"CA", "Fastfood", "Pizza"}, // S4
		{"CA", "Pizza"},             // S5
		{"Fastfood", "NY"},          // S6
		{"Food", "NY"},              // S7
		{"CA", "Fastfood", "NY", "NY", "Pizza", "Pizza"},    // S8
		{"CA", "CA", "Fastfood", "Fastfood", "NY", "Pizza"}, // S9
	}
	for i, o := range objs {
		got := sigNames(sp, sp.ObjectSigs(o))
		if !eqStrings(got, want[i]) {
			t.Errorf("S%d node signatures = %v, want %v", i+1, got, want[i])
		}
	}
}

func TestDeepSignaturesTable1(t *testing.T) {
	// δ=0.7. Deep path signature column of Table 1 (corrected for the
	// Figure 1 structure: PaloAlto is a child of CA, so its deep
	// signatures are {CA, PaloAlto}; the printed table shows
	// SanFrancisco there, an inconsistency with Figure 1).
	sp, _, objs := table1Space(t, 0.7, Deep)
	want := [][]string{
		{"BurgerKing", "Fastfood", "MountainView", "SanFrancisco"}, // S1
		{"Brooklyn", "CA", "NewYork", "PaloAlto", "Pizza"},         // S2
		{"Fastfood", "GoogleHeadquarters", "MountainView"},         // S3
		{"CA", "Fastfood", "KFC", "Pizza", "PizzaHut"},             // S4
		{"GoogleHeadquarters", "MountainView", "Pizza"},            // S5
		{"Fastfood", "Manhattan", "NewYork"},                       // S6
		{"Brooklyn", "Food", "NewYork"},                            // S7
		{"Brooklyn", "CA", "Dominos", "Fastfood", "KFC", "Manhattan", "NewYork", "NewYork", "Pizza", "Pizza", "SanFrancisco"},          // S8
		{"BurgerKing", "CA", "Fastfood", "Fastfood", "MountainView", "NY", "NewYork", "PaloAlto", "Pizza", "PizzaHut", "SanFrancisco"}, // S9
	}
	for i, o := range objs {
		got := sigNames(sp, sp.ObjectSigs(o))
		if !eqStrings(got, want[i]) {
			t.Errorf("S%d deep signatures = %v, want %v", i+1, got, want[i])
		}
	}
}

func TestShallowSignatures(t *testing.T) {
	// §4.1: δ=0.6, BurgerKing (depth 4) → shallow {WesternFood, Fastfood},
	// deep {Fastfood, BurgerKing}. Dominos → shallow {WesternFood, Pizza},
	// deep {Pizza, Dominos}.
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{})
	shallow := NewSpace(r, elem.Standard, 0.6, Shallow)
	deep := NewSpace(r, elem.Standard, 0.6, Deep)
	bk := r.ID("BurgerKing")
	dom := r.ID("Dominos")

	got := sigNames(shallow, shallow.ElemSigs(bk))
	if !eqStrings(got, []string{"Fastfood", "WesternFood"}) {
		t.Errorf("shallow(BurgerKing) = %v", got)
	}
	got = sigNames(deep, deep.ElemSigs(bk))
	if !eqStrings(got, []string{"BurgerKing", "Fastfood"}) {
		t.Errorf("deep(BurgerKing) = %v", got)
	}
	got = sigNames(shallow, shallow.ElemSigs(dom))
	if !eqStrings(got, []string{"Pizza", "WesternFood"}) {
		t.Errorf("shallow(Dominos) = %v", got)
	}
	got = sigNames(deep, deep.ElemSigs(dom))
	if !eqStrings(got, []string{"Dominos", "Pizza"}) {
		t.Errorf("deep(Dominos) = %v", got)
	}
	// Shallow signatures share WesternFood (no pruning); deep signatures
	// are disjoint (pruned), as the paper's §4.1 example explains.
	shBK := map[string]bool{}
	for _, n := range sigNames(shallow, shallow.ElemSigs(bk)) {
		shBK[n] = true
	}
	common := false
	for _, n := range sigNames(shallow, shallow.ElemSigs(dom)) {
		if shBK[n] {
			common = true
		}
	}
	if !common {
		t.Error("shallow signatures of BurgerKing and Dominos should overlap")
	}
	dpBK := map[string]bool{}
	for _, n := range sigNames(deep, deep.ElemSigs(bk)) {
		dpBK[n] = true
	}
	for _, n := range sigNames(deep, deep.ElemSigs(dom)) {
		if dpBK[n] {
			t.Error("deep signatures of BurgerKing and Dominos must be disjoint")
		}
	}
}

func TestNonEntityTokenSignature(t *testing.T) {
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{})
	sp := NewSpace(r, elem.Standard, 0.7, Deep)
	a := r.ID("ellis")
	b := r.ID("fillmore")
	sa := sp.ElemSigs(a)
	sb := sp.ElemSigs(b)
	if len(sa) != 1 || len(sb) != 1 {
		t.Fatalf("non-entity tokens should have exactly one signature: %v %v", sa, sb)
	}
	if sa[0].Sig == sb[0].Sig {
		t.Error("different tokens must not share a token signature")
	}
	if sa[0].W != 1 {
		t.Errorf("token signature weight = %v, want 1", sa[0].W)
	}
	if sp.ElemSigs(r.ID("ELLIS"))[0].Sig != sa[0].Sig {
		t.Error("same token should intern to the same signature")
	}
	if int(sa[0].Sig) < h.Len() {
		t.Error("token signatures must live beyond the node id space")
	}
}

// Lemma 1 / Lemma 5 property: over the Figure 1 vocabulary, any two
// similar elements share a node signature, a shallow signature, and a
// deep signature.
func TestSignatureLemmas(t *testing.T) {
	h, m := paperdata.Fig1()
	var vocab []string
	for n := range m {
		vocab = append(vocab, n)
	}
	vocab = append(vocab, "ellis", "fillmore")
	for _, metric := range []elem.Metric{elem.Standard, elem.WuPalmer} {
		for _, delta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			r := elem.NewResolver(h, elem.Options{})
			spaces := map[Scheme]*Space{
				Node:    NewSpace(r, metric, delta, Node),
				Shallow: NewSpace(r, metric, delta, Shallow),
				Deep:    NewSpace(r, metric, delta, Deep),
			}
			ids := make([]elem.ID, len(vocab))
			for i, v := range vocab {
				ids[i] = r.ID(v)
			}
			for i, a := range ids {
				for j, b := range ids {
					if j <= i {
						continue
					}
					if r.Sim(a, b, metric) < delta {
						continue
					}
					for scheme, sp := range spaces {
						if !shareSig(sp.ElemSigs(a), sp.ElemSigs(b)) {
							t.Errorf("metric=%v δ=%v scheme=%v: similar pair %s~%s shares no signature",
								metric, delta, scheme, vocab[i], vocab[j])
						}
					}
				}
			}
		}
	}
}

func shareSig(a, b []Entry) bool {
	set := map[Sig]bool{}
	for _, e := range a {
		set[e.Sig] = true
	}
	for _, e := range b {
		if set[e.Sig] {
			return true
		}
	}
	return false
}

// Weight soundness property: for every pair of similar elements and every
// shared signature, the actual similarity never exceeds the larger... the
// *smaller* of the two elements' weights for that signature would be the
// tight claim; the sound claim used by the weighted prefix is that each
// element's own weight bounds its similarity to anything matching through
// that signature.
func TestSignatureWeightBounds(t *testing.T) {
	h, m := paperdata.Fig1()
	var vocab []string
	for n := range m {
		vocab = append(vocab, n)
	}
	r := elem.NewResolver(h, elem.Options{})
	sp := NewSpace(r, elem.Standard, 0.6, Deep)
	ids := make([]elem.ID, len(vocab))
	for i, v := range vocab {
		ids[i] = r.ID(v)
	}
	for i, a := range ids {
		for j, b := range ids {
			if i == j {
				continue
			}
			s := r.Sim(a, b, elem.Standard)
			if s < 0.6 {
				continue
			}
			// Max over shared signatures of min(w_a, w_b) must bound s...
			// i.e., there must exist a shared signature whose two weights
			// both reach s.
			wa := map[Sig]float64{}
			for _, e := range sp.ElemSigs(a) {
				wa[e.Sig] = e.W
			}
			ok := false
			for _, e := range sp.ElemSigs(b) {
				if w, has := wa[e.Sig]; has && w >= s-1e-9 && e.W >= s-1e-9 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("similar pair %s~%s (sim %v) has no shared signature with weights covering the similarity",
					vocab[i], vocab[j], s)
			}
		}
	}
}

func TestDistElePrefixPaperExamples(t *testing.T) {
	// §4.2.1 path prefix for S4 (δ=0.7, τ=0.6): sorted path signatures
	// with df computed over Table 1 under Figure 1, the prefix contains
	// the signatures of both elements except the last removable ones —
	// the paper's resulting set is {PizzaHut, CA, KFC, Pizza}.
	sp, _, objs := table1Space(t, 0.7, Deep)
	all := make([][]Entry, len(objs))
	for i, o := range objs {
		all[i] = sp.ObjectSigs(o)
	}
	order := BuildOrder(all)
	// S4 = objs[3], |S4| = 3, τ_S4 = ⌈0.6·3⌉ = 2.
	entries := all[3]
	order.Sort(entries)
	p := DistElePrefix(entries, 2)
	got := sigNames(sp, entries[:p])
	if !eqStrings(got, []string{"CA", "KFC", "Pizza", "PizzaHut"}) {
		t.Errorf("path prefix of S4 = %v, want [CA KFC Pizza PizzaHut]", got)
	}
	// S1 = objs[0], τ_S1 = 2: prefix drops only the last signature.
	entries = all[0]
	order.Sort(entries)
	p = DistElePrefix(entries, 2)
	got = sigNames(sp, entries[:p])
	if !eqStrings(got, []string{"BurgerKing", "MountainView", "SanFrancisco"}) {
		t.Errorf("path prefix of S1 = %v, want [BurgerKing MountainView SanFrancisco]", got)
	}
	// S1 and S4 prefixes must not overlap (the paper prunes this pair).
	pa := all[0][:DistElePrefix(all[0], 2)]
	pb := all[3][:DistElePrefix(all[3], 2)]
	if shareSig(pa, pb) {
		t.Error("path prefixes of S1 and S4 must be disjoint")
	}
}

func TestDistElePrefixEdgeCases(t *testing.T) {
	if got := DistElePrefix(nil, 1); got != 0 {
		t.Errorf("empty entries prefix = %d, want 0", got)
	}
	if got := DistElePrefix([]Entry{{Sig: 1, Elem: 0}}, 0); got != 0 {
		t.Errorf("tauS=0 prefix = %d, want 0", got)
	}
	// tauS larger than distinct elements: whole list.
	es := []Entry{{Sig: 1, Elem: 0}, {Sig: 2, Elem: 0}}
	if got := DistElePrefix(es, 2); got != 2 {
		t.Errorf("prefix = %d, want 2 (whole list)", got)
	}
	// Single-signature-per-element degenerates to |S|−(τ_S−1).
	es = []Entry{{Sig: 1, Elem: 0}, {Sig: 2, Elem: 1}, {Sig: 3, Elem: 2}, {Sig: 4, Elem: 3}}
	if got := DistElePrefix(es, 3); got != 2 { // 4−(3−1) = 2
		t.Errorf("prefix = %d, want 2", got)
	}
}

func TestWeightedPrefixPaperExample(t *testing.T) {
	// §4.2.2, S4 with the paper's own df order: PS4 = {PizzaHut:4/4,
	// CA:3/3, KFC:4/4, Pizza:3/4, Fastfood:3/4}, τ|S4| = 1.8. KFC and
	// Fastfood come from the same element, so removing the last three
	// keeps MSIM = 1 + 3/4 = 1.75 < 1.8; the weighted path prefix is
	// {PizzaHut, CA}.
	entries := []Entry{
		{Sig: 101, W: 1, Elem: 0},    // PizzaHut (elem PizzaHut)
		{Sig: 102, W: 1, Elem: 2},    // CA (elem CA)
		{Sig: 103, W: 1, Elem: 1},    // KFC (elem KFC)
		{Sig: 104, W: 0.75, Elem: 0}, // Pizza (elem PizzaHut)
		{Sig: 105, W: 0.75, Elem: 1}, // Fastfood (elem KFC)
	}
	if got := WeightedPrefix(entries, 1.8); got != 2 {
		t.Errorf("weighted prefix length = %d, want 2", got)
	}
	// The unweighted prefix keeps 4 (distinct elements: KFC, PizzaHut).
	if got := DistElePrefix(entries, 2); got != 4 {
		t.Errorf("unweighted prefix length = %d, want 4", got)
	}
}

func TestWeightedPrefixEdgeCases(t *testing.T) {
	if got := WeightedPrefix(nil, 1); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
	if got := WeightedPrefix([]Entry{{Sig: 1, W: 1, Elem: 0}}, 0); got != 0 {
		t.Errorf("minOverlap 0 = %d, want 0", got)
	}
	// Never reaching minOverlap keeps everything.
	es := []Entry{{Sig: 1, W: 0.3, Elem: 0}, {Sig: 2, W: 0.2, Elem: 1}}
	if got := WeightedPrefix(es, 5); got != 2 {
		t.Errorf("unreachable minOverlap = %d, want 2", got)
	}
	// Same element twice: only the max weight counts.
	es = []Entry{{Sig: 1, W: 1, Elem: 0}, {Sig: 2, W: 0.5, Elem: 1}, {Sig: 3, W: 0.9, Elem: 1}}
	// From the end: sig3 (elem1, 0.9) → 0.9; sig2 (elem1, 0.5 ≤ 0.9) → 0.9;
	// sig1 (elem0, 1) → 1.9 ≥ 1.5 → prefix 1.
	if got := WeightedPrefix(es, 1.5); got != 1 {
		t.Errorf("prefix = %d, want 1", got)
	}
}

// The weighted prefix is always a subset of the unweighted prefix
// (weights ≤ 1 make removal easier — §4.2.2 "this weighted strategy can
// prune more signatures").
func TestWeightedPrefixNoLongerThanUnweighted(t *testing.T) {
	sp, _, objs := table1Space(t, 0.7, Deep)
	all := make([][]Entry, len(objs))
	for i, o := range objs {
		all[i] = sp.ObjectSigs(o)
	}
	order := BuildOrder(all)
	for i, entries := range all {
		order.Sort(entries)
		tauS := len(objs[i]) // generic: τ_S with τ=1... use τ=0.6 instead
		_ = tauS
		tS := (len(objs[i])*6 + 9) / 10 // ⌈0.6·|S|⌉
		wp := WeightedPrefix(entries, 0.6*float64(len(objs[i])))
		up := DistElePrefix(entries, tS)
		if wp > up {
			t.Errorf("S%d: weighted prefix %d longer than unweighted %d", i+1, wp, up)
		}
	}
}

func TestGroupKeys(t *testing.T) {
	h, _ := paperdata.Fig1()
	r := elem.NewResolver(h, elem.Options{})
	sp := NewSpace(r, elem.Standard, 0.7, Deep)
	bk := r.ID("BurgerKing")
	kfc := r.ID("KFC")
	man := r.ID("Manhattan")
	free := r.ID("ellis")
	if g := sp.GroupKeys(bk); len(g) != 1 || g[0] != sp.GroupKeys(kfc)[0] {
		t.Error("BurgerKing and KFC must share their group key (Fastfood)")
	}
	if sp.GroupKeys(bk)[0] == sp.GroupKeys(man)[0] {
		t.Error("BurgerKing and Manhattan must be in different groups")
	}
	if g := sp.GroupKeys(free); len(g) != 1 {
		t.Errorf("non-entity token should have one group key, got %v", g)
	}
	// Shallow node (depth < d_δ) is its own signature (Definition 4).
	food := r.ID("Food")
	if name := h.Name(hierarchy.NodeID(sp.GroupKeys(food)[0])); name != "Food" {
		t.Errorf("group key of Food = %s, want Food itself", name)
	}
}

func TestOrderDeterminism(t *testing.T) {
	sp, _, objs := table1Space(t, 0.7, Node)
	all := make([][]Entry, len(objs))
	for i, o := range objs {
		all[i] = sp.ObjectSigs(o)
	}
	o1 := BuildOrder(all)
	o2 := BuildOrder(all)
	e1 := append([]Entry(nil), all[7]...)
	e2 := append([]Entry(nil), all[7]...)
	o1.Sort(e1)
	o2.Sort(e2)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("sort not deterministic at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	// df values are sane: every signature of S8 occurs at least once.
	for _, e := range e1 {
		if o1.DF(e.Sig) < 1 {
			t.Errorf("df of %v = %d", e.Sig, o1.DF(e.Sig))
		}
	}
}

func TestSchemeString(t *testing.T) {
	if Node.String() != "node" || Shallow.String() != "shallow" || Deep.String() != "deep" || Scheme(9).String() != "unknown" {
		t.Error("Scheme.String mismatch")
	}
}
