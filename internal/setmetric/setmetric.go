// Package setmetric abstracts the object-level set-similarity function of
// K-Join (paper Definition 2 uses Jaccard; §6.3 extends to Dice and
// Cosine). The join algorithm depends on the metric only through three
// quantities: the similarity value given a fuzzy overlap, the minimum
// overlap an object must share with *any* similar partner (τ_S), and the
// minimum overlap a specific pair must reach (τ_{Sx,Sy}).
package setmetric

import (
	"math"

	"kjoin/internal/mathx"
)

// Kind selects the set-similarity function.
type Kind int

const (
	// Jaccard: |Sx ∩̃δ Sy| / (|Sx| + |Sy| − |Sx ∩̃δ Sy|).
	Jaccard Kind = iota
	// Dice: 2·|Sx ∩̃δ Sy| / (|Sx| + |Sy|).
	Dice
	// Cosine: |Sx ∩̃δ Sy| / sqrt(|Sx|·|Sy|).
	Cosine
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Jaccard:
		return "jaccard"
	case Dice:
		return "dice"
	case Cosine:
		return "cosine"
	default:
		return "unknown"
	}
}

// Sim returns the set similarity for a fuzzy overlap o between objects of
// sizes nx and ny. Two empty objects have similarity 1.
func (k Kind) Sim(o float64, nx, ny int) float64 {
	if nx == 0 && ny == 0 {
		return 1
	}
	switch k {
	case Dice:
		return 2 * o / float64(nx+ny)
	case Cosine:
		if nx == 0 || ny == 0 {
			return 0
		}
		return o / math.Sqrt(float64(nx)*float64(ny))
	default:
		den := float64(nx+ny) - o
		if den <= 0 {
			return 1
		}
		return o / den
	}
}

// MinOverlap returns the minimum fuzzy overlap an object of size n must
// share with any partner it is τ-similar to. Jaccard: τ·n (paper §3.1);
// Dice: τ/(2−τ)·n; Cosine: τ²·n (both §6.3). This is the absolute
// threshold the weighted path prefix removes against (Definition 9).
func (k Kind) MinOverlap(tau float64, n int) float64 {
	switch k {
	case Dice:
		return tau / (2 - tau) * float64(n)
	case Cosine:
		return tau * tau * float64(n)
	default:
		return tau * float64(n)
	}
}

// TauS returns τ_S = ⌈MinOverlap⌉, the minimum number of similar
// elements an object of size n must share with any similar partner.
func (k Kind) TauS(tau float64, n int) int {
	t := mathx.CeilInt(k.MinOverlap(tau, n))
	if t < 1 {
		t = 1
	}
	return t
}

// PairOverlap returns the minimum fuzzy overlap a specific pair of sizes
// nx, ny must reach to be τ-similar (the quantity whose ceiling is
// τ_{Sx,Sy}). Jaccard: τ/(1+τ)(nx+ny); Dice: τ/2(nx+ny);
// Cosine: τ·sqrt(nx·ny).
func (k Kind) PairOverlap(tau float64, nx, ny int) float64 {
	switch k {
	case Dice:
		return tau / 2 * float64(nx+ny)
	case Cosine:
		return tau * math.Sqrt(float64(nx)*float64(ny))
	default:
		return tau / (1 + tau) * float64(nx+ny)
	}
}
