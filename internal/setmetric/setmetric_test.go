package setmetric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccardPaperExamples(t *testing.T) {
	// §2.1.2: ||S1 ∩̃δ S4|| = 27/20, |S1|=2, |S4|=3 → 27/73.
	if got := Jaccard.Sim(27.0/20, 2, 3); !almostEq(got, 27.0/73) {
		t.Errorf("Jaccard = %v, want 27/73", got)
	}
	// §2.2: ||S1 ∩̃δ S3|| = 19/12, sizes 2,2 → 19/29.
	if got := Jaccard.Sim(19.0/12, 2, 2); !almostEq(got, 19.0/29) {
		t.Errorf("Jaccard = %v, want 19/29", got)
	}
	if got := Jaccard.Sim(0, 0, 0); got != 1 {
		t.Errorf("empty objects should be identical, got %v", got)
	}
}

func TestTauSPaperExamples(t *testing.T) {
	// §4.2.1: τ_{S4} = ⌈0.6·3⌉ = 2; τ_{S1} = ⌈0.6·2⌉ = 2.
	if got := Jaccard.TauS(0.6, 3); got != 2 {
		t.Errorf("TauS(0.6, 3) = %d, want 2", got)
	}
	if got := Jaccard.TauS(0.6, 2); got != 2 {
		t.Errorf("TauS(0.6, 2) = %d, want 2", got)
	}
	if got := Jaccard.TauS(0.6, 0); got != 1 {
		t.Errorf("TauS of empty object should clamp to 1, got %d", got)
	}
}

func TestPairOverlapPaperExamples(t *testing.T) {
	// §3.2 example: τ/(1+τ)(|S1|+|S6|) = 0.6/1.6·4 = 3/2.
	if got := Jaccard.PairOverlap(0.6, 2, 2); !almostEq(got, 1.5) {
		t.Errorf("PairOverlap = %v, want 1.5", got)
	}
	// §3.2 weighted example: 0.6/1.6·(2+3) = 15/8.
	if got := Jaccard.PairOverlap(0.6, 2, 3); !almostEq(got, 15.0/8) {
		t.Errorf("PairOverlap = %v, want 15/8", got)
	}
}

func TestDiceCosine(t *testing.T) {
	if got := Dice.Sim(2, 3, 3); !almostEq(got, 2.0/3) {
		t.Errorf("Dice = %v, want 2/3", got)
	}
	if got := Cosine.Sim(2, 4, 4); !almostEq(got, 0.5) {
		t.Errorf("Cosine = %v, want 0.5", got)
	}
	if got := Cosine.Sim(1, 0, 4); got != 0 {
		t.Errorf("Cosine with an empty side = %v, want 0", got)
	}
	// §6.3: Dice τ_S = ⌈τ/(2−τ)·|S|⌉.
	if got := Dice.TauS(0.6, 7); got != 3 {
		t.Errorf("Dice TauS = %d, want 3", got)
	}
	// §6.3: Cosine τ_S = ⌈τ²·|S|⌉.
	if got := Cosine.TauS(0.6, 10); got != 4 {
		t.Errorf("Cosine TauS = %d, want 4", got)
	}
}

// Property: the MinOverlap bound is sound — whenever Sim(o, nx, ny) ≥ τ
// and o ≤ min(nx, ny), the overlap is at least MinOverlap(τ, nx) and at
// least PairOverlap(τ, nx, ny).
func TestBoundsSound(t *testing.T) {
	f := func(on, xn, yn uint8, tn uint8) bool {
		nx := 1 + int(xn%20)
		ny := 1 + int(yn%20)
		min := nx
		if ny < min {
			min = ny
		}
		o := float64(on%100) / 99 * float64(min)
		tau := 0.05 + float64(tn%90)/100
		for _, k := range []Kind{Jaccard, Dice, Cosine} {
			if k.Sim(o, nx, ny) >= tau {
				if o < k.MinOverlap(tau, nx)-1e-9 {
					return false
				}
				if o < k.PairOverlap(tau, nx, ny)-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: Sim is monotone in the overlap and symmetric in sizes.
func TestSimMonotoneSymmetric(t *testing.T) {
	f := func(o1, o2 uint8, xn, yn uint8) bool {
		nx, ny := 1+int(xn%20), 1+int(yn%20)
		min := nx
		if ny < min {
			min = ny
		}
		// A fuzzy overlap can never exceed the smaller object size.
		a := float64(o1%100) / 99 * float64(min)
		b := float64(o2%100) / 99 * float64(min)
		if a > b {
			a, b = b, a
		}
		for _, k := range []Kind{Jaccard, Dice, Cosine} {
			if k.Sim(a, nx, ny) > k.Sim(b, nx, ny)+1e-12 {
				return false
			}
			if !almostEq(k.Sim(a, nx, ny), k.Sim(a, ny, nx)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Jaccard.String() != "jaccard" || Dice.String() != "dice" || Cosine.String() != "cosine" || Kind(9).String() != "unknown" {
		t.Error("Kind.String mismatch")
	}
}
