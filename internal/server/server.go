// Package server exposes a K-Join Indexer over HTTP as a small JSON
// service: streaming deduplication (POST /objects), knowledge-aware
// similarity search (POST /query), pairwise scoring (POST /similarity)
// and statistics (GET /stats). It backs the kjoin-serve command and is
// the "Yelp classifies similar restaurants" deployment shape from the
// paper's introduction.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"kjoin/internal/core"
	"kjoin/internal/hierarchy"
)

// Server is an http.Handler serving one Indexer. It serializes access to
// the underlying Indexer (which is single-threaded by design).
type Server struct {
	mu  sync.Mutex
	h   *hierarchy.Hierarchy
	opt core.Options
	ix  *core.Indexer
	mux *http.ServeMux
}

// New returns a server over the hierarchy with the join options.
func New(h *hierarchy.Hierarchy, opt core.Options) (*Server, error) {
	ix, err := core.NewIndexer(h, opt)
	if err != nil {
		return nil, err
	}
	return wrap(h, opt, ix), nil
}

// NewFromSnapshot returns a server whose Indexer is rebuilt from a
// snapshot (see Indexer.WriteSnapshot).
func NewFromSnapshot(h *hierarchy.Hierarchy, opt core.Options, r io.Reader) (*Server, error) {
	ix, err := core.LoadIndexer(h, opt, r)
	if err != nil {
		return nil, err
	}
	return wrap(h, opt, ix), nil
}

func wrap(h *hierarchy.Hierarchy, opt core.Options, ix *core.Indexer) *Server {
	s := &Server{h: h, opt: opt, ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /objects", s.handleAdd)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /similarity", s.handleSimilarity)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	return s
}

// handleSnapshot streams the current index contents as a snapshot the
// server (or any Indexer) can be rebuilt from.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.ix.WriteSnapshot(w); err != nil {
		// Headers already sent; the client sees a truncated body.
		return
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// objectRequest is the body of POST /objects and POST /query.
type objectRequest struct {
	Tokens []string `json:"tokens"`
}

// pairJSON is one reported similar pair.
type pairJSON struct {
	X   int     `json:"x"`
	Y   int     `json:"y"`
	Sim float64 `json:"sim"`
}

// addResponse is the body of a successful POST /objects.
type addResponse struct {
	ID    int        `json:"id"`
	Pairs []pairJSON `json:"pairs"`
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	id := s.ix.Len()
	pairs, err := s.ix.Add(req.Tokens)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := addResponse{ID: id, Pairs: make([]pairJSON, 0, len(pairs))}
	for _, p := range pairs {
		resp.Pairs = append(resp.Pairs, pairJSON{X: p.X, Y: p.Y, Sim: p.Sim})
	}
	writeJSON(w, resp)
}

// matchJSON is one POST /query result.
type matchJSON struct {
	Index int     `json:"index"`
	Sim   float64 `json:"sim"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	matches, err := s.ix.Query(req.Tokens)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{Index: m.Index, Sim: m.Sim})
	}
	writeJSON(w, map[string]any{"matches": out})
}

// similarityRequest is the body of POST /similarity.
type similarityRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
}

func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	var req similarityRequest
	if !decode(w, r, &req) {
		return
	}
	sim, err := core.Similarity(s.h, req.X, req.Y, s.opt)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]float64{"sim": sim})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.ix.Stats()
	n := s.ix.Len()
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"objects":         n,
		"candidates":      st.Candidates,
		"results":         st.Verify.Results,
		"count_pruned":    st.Verify.CountPruned,
		"weighted_pruned": st.Verify.WeightedPruned,
		"lb_accepted":     st.Verify.LBAccepted,
		"ub_rejected":     st.Verify.UBRejected,
	})
}

// decode parses a JSON body, reporting 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
