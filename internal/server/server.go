// Package server exposes a K-Join Indexer over HTTP as a small JSON
// service: streaming deduplication (POST /objects), knowledge-aware
// similarity search (POST /query), pairwise scoring (POST /similarity),
// statistics (GET /stats), snapshots (GET /snapshot) and health probes
// (GET /healthz, GET /readyz). It backs the kjoin-serve command and is
// the "Yelp classifies similar restaurants" deployment shape from the
// paper's introduction.
//
// The server is production-hardened: queries and stats reads take no
// server lock at all — they pin the indexer's atomically published
// engine epoch and run against immutable segments — while adds
// serialize under the write lock, expensive endpoints sit behind a
// bounded-concurrency admission gate (429 + Retry-After when
// saturated), request bodies are size-capped, every request carries a
// deadline that aborts an in-flight join within one verification
// batch, handler panics degrade to a 500, and snapshots pin a view
// under the read lock (excluding only adds) and serialize it outside
// every lock so a slow client never blocks writers.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// Config bounds the resources a single request (or a burst of them) can
// consume. The zero value selects the defaults documented per field.
type Config struct {
	// MaxBodyBytes caps a request body (default 1 MiB). Oversized bodies
	// fail with a structured 400 (code "body_too_large").
	MaxBodyBytes int64
	// MaxInflight bounds concurrently executing expensive requests
	// (objects/query/similarity/snapshot, default 64); excess requests
	// are shed with 429 + Retry-After instead of queueing unboundedly.
	MaxInflight int
	// RequestTimeout is the per-request deadline (default 30s); an
	// expired deadline aborts the join mid-flight and returns 503.
	RequestTimeout time.Duration
	// MaxTokens caps tokens per object (default 10000).
	MaxTokens int
	// MaxTokenLen caps the byte length of one token (default 1024).
	MaxTokenLen int
	// RetryAfterMin and RetryAfterMax bound the jittered Retry-After
	// header on shed (429) requests (defaults 1s and 3s). A fixed value
	// would synchronize every shed client's retry into a herd.
	RetryAfterMin time.Duration
	RetryAfterMax time.Duration
	// Seed seeds the deterministic jitter (default 1).
	Seed uint64
	// Logf, when set, receives recovered panics and snapshot errors.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 10000
	}
	if c.MaxTokenLen == 0 {
		c.MaxTokenLen = 1024
	}
	if c.RetryAfterMin == 0 {
		c.RetryAfterMin = time.Second
	}
	if c.RetryAfterMax == 0 {
		c.RetryAfterMax = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Server is an http.Handler serving one Indexer. The Indexer's
// segmented engine publishes an immutable view on every mutation, so
// queries and stats read it with no server lock at all. The server's mu
// has a narrower job: adds hold it exclusively so the index mutation
// and its WAL append commit as one unit (log order = insertion order),
// and snapshot pins take the read side so a pinned view can never land
// between an AddCtx and the SetWALSeq that records its log position.
type Server struct {
	//kjoinlint:lockorder rank=20
	mu  sync.RWMutex
	h   *hierarchy.Hierarchy
	opt core.Options
	cfg Config
	// ix is the shared Indexer, swapped whole by Recover and
	// InstallIndex. Handlers Load it once and use that epoch: queries,
	// stats and snapshot pins are lock-free against the engine; only the
	// add path still serializes (under mu, see above).
	ix atomic.Pointer[core.Indexer]
	// wal, when durability is configured, is the write-ahead log every
	// acknowledged add is fsync'd into (installed by Recover, nil
	// before); gens is the snapshot generation store recovery rebuilds
	// from.
	wal      atomic.Pointer[wal.WAL]
	gens     *serverutil.GenStore // guarded by mu
	sem      *serverutil.Semaphore
	handler  http.Handler
	draining atomic.Bool
	// ready is false from NewRecovering until Recover completes;
	// expensive endpoints and /readyz report 503 while it is down.
	ready atomic.Bool
	// lastSnapSeq is the WAL sequence the newest durable snapshot
	// generation covers (for the wal_lag statistic); snapOnDisk records
	// that at least one generation actually exists, so an idle server
	// can skip rewriting identical snapshots.
	lastSnapSeq atomic.Uint64
	snapOnDisk  atomic.Bool

	// replica is non-nil on a follower: the server is read-only (adds are
	// rejected), /query passes a bounded-staleness gate, and /stats
	// reports replication lag. Installed by NewReplica before serving.
	replica *replicaState

	// pollMu guards pollR, the deterministic jitter source for the
	// /wal/stream long-poll interval. Leaf lock: nothing else is ever
	// acquired while it is held.
	//kjoinlint:lockorder rank=60
	pollMu sync.Mutex
	pollR  *rng.RNG // guarded by pollMu

	// snapMu serializes snapshot generations against each other.
	//kjoinlint:lockorder rank=10
	snapMu sync.Mutex
	// snapSeqs holds the WAL sequence of each retained snapshot
	// generation, oldest first — the WAL may only be compacted up to
	// snapSeqs[0], or falling back past a corrupt newest generation
	// would find the log records it needs already deleted.
	snapSeqs []uint64 // guarded by snapMu
}

// New returns a server over the hierarchy with the join options and
// default limits.
func New(h *hierarchy.Hierarchy, opt core.Options) (*Server, error) {
	return NewWithConfig(h, opt, Config{})
}

// NewWithConfig returns a server with explicit resource limits.
func NewWithConfig(h *hierarchy.Hierarchy, opt core.Options, cfg Config) (*Server, error) {
	ix, err := core.NewIndexer(h, opt)
	if err != nil {
		return nil, err
	}
	return wrap(h, opt, cfg, ix), nil
}

// NewFromSnapshot returns a server whose Indexer is rebuilt from a
// snapshot (see Indexer.WriteSnapshot) with default limits.
func NewFromSnapshot(h *hierarchy.Hierarchy, opt core.Options, r io.Reader) (*Server, error) {
	return NewFromSnapshotWithConfig(h, opt, Config{}, r)
}

// NewFromSnapshotWithConfig is NewFromSnapshot with explicit limits.
func NewFromSnapshotWithConfig(h *hierarchy.Hierarchy, opt core.Options, cfg Config, r io.Reader) (*Server, error) {
	ix, err := core.LoadIndexer(h, opt, r)
	if err != nil {
		return nil, err
	}
	return wrap(h, opt, cfg, ix), nil
}

func wrap(h *hierarchy.Hierarchy, opt core.Options, cfg Config, ix *core.Indexer) *Server {
	cfg = cfg.withDefaults()
	s := &Server{h: h, opt: opt, cfg: cfg}
	s.ix.Store(ix)
	s.ready.Store(true)
	s.sem = serverutil.NewSemaphore(cfg.MaxInflight)
	mux := http.NewServeMux()
	mux.Handle("POST /objects", s.readOnly(s.limited(http.HandlerFunc(s.handleAdd))))
	mux.Handle("POST /query", s.limited(s.staleGate(http.HandlerFunc(s.handleQuery))))
	mux.Handle("POST /similarity", s.limited(http.HandlerFunc(s.handleSimilarity)))
	mux.Handle("GET /objects/{id}", s.notReady(http.HandlerFunc(s.handleGetObject)))
	mux.Handle("GET /snapshot", s.limited(http.HandlerFunc(s.handleSnapshot)))
	mux.Handle("GET /wal/stream", s.notReady(http.HandlerFunc(s.handleWALStream)))
	mux.Handle("GET /replica/snapshot", s.limited(http.HandlerFunc(s.handleReplicaSnapshot)))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.handler = serverutil.Chain(mux, serverutil.Recover(cfg.Logf))
	return s
}

// limited wraps an expensive endpoint with the full protection stack:
// the recovery gate outermost (nothing runs against a half-rebuilt
// index), then admission control (reject before spending anything),
// then the per-request deadline, then the body cap.
func (s *Server) limited(h http.Handler) http.Handler {
	return serverutil.Chain(h,
		s.notReady,
		serverutil.Admit(s.sem, s.cfg.RetryAfterMin, s.cfg.RetryAfterMax, s.cfg.Seed),
		serverutil.WithTimeout(s.cfg.RequestTimeout),
		serverutil.LimitBody(s.cfg.MaxBodyBytes),
	)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// SetDraining flips the readiness probe: a draining server answers
// /readyz with 503 so load balancers stop routing new traffic while
// in-flight requests finish. Serving itself is not affected.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// SnapshotTo atomically writes the current index to path: the view is
// pinned under the read lock (a cheap pointer copy — writers wait only
// for that instant), serialized outside it, and written
// temp+fsync+rename so a crash mid-write never leaves a corrupt or
// truncated snapshot behind.
func (s *Server) SnapshotTo(path string) error {
	s.mu.RLock()
	pv := s.ix.Load().Pin()
	s.mu.RUnlock()
	return serverutil.WriteFileAtomic(path, func(w io.Writer) error {
		return pv.WriteSnapshot(w)
	})
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: whether new traffic should be routed here.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "recovering", "index recovery in progress")
		return
	}
	if s.draining.Load() {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// handleSnapshot streams the current index contents as a snapshot the
// server (or any Indexer) can be rebuilt from. The view is pinned under
// the read lock and serialized after the lock is released — neither a
// slow client nor the serialization itself can block writers.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	pv := s.ix.Load().Pin()
	s.mu.RUnlock()
	var buf bytes.Buffer
	if err := pv.WriteSnapshot(&buf); err != nil {
		s.opError(w, "snapshot_failed", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = io.Copy(w, &buf)
}

// objectRequest is the body of POST /objects and POST /query.
type objectRequest struct {
	Tokens []string `json:"tokens"`
}

// pairJSON is one reported similar pair.
type pairJSON struct {
	X   int     `json:"x"`
	Y   int     `json:"y"`
	Sim float64 `json:"sim"`
}

// addResponse is the body of a successful POST /objects.
type addResponse struct {
	ID    int        `json:"id"`
	Pairs []pairJSON `json:"pairs"`
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !s.decode(w, r, &req) || !s.checkTokens(w, req.Tokens) {
		return
	}
	s.mu.Lock()
	ix := s.ix.Load()
	wlog := s.wal.Load()
	// Fail fast once the log is poisoned: taking more adds into an index
	// the log cannot vouch for only widens the gap recovery will erase.
	if wlog != nil {
		if werr := wlog.Err(); werr != nil {
			s.mu.Unlock()
			s.opError(w, "wal_failed", werr)
			return
		}
	}
	// The id is Add's return value, not a separate Len() read — the two
	// can never desynchronize, whatever the locking around them does.
	// The WAL append happens under the same critical section, after a
	// successful AddCtx (which is atomic on failure): log order therefore
	// matches insertion order exactly, and a record can never exist for
	// an object the index rejected. (A seal the add triggers logs its own
	// OpSeal record from inside AddCtx, immediately before this add's
	// record — same critical section, so the pair stays adjacent.)
	id, pairs, err := ix.AddCtx(r.Context(), req.Tokens)
	var seq uint64
	walFailed := false
	if err == nil && wlog != nil {
		if seq, err = wlog.Append(req.Tokens); err != nil {
			walFailed = true
		} else {
			ix.SetWALSeq(seq)
		}
	}
	s.mu.Unlock()
	if err != nil {
		// The poisoning Append failure is a WAL failure like the fast-fail
		// and fsync paths — operators watching wal_failed must see it too.
		if walFailed {
			s.opError(w, "wal_failed", err)
		} else {
			s.joinError(w, err)
		}
		return
	}
	if wlog != nil {
		// Group-committed fsync outside the lock: concurrent adds keep
		// flowing and ride the same flush. The acknowledgment below is
		// written only after this returns — an acked add survives any
		// crash, and a refused fsync rolls the record back so the add it
		// would have acknowledged cannot resurface.
		if werr := wlog.Sync(seq); werr != nil {
			s.opError(w, "wal_failed", werr)
			return
		}
	}
	resp := addResponse{ID: id, Pairs: make([]pairJSON, 0, len(pairs))}
	for _, p := range pairs {
		resp.Pairs = append(resp.Pairs, pairJSON{X: p.X, Y: p.Y, Sim: p.Sim})
	}
	writeJSON(w, resp)
}

// handleGetObject serves one indexed object's normalized tokens by
// local id — the cluster reshard mover streams moving objects off their
// old home through it. Reads are lock-free against the engine's pinned
// view, and the tokens round-trip bit-identically (they are exactly
// what a snapshot would carry).
func (s *Server) handleGetObject(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		serverutil.WriteError(w, http.StatusBadRequest, "bad_id",
			fmt.Sprintf("object id must be a non-negative integer, got %q", r.PathValue("id")))
		return
	}
	pv := s.ix.Load().Pin()
	tokens, ok := pv.ObjectTokens(id)
	if !ok {
		serverutil.WriteError(w, http.StatusNotFound, "unknown_object",
			fmt.Sprintf("object %d is not indexed here (have %d)", id, pv.Objects()))
		return
	}
	writeJSON(w, map[string]any{"id": id, "tokens": tokens})
}

// matchJSON is one POST /query result.
type matchJSON struct {
	Index int     `json:"index"`
	Sim   float64 `json:"sim"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req objectRequest
	if !s.decode(w, r, &req) || !s.checkTokens(w, req.Tokens) {
		return
	}
	// The whole query path is lock-free at the server layer: PrepareQuery
	// synchronizes the shared preprocessing caches internally, and
	// RunQuery probes the engine's atomically published view. Concurrent
	// adds never stall a query.
	ix := s.ix.Load()
	q, err := ix.PrepareQuery(req.Tokens)
	if err != nil {
		s.joinError(w, err)
		return
	}
	matches, err := ix.RunQuery(r.Context(), q)
	if err != nil {
		s.joinError(w, err)
		return
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{Index: m.Index, Sim: m.Sim})
	}
	writeJSON(w, map[string]any{"matches": out})
}

// similarityRequest is the body of POST /similarity.
type similarityRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
}

func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	var req similarityRequest
	if !s.decode(w, r, &req) || !s.checkTokens(w, req.X) || !s.checkTokens(w, req.Y) {
		return
	}
	// Similarity builds its own transient state over the shared
	// (read-only) hierarchy; no server lock is needed.
	sim, err := core.SimilarityCtx(r.Context(), s.h, req.X, req.Y, s.opt)
	if err != nil {
		s.joinError(w, err)
		return
	}
	writeJSON(w, map[string]float64{"sim": sim})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ix := s.ix.Load()
	st := ix.Stats()
	n := ix.Len()
	seg := ix.SegmentStats()
	wlog := s.wal.Load()
	out := map[string]any{
		"objects":          n,
		"candidates":       st.Candidates,
		"results":          st.Verify.Results,
		"count_pruned":     st.Verify.CountPruned,
		"weighted_pruned":  st.Verify.WeightedPruned,
		"lb_accepted":      st.Verify.LBAccepted,
		"ub_rejected":      st.Verify.UBRejected,
		"inflight":         s.sem.InFlight(),
		"segment_count":    seg.Segments,
		"memtable_objects": seg.MemObjects,
		"seal_total":       seg.SealTotal,
		"merge_total":      seg.MergeTotal,
		"merge_backlog":    seg.MergeBacklog,
	}
	if wlog != nil {
		last, durable, snap := wlog.LastSeq(), wlog.DurableSeq(), s.lastSnapSeq.Load()
		out["wal_last_seq"] = last
		out["wal_durable_seq"] = durable
		out["snapshot_seq"] = snap
		// wal_lag is how many logged operations the newest snapshot does
		// not yet cover — what recovery would have to replay.
		out["wal_lag"] = last - snap
		out["wal_healthy"] = wlog.Err() == nil
	}
	if rs := s.replica; rs != nil {
		out["replica_applied_seq"] = rs.applied.Load()
		out["replica_healthy"] = rs.healthy.Load()
		// replica_lag is seconds since this follower last confirmed it was
		// caught up with the primary's durable horizon; -1 until the first
		// catch-up.
		out["replica_lag"] = rs.lagSeconds()
	}
	writeJSON(w, out)
}

// decode parses a JSON body, reporting a structured 400 on failure and
// distinguishing an over-cap body from malformed JSON.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			serverutil.WriteError(w, http.StatusBadRequest, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		serverutil.WriteError(w, http.StatusBadRequest, "bad_json", "bad request body: "+err.Error())
		return false
	}
	return true
}

// checkTokens enforces the configured token-count and token-length caps
// (the structural empty/blank validation lives in core and surfaces as
// *core.InputError through joinError).
func (s *Server) checkTokens(w http.ResponseWriter, tokens []string) bool {
	if len(tokens) > s.cfg.MaxTokens {
		serverutil.WriteError(w, http.StatusBadRequest, "too_many_tokens",
			fmt.Sprintf("object has %d tokens, limit %d", len(tokens), s.cfg.MaxTokens))
		return false
	}
	for i, t := range tokens {
		if len(t) > s.cfg.MaxTokenLen {
			serverutil.WriteError(w, http.StatusBadRequest, "token_too_long",
				fmt.Sprintf("token %d is %d bytes, limit %d", i, len(t), s.cfg.MaxTokenLen))
			return false
		}
	}
	return true
}

// joinError maps engine errors to responses: invalid input → 400, an
// expired deadline → 503, a vanished client → nothing, anything else →
// 500.
func (s *Server) joinError(w http.ResponseWriter, err error) {
	s.opError(w, "internal", err)
}

// opError is the single error-classification path (kjoin-lint's errform
// rule): typed input errors become the structured 400, context errors
// map to their statuses, and only the residue is stringified into a 500
// with the operation's error code.
func (s *Server) opError(w http.ResponseWriter, code string, err error) {
	var ie *core.InputError
	switch {
	case errors.As(err, &ie):
		serverutil.WriteError(w, http.StatusBadRequest, "invalid_input", ie.Detail)
	case errors.Is(err, context.DeadlineExceeded):
		serverutil.WriteError(w, http.StatusServiceUnavailable, "timeout", "request deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Client went away; there is no one to answer.
	default:
		serverutil.WriteError(w, http.StatusInternalServerError, code, err.Error())
	}
}

// writeJSON writes the success response. ackorder proves no handler
// reaches it with an unsynced WAL append pending.
//
//kjoinlint:ackorder ack
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		return
	}
}
