package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/fault"
	"kjoin/internal/hierarchy"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// Durability configures the crash-safety machinery: a write-ahead log
// acknowledged adds are fsync'd into before the HTTP response, and a
// directory of checksummed snapshot generations recovery rebuilds from.
type Durability struct {
	// FS is the filesystem (nil → the real one; tests inject faults).
	FS fault.FS
	// WALDir is the write-ahead-log directory (required).
	WALDir string
	// SnapshotDir is the snapshot generation directory (required; must
	// differ from WALDir so WAL repair never touches snapshots).
	SnapshotDir string
	// Keep is how many snapshot generations are retained (default 3).
	Keep int
	// Policy is the WAL fsync policy (default wal.SyncAlways).
	Policy wal.Policy
	// BatchWindow is the WAL group-commit window (0 = fsync immediately).
	BatchWindow time.Duration
	// Logf, when set, receives recovery and repair notices.
	Logf func(format string, args ...any)
}

// NewRecovering returns a server that is up but not yet ready: /healthz
// answers, /readyz reports 503 ("recovering"), and every expensive
// endpoint is rejected the same way until Recover completes. It lets
// the listener come up first so load balancers see an honest readiness
// signal while the index is rebuilt from disk.
func NewRecovering(h *hierarchy.Hierarchy, opt core.Options, cfg Config) (*Server, error) {
	ix, err := core.NewIndexer(h, opt)
	if err != nil {
		return nil, err
	}
	s := wrap(h, opt, cfg, ix)
	s.ready.Store(false)
	return s, nil
}

// Recover rebuilds the index from the newest readable snapshot
// generation plus the write-ahead log and flips the server ready.
// Snapshot generations that fail to load (torn write, bit rot) are
// skipped generation-by-generation; the WAL's torn tail — the legitimate
// residue of a crash mid-append — is truncated at the first bad
// checksum. Every record acknowledged before the crash is replayed;
// nothing that was never acknowledged can appear, because
// unacknowledged records are either absent (fsync refused → rolled
// back) or past the truncation point.
func (s *Server) Recover(d Durability) error {
	fsys := d.FS
	if fsys == nil {
		fsys = fault.OS{}
	}
	logf := d.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	gens := &serverutil.GenStore{FS: fsys, Dir: d.SnapshotDir, Keep: d.Keep, Logf: d.Logf}
	var ix *core.Indexer
	name, err := gens.Load(func(r io.Reader) error {
		loaded, _, lerr := core.LoadIndexerMeta(s.h, s.opt, r)
		if lerr != nil {
			return lerr
		}
		ix = loaded
		return nil
	})
	switch {
	case errors.Is(err, serverutil.ErrNoSnapshot):
		if ix, err = core.NewIndexer(s.h, s.opt); err != nil {
			return err
		}
		logf("recovery: no snapshot; starting empty")
	case err != nil:
		return fmt.Errorf("server: load snapshot: %w", err)
	default:
		logf("recovery: loaded snapshot %s (%d objects, wal seq %d)", name, ix.Len(), ix.WALSeq())
	}
	base := ix.WALSeq()
	// Seed the compaction floor from every generation still on disk, not
	// just the one that loaded: the older ones remain fallback candidates
	// (the newest may corrupt at rest later), so the WAL records they
	// need must outlive them. A generation whose header cannot be read
	// can never be a fallback and contributes nothing.
	snapSeqs := []uint64{base}
	if names, gerr := gens.Generations(); gerr == nil && len(names) > 0 {
		snapSeqs = snapSeqs[:0]
		for _, gn := range names {
			f, oerr := gens.Open(gn)
			if oerr != nil {
				logf("recovery: generation %s unreadable (%v); ignored for the compaction floor", gn, oerr)
				continue
			}
			m, perr := core.PeekSnapshotMeta(f)
			_ = f.Close() // read-only; nothing written that a close could lose
			if perr != nil {
				logf("recovery: generation %s header corrupt (%v); ignored for the compaction floor", gn, perr)
				continue
			}
			snapSeqs = append(snapSeqs, m.WALSeq)
		}
		if len(snapSeqs) == 0 {
			snapSeqs = append(snapSeqs, base)
		}
		// Generation order should already be sequence order; sorting makes
		// the floor (snapSeqs[0]) the minimum even if a header lies.
		sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	}
	replayed := 0
	var maxRec uint64 // highest record actually present in the log
	w, err := wal.Open(fsys, d.WALDir, wal.Options{Policy: d.Policy, BatchWindow: d.BatchWindow, Logf: d.Logf},
		func(seq uint64, op wal.Op, tokens []string) error {
			if seq > maxRec {
				maxRec = seq
			}
			if seq <= base {
				return nil // already inside the snapshot (v3 snapshots carry the segment layout too)
			}
			replayed++
			if op == wal.OpSeal {
				// A logged seal boundary: reproduce the pre-crash segment
				// layout by sealing at exactly the same point.
				return ix.ApplySealLogged(seq)
			}
			return ix.ApplyLogged(seq, tokens)
		})
	if err != nil {
		return fmt.Errorf("server: open wal: %w", err)
	}
	if w.LastSeq() < base {
		_ = w.Close() // recovery already failed; the open error is the one to report
		return fmt.Errorf("server: wal ends at seq %d but snapshot %s covers seq %d: log truncated or deleted out-of-band", w.LastSeq(), name, base)
	}
	// The log's numbering can outrun its records: compaction leaves a
	// fresh segment whose name is the only on-disk trace of how far
	// acknowledged writes advanced. Records compacted away are only safe
	// to lose under a snapshot that covers them — if the one we loaded
	// does not, acknowledged adds are unrecoverable, and recovery must
	// say so instead of silently serving a shorter index.
	if tail := w.LastSeq(); tail > base && tail > maxRec {
		_ = w.Close() // recovery already failed; the gap error is the one to report
		return fmt.Errorf("server: wal numbering reaches seq %d but its records end at seq %d and snapshot %s covers only seq %d: acknowledged adds were compacted away", tail, maxRec, name, base)
	}
	logf("recovery: replayed %d wal record(s); index at %d objects, wal seq %d", replayed, ix.Len(), ix.WALSeq())
	// The seal logger goes in only after replay: replayed seals are
	// already in the log, and re-logging them would duplicate boundaries.
	// From here on, every seal the engine performs writes its OpSeal
	// record before the engine mutates.
	ix.SetSealLogger(w.AppendSeal)
	s.mu.Lock()
	s.ix.Store(ix)
	s.wal.Store(w)
	s.gens = gens
	s.mu.Unlock()
	s.snapMu.Lock()
	s.snapSeqs = append(s.snapSeqs[:0], snapSeqs...)
	s.snapMu.Unlock()
	s.lastSnapSeq.Store(base)
	s.snapOnDisk.Store(name != "")
	s.ready.Store(true)
	return nil
}

// Recover builds a server and runs crash recovery before returning it:
// the convenience form for callers that do not need to serve a
// readiness probe during recovery.
func Recover(h *hierarchy.Hierarchy, opt core.Options, cfg Config, d Durability) (*Server, error) {
	s, err := NewRecovering(h, opt, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Recover(d); err != nil {
		return nil, err
	}
	return s, nil
}

// SnapshotGeneration persists the index as a new snapshot generation
// and compacts the WAL. The order is what makes it crash-safe: the
// index (and the WAL sequence it reflects) is serialized under the read
// lock, the log is fsync'd through that sequence so the snapshot can
// never contain a record the log might refuse, the generation is
// written atomically and CURRENT repointed — and only then is the WAL
// compacted, no further than the oldest generation still retained, so
// fallback past a corrupt newest generation always has the log records
// it needs.
func (s *Server) SnapshotGeneration() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.RLock()
	w, gens := s.wal.Load(), s.gens
	pv := s.ix.Load().Pin()
	seq := pv.WALSeq()
	// An idle server does not churn generations: when nothing advanced
	// since the last durable generation there is nothing to persist.
	skip := s.snapOnDisk.Load() && seq == s.lastSnapSeq.Load()
	// A poisoned log refuses the snapshot outright. The Sync below is
	// not enough: after a failed Append the rejected object sits in the
	// index while the durable sequence never advanced, so a sync on that
	// stale sequence succeeds — and the snapshot would durably persist
	// an add whose acknowledgment was refused. Appends serialize under
	// the write lock, so with the check made under the read lock the
	// pinned view can never contain such an object while Err reads nil.
	var poisoned error
	if w != nil {
		poisoned = w.Err()
	}
	s.mu.RUnlock()
	if gens == nil {
		return errors.New("server: durability not configured")
	}
	if poisoned != nil {
		return fmt.Errorf("server: wal unhealthy; refusing snapshot: %w", poisoned)
	}
	if skip {
		return nil
	}
	// Serialization happens outside every lock: the pinned view is
	// immutable, so writers keep flowing while the bytes are produced.
	var buf bytes.Buffer
	if err := pv.WriteSnapshot(&buf); err != nil {
		return err
	}
	if w != nil {
		// Sync-path poisoning can still race in after the check above; it
		// only ever affects records past the durable point, and those make
		// seq > synced here, so this sync takes the slow path and refuses.
		if err := w.Sync(seq); err != nil {
			return fmt.Errorf("server: wal sync before snapshot: %w", err)
		}
	}
	name, err := gens.Save(func(dst io.Writer) error {
		_, werr := dst.Write(buf.Bytes())
		return werr
	})
	if err != nil {
		return err
	}
	s.lastSnapSeq.Store(seq)
	s.snapOnDisk.Store(true)
	keep := gens.Keep
	if keep < 1 {
		keep = 3
	}
	s.snapSeqs = append(s.snapSeqs, seq)
	if len(s.snapSeqs) > keep {
		s.snapSeqs = s.snapSeqs[len(s.snapSeqs)-keep:]
	}
	if w != nil {
		if err := w.Compact(s.snapSeqs[0]); err != nil {
			return fmt.Errorf("server: compact wal after %s: %w", name, err)
		}
	}
	return nil
}

// Close syncs and closes the WAL (a no-op without durability). The
// server keeps serving reads afterwards; adds fail.
func (s *Server) Close() error {
	w := s.wal.Load()
	if w == nil {
		return nil
	}
	return w.Close()
}

// notReady gates an endpoint on recovery having finished.
func (s *Server) notReady(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			serverutil.WriteError(w, http.StatusServiceUnavailable, "recovering", "index recovery in progress")
			return
		}
		next.ServeHTTP(w, r)
	})
}
