package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"kjoin/internal/core"
	"kjoin/internal/paperdata"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	h, _ := paperdata.Fig1()
	s, err := New(h, core.Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestAddAndPairs(t *testing.T) {
	ts := newTestServer(t)
	// Stream the Table 1 objects; the only pair is ⟨S1, S3⟩ = (0, 2).
	var allPairs [][2]int
	for i, o := range paperdata.Table1() {
		var resp struct {
			ID    int `json:"id"`
			Pairs []struct {
				X   int     `json:"x"`
				Y   int     `json:"y"`
				Sim float64 `json:"sim"`
			} `json:"pairs"`
		}
		r := post(t, ts.URL+"/objects", map[string]any{"tokens": o}, &resp)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status %d", r.StatusCode)
		}
		if resp.ID != i {
			t.Errorf("id = %d, want %d", resp.ID, i)
		}
		for _, p := range resp.Pairs {
			allPairs = append(allPairs, [2]int{p.X, p.Y})
			if p.Sim <= 0 {
				t.Errorf("pair %v has no similarity", p)
			}
		}
	}
	if len(allPairs) != 1 || allPairs[0] != [2]int{0, 2} {
		t.Errorf("pairs = %v, want [[0 2]]", allPairs)
	}
}

func TestQueryAndSimilarity(t *testing.T) {
	ts := newTestServer(t)
	for _, o := range paperdata.Table1() {
		post(t, ts.URL+"/objects", map[string]any{"tokens": o}, nil)
	}
	var q struct {
		Matches []struct {
			Index int     `json:"index"`
			Sim   float64 `json:"sim"`
		} `json:"matches"`
	}
	post(t, ts.URL+"/query", map[string]any{"tokens": []string{"Fastfood", "GoogleHeadquarters"}}, &q)
	found := map[int]bool{}
	for _, m := range q.Matches {
		found[m.Index] = true
	}
	if !found[2] || !found[0] {
		t.Errorf("query should match S3 and S1, got %v", q.Matches)
	}

	var s struct {
		Sim float64 `json:"sim"`
	}
	post(t, ts.URL+"/similarity", map[string]any{
		"x": []string{"BurgerKing", "MountainView"},
		"y": []string{"Fastfood", "GoogleHeadquarters"},
	}, &s)
	if s.Sim < 0.65 || s.Sim > 0.66 {
		t.Errorf("sim = %v, want 19/29", s.Sim)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/objects", map[string]any{"tokens": []string{"KFC"}}, nil)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["objects"].(float64) != 1 {
		t.Errorf("stats = %v", st)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/objects", "application/json", bytes.NewReader([]byte("{garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
	// Unknown fields are rejected.
	resp = post(t, ts.URL+"/query", map[string]any{"tokenz": []string{"a"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/objects")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /objects should not be OK")
	}
}

func TestConcurrentAdds(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tok := fmt.Sprintf("token%d", i)
			post(t, ts.URL+"/objects", map[string]any{"tokens": []string{tok, "KFC"}}, nil)
		}(i)
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["objects"].(float64) != 16 {
		t.Errorf("objects = %v, want 16", st["objects"])
	}
}

func TestSnapshotEndpointRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	for _, o := range paperdata.Table1() {
		post(t, ts.URL+"/objects", map[string]any{"tokens": o}, nil)
	}
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	h, _ := paperdata.Fig1()
	srv2, err := NewFromSnapshot(h, core.Defaults(0.7, 0.6), resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	var q struct {
		Matches []struct {
			Index int     `json:"index"`
			Sim   float64 `json:"sim"`
		} `json:"matches"`
	}
	post(t, ts2.URL+"/query", map[string]any{"tokens": []string{"Fastfood", "GoogleHeadquarters"}}, &q)
	if len(q.Matches) < 2 {
		t.Errorf("restored server should answer queries, got %v", q.Matches)
	}
}

func TestNewFromSnapshotBadInput(t *testing.T) {
	h, _ := paperdata.Fig1()
	if _, err := NewFromSnapshot(h, core.Defaults(0.7, 0.6), bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk snapshot should fail")
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	h, _ := paperdata.Fig1()
	if _, err := New(h, core.Options{}); err == nil {
		t.Error("zero options should be rejected")
	}
}
